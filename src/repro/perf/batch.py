"""Batch LUBT solving on top of :mod:`repro.perf.pool`.

A :class:`SolveTask` is one independent ``solve_lubt`` call (topology,
bounds, keyword options); :func:`solve_many` fans a list of them across
worker processes.  Task objects travel to workers via pickling under the
spawn start method (fork inherits them for free), so topologies and
bounds must stay picklable — both are plain dataclass-style containers
and are.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.perf.journal import (
    SolveJournal,
    solution_from_record,
    solution_to_record,
)
from repro.perf.pool import TaskOutcome, WorkerPool, map_many
from repro.perf.scheduler import (
    DEFAULT_CHUNK_SECONDS,
    DEFAULT_MAX_CHUNK,
    BatchScheduler,
)


@dataclass(frozen=True)
class SolveTask:
    """One independent LUBT instance: ``solve_lubt(topo, bounds, **options)``."""

    topo: Any
    bounds: Any
    options: Mapping[str, Any] = field(default_factory=dict)


def _solve_task(task: SolveTask):
    from repro.ebf import solve_lubt

    return solve_lubt(task.topo, task.bounds, **dict(task.options))


def _task_key(topo: Any, bounds: Any, options: Mapping[str, Any]) -> str:
    # Imported here: repro.server already imports repro.perf.
    from repro.server.keys import instance_key

    return instance_key(topo, bounds, dict(options))


def _waves(items: Sequence[Any], size: int) -> list[list[Any]]:
    """Split ``items`` into consecutive waves of at most ``size``."""
    return [list(items[a:a + size]) for a in range(0, len(items), size)]


def solve_many(
    tasks: Sequence[SolveTask],
    *,
    jobs: int = 1,
    timeout: float | None = None,
    start_method: str | None = None,
    journal: SolveJournal | None = None,
    pool: WorkerPool | None = None,
    on_result: Any = None,
    chunk_seconds: float = DEFAULT_CHUNK_SECONDS,
    max_chunk: int = DEFAULT_MAX_CHUNK,
) -> list[TaskOutcome]:
    """Solve every task; outcomes come back in task order.

    ``outcome.value`` is the :class:`~repro.ebf.LubtSolution` on success;
    ``outcome.unwrap()`` raises :class:`~repro.perf.TaskError` on worker
    failure or timeout.  ``jobs=1`` with no timeout (and no ``pool``)
    runs inline and is bit-for-bit identical to a serial loop of
    ``solve_lubt`` calls.

    Parallel batches run on a **resident** :class:`~repro.perf.WorkerPool`
    (pass ``pool=`` to reuse one across batches — e.g. a whole CTS run —
    otherwise one is forked for the call) through the chunked
    :class:`~repro.perf.BatchScheduler`: many tasks per IPC message with
    the chunk size auto-tuned from an EWMA of per-task solve seconds
    (``chunk_seconds``/``max_chunk``), results streaming back per
    completion.  A per-task ``timeout`` kills only the offending task's
    worker; the rest of its chunk is resubmitted.

    ``on_result(outcome)`` — when given — fires once per task in
    completion order (journal replays first, then live completions as
    they land); ``outcome.index`` is the task's position in ``tasks``.

    With a ``journal`` (:class:`~repro.perf.SolveJournal`), tasks whose
    canonical instance key already has a journal record are *replayed*
    instead of re-solved, and every fresh success is durably appended
    (flush + fsync) **the moment it completes** — no wave barrier, so a
    straggler cannot hold completed solves out of the journal, and a run
    killed mid-batch resumes from its last completed *solve*.
    Failed/timed-out tasks are never journaled; a resume retries them.
    """
    tasks = list(tasks)
    results: list[TaskOutcome | None] = [None] * len(tasks)
    fresh: list[int] = list(range(len(tasks)))

    keys: list[str] | None = None
    done: dict[str, dict] = {}
    if journal is not None:
        keys = [_task_key(t.topo, t.bounds, t.options) for t in tasks]
        done = journal.load()
        fresh = []
        for i, t in enumerate(tasks):
            rec = done.get(keys[i])
            if rec is not None:
                results[i] = TaskOutcome(
                    i, True, solution_from_record(rec, t.topo, t.bounds)
                )
                journal.replayed += 1
                if on_result is not None:
                    on_result(results[i])
            else:
                fresh.append(i)

    def _completed(i: int, o: TaskOutcome) -> None:
        out = TaskOutcome(
            i, o.ok, o.value, o.error, o.timed_out, o.crashed, o.elapsed
        )
        results[i] = out
        if journal is not None and o.ok and keys[i] not in done:
            rec = solution_to_record(o.value)
            journal.append(keys[i], rec)
            done[keys[i]] = rec
        if on_result is not None:
            on_result(out)

    inline = jobs == 1 and timeout is None and pool is None
    if inline:
        import time as time_mod

        for i in fresh:
            t0 = time_mod.perf_counter()
            try:
                out = TaskOutcome(
                    i, True, _solve_task(tasks[i]),
                    elapsed=time_mod.perf_counter() - t0,
                )
            except Exception as exc:  # noqa: BLE001 — outcome boundary
                out = TaskOutcome(
                    i, False, error=f"{type(exc).__name__}: {exc}",
                    elapsed=time_mod.perf_counter() - t0,
                )
            _completed(i, out)
    elif fresh:
        own_pool = pool is None
        active = pool if pool is not None else WorkerPool(
            jobs, start_method
        )
        try:
            scheduler = BatchScheduler(
                active, chunk_seconds=chunk_seconds, max_chunk=max_chunk
            )
            scheduler.run(
                _solve_task,
                [(tasks[i],) for i in fresh],
                timeout=timeout,
                on_result=lambda o: _completed(fresh[o.index], o),
            )
        finally:
            if own_pool:
                active.close()
    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]


def sweep_chunks(count: int, chunks: int) -> list[tuple[int, int]]:
    """Split ``range(count)`` into ``chunks`` contiguous near-equal
    ``(start, stop)`` slices (empty slices dropped).

    Contiguity matters: a warm-started sweep shard works best when its
    points are neighbors in the sweep, because adjacent bound sets share
    almost all of their active Steiner rows.
    """
    if chunks < 1:
        raise ValueError("chunks must be >= 1")
    chunks = min(chunks, max(1, count))
    base, extra = divmod(count, chunks)
    out: list[tuple[int, int]] = []
    start = 0
    for c in range(chunks):
        stop = start + base + (1 if c < extra else 0)
        if stop > start:
            out.append((start, stop))
        start = stop
    return out


def _solve_sweep_chunk(topo, bounds_chunk, options):
    from repro.ebf.sweep import solve_sweep

    return solve_sweep(topo, bounds_chunk, **dict(options))


def solve_sweep_sharded(
    topo: Any,
    bounds_list: Sequence[Any],
    *,
    jobs: int = 1,
    chunks: int | None = None,
    timeout: float | None = None,
    start_method: str | None = None,
    journal: SolveJournal | None = None,
    **options: Any,
) -> list[Any]:
    """Warm-started sweep over one topology, sharded across processes.

    Unlike :func:`solve_many` — which ships every point to whichever
    worker is free — this chunks the sweep into ``chunks`` (default:
    ``jobs``) *contiguous* shards and runs each shard through
    :func:`repro.ebf.solve_sweep` inside one worker, so the
    :class:`~repro.ebf.WarmStart` state stays process-local and every
    point after a shard's first still gets the warm seeding.  Extra
    keywords (``warm=``, ``backend=``, ...) pass through to
    :func:`~repro.ebf.solve_sweep`.

    Returns the :class:`~repro.ebf.LubtSolution` list in sweep order.
    ``jobs=1`` with no timeout runs inline — identical to calling
    ``solve_sweep`` directly.  Raw edge vectors (and costs, at the last
    ulp) can depend on the chunking because warm seeding selects among
    degenerate LP optima; report costs through
    :func:`repro.ebf.canonical_cost` for chunking-invariant output.

    With a ``journal``, points whose canonical instance key is already
    recorded are replayed; only the missing points are swept (as their
    own contiguous sub-sweep), with each shard's records fsync'd as it
    completes.  Resumed sweeps therefore re-chunk the *remaining*
    points — same caveat as above: chunking-invariant at the
    :func:`repro.ebf.canonical_cost` level, where every experiment
    table reports.
    """
    bounds_list = list(bounds_list)
    if journal is None:
        spans = sweep_chunks(
            len(bounds_list), chunks if chunks else max(1, jobs)
        )
        shard_results = map_many(
            _solve_sweep_chunk,
            [(topo, bounds_list[a:b], options) for a, b in spans],
            jobs=jobs,
            timeout=timeout,
            start_method=start_method,
        )
        return [sol for shard in shard_results for sol in shard]

    keys = [_task_key(topo, b, options) for b in bounds_list]
    done = journal.load()
    results: list[Any] = [None] * len(bounds_list)
    missing: list[int] = []
    for i, b in enumerate(bounds_list):
        rec = done.get(keys[i])
        if rec is not None:
            results[i] = solution_from_record(rec, topo, b)
            journal.replayed += 1
        else:
            missing.append(i)
    if missing:
        spans = sweep_chunks(
            len(missing), chunks if chunks else max(1, jobs)
        )
        # One wave of shards at a time so every completed shard is
        # durable before the next wave starts (a SIGKILL costs at most
        # the in-flight wave).
        for wave in _waves(spans, max(1, jobs)):
            shard_results = map_many(
                _solve_sweep_chunk,
                [
                    (topo, [bounds_list[i] for i in missing[a:b]], options)
                    for a, b in wave
                ],
                jobs=jobs,
                timeout=timeout,
                start_method=start_method,
            )
            for (a, b), shard in zip(wave, shard_results):
                for i, sol in zip(missing[a:b], shard):
                    results[i] = sol
                    if keys[i] not in done:
                        rec = solution_to_record(sol)
                        journal.append(keys[i], rec)
                        done[keys[i]] = rec
    assert all(r is not None for r in results)
    return results
