"""Batch LUBT solving on top of :mod:`repro.perf.pool`.

A :class:`SolveTask` is one independent ``solve_lubt`` call (topology,
bounds, keyword options); :func:`solve_many` fans a list of them across
worker processes.  Task objects travel to workers via pickling under the
spawn start method (fork inherits them for free), so topologies and
bounds must stay picklable — both are plain dataclass-style containers
and are.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.perf.pool import TaskOutcome, map_many, run_many


@dataclass(frozen=True)
class SolveTask:
    """One independent LUBT instance: ``solve_lubt(topo, bounds, **options)``."""

    topo: Any
    bounds: Any
    options: Mapping[str, Any] = field(default_factory=dict)


def _solve_task(task: SolveTask):
    from repro.ebf import solve_lubt

    return solve_lubt(task.topo, task.bounds, **dict(task.options))


def solve_many(
    tasks: Sequence[SolveTask],
    *,
    jobs: int = 1,
    timeout: float | None = None,
    start_method: str | None = None,
) -> list[TaskOutcome]:
    """Solve every task; outcomes come back in task order.

    ``outcome.value`` is the :class:`~repro.ebf.LubtSolution` on success;
    ``outcome.unwrap()`` raises :class:`~repro.perf.TaskError` on worker
    failure or timeout.  ``jobs=1`` with no timeout runs inline and is
    bit-for-bit identical to a serial loop of ``solve_lubt`` calls.
    """
    return run_many(
        _solve_task,
        [(t,) for t in tasks],
        jobs=jobs,
        timeout=timeout,
        start_method=start_method,
    )


def sweep_chunks(count: int, chunks: int) -> list[tuple[int, int]]:
    """Split ``range(count)`` into ``chunks`` contiguous near-equal
    ``(start, stop)`` slices (empty slices dropped).

    Contiguity matters: a warm-started sweep shard works best when its
    points are neighbors in the sweep, because adjacent bound sets share
    almost all of their active Steiner rows.
    """
    if chunks < 1:
        raise ValueError("chunks must be >= 1")
    chunks = min(chunks, max(1, count))
    base, extra = divmod(count, chunks)
    out: list[tuple[int, int]] = []
    start = 0
    for c in range(chunks):
        stop = start + base + (1 if c < extra else 0)
        if stop > start:
            out.append((start, stop))
        start = stop
    return out


def _solve_sweep_chunk(topo, bounds_chunk, options):
    from repro.ebf.sweep import solve_sweep

    return solve_sweep(topo, bounds_chunk, **dict(options))


def solve_sweep_sharded(
    topo: Any,
    bounds_list: Sequence[Any],
    *,
    jobs: int = 1,
    chunks: int | None = None,
    timeout: float | None = None,
    start_method: str | None = None,
    **options: Any,
) -> list[Any]:
    """Warm-started sweep over one topology, sharded across processes.

    Unlike :func:`solve_many` — which ships every point to whichever
    worker is free — this chunks the sweep into ``chunks`` (default:
    ``jobs``) *contiguous* shards and runs each shard through
    :func:`repro.ebf.solve_sweep` inside one worker, so the
    :class:`~repro.ebf.WarmStart` state stays process-local and every
    point after a shard's first still gets the warm seeding.  Extra
    keywords (``warm=``, ``backend=``, ...) pass through to
    :func:`~repro.ebf.solve_sweep`.

    Returns the :class:`~repro.ebf.LubtSolution` list in sweep order.
    ``jobs=1`` with no timeout runs inline — identical to calling
    ``solve_sweep`` directly.  Raw edge vectors (and costs, at the last
    ulp) can depend on the chunking because warm seeding selects among
    degenerate LP optima; report costs through
    :func:`repro.ebf.canonical_cost` for chunking-invariant output.
    """
    bounds_list = list(bounds_list)
    spans = sweep_chunks(len(bounds_list), chunks if chunks else max(1, jobs))
    shard_results = map_many(
        _solve_sweep_chunk,
        [(topo, bounds_list[a:b], options) for a, b in spans],
        jobs=jobs,
        timeout=timeout,
        start_method=start_method,
    )
    return [sol for shard in shard_results for sol in shard]
