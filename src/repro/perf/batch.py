"""Batch LUBT solving on top of :mod:`repro.perf.pool`.

A :class:`SolveTask` is one independent ``solve_lubt`` call (topology,
bounds, keyword options); :func:`solve_many` fans a list of them across
worker processes.  Task objects travel to workers via pickling under the
spawn start method (fork inherits them for free), so topologies and
bounds must stay picklable — both are plain dataclass-style containers
and are.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.perf.pool import TaskOutcome, run_many


@dataclass(frozen=True)
class SolveTask:
    """One independent LUBT instance: ``solve_lubt(topo, bounds, **options)``."""

    topo: Any
    bounds: Any
    options: Mapping[str, Any] = field(default_factory=dict)


def _solve_task(task: SolveTask):
    from repro.ebf import solve_lubt

    return solve_lubt(task.topo, task.bounds, **dict(task.options))


def solve_many(
    tasks: Sequence[SolveTask],
    *,
    jobs: int = 1,
    timeout: float | None = None,
    start_method: str | None = None,
) -> list[TaskOutcome]:
    """Solve every task; outcomes come back in task order.

    ``outcome.value`` is the :class:`~repro.ebf.LubtSolution` on success;
    ``outcome.unwrap()`` raises :class:`~repro.perf.TaskError` on worker
    failure or timeout.  ``jobs=1`` with no timeout runs inline and is
    bit-for-bit identical to a serial loop of ``solve_lubt`` calls.
    """
    return run_many(
        _solve_task,
        [(t,) for t in tasks],
        jobs=jobs,
        timeout=timeout,
        start_method=start_method,
    )
