"""Chunked batch scheduler over the resident :class:`~repro.perf.WorkerPool`.

:func:`repro.perf.run_many` pays a process start per task and
:func:`~repro.perf.solve_many`'s old journal mode committed in
barrier-synchronized waves of ``jobs`` tasks.  Both costs are invisible
while an LP solve takes seconds — and dominant once the tree backend
makes a per-net solve sub-100ms and a chip-scale CTS run pushes 10k nets
through one command.  The :class:`BatchScheduler` removes them:

* **fork once** — tasks run on a resident pool's workers, shipped over
  already-open pipes instead of fresh processes;
* **chunked dispatch** — many tasks per IPC message, with the chunk size
  auto-tuned from an EWMA of observed per-task seconds so each chunk
  targets a fixed wall-clock slice (big chunks for sub-millisecond
  tasks, chunk size 1 for slow ones);
* **completion-ordered streaming** — an ``on_result`` callback fires for
  every task the moment its reply arrives (workers stream one reply per
  chunk item), so journal appends are per completion and a straggler
  never stalls the other workers' results behind a wave barrier;
* **scoped kills** — a per-task ``timeout`` kills only the offending
  task's worker; the chunk's already-finished items keep their results
  and its not-yet-started survivors are resubmitted automatically.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Sequence

from repro.perf.pool import TaskOutcome, WorkerPool

#: Wall-clock slice one chunk should occupy.  Small enough that the
#: tail of a batch stays load-balanced across workers, large enough to
#: amortize a pickle/send round-trip over many sub-millisecond tasks.
DEFAULT_CHUNK_SECONDS = 0.25

#: Hard ceiling on tasks per chunk, whatever the EWMA says.
DEFAULT_MAX_CHUNK = 64


class BatchScheduler:
    """Run batches of tasks through a resident pool with chunked dispatch.

    One scheduler wraps one :class:`~repro.perf.WorkerPool` and may be
    reused across batches (the EWMA carries over, so a follow-up batch
    of similar tasks starts with a tuned chunk size).  Thread-safety
    matches the pool's: :meth:`run` may be called from any one thread at
    a time.
    """

    def __init__(
        self,
        pool: WorkerPool,
        *,
        chunk_seconds: float = DEFAULT_CHUNK_SECONDS,
        max_chunk: int = DEFAULT_MAX_CHUNK,
        ewma_alpha: float = 0.25,
    ) -> None:
        if chunk_seconds <= 0:
            raise ValueError(f"chunk_seconds must be > 0, got {chunk_seconds}")
        if max_chunk < 1:
            raise ValueError(f"max_chunk must be >= 1, got {max_chunk}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.pool = pool
        self.chunk_seconds = chunk_seconds
        self.max_chunk = max_chunk
        self.ewma_alpha = ewma_alpha
        self._lock = threading.Lock()
        # EWMA of per-task seconds; None until the first completion, so
        # the first chunks are size 1 (probes) rather than a guess.
        self._ewma: float | None = None
        #: Chunks dispatched / tasks completed across this scheduler's
        #: lifetime — ``tasks_done / chunks_dispatched`` is the realized
        #: IPC amortization factor.
        self.chunks_dispatched = 0
        self.tasks_done = 0
        self.resubmitted = 0

    # -- tuning --------------------------------------------------------
    def _observe(self, elapsed: float) -> None:
        with self._lock:
            if self._ewma is None:
                self._ewma = elapsed
            else:
                a = self.ewma_alpha
                self._ewma = a * elapsed + (1.0 - a) * self._ewma

    def chunk_size(self) -> int:
        """Current auto-tuned tasks-per-chunk (1 until the EWMA warms up)."""
        with self._lock:
            ewma = self._ewma
        if ewma is None:
            return 1
        return max(1, min(self.max_chunk,
                          int(self.chunk_seconds / max(ewma, 1e-9))))

    def stats(self) -> dict:
        """Scheduler + pool counters (``ewma_task_seconds`` may be None)."""
        with self._lock:
            ewma = self._ewma
            out = {
                "chunks_dispatched": self.chunks_dispatched,
                "tasks_done": self.tasks_done,
                "resubmitted": self.resubmitted,
                "ewma_task_seconds": ewma,
            }
        out.update(self.pool.stats())
        return out

    # -- running -------------------------------------------------------
    def run(
        self,
        fn: Callable,
        args_list: Sequence[tuple],
        *,
        timeout: float | None = None,
        on_result: Callable[[TaskOutcome], Any] | None = None,
    ) -> list[TaskOutcome]:
        """Run ``fn(*args)`` for every tuple; return ordered outcomes.

        ``on_result(outcome)`` is called once per task in **completion
        order** (from scheduler dispatch threads, serialized by an
        internal lock — callbacks may touch shared state without their
        own locking, but should stay quick).  ``outcome.index`` is the
        submission index.  ``timeout`` is per task; a timed-out task's
        worker is killed and the rest of its chunk resubmitted.
        """
        args_list = list(args_list)
        n = len(args_list)
        results: list[TaskOutcome | None] = [None] * n
        if n == 0:
            return []

        work: deque[int] = deque(range(n))
        state_lock = threading.Lock()
        callback_lock = threading.Lock()
        failure: list[BaseException] = []

        def _record(indices: list[int], chunk_pos: int,
                    outcome: TaskOutcome) -> None:
            i = indices[chunk_pos]
            final = TaskOutcome(i, outcome.ok, outcome.value, outcome.error,
                                outcome.timed_out, outcome.crashed,
                                outcome.elapsed)
            with callback_lock:
                results[i] = final
                self._observe(outcome.elapsed)
                with self._lock:
                    self.tasks_done += 1
                if on_result is not None:
                    on_result(final)

        def _next_chunk() -> list[int]:
            with state_lock:
                if not work or failure:
                    return []
                size = self.chunk_size()
                # Near the tail, shrink chunks so the last tasks spread
                # across all workers instead of queueing behind one.
                remaining = len(work)
                size = min(size, max(1, remaining // self.pool.jobs or 1))
                return [work.popleft() for _ in range(min(size, remaining))]

        def _requeue(indices: list[int], pending: Sequence[int]) -> None:
            with state_lock:
                # Front of the queue: survivors keep their place in line.
                for chunk_pos in reversed(pending):
                    work.appendleft(indices[chunk_pos])
                with self._lock:
                    self.resubmitted += len(pending)

        def _dispatch_loop() -> None:
            while True:
                indices = _next_chunk()
                if not indices:
                    return
                try:
                    chunk = self.pool.submit_chunk(
                        fn,
                        [args_list[i] for i in indices],
                        timeout=timeout,
                        on_item=lambda o, ind=indices: _record(
                            ind, o.index, o
                        ),
                    )
                    with self._lock:
                        self.chunks_dispatched += 1
                except BaseException as exc:  # noqa: BLE001 — re-raised by run()
                    with state_lock:
                        failure.append(exc)
                    return
                if chunk.pending:
                    _requeue(indices, chunk.pending)

        jobs = min(self.pool.jobs, n)
        threads = [
            threading.Thread(target=_dispatch_loop, daemon=True)
            for _ in range(jobs)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if failure:
            raise failure[0]
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]
