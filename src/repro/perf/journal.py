"""Crash-safe checkpoint journal for batch solves.

A chip-scale run pushes 10k+ LUBT solves through one command; a power
cut, OOM kill, or ``kill -9`` at solve 9,741 must not cost the first
9,740.  A :class:`SolveJournal` is an append-only JSONL file: every
completed solve becomes one line keyed by the canonical instance key
(:func:`repro.server.keys.instance_key` — topology hash + quantized
bounds + options), flushed and ``fsync``'d before the batch driver moves
on.  On restart, :func:`~repro.perf.solve_many` and
:func:`~repro.perf.solve_sweep_sharded` load the journal, replay every
completed instance without re-solving it, and solve only the remainder.

Durability and resume semantics:

* Each record is self-contained on one line, written with ``flush`` +
  ``os.fsync`` — a crash can lose at most the line being written.
* :meth:`SolveJournal.load` tolerates exactly that: a torn/truncated
  *final* line is discarded; corruption anywhere earlier raises
  :class:`JournalError` (that file did not come from a crash mid-append,
  and silently skipping records would un-checkpoint completed work).
* Replayed solutions carry the journaled edge lengths, cost, delays,
  and stats bit-for-bit.  Process-local extras that do not survive
  JSON — ``lp``/``lp_result`` handles, ``solve_reports``, ``weights``,
  ``diagnosis`` — come back as ``None``/empty; experiment tables never
  read those, which is why a killed-and-resumed run reproduces an
  uninterrupted run's tables byte for byte (costs are reported through
  :func:`repro.ebf.canonical_cost`, invariant to warm-start chunking).
* ``replayed`` / ``appended`` counters say how much work the journal
  saved vs. performed — the kill-resume tests assert on them.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterator, Mapping

import numpy as np

#: Journal line format version.
JOURNAL_VERSION = 1


class JournalError(RuntimeError):
    """The journal file is unreadable or corrupt beyond a torn tail."""


def solution_to_record(sol: Any) -> dict:
    """The JSON-able payload of one :class:`~repro.ebf.LubtSolution`.

    Stores exactly what experiment tables and batch callers consume:
    edge lengths, cost, delays, and the full :class:`~repro.ebf.SolveStats`.
    The topology and bounds are *not* stored — the instance key already
    pins them, and the resuming caller supplies the same objects.
    """
    st = sol.stats
    return {
        "edge_lengths": [float(v) for v in sol.edge_lengths],
        "cost": float(sol.cost),
        "delays": [float(v) for v in sol.delays],
        "stats": {
            "backend": st.backend,
            "mode": st.mode,
            "rounds": st.rounds,
            "steiner_rows": st.steiner_rows,
            "total_pairs": st.total_pairs,
            "lp_iterations": st.lp_iterations,
            "wall_seconds": st.wall_seconds,
            "lp_fallbacks": st.lp_fallbacks,
            "lp_seconds": st.lp_seconds,
            "round_lp_seconds": list(st.round_lp_seconds),
            "warm_rows": st.warm_rows,
            "embed_seconds": st.embed_seconds,
        },
    }


def solution_from_record(record: Mapping[str, Any], topo: Any, bounds: Any):
    """Rebuild a :class:`~repro.ebf.LubtSolution` from a journal record.

    ``topo``/``bounds`` come from the caller (the key proved they match).
    """
    from repro.ebf.solver import LubtSolution, SolveStats

    st = record["stats"]
    stats = SolveStats(
        backend=st["backend"],
        mode=st["mode"],
        rounds=int(st["rounds"]),
        steiner_rows=int(st["steiner_rows"]),
        total_pairs=int(st["total_pairs"]),
        lp_iterations=int(st["lp_iterations"]),
        wall_seconds=float(st["wall_seconds"]),
        lp_fallbacks=int(st["lp_fallbacks"]),
        lp_seconds=float(st["lp_seconds"]),
        round_lp_seconds=tuple(float(v) for v in st["round_lp_seconds"]),
        warm_rows=int(st["warm_rows"]),
        embed_seconds=float(st["embed_seconds"]),
    )
    return LubtSolution(
        topo,
        bounds,
        np.asarray(record["edge_lengths"], dtype=float),
        float(record["cost"]),
        np.asarray(record["delays"], dtype=float),
        stats,
    )


class SolveJournal:
    """Append-only JSONL checkpoint file, one completed solve per line.

    Line format::

        {"v": 1, "key": "<64-hex instance key>", "result": {...}}

    Usable as a context manager; :meth:`close` fsyncs and releases the
    file handle.  Not safe for concurrent writers — one journal belongs
    to one batch driver process (workers return results to the parent,
    and only the parent appends).
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        self._fh = None
        #: Solves served from the journal instead of being re-run.
        self.replayed = 0
        #: Records written by this process.
        self.appended = 0

    # -- reading -------------------------------------------------------
    def _iter_lines(self) -> Iterator[tuple[int, str, bool]]:
        """Yield ``(lineno, line, is_last)`` for every non-empty line."""
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                raw = fh.read()
        except FileNotFoundError:
            return
        lines = raw.split("\n")
        numbered = [
            (i + 1, line) for i, line in enumerate(lines) if line.strip()
        ]
        for pos, (lineno, line) in enumerate(numbered):
            yield lineno, line, pos == len(numbered) - 1

    def load(self) -> dict[str, dict]:
        """``{instance_key: result_record}`` for every completed solve.

        A later record for the same key wins (harmless — identical keys
        mean indistinguishable instances).  A torn final line (the crash
        artifact the journal exists for) is dropped; any earlier
        malformed line raises :class:`JournalError`.
        """
        done: dict[str, dict] = {}
        for lineno, line, is_last in self._iter_lines():
            try:
                doc = json.loads(line)
                if doc.get("v") != JOURNAL_VERSION:
                    raise ValueError(
                        f"unsupported journal version {doc.get('v')!r}"
                    )
                key, result = doc["key"], doc["result"]
            except (ValueError, KeyError, TypeError, AttributeError) as exc:
                if is_last:
                    break  # torn tail from a crash mid-append
                raise JournalError(
                    f"{self.path}:{lineno}: corrupt journal line "
                    f"({type(exc).__name__}: {exc})"
                ) from exc
            if not isinstance(key, str) or not isinstance(result, dict):
                if is_last:
                    break
                raise JournalError(
                    f"{self.path}:{lineno}: corrupt journal line "
                    f"(bad key/result types)"
                )
            done[key] = result
        return done

    # -- writing -------------------------------------------------------
    def append(self, key: str, result: Mapping[str, Any]) -> None:
        """Durably record one completed solve (flush + fsync)."""
        if self._fh is None:
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        line = json.dumps(
            {"v": JOURNAL_VERSION, "key": key, "result": dict(result)},
            separators=(",", ":"),
        )
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.appended += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SolveJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
