"""Performance layer: process-pool batch solving with hard timeouts.

The experiment tables solve dozens of independent LUBT instances; this
package runs them across worker *processes* (``--jobs N`` on the CLI).
Unlike the thread-based timeouts in :mod:`repro.resilience`, a timed-out
worker here is **killed**, not abandoned — a pathological LP cannot leave
a runaway solve burning CPU (the ROADMAP "process-level solve timeouts"
item).

* :func:`run_many` — generic ordered fan-out of a picklable function
  over argument tuples with per-task kill-on-timeout;
* :func:`solve_many` — batch :func:`repro.ebf.solve_lubt` over
  :class:`SolveTask` instances;
* :func:`solve_sweep_sharded` — warm-started bound sweep chunked into
  contiguous shards, one :class:`~repro.ebf.WarmStart` per worker;
* :class:`WorkerPool` — *resident* workers reused across submissions
  (the :mod:`repro.server` dispatch path), same kill/crash guarantees,
  plus a consecutive-crash cap (:class:`PoolCrashLoopError`) so a
  poison task cannot respawn workers forever;
* :class:`SolveJournal` — crash-safe JSONL checkpoint of completed
  solves keyed by canonical instance key; ``solve_many`` /
  ``solve_sweep_sharded`` take ``journal=`` to resume a killed batch;
* :class:`BatchScheduler` — chunked dispatch over a resident pool with
  EWMA-tuned chunk sizes and completion-ordered result streaming;
* :func:`run_cts` — chip-scale multi-net clock-tree flow: a placement's
  clock nets solved as one batch through the scheduler;
* :class:`TaskOutcome` — per-task result/error/timeout/crash record.

Serial (``jobs=1``, no timeout) execution runs inline in the parent
process and is bit-for-bit identical to calling the function in a loop;
parallel runs execute the same code in workers, so tables rendered from
either path match exactly.
"""

from repro.perf.pool import (
    ChunkResult,
    PoolCrashLoopError,
    TaskError,
    TaskOutcome,
    WorkerPool,
    map_many,
    run_many,
)
from repro.perf.scheduler import (
    DEFAULT_CHUNK_SECONDS,
    DEFAULT_MAX_CHUNK,
    BatchScheduler,
)
from repro.perf.journal import (
    JournalError,
    SolveJournal,
    solution_from_record,
    solution_to_record,
)
from repro.perf.batch import (
    SolveTask,
    solve_many,
    solve_sweep_sharded,
    sweep_chunks,
)
from repro.perf.cts import (
    CtsNetResult,
    CtsReport,
    cts_tasks,
    run_cts,
)

__all__ = [
    "BatchScheduler",
    "ChunkResult",
    "CtsNetResult",
    "CtsReport",
    "cts_tasks",
    "run_cts",
    "DEFAULT_CHUNK_SECONDS",
    "DEFAULT_MAX_CHUNK",
    "JournalError",
    "PoolCrashLoopError",
    "SolveJournal",
    "TaskError",
    "TaskOutcome",
    "WorkerPool",
    "map_many",
    "run_many",
    "SolveTask",
    "solution_from_record",
    "solution_to_record",
    "solve_many",
    "solve_sweep_sharded",
    "sweep_chunks",
]
