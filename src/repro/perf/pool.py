"""A small process pool with hard per-task timeouts.

``multiprocessing.Pool``/``ProcessPoolExecutor`` cannot cancel a running
task — exactly the failure mode that matters for LP solves (a degenerate
model can spin for minutes).  Here every task gets its own worker
process; on timeout the process is killed (SIGKILL) and joined, so the
CPU is actually reclaimed.  Results come back over a per-task pipe and
are returned in submission order.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
from dataclasses import dataclass
from multiprocessing import connection
from typing import Any, Callable, Sequence


class TaskError(RuntimeError):
    """A pooled task failed (worker exception, crash, or timeout)."""


class PoolCrashLoopError(TaskError):
    """Workers crashed ``max_consecutive_crashes`` times in a row.

    A poison task (or a sick machine — OOM killer, bad native lib) that
    kills every worker it touches would otherwise respawn processes
    forever.  The pool stays usable after this raise — the crashed seat
    was already refilled — but the caller is told to stop feeding it the
    same work.  The message names the last failing task.
    """


@dataclass(frozen=True)
class TaskOutcome:
    """Result record for one pooled task, in submission order.

    Failure modes are distinguished: ``timed_out`` means the parent
    killed an overdue worker; ``crashed`` means the worker died *on its
    own* without delivering a payload (OOM kill, interpreter abort,
    ``os._exit``) — its pipe came back EOF.  A worker exception that was
    reported normally is neither.
    """

    index: int
    ok: bool
    value: Any = None
    error: str | None = None
    timed_out: bool = False
    crashed: bool = False
    elapsed: float = 0.0

    def unwrap(self):
        """Return the value, or raise :class:`TaskError` on failure."""
        if self.ok:
            return self.value
        kind = (
            "timed out" if self.timed_out
            else "crashed" if self.crashed
            else "failed"
        )
        raise TaskError(f"task {self.index} {kind}: {self.error}")


@dataclass(frozen=True)
class ChunkResult:
    """Result of :meth:`WorkerPool.submit_chunk`.

    ``outcomes[i]`` is the :class:`TaskOutcome` for chunk item ``i``, or
    ``None`` for a *survivor*: an item the worker never got to because an
    earlier item in the chunk timed out or crashed the worker.  The kill
    is scoped to the offending item only — ``pending`` names the
    survivors so the caller can resubmit exactly those, not the whole
    chunk.
    """

    outcomes: tuple
    pending: tuple[int, ...]

    @property
    def completed(self) -> int:
        return sum(1 for o in self.outcomes if o is not None)


def _args_preview(args: tuple, limit: int = 120) -> str:
    """Truncated repr of a task's arguments for error messages."""
    text = repr(args)
    return text if len(text) <= limit else text[: limit - 3] + "..."


def _worker_main(fn, args, conn_out) -> None:
    try:
        conn_out.send(("ok", fn(*args)))
    except BaseException as exc:  # noqa: BLE001 — boundary to the parent
        try:
            conn_out.send(
                ("err", f"{type(exc).__name__}: {exc}\n"
                        f"{traceback.format_exc(limit=5)}")
            )
        except Exception:  # noqa: BLE001 — parent may already be gone
            pass
    finally:
        conn_out.close()


def _pool_context(start_method: str | None):
    if start_method is not None:
        return mp.get_context(start_method)
    # fork keeps worker startup cheap and avoids any picklability
    # requirement on ``fn`` itself; fall back where it doesn't exist.
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


class _Live:
    __slots__ = ("index", "proc", "conn", "started")

    def __init__(self, index, proc, conn, started):
        self.index = index
        self.proc = proc
        self.conn = conn
        self.started = started


def run_many(
    fn: Callable,
    args_list: Sequence[tuple],
    *,
    jobs: int = 1,
    timeout: float | None = None,
    start_method: str | None = None,
) -> list[TaskOutcome]:
    """Run ``fn(*args)`` for every tuple in ``args_list``; return ordered
    :class:`TaskOutcome` records.

    ``jobs`` bounds concurrent worker processes.  ``timeout`` is a hard
    per-task wall-clock limit: an overdue worker is killed and its
    outcome marked ``timed_out``.  With ``jobs=1`` and no timeout the
    tasks run inline in the calling process (the exact serial path —
    no pickling, no subprocesses), which is what makes serial and
    parallel experiment tables comparable byte for byte.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    tasks = list(enumerate(args_list))
    if jobs == 1 and timeout is None:
        out = []
        for i, args in tasks:
            t0 = time.perf_counter()
            try:
                out.append(TaskOutcome(i, True, fn(*args),
                                       elapsed=time.perf_counter() - t0))
            except Exception as exc:  # noqa: BLE001
                out.append(TaskOutcome(
                    i, False, error=f"{type(exc).__name__}: {exc}",
                    elapsed=time.perf_counter() - t0,
                ))
        return out

    ctx = _pool_context(start_method)
    results: list[TaskOutcome | None] = [None] * len(tasks)
    pending = list(reversed(tasks))
    live: dict[int, _Live] = {}

    def _launch() -> None:
        index, args = pending.pop()
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_worker_main, args=(fn, args, child_conn), daemon=True
        )
        proc.start()
        child_conn.close()  # parent keeps only the read end
        live[index] = _Live(index, proc, parent_conn, time.perf_counter())

    def _finish(lv: _Live) -> None:
        elapsed = time.perf_counter() - lv.started
        crashed = False
        try:
            kind, payload = lv.conn.recv()
        except (EOFError, OSError):
            # The worker died without writing a payload (OOM kill,
            # abort, os._exit): its pipe is ready with EOF.  Join first
            # so exitcode is populated for the message.
            crashed = True
            lv.proc.join()
            kind, payload = "err", (
                f"worker died without a result "
                f"(exit code {lv.proc.exitcode})"
            )
        except Exception as exc:  # noqa: BLE001 — undecodable payload
            # (e.g. unpicklable object written by a dying worker) must
            # become an outcome, not escape and orphan the other workers.
            kind, payload = "err", (
                f"undecodable worker payload: {type(exc).__name__}: {exc}"
            )
        finally:
            lv.conn.close()
        lv.proc.join()
        if kind == "ok":
            results[lv.index] = TaskOutcome(lv.index, True, payload,
                                            elapsed=elapsed)
        else:
            results[lv.index] = TaskOutcome(lv.index, False, error=payload,
                                            crashed=crashed, elapsed=elapsed)
        del live[lv.index]

    def _kill(lv: _Live) -> None:
        elapsed = time.perf_counter() - lv.started
        lv.proc.kill()
        lv.proc.join()
        lv.conn.close()
        results[lv.index] = TaskOutcome(
            lv.index, False, timed_out=True, elapsed=elapsed,
            error=f"exceeded {timeout:g}s wall clock (worker killed)",
        )
        del live[lv.index]

    try:
        while pending or live:
            while pending and len(live) < jobs:
                _launch()
            if timeout is None:
                wait_for = None
            else:
                now = time.perf_counter()
                wait_for = max(
                    0.0,
                    min(lv.started + timeout for lv in live.values()) - now,
                )
            ready = connection.wait(
                [lv.conn for lv in live.values()], timeout=wait_for
            )
            ready_set = set(ready)
            for lv in [lv for lv in live.values() if lv.conn in ready_set]:
                _finish(lv)
            if timeout is not None:
                now = time.perf_counter()
                for lv in [
                    lv for lv in live.values()
                    if now - lv.started >= timeout
                ]:
                    _kill(lv)
    finally:
        # On any parent-side error, reclaim every worker before raising.
        for lv in list(live.values()):
            lv.proc.kill()
            lv.proc.join()
            lv.conn.close()

    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]


def map_many(
    fn: Callable,
    args_list: Sequence[tuple],
    *,
    jobs: int = 1,
    timeout: float | None = None,
    start_method: str | None = None,
) -> list:
    """:func:`run_many`, unwrapped: a list of plain return values.

    With ``jobs=1`` and no timeout this is literally
    ``[fn(*a) for a in args_list]`` — exceptions propagate with their
    original type, which keeps serial experiment drivers byte-identical
    to their pre-pool behavior.  Parallel runs raise :class:`TaskError`
    for the first failed task.
    """
    if jobs == 1 and timeout is None:
        return [fn(*args) for args in args_list]
    outcomes = run_many(
        fn, args_list, jobs=jobs, timeout=timeout, start_method=start_method
    )
    return [o.unwrap() for o in outcomes]


#: First element of a chunk message to a resident worker.  Chunks stream
#: one reply per item (plus a trailing ``("end", n)``) so the parent can
#: journal/forward each completion without waiting for the whole chunk.
_CHUNK_TAG = "__chunk__"


def _run_chunk_items(conn, fn, args_list) -> bool:
    """Run a chunk on a resident worker, streaming per-item replies.

    Each item becomes ``("item", i, "ok"|"err", payload, elapsed)`` the
    moment it finishes; a trailing ``("end", n)`` closes the chunk.
    Returns False when the parent pipe died (the worker should exit).
    """
    for i, args in enumerate(args_list):
        t0 = time.perf_counter()
        try:
            value = fn(*args)
            reply = ("item", i, "ok", value, time.perf_counter() - t0)
        except BaseException as exc:  # noqa: BLE001 — boundary to the parent
            reply = (
                "item", i, "err",
                f"{type(exc).__name__}: {exc}\n"
                f"{traceback.format_exc(limit=5)}",
                time.perf_counter() - t0,
            )
        try:
            conn.send(reply)
        except Exception:  # noqa: BLE001 — parent may already be gone
            return False
    try:
        conn.send(("end", len(args_list)))
    except Exception:  # noqa: BLE001 — parent may already be gone
        return False
    return True


def _resident_worker_main(conn) -> None:
    """Loop of one resident :class:`WorkerPool` worker: receive
    ``(fn, args)`` or ``(_CHUNK_TAG, fn, args_list)``, run, reply —
    until a ``None`` sentinel, EOF, or parent death.

    The explicit parent check matters: sibling workers forked later
    inherit this worker's parent-side pipe end, so if the parent is
    SIGKILLed the pipe never EOFs (the siblings still hold it open) and
    a recv-only loop would orphan every worker forever.
    """
    parent = os.getppid()
    while True:
        try:
            while not conn.poll(1.0):
                if os.getppid() != parent:
                    return  # re-parented: the pool's process is gone
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg is None:
            break
        if msg[0] == _CHUNK_TAG:
            _, fn, args_list = msg
            if not _run_chunk_items(conn, fn, args_list):
                break
            continue
        fn, args = msg
        try:
            conn.send(("ok", fn(*args)))
        except BaseException as exc:  # noqa: BLE001 — boundary to the parent
            try:
                conn.send(
                    ("err", f"{type(exc).__name__}: {exc}\n"
                            f"{traceback.format_exc(limit=5)}")
                )
            except Exception:  # noqa: BLE001 — parent may already be gone
                break
    try:
        conn.close()
    except OSError:
        pass


class _ResidentWorker:
    __slots__ = ("proc", "conn", "tasks_done")

    def __init__(self, ctx):
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_resident_worker_main, args=(child_conn,), daemon=True
        )
        self.proc.start()
        child_conn.close()
        #: Tasks this worker has been handed (submit counts 1, a chunk
        #: counts its length) — drives the pool_reuse counter.
        self.tasks_done = 0

    def stop(self, kill: bool = False) -> None:
        if kill:
            self.proc.kill()
        else:
            try:
                self.conn.send(None)
            except (OSError, ValueError):
                pass
        self.proc.join()
        try:
            self.conn.close()
        except OSError:
            pass


class WorkerPool:
    """Resident worker processes, reused across many submissions.

    :func:`run_many` pays a process start per task — fine for batch
    tables, wasteful for a long-running service answering a stream of
    small requests.  A ``WorkerPool`` keeps ``jobs`` workers alive and
    ships ``(fn, args)`` over their pipes instead.  The hard-kill
    guarantees survive: a task that exceeds ``timeout`` gets its worker
    killed (and replaced), and a worker that dies mid-task surfaces as a
    ``crashed`` outcome with a fresh worker taking its seat — the pool
    itself never becomes poisoned.

    Thread-safe: concurrent :meth:`submit` calls check out distinct
    workers (blocking while all are busy), which is what lets an asyncio
    server fan requests out from executor threads.  ``fn`` and its
    arguments must be picklable even under the fork start method —
    resident workers are forked once, so tasks always travel by pipe.
    """

    def __init__(
        self,
        jobs: int = 2,
        start_method: str | None = None,
        *,
        max_consecutive_crashes: int = 5,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if max_consecutive_crashes < 1:
            raise ValueError(
                f"max_consecutive_crashes must be >= 1, "
                f"got {max_consecutive_crashes}"
            )
        import threading

        self._ctx = _pool_context(start_method)
        self._jobs = jobs
        self._idle: list[_ResidentWorker] = [
            _ResidentWorker(self._ctx) for _ in range(jobs)
        ]
        self._workers: set[_ResidentWorker] = set(self._idle)
        self._free = threading.Semaphore(jobs)
        self._lock = threading.Lock()
        self._closed = False
        self._max_consecutive_crashes = max_consecutive_crashes
        self._consecutive_crashes = 0
        self.tasks_run = 0
        self.workers_replaced = 0
        #: Tasks served by a worker that had already run at least one —
        #: the fork-once payoff.  ``tasks_run - pool_reuse`` is the number
        #: of cold (first-task) dispatches, at most ``jobs`` plus one per
        #: replacement.
        self.pool_reuse = 0

    @property
    def jobs(self) -> int:
        return self._jobs

    def stats(self) -> dict:
        """Counters snapshot: ``jobs``, ``tasks_run``, ``pool_reuse``,
        ``workers_replaced``."""
        with self._lock:
            return {
                "jobs": self._jobs,
                "tasks_run": self.tasks_run,
                "pool_reuse": self.pool_reuse,
                "workers_replaced": self.workers_replaced,
            }

    def submit(
        self, fn: Callable, args: tuple = (), *, timeout: float | None = None
    ) -> TaskOutcome:
        """Run one task on a resident worker; block until it finishes.

        Returns a :class:`TaskOutcome` (index 0).  On timeout the worker
        is killed and replaced; on a worker crash the outcome is marked
        ``crashed`` and the seat is refilled.  ``max_consecutive_crashes``
        crashes in a row (timeouts and reported exceptions don't count;
        any non-crash outcome resets the streak) raise
        :class:`PoolCrashLoopError` *after* refilling the seat, so the
        pool survives its own circuit-break.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        self._free.acquire()
        try:
            with self._lock:
                worker = self._idle.pop()
            reused = worker.tasks_done > 0
            outcome, worker = self._run_on(worker, fn, args, timeout)
            with self._lock:
                self._idle.append(worker)
                self.tasks_run += 1
                if reused:
                    self.pool_reuse += 1
                if outcome.crashed:
                    self._consecutive_crashes += 1
                    streak = self._consecutive_crashes
                else:
                    self._consecutive_crashes = 0
                    streak = 0
            if outcome.crashed and streak >= self._max_consecutive_crashes:
                fn_name = getattr(fn, "__name__", repr(fn))
                raise PoolCrashLoopError(
                    f"workers crashed {streak} times in a row "
                    f"(cap {self._max_consecutive_crashes}); last task: "
                    f"{fn_name}{_args_preview(args)} — {outcome.error}"
                )
            return outcome
        finally:
            self._free.release()

    def _run_on(self, worker, fn, args, timeout):
        started = time.perf_counter()
        try:
            worker.conn.send((fn, args))
        except (OSError, ValueError):
            # The worker died while idle; replace it and retry once.
            worker = self._replace(worker)
            worker.conn.send((fn, args))
        # Dispatch-time accounting: the worker that received the message
        # owns the count (a mid-task replacement starts back at 0/cold).
        worker.tasks_done += 1
        if not worker.conn.poll(timeout):
            worker = self._replace(worker, kill=True)
            return TaskOutcome(
                0, False, timed_out=True,
                elapsed=time.perf_counter() - started,
                error=f"exceeded {timeout:g}s wall clock (worker killed)",
            ), worker
        crashed = False
        try:
            kind, payload = worker.conn.recv()
        except (EOFError, OSError):
            crashed = True
            worker.proc.join()
            kind, payload = "err", (
                f"worker died without a result "
                f"(exit code {worker.proc.exitcode})"
            )
            worker = self._replace(worker)
        except Exception as exc:  # noqa: BLE001 — undecodable payload
            kind, payload = "err", (
                f"undecodable worker payload: {type(exc).__name__}: {exc}"
            )
        elapsed = time.perf_counter() - started
        if kind == "ok":
            return TaskOutcome(0, True, payload, elapsed=elapsed), worker
        return TaskOutcome(
            0, False, error=payload, crashed=crashed, elapsed=elapsed
        ), worker

    def submit_chunk(
        self,
        fn: Callable,
        args_list: Sequence[tuple],
        *,
        timeout: float | None = None,
        on_item: Callable | None = None,
    ) -> ChunkResult:
        """Run a chunk of tasks on *one* resident worker with one IPC send.

        The worker runs the items in order and streams one reply per
        item; ``on_item(outcome)`` (when given) fires from the calling
        thread the moment an item's reply arrives (``outcome.index`` is
        the chunk position) — this is what lets
        a batch driver journal every completion without waiting for the
        chunk, let alone the batch.

        ``timeout`` is **per item**, measured from the previous item's
        reply.  When it expires, only the item the worker is currently
        running is marked ``timed_out`` (the worker is killed and its
        seat refilled); items that already finished keep their outcomes
        and the not-yet-started survivors come back as ``None`` with
        their indices in :attr:`ChunkResult.pending`, so the caller
        resubmits exactly those — not the whole chunk.  A worker crash
        mid-chunk is scoped the same way.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        args_list = list(args_list)
        if not args_list:
            return ChunkResult((), ())
        self._free.acquire()
        try:
            with self._lock:
                worker = self._idle.pop()
            reused = worker.tasks_done > 0
            outcomes, worker, offender_crashed = self._run_chunk_on(
                worker, fn, args_list, timeout, on_item
            )
            completed = sum(1 for o in outcomes if o is not None)
            with self._lock:
                self._idle.append(worker)
                self.tasks_run += completed
                self.pool_reuse += max(0, completed - (0 if reused else 1))
                if offender_crashed:
                    self._consecutive_crashes += 1
                    streak = self._consecutive_crashes
                else:
                    self._consecutive_crashes = 0
                    streak = 0
            if offender_crashed and streak >= self._max_consecutive_crashes:
                fn_name = getattr(fn, "__name__", repr(fn))
                raise PoolCrashLoopError(
                    f"workers crashed {streak} times in a row "
                    f"(cap {self._max_consecutive_crashes}); last task: "
                    f"{fn_name}{_args_preview(args_list[completed - 1])}"
                )
            pending = tuple(
                i for i, o in enumerate(outcomes) if o is None
            )
            return ChunkResult(tuple(outcomes), pending)
        finally:
            self._free.release()

    def _run_chunk_on(self, worker, fn, args_list, timeout, on_item):
        """Stream one chunk through ``worker``; returns
        ``(outcomes, worker, offender_crashed)`` with ``None`` outcomes
        for survivors the worker never started."""
        n = len(args_list)
        outcomes: list[TaskOutcome | None] = [None] * n
        started = time.perf_counter()
        try:
            worker.conn.send((_CHUNK_TAG, fn, args_list))
        except (OSError, ValueError):
            # The worker died while idle; replace it and retry once.
            worker = self._replace(worker)
            worker.conn.send((_CHUNK_TAG, fn, args_list))
        worker.tasks_done += n  # dispatch-time accounting, as in _run_on
        next_item = 0  # first index the worker has not reported yet
        while True:
            if not worker.conn.poll(timeout):
                # The worker is stuck on `next_item` (items run in
                # order); kill it and leave the rest pending.
                worker = self._replace(worker, kill=True)
                outcomes[next_item] = TaskOutcome(
                    next_item, False, timed_out=True,
                    elapsed=timeout if timeout is not None else 0.0,
                    error=f"exceeded {timeout:g}s wall clock (worker "
                          f"killed; {n - next_item - 1} chunk "
                          f"survivor(s) left pending)",
                )
                if on_item is not None:
                    on_item(outcomes[next_item])
                return outcomes, worker, False
            try:
                msg = worker.conn.recv()
            except (EOFError, OSError):
                crashed_elapsed = time.perf_counter() - started
                worker.proc.join()
                outcomes[next_item] = TaskOutcome(
                    next_item, False, crashed=True,
                    elapsed=crashed_elapsed,
                    error=f"worker died without a result (exit code "
                          f"{worker.proc.exitcode}; {n - next_item - 1} "
                          f"chunk survivor(s) left pending)",
                )
                worker = self._replace(worker)
                if on_item is not None:
                    on_item(outcomes[next_item])
                return outcomes, worker, True
            except Exception as exc:  # noqa: BLE001 — undecodable payload:
                # the pipe's framing can no longer be trusted, so the
                # worker is retired and the survivors left pending.
                worker = self._replace(worker, kill=True)
                outcomes[next_item] = TaskOutcome(
                    next_item, False,
                    elapsed=time.perf_counter() - started,
                    error=f"undecodable worker payload: "
                          f"{type(exc).__name__}: {exc}",
                )
                if on_item is not None:
                    on_item(outcomes[next_item])
                return outcomes, worker, False
            if msg[0] == "end":
                break
            _, i, kind, payload, elapsed = msg
            if kind == "ok":
                outcomes[i] = TaskOutcome(i, True, payload, elapsed=elapsed)
            else:
                outcomes[i] = TaskOutcome(
                    i, False, error=payload, elapsed=elapsed
                )
            next_item = i + 1
            if on_item is not None:
                on_item(outcomes[i])
        return outcomes, worker, False

    def imap_unordered(
        self,
        fn: Callable,
        args_list: Sequence[tuple],
        *,
        timeout: float | None = None,
    ):
        """Yield :class:`TaskOutcome` records in **completion order**.

        ``outcome.index`` is the submission index, so callers can match
        results to inputs while still acting on each completion as it
        lands (journal appends, progress, early aborts).  Abandoning the
        generator early blocks until the in-flight submissions finish.
        """
        import queue as queue_mod
        from concurrent.futures import ThreadPoolExecutor

        args_list = list(args_list)
        done: queue_mod.Queue = queue_mod.Queue()

        def _one(i: int, args: tuple) -> None:
            try:
                o = self.submit(fn, args, timeout=timeout)
                done.put(TaskOutcome(i, o.ok, o.value, o.error,
                                     o.timed_out, o.crashed, o.elapsed))
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                done.put(exc)

        tpe = ThreadPoolExecutor(max_workers=self._jobs)
        try:
            for i, args in enumerate(args_list):
                tpe.submit(_one, i, args)
            for _ in range(len(args_list)):
                item = done.get()
                if isinstance(item, BaseException):
                    raise item
                yield item
        finally:
            tpe.shutdown(wait=True)

    def _replace(self, worker, kill: bool = False) -> _ResidentWorker:
        worker.stop(kill=kill)
        fresh = _ResidentWorker(self._ctx)
        with self._lock:
            self._workers.discard(worker)
            self._workers.add(fresh)
            self.workers_replaced += 1
        return fresh

    def worker_processes(self) -> list:
        """Live worker :class:`multiprocessing.Process` handles (busy and
        idle) — the chaos harness kills these to exercise crash paths."""
        with self._lock:
            return [w.proc for w in self._workers]

    def run_many(
        self,
        fn: Callable,
        args_list: Sequence[tuple],
        *,
        timeout: float | None = None,
    ) -> list[TaskOutcome]:
        """Fan ``args_list`` across the resident workers (ordered)."""
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=self._jobs) as tpe:
            futs = [
                tpe.submit(self.submit, fn, args, timeout=timeout)
                for args in args_list
            ]
            out = []
            for i, f in enumerate(futs):
                o = f.result()
                out.append(
                    TaskOutcome(i, o.ok, o.value, o.error, o.timed_out,
                                o.crashed, o.elapsed)
                )
            return out

    def close(self) -> None:
        """Stop every worker (idle ones get the sentinel, gracefully)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers, self._idle = self._idle, []
            self._workers.difference_update(workers)
        for w in workers:
            w.stop()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
