"""A small process pool with hard per-task timeouts.

``multiprocessing.Pool``/``ProcessPoolExecutor`` cannot cancel a running
task — exactly the failure mode that matters for LP solves (a degenerate
model can spin for minutes).  Here every task gets its own worker
process; on timeout the process is killed (SIGKILL) and joined, so the
CPU is actually reclaimed.  Results come back over a per-task pipe and
are returned in submission order.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from dataclasses import dataclass
from multiprocessing import connection
from typing import Any, Callable, Sequence


class TaskError(RuntimeError):
    """A pooled task failed (worker exception, crash, or timeout)."""


@dataclass(frozen=True)
class TaskOutcome:
    """Result record for one pooled task, in submission order."""

    index: int
    ok: bool
    value: Any = None
    error: str | None = None
    timed_out: bool = False
    elapsed: float = 0.0

    def unwrap(self):
        """Return the value, or raise :class:`TaskError` on failure."""
        if self.ok:
            return self.value
        kind = "timed out" if self.timed_out else "failed"
        raise TaskError(f"task {self.index} {kind}: {self.error}")


def _worker_main(fn, args, conn_out) -> None:
    try:
        conn_out.send(("ok", fn(*args)))
    except BaseException as exc:  # noqa: BLE001 — boundary to the parent
        try:
            conn_out.send(
                ("err", f"{type(exc).__name__}: {exc}\n"
                        f"{traceback.format_exc(limit=5)}")
            )
        except Exception:  # noqa: BLE001 — parent may already be gone
            pass
    finally:
        conn_out.close()


def _pool_context(start_method: str | None):
    if start_method is not None:
        return mp.get_context(start_method)
    # fork keeps worker startup cheap and avoids any picklability
    # requirement on ``fn`` itself; fall back where it doesn't exist.
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


class _Live:
    __slots__ = ("index", "proc", "conn", "started")

    def __init__(self, index, proc, conn, started):
        self.index = index
        self.proc = proc
        self.conn = conn
        self.started = started


def run_many(
    fn: Callable,
    args_list: Sequence[tuple],
    *,
    jobs: int = 1,
    timeout: float | None = None,
    start_method: str | None = None,
) -> list[TaskOutcome]:
    """Run ``fn(*args)`` for every tuple in ``args_list``; return ordered
    :class:`TaskOutcome` records.

    ``jobs`` bounds concurrent worker processes.  ``timeout`` is a hard
    per-task wall-clock limit: an overdue worker is killed and its
    outcome marked ``timed_out``.  With ``jobs=1`` and no timeout the
    tasks run inline in the calling process (the exact serial path —
    no pickling, no subprocesses), which is what makes serial and
    parallel experiment tables comparable byte for byte.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    tasks = list(enumerate(args_list))
    if jobs == 1 and timeout is None:
        out = []
        for i, args in tasks:
            t0 = time.perf_counter()
            try:
                out.append(TaskOutcome(i, True, fn(*args),
                                       elapsed=time.perf_counter() - t0))
            except Exception as exc:  # noqa: BLE001
                out.append(TaskOutcome(
                    i, False, error=f"{type(exc).__name__}: {exc}",
                    elapsed=time.perf_counter() - t0,
                ))
        return out

    ctx = _pool_context(start_method)
    results: list[TaskOutcome | None] = [None] * len(tasks)
    pending = list(reversed(tasks))
    live: dict[int, _Live] = {}

    def _launch() -> None:
        index, args = pending.pop()
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_worker_main, args=(fn, args, child_conn), daemon=True
        )
        proc.start()
        child_conn.close()  # parent keeps only the read end
        live[index] = _Live(index, proc, parent_conn, time.perf_counter())

    def _finish(lv: _Live) -> None:
        elapsed = time.perf_counter() - lv.started
        try:
            kind, payload = lv.conn.recv()
        except (EOFError, OSError):
            kind, payload = "err", (
                f"worker died without a result "
                f"(exit code {lv.proc.exitcode})"
            )
        lv.conn.close()
        lv.proc.join()
        if kind == "ok":
            results[lv.index] = TaskOutcome(lv.index, True, payload,
                                            elapsed=elapsed)
        else:
            results[lv.index] = TaskOutcome(lv.index, False, error=payload,
                                            elapsed=elapsed)
        del live[lv.index]

    def _kill(lv: _Live) -> None:
        elapsed = time.perf_counter() - lv.started
        lv.proc.kill()
        lv.proc.join()
        lv.conn.close()
        results[lv.index] = TaskOutcome(
            lv.index, False, timed_out=True, elapsed=elapsed,
            error=f"exceeded {timeout:g}s wall clock (worker killed)",
        )
        del live[lv.index]

    try:
        while pending or live:
            while pending and len(live) < jobs:
                _launch()
            if timeout is None:
                wait_for = None
            else:
                now = time.perf_counter()
                wait_for = max(
                    0.0,
                    min(lv.started + timeout for lv in live.values()) - now,
                )
            ready = connection.wait(
                [lv.conn for lv in live.values()], timeout=wait_for
            )
            ready_set = set(ready)
            for lv in [lv for lv in live.values() if lv.conn in ready_set]:
                _finish(lv)
            if timeout is not None:
                now = time.perf_counter()
                for lv in [
                    lv for lv in live.values()
                    if now - lv.started >= timeout
                ]:
                    _kill(lv)
    finally:
        # On any parent-side error, reclaim every worker before raising.
        for lv in list(live.values()):
            lv.proc.kill()
            lv.proc.join()
            lv.conn.close()

    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]


def map_many(
    fn: Callable,
    args_list: Sequence[tuple],
    *,
    jobs: int = 1,
    timeout: float | None = None,
    start_method: str | None = None,
) -> list:
    """:func:`run_many`, unwrapped: a list of plain return values.

    With ``jobs=1`` and no timeout this is literally
    ``[fn(*a) for a in args_list]`` — exceptions propagate with their
    original type, which keeps serial experiment drivers byte-identical
    to their pre-pool behavior.  Parallel runs raise :class:`TaskError`
    for the first failed task.
    """
    if jobs == 1 and timeout is None:
        return [fn(*args) for args in args_list]
    outcomes = run_many(
        fn, args_list, jobs=jobs, timeout=timeout, start_method=start_method
    )
    return [o.unwrap() for o in outcomes]
