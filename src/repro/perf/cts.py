"""Chip-scale CTS driver: one placement → thousands of LUBT solves.

The multi-net clock-tree flow: parse a placement, group its flops into
clock nets, build a per-net topology (H-tree / bipartition /
nearest-neighbor by size), attach a per-net delay window normalized to
the net's own radius, and push every net through the chunked
:class:`~repro.perf.BatchScheduler` on one resident worker pool — with
optional crash-safe journal/resume, exactly like the experiment tables.

This is the throughput stress test of the whole perf stack: at 10k nets
the per-net solve is milliseconds, so nets/second is decided by
dispatch overhead, which is what the scheduler's fork-once chunked
design exists to remove.  :func:`run_cts` reports it directly
(``nets_per_second``, per-net latency percentiles, scheduler counters).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro.data.placement import (
    ClockNet,
    Placement,
    extract_clock_nets,
    parse_placement_map,
)
from repro.perf.batch import SolveTask, solve_many
from repro.perf.journal import SolveJournal
from repro.perf.pool import TaskOutcome, WorkerPool
from repro.perf.scheduler import DEFAULT_CHUNK_SECONDS, DEFAULT_MAX_CHUNK

#: Default per-net delay window, as multiples of the net radius (the
#: Tables 1-3 convention: sinks no closer than 0.8x and no farther than
#: 1.2x the farthest sink's distance).
DEFAULT_LOWER = 0.8
DEFAULT_UPPER = 1.2


@dataclass(frozen=True)
class CtsNetResult:
    """Outcome of one net's solve."""

    name: str
    num_sinks: int
    ok: bool
    cost: float | None
    seconds: float
    error: str | None = None
    timed_out: bool = False


@dataclass(frozen=True)
class CtsReport:
    """Aggregate result of a CTS run."""

    nets: int
    solved: int
    failed: int
    total_sinks: int
    wall_seconds: float
    nets_per_second: float
    p50_seconds: float
    p99_seconds: float
    total_cost: float
    results: tuple[CtsNetResult, ...]
    scheduler: Mapping[str, Any] = field(default_factory=dict)
    replayed: int = 0
    appended: int = 0

    @property
    def ok(self) -> bool:
        return self.failed == 0

    def summary(self) -> str:
        lines = [
            f"CTS: {self.solved}/{self.nets} nets solved "
            f"({self.total_sinks} sinks) in {self.wall_seconds:.2f}s "
            f"= {self.nets_per_second:,.1f} nets/s",
            f"per-net latency: p50 {1e3 * self.p50_seconds:.2f}ms, "
            f"p99 {1e3 * self.p99_seconds:.2f}ms; "
            f"total wirelength {self.total_cost:,.1f}",
        ]
        if self.failed:
            worst = [r.name for r in self.results if not r.ok][:5]
            lines.append(
                f"FAILED nets: {self.failed} (first: {', '.join(worst)})"
            )
        if self.replayed or self.appended:
            lines.append(
                f"journal: {self.replayed} replayed, "
                f"{self.appended} appended"
            )
        if self.scheduler:
            s = self.scheduler
            if s.get("chunks_dispatched"):
                lines.append(
                    f"scheduler: {s['tasks_done']} tasks in "
                    f"{s['chunks_dispatched']} chunks "
                    f"(pool reuse {s.get('pool_reuse', 0)}, "
                    f"{s.get('workers_replaced', 0)} workers replaced)"
                )
        return "\n".join(lines)


def cts_tasks(
    placement: Placement | str | Path,
    *,
    topology: str = "auto",
    lower: float = DEFAULT_LOWER,
    upper: float = DEFAULT_UPPER,
    nets: int | None = None,
    max_sinks_per_net: int | None = None,
    solve_options: Mapping[str, Any] | None = None,
) -> list[tuple[ClockNet, SolveTask]]:
    """Turn a placement into per-net :class:`~repro.perf.SolveTask` s.

    Each net gets its own topology (``topology`` as in
    :func:`repro.topology.build_net_topology`) and a delay window of
    ``[lower, upper]`` x that net's radius — per-net bounds, since a
    2mm block net and a 200um leaf net live at different scales.
    ``nets`` caps how many nets are taken (file order, the natural
    "first N nets of the design" prefix); ``max_sinks_per_net`` splits
    oversize groups before building.  Single-sink nets are skipped — a
    one-sink net has no tree to optimize.  ``solve_options`` pass
    through to every net's ``solve_lubt`` call.
    """
    from repro.geometry import manhattan_radius_from
    from repro.ebf import DelayBounds
    from repro.topology import build_net_topology

    if isinstance(placement, (str, Path)):
        placement = parse_placement_map(placement)
    all_nets = extract_clock_nets(placement, max_sinks=max_sinks_per_net)
    if nets is not None:
        all_nets = all_nets[:nets]
    options = dict(solve_options or {})
    out: list[tuple[ClockNet, SolveTask]] = []
    for net in all_nets:
        if net.num_sinks < 2:
            continue
        sinks = list(net.sinks)
        topo = build_net_topology(sinks, net.source, kind=topology)
        radius = manhattan_radius_from(net.source, sinks)
        bounds = DelayBounds.uniform(
            len(sinks), lower * radius, upper * radius
        )
        out.append((net, SolveTask(topo, bounds, options)))
    return out


def run_cts(
    placement: Placement | str | Path,
    *,
    jobs: int = 1,
    timeout: float | None = None,
    journal: SolveJournal | None = None,
    topology: str = "auto",
    lower: float = DEFAULT_LOWER,
    upper: float = DEFAULT_UPPER,
    nets: int | None = None,
    max_sinks_per_net: int | None = None,
    pool: WorkerPool | None = None,
    chunk_seconds: float = DEFAULT_CHUNK_SECONDS,
    max_chunk: int = DEFAULT_MAX_CHUNK,
    solve_options: Mapping[str, Any] | None = None,
    on_net: Callable[[CtsNetResult], Any] | None = None,
    tasks: Sequence[tuple[ClockNet, SolveTask]] | None = None,
) -> CtsReport:
    """Solve every clock net of a placement; return a :class:`CtsReport`.

    ``jobs``/``timeout``/``journal``/``pool``/``chunk_seconds`` thread
    straight into :func:`repro.perf.solve_many` — the batch runs on a
    resident pool with chunked dispatch, per-completion journal appends,
    and timeout kills scoped to the offending net.  ``on_net`` fires per
    net in completion order.  ``jobs=1`` (no timeout/pool) runs inline
    serially; per-net costs are bit-identical between the two paths.

    ``tasks`` (from :func:`cts_tasks`) skips re-extraction when the
    caller already built the task list — e.g. to time workload prep and
    solve phases separately, or to solve one list under several
    schedules.
    """
    pairs = list(tasks) if tasks is not None else cts_tasks(
        placement,
        topology=topology,
        lower=lower,
        upper=upper,
        nets=nets,
        max_sinks_per_net=max_sinks_per_net,
        solve_options=solve_options,
    )
    net_results: list[CtsNetResult | None] = [None] * len(pairs)

    def _on_result(o: TaskOutcome) -> None:
        net = pairs[o.index][0]
        r = CtsNetResult(
            net.name,
            net.num_sinks,
            o.ok,
            float(o.value.cost) if o.ok else None,
            o.elapsed,
            error=o.error,
            timed_out=o.timed_out,
        )
        net_results[o.index] = r
        if on_net is not None:
            on_net(r)

    t0 = time.perf_counter()
    replayed0 = journal.replayed if journal is not None else 0
    appended0 = journal.appended if journal is not None else 0
    outcomes = solve_many(
        [t for _, t in pairs],
        jobs=jobs,
        timeout=timeout,
        journal=journal,
        pool=pool,
        chunk_seconds=chunk_seconds,
        max_chunk=max_chunk,
        on_result=_on_result,
    )
    wall = time.perf_counter() - t0

    assert all(r is not None for r in net_results)
    results: list[CtsNetResult] = net_results  # type: ignore[assignment]
    solved = sum(1 for r in results if r.ok)
    seconds = sorted(r.seconds for r in results) or [0.0]

    def _pct(q: float) -> float:
        if not seconds:
            return 0.0
        k = min(len(seconds) - 1, max(0, int(round(q * (len(seconds) - 1)))))
        return seconds[k]

    scheduler_stats: dict[str, Any] = {}
    if pool is not None:
        scheduler_stats = dict(pool.stats())
    if not outcomes:
        wall = max(wall, 1e-12)
    return CtsReport(
        nets=len(pairs),
        solved=solved,
        failed=len(pairs) - solved,
        total_sinks=sum(r.num_sinks for r in results),
        wall_seconds=wall,
        nets_per_second=solved / max(wall, 1e-12),
        p50_seconds=_pct(0.50),
        p99_seconds=_pct(0.99),
        total_cost=sum(r.cost for r in results if r.ok and r.cost),
        results=tuple(results),
        scheduler=scheduler_stats,
        replayed=(journal.replayed - replayed0) if journal else 0,
        appended=(journal.appended - appended0) if journal else 0,
    )
