"""Pre-solve static verification of (topology, bounds, LP) instances.

A malformed instance — NaN coefficients, inverted ``l_i > u_i`` windows,
a cyclic parents array — used to surface only as a cryptic backend
failure deep inside :func:`repro.ebf.solve_lubt`.  This package checks
the inputs *before* any solve time is spent and reports what it finds as
typed :class:`~repro.check.diagnostics.Diagnostic` records with stable
codes (``LP001 nan-coefficient``, ``TP003 unreachable-sink``,
``BD005 bounds-below-manhattan-floor``, ...).

Division of labor with :mod:`repro.resilience`: ``check`` is
*pre-solve and static* — it never runs an LP; ``diagnose_infeasibility``
is *post-solve and elastic* — it re-solves with slack variables to
explain an infeasibility the static layer cannot rule out.  See
docs/STATIC_ANALYSIS.md for the full code catalogue.

Entry points::

    result = check_instance(topo, bounds)        # pre-build
    result = check_instance(topo, bounds, lp=lp) # post-build, pre-solve
    result.ok            # no error-severity findings
    result.summary()     # human report
    solve_lubt(topo, bounds, validate="strict")  # raise on any error
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.check.bounds_checks import check_bounds
from repro.check.diagnostics import (
    CODES,
    Diagnostic,
    DiagnosticWarning,
    Severity,
    collect,
    emit,
)
from repro.check.lp_checks import check_lp
from repro.check.scaling import ScalingAdvice, check_scaling, scaling_advice
from repro.check.topology_checks import check_parents, check_topology

__all__ = [
    "CODES",
    "CheckResult",
    "Diagnostic",
    "DiagnosticWarning",
    "InstanceCheckError",
    "ScalingAdvice",
    "Severity",
    "check_bounds",
    "check_instance",
    "check_lp",
    "check_parents",
    "check_scaling",
    "check_topology",
    "collect",
    "emit",
    "scaling_advice",
]


class InstanceCheckError(ValueError):
    """Raised by strict validation when an instance has error findings."""

    def __init__(self, result: "CheckResult", context: str = "") -> None:
        head = context or "instance failed static verification"
        super().__init__(f"{head}\n{result.summary(max_lines=20)}")
        self.result = result


@dataclass(frozen=True)
class CheckResult:
    """The outcome of one static-verification pass."""

    diagnostics: tuple[Diagnostic, ...]

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(
            d for d in self.diagnostics if d.severity is Severity.WARNING
        )

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.INFO)

    @property
    def ok(self) -> bool:
        """True when there are no *error* findings (warnings allowed)."""
        return not self.errors

    def codes(self) -> tuple[str, ...]:
        return tuple(d.code for d in self.diagnostics)

    def counts(self) -> dict[str, int]:
        return {
            "error": len(self.errors),
            "warning": len(self.warnings),
            "info": len(self.infos),
        }

    def summary(self, max_lines: int | None = None) -> str:
        """Human-readable report, most severe findings first.

        INFO findings are purely advisory (Severity docstring), so a
        result with only infos still reports "clean" — with the
        advisory notes listed underneath.
        """
        if not self.diagnostics:
            return "check: clean (no findings)"
        ordered = sorted(
            self.diagnostics,
            key=lambda d: (d.severity.rank, d.code, d.locus),  # type: ignore[union-attr]
        )
        shown = ordered if max_lines is None else ordered[:max_lines]
        lines = [d.render() for d in shown]
        if max_lines is not None and len(ordered) > max_lines:
            lines.append(f"... and {len(ordered) - max_lines} more")
        c = self.counts()
        if not self.errors and not self.warnings:
            lines.append(f"check: clean ({c['info']} advisory note(s))")
        else:
            lines.append(
                f"check: {c['error']} error(s), {c['warning']} warning(s), "
                f"{c['info']} info"
            )
        return "\n".join(lines)

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "counts": self.counts(),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def raise_if_errors(self, context: str = "") -> "CheckResult":
        if not self.ok:
            raise InstanceCheckError(self, context)
        return self


def check_instance(
    topo: Any = None,
    bounds: Any = None,
    lp: Any = None,
    *,
    parents: Sequence[int | None] | None = None,
    num_sinks: int | None = None,
    geometric_floor: bool = True,
) -> CheckResult:
    """Run every applicable static check over the pieces provided.

    Any of ``topo`` (a :class:`~repro.topology.Topology`), ``bounds``
    (a :class:`~repro.ebf.DelayBounds`), ``lp`` (a
    :class:`~repro.lp.LinearProgram`) and ``parents`` (a raw parents
    array, for breakage a constructed ``Topology`` refuses to represent)
    may be given; checks needing an absent piece are skipped.
    ``geometric_floor=False`` disables ``BD005`` — mirror of the
    solver's ``check_bounds=False``.
    """
    found: list[Diagnostic] = []
    if parents is not None:
        found.extend(check_parents(parents, num_sinks=num_sinks))
    if topo is not None:
        found.extend(check_topology(topo))
    if bounds is not None:
        found.extend(
            check_bounds(bounds, topo, geometric_floor=geometric_floor)
        )
    if lp is not None:
        found.extend(check_lp(lp))
    return CheckResult(tuple(found))
