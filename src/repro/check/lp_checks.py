"""LP-level checks (``LP0xx``): well-formedness of a :class:`LinearProgram`.

These read the model's columnar row buffers directly — the checker is a
privileged friend of the model layer, and walking the raw buffers keeps
the pass O(nnz) with no per-row tuple construction.
"""

from __future__ import annotations

import math

import numpy as np

from repro.check.diagnostics import Diagnostic
from repro.check.scaling import check_scaling
from repro.lp.model import LinearProgram, Sense

#: Unsatisfiable-empty-row tolerance: an empty row with |rhs| below this
#: is treated as trivially satisfied rather than infeasible.
_EMPTY_ROW_TOL = 1e-12


def _row_locus(lp: LinearProgram, i: int) -> str:
    name = lp.row_name(i)
    return f"row {i} {name!r}" if name else f"row {i}"


def check_lp(lp: LinearProgram) -> list[Diagnostic]:
    """Run every ``LP0xx`` check; returns diagnostics (possibly empty)."""
    out: list[Diagnostic] = []
    out.extend(_check_columns(lp))
    out.extend(_check_rows(lp))
    out.extend(_check_redundancy(lp))
    out.extend(_check_tree_meta(lp))
    out.extend(check_scaling(lp))
    return out


def _check_tree_meta(lp: LinearProgram) -> list[Diagnostic]:
    """Tree-structure visibility (``LP013``/``LP014``).

    Models stamped by ``build_ebf_lp`` carry a :class:`TreeLpMeta` whose
    ``covered_rows`` watermark certifies every row belongs to the family
    the collapsed tree formulation implies.  A current watermark means
    ``backend="tree"`` applies (advisory LP013); a stale one means some
    producer appended rows without advancing it, so the tree backend
    will decline the model (LP014).
    """
    meta = getattr(lp, "tree_meta", None)
    if meta is None:
        return []
    covered = int(meta.covered_rows)
    if covered == lp.num_constraints:
        return [
            Diagnostic(
                "LP013",
                f"tree metadata covers all {covered} rows "
                f"({int(meta.num_sinks)} sinks); backend=\"tree\" applies",
            )
        ]
    return [
        Diagnostic(
            "LP014",
            f"{lp.num_constraints - covered} row(s) appended past the "
            f"coverage watermark ({covered}/{lp.num_constraints}); "
            "backend=\"tree\" will decline this model",
        )
    ]


def _check_columns(lp: LinearProgram) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    costs = lp.costs
    lb, ub = lp.lower_bounds, lp.upper_bounds
    for j in np.nonzero(~np.isfinite(costs))[0]:
        out.append(
            Diagnostic(
                "LP002",
                f"objective coefficient is {float(costs[j])!r}",
                locus=f"col {j} {lp.variable_name(int(j))!r}",
            )
        )
    bad = np.isnan(lb) | np.isnan(ub) | (lb > ub)
    for j in np.nonzero(bad)[0]:
        out.append(
            Diagnostic(
                "LP004",
                f"variable bounds [{float(lb[j])!r}, {float(ub[j])!r}] "
                "are inverted or NaN",
                locus=f"col {j} {lp.variable_name(int(j))!r}",
            )
        )
    return out


def _check_rows(lp: LinearProgram) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    m = lp.num_constraints
    if m == 0:
        return out
    data = np.asarray(lp._row_data, dtype=np.float64)
    ptr = np.asarray(lp._row_ptr, dtype=np.int64)
    rhs = np.asarray(lp._row_rhs, dtype=np.float64)

    # NaN coefficients, reported per offending row.
    nan_elems = np.nonzero(np.isnan(data))[0]
    if len(nan_elems):
        rows = np.unique(np.searchsorted(ptr, nan_elems, side="right") - 1)
        for i in rows:
            out.append(
                Diagnostic(
                    "LP001",
                    "row contains NaN coefficient(s)",
                    locus=_row_locus(lp, int(i)),
                )
            )

    for i in np.nonzero(~np.isfinite(rhs))[0]:
        out.append(
            Diagnostic(
                "LP003",
                f"right-hand side is {float(rhs[i])!r}",
                locus=_row_locus(lp, int(i)),
            )
        )

    lens = np.diff(ptr)
    for i in np.nonzero(lens == 0)[0]:
        i = int(i)
        sense = lp.row_sense(i)
        b = float(rhs[i])
        if not math.isfinite(b):
            continue  # already reported as LP003
        infeasible = (
            (sense is Sense.GE and b > _EMPTY_ROW_TOL)
            or (sense is Sense.LE and b < -_EMPTY_ROW_TOL)
            or (sense is Sense.EQ and abs(b) > _EMPTY_ROW_TOL)
        )
        if infeasible:
            out.append(
                Diagnostic(
                    "LP005",
                    f"empty row demands {sense.value} {b:g}",
                    locus=_row_locus(lp, i),
                )
            )
        else:
            out.append(
                Diagnostic(
                    "LP011",
                    "row has no coefficients and is trivially satisfied",
                    locus=_row_locus(lp, i),
                )
            )
    return out


def _check_redundancy(lp: LinearProgram) -> list[Diagnostic]:
    """Duplicate (``LP010``) and dominated GE (``LP012``) rows.

    Rows are grouped by an exact signature of their coefficient pattern
    and sense; within a group of ``>=`` rows only the largest rhs binds,
    so every other row is dominated.  Exact (bitwise) equality is the
    right notion here: the builders produce identical floats for
    identical pairs, and near-duplicates are legitimately distinct rows.
    """
    out: list[Diagnostic] = []
    groups: dict[tuple, list[int]] = {}
    for i in range(lp.num_constraints):
        a, b = lp._row_ptr[i], lp._row_ptr[i + 1]
        sig = (
            lp.row_sense(i),
            tuple(lp._row_cols[a:b]),
            tuple(lp._row_data[a:b]),
        )
        groups.setdefault(sig, []).append(i)

    for (sense, cols, _), rows in groups.items():
        if len(rows) < 2 or not cols:
            continue
        by_rhs: dict[float, int] = {}
        for i in rows:
            b = lp._row_rhs[i]
            if b in by_rhs:
                out.append(
                    Diagnostic(
                        "LP010",
                        f"identical to {_row_locus(lp, by_rhs[b])}",
                        locus=_row_locus(lp, i),
                    )
                )
            else:
                by_rhs[b] = i
        if sense is Sense.GE and len(by_rhs) > 1:
            binding_rhs = max(by_rhs)
            binding = by_rhs[binding_rhs]
            for b, i in sorted(by_rhs.items()):
                if i == binding:
                    continue
                out.append(
                    Diagnostic(
                        "LP012",
                        f"implied by {_row_locus(lp, binding)} "
                        f"(rhs {b:g} <= {binding_rhs:g})",
                        locus=_row_locus(lp, i),
                    )
                )
    return out
