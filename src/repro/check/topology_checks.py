"""Topology-level checks (``TP0xx``).

Two entry points, because :class:`~repro.topology.Topology` refuses to
construct the worst breakages (cycles, orphans):

* :func:`check_parents` works on a *raw* parents array and finds the
  structural errors — cycles, orphan nodes, unreachable sinks,
  self-parents — before a ``Topology`` is ever built;
* :func:`check_topology` works on a constructed instance and finds the
  softer problems — dangling or pass-through Steiner points, duplicate
  or non-finite sink locations.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.check.diagnostics import Diagnostic
from repro.topology.tree import Topology

#: Per-node reachability states for the raw-parents walk.
_UNKNOWN, _OK, _BAD = 0, 1, 2


def check_parents(
    parents: Sequence[int | None], num_sinks: int | None = None
) -> list[Diagnostic]:
    """Structural checks on a raw parents array (root is node 0)."""
    out: list[Diagnostic] = []
    n = len(parents)
    if n == 0:
        return [Diagnostic("TP002", "empty parents array", locus="node 0")]

    def kindof(i: int) -> str:
        if i == 0:
            return "root"
        if num_sinks is not None and i <= num_sinks:
            return "sink"
        return "node" if num_sinks is None else "steiner"

    if parents[0] is not None:
        out.append(
            Diagnostic(
                "TP001",
                f"root lists parent {parents[0]!r}; node 0 must be "
                "parentless",
                locus="node 0",
            )
        )

    state = [_UNKNOWN] * n
    state[0] = _OK
    for start in range(1, n):
        if state[start] != _UNKNOWN:
            continue
        path: list[int] = []
        on_path: set[int] = set()
        i = start
        verdict = _OK
        while True:
            if state[i] != _UNKNOWN:
                verdict = state[i]
                break
            if i in on_path:
                # Closed a cycle: report it once, through its smallest node.
                cycle = path[path.index(i):]
                out.append(
                    Diagnostic(
                        "TP001",
                        "parent chain cycles through nodes "
                        f"{sorted(cycle)}",
                        locus=f"node {min(cycle)}",
                    )
                )
                verdict = _BAD
                break
            path.append(i)
            on_path.add(i)
            p = parents[i]
            if p == i:
                out.append(
                    Diagnostic(
                        "TP004", "node is its own parent", locus=f"node {i}"
                    )
                )
                verdict = _BAD
                break
            if p is None or not (0 <= p < n):
                out.append(
                    Diagnostic(
                        "TP002",
                        f"node has invalid parent {p!r}",
                        locus=f"node {i}",
                    )
                )
                verdict = _BAD
                break
            i = p
        for j in path:
            state[j] = verdict

    for i in range(1, n):
        if state[i] == _BAD:
            k = kindof(i)
            if k == "sink":
                out.append(
                    Diagnostic(
                        "TP003",
                        "sink cannot reach the root",
                        locus=f"sink {i}",
                    )
                )
            else:
                out.append(
                    Diagnostic(
                        "TP002",
                        f"{k} cannot reach the root",
                        locus=f"node {i}",
                    )
                )
    return out


def check_topology(topo: Topology) -> list[Diagnostic]:
    """Run every ``TP0xx`` check a constructed topology can still fail."""
    out: list[Diagnostic] = []

    src = topo.source_location
    if src is not None and not (
        math.isfinite(src.x) and math.isfinite(src.y)
    ):
        out.append(
            Diagnostic(
                "TP008",
                f"source location ({src.x!r}, {src.y!r}) is not finite",
                locus="node 0",
            )
        )

    seen_at: dict[tuple[float, float], int] = {}
    for i in topo.sink_ids():
        p = topo.sink_location(i)
        if not (math.isfinite(p.x) and math.isfinite(p.y)):
            out.append(
                Diagnostic(
                    "TP008",
                    f"sink location ({p.x!r}, {p.y!r}) is not finite",
                    locus=f"sink {i}",
                )
            )
            continue
        key = (p.x, p.y)
        if key in seen_at:
            out.append(
                Diagnostic(
                    "TP007",
                    f"same location ({p.x:g}, {p.y:g}) as sink "
                    f"{seen_at[key]}",
                    locus=f"sink {i}",
                )
            )
        else:
            seen_at[key] = i

    for k in topo.steiner_ids():
        kids = topo.children(k)
        if not kids:
            out.append(
                Diagnostic(
                    "TP005",
                    "Steiner point is a leaf (contributes nothing)",
                    locus=f"node {k}",
                )
            )
        elif len(kids) == 1:
            out.append(
                Diagnostic(
                    "TP006",
                    "Steiner point has a single child (pass-through)",
                    locus=f"node {k}",
                )
            )
    return out
