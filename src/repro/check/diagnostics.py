"""Typed diagnostics for the pre-solve static verification layer.

Every finding the sanitizer can produce has a *stable code* (``LP001``,
``TP003``, ``BD005``, ...) registered in :data:`CODES`, a severity, a
human message, and a *locus* naming the offending row / edge / sink.
Codes never change meaning once shipped — tools and CI greps key on
them — so retired codes are tombstoned rather than reused.

This module is deliberately dependency-free (no imports from the rest of
:mod:`repro`) so low-level modules like :mod:`repro.lp.model` can emit
diagnostics without creating an import cycle.

Emission has two modes:

* inside a :func:`collect` block, diagnostics append to the collector
  (the :func:`repro.check.check_instance` machinery and the producers it
  calls use this);
* outside any collector, :func:`emit` falls back to ``warnings.warn``
  with a :class:`DiagnosticWarning`, so ad-hoc model building still
  surfaces problems instead of swallowing them.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from enum import Enum
from typing import Iterator


class Severity(Enum):
    """How bad a diagnostic is.

    ``ERROR`` means the instance cannot solve correctly (NaN data, a
    cyclic topology, inverted bounds); ``WARNING`` means it will solve
    but something is structurally suspicious (duplicate rows, dangling
    Steiner points); ``INFO`` is purely advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


#: Stable code registry: code -> (default severity, slug, one-line fix hint).
#: docs/STATIC_ANALYSIS.md is generated from / kept in sync with this table.
CODES: dict[str, tuple[Severity, str, str]] = {
    # --- LP: LinearProgram well-formedness -------------------------------
    "LP001": (
        Severity.ERROR,
        "nan-coefficient",
        "a row coefficient is NaN; check the sink coordinates and any "
        "weight vectors feeding the row builder",
    ),
    "LP002": (
        Severity.ERROR,
        "nonfinite-cost",
        "an objective coefficient is NaN/inf; check the edge weights",
    ),
    "LP003": (
        Severity.ERROR,
        "nonfinite-rhs",
        "a right-hand side is NaN or infinite; check distances/bounds "
        "used to build the row",
    ),
    "LP004": (
        Severity.ERROR,
        "inverted-variable-bounds",
        "a variable has lb > ub; fix the bound assignment (or the "
        "fix_variable call) for that column",
    ),
    "LP005": (
        Severity.ERROR,
        "infeasible-empty-row",
        "a row with no coefficients demands a nonzero rhs and can never "
        "be satisfied; drop the row or fix its coefficients",
    ),
    "LP010": (
        Severity.WARNING,
        "duplicate-row",
        "two rows have identical coefficients, sense and rhs; deduplicate "
        "the row producer (wasted solver work, degenerate bases)",
    ),
    "LP011": (
        Severity.INFO,
        "trivial-empty-row",
        "a row with no coefficients is trivially satisfied; drop it",
    ),
    "LP012": (
        Severity.WARNING,
        "dominated-steiner-row",
        "a >= row is implied by another row with the same coefficients "
        "and a larger rhs; keep only the binding row",
    ),
    "LP013": (
        Severity.INFO,
        "tree-structured-model",
        "the model carries tree metadata covering every row, so the "
        "structure-aware backend=\"tree\" collapsed solve applies; "
        "purely advisory",
    ),
    "LP014": (
        Severity.WARNING,
        "tree-metadata-stale",
        "rows were appended past the tree metadata's coverage watermark "
        "by a path other than add_steiner_rows; backend=\"tree\" will "
        "decline this model — re-stamp or rebuild via build_ebf_lp",
    ),
    "LP015": (
        Severity.WARNING,
        "ill-conditioned-coefficients",
        "coefficient magnitudes span >= 1e10; solver pivot tolerances "
        "degrade — equilibrate the model (rescale_lp) or rebuild with "
        "consistent units; solve_lp_resilient(rescale_retry=\"auto\") "
        "keys its rescale retry on this",
    ),
    "LP016": (
        Severity.WARNING,
        "row-norm-spread",
        "row infinity norms span >= 1e6 (mixed-unit rows); equilibrate "
        "the model (rescale_lp) or normalize the row producers; "
        "solve_lp_resilient(rescale_retry=\"auto\") keys its rescale "
        "retry on this",
    ),
    # --- TP: Topology structure ------------------------------------------
    "TP001": (
        Severity.ERROR,
        "parent-cycle",
        "the parents array contains a cycle; rebuild the topology so "
        "every node reaches the root",
    ),
    "TP002": (
        Severity.ERROR,
        "orphan-node",
        "a non-sink node is unreachable from the root; reparent it or "
        "drop it from the parents array",
    ),
    "TP003": (
        Severity.ERROR,
        "unreachable-sink",
        "a sink is not connected to the root; the instance cannot route "
        "that sink — fix the parents array",
    ),
    "TP004": (
        Severity.ERROR,
        "self-parent",
        "a node lists itself as parent; fix the parents array",
    ),
    "TP005": (
        Severity.WARNING,
        "dangling-steiner",
        "a Steiner point is a leaf; it contributes nothing — run the "
        "topology through a cleanup pass or rebuild it",
    ),
    "TP006": (
        Severity.INFO,
        "pass-through-steiner",
        "a Steiner point has exactly one child; it can be contracted "
        "into its parent edge",
    ),
    "TP007": (
        Severity.WARNING,
        "duplicate-sink-location",
        "two sinks share exact coordinates; their Steiner constraint "
        "degenerates to a zero-length requirement",
    ),
    "TP008": (
        Severity.ERROR,
        "nonfinite-sink-location",
        "a sink (or the source) has a NaN/inf coordinate; fix the input "
        "placement data",
    ),
    # --- BD: DelayBounds validity ----------------------------------------
    "BD001": (
        Severity.ERROR,
        "nonfinite-bound",
        "a delay bound is NaN (or a lower bound is infinite); fix the "
        "bound vector",
    ),
    "BD002": (
        Severity.ERROR,
        "inverted-bounds",
        "a sink has l_i > u_i; swap or widen the window",
    ),
    "BD003": (
        Severity.ERROR,
        "negative-lower-bound",
        "a lower delay bound is negative; delays are path lengths and "
        "cannot be negative (Eq. 3/4)",
    ),
    "BD004": (
        Severity.ERROR,
        "bound-count-mismatch",
        "the number of bound pairs differs from the sink count; rebuild "
        "the DelayBounds for this topology",
    ),
    "BD005": (
        Severity.ERROR,
        "bounds-below-manhattan-floor",
        "an upper bound is below the Manhattan distance from the source "
        "(or below the radius for a free source); no embedding can meet "
        "it (Eq. 3/4) — raise u_i",
    ),
    "BD006": (
        Severity.WARNING,
        "float-noise-collapsed-range",
        "a range constraint arrived with lo > hi by float noise and was "
        "collapsed to an equality at the midpoint; check the upstream "
        "bound arithmetic if this is unexpected",
    ),
    "BD007": (
        Severity.INFO,
        "zero-width-window",
        "a sink has l_i == u_i (exact zero-skew pin); intentional for "
        "zero-skew runs, listed for visibility",
    ),
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static verification layer."""

    code: str
    message: str
    locus: str = ""
    severity: Severity | None = None

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")
        if self.severity is None:
            object.__setattr__(self, "severity", CODES[self.code][0])

    @property
    def slug(self) -> str:
        return CODES[self.code][1]

    @property
    def fix_hint(self) -> str:
        return CODES[self.code][2]

    @property
    def is_error(self) -> bool:
        assert self.severity is not None
        return self.severity is Severity.ERROR

    def render(self) -> str:
        assert self.severity is not None
        where = f" [{self.locus}]" if self.locus else ""
        return (
            f"{self.code} {self.severity.value} ({self.slug}){where}: "
            f"{self.message}"
        )

    def to_dict(self) -> dict[str, str]:
        assert self.severity is not None
        return {
            "code": self.code,
            "slug": self.slug,
            "severity": self.severity.value,
            "locus": self.locus,
            "message": self.message,
            "fix_hint": self.fix_hint,
        }

    def __str__(self) -> str:
        return self.render()


class DiagnosticWarning(UserWarning):
    """Python-warning wrapper used when no collector is active."""

    def __init__(self, diagnostic: Diagnostic) -> None:
        super().__init__(diagnostic.render())
        self.diagnostic = diagnostic


#: Active collector stack; ``emit`` appends to the innermost collector.
_collectors: list[list[Diagnostic]] = []


def emit(diagnostic: Diagnostic) -> None:
    """Route ``diagnostic`` to the active collector, else ``warnings``."""
    if _collectors:
        _collectors[-1].append(diagnostic)
    else:
        warnings.warn(DiagnosticWarning(diagnostic), stacklevel=3)


@contextmanager
def collect() -> Iterator[list[Diagnostic]]:
    """Collect every :func:`emit` inside the block into the yielded list."""
    sink: list[Diagnostic] = []
    _collectors.append(sink)
    try:
        yield sink
    finally:
        _collectors.pop()
