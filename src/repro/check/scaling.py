"""LP scaling advisor (``LP015``/``LP016``).

Badly scaled models — coefficient magnitudes spanning many orders, or
rows whose infinity norms differ wildly — are the classic source of
NUMERICAL outcomes in the simplex backends: pivot tolerances tuned for
O(1) entries either reject valid pivots or accept catastrophic ones.
The resilient chain already knows how to equilibrate and retry
(:func:`repro.resilience.rescale_lp`); this module supplies the *advice*
side: cheap, O(nnz) scaling statistics emitted as warning diagnostics by
:func:`repro.check.check_lp`, and consumed by
``solve_lp_resilient(..., rescale_retry="auto")`` to decide whether a
rescale retry is worth attempting at all.

The two statistics, and the stable codes that report them:

* **condition estimate** (``LP015``) — ``max |a_ij| / min |a_ij != 0|``
  over the constraint matrix: a crude but free bound-shaped proxy for
  how much equilibration could help.  Fires at ``>= 1e10``.
* **row-norm spread** (``LP016``) — ratio of the largest to smallest
  row infinity norm: detects mixed-unit rows (e.g. micron-scale wire
  rows next to normalized skew rows) even when individual entries look
  tame.  Fires at ``>= 1e6``.

Thresholds are deliberately conservative: the shipped benchmarks build
incidence-style rows with entries of ±1 and O(radius) right-hand sides,
so a clean pipeline sits many orders below either trigger.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.check.diagnostics import Diagnostic
from repro.lp.model import LinearProgram

#: ``LP015`` fires when the coefficient-magnitude ratio reaches this.
CONDITION_THRESHOLD: float = 1e10
#: ``LP016`` fires when the row-infinity-norm ratio reaches this.
ROW_SPREAD_THRESHOLD: float = 1e6


@dataclass(frozen=True)
class ScalingAdvice:
    """Cheap scaling statistics for one :class:`LinearProgram`."""

    #: ``max |a_ij| / min nonzero |a_ij|`` (1.0 for an empty matrix).
    condition_estimate: float
    #: ``max_i ||A_i||_inf / min_i ||A_i||_inf`` over nonempty rows.
    row_norm_spread: float
    max_abs_coefficient: float
    min_abs_coefficient: float

    @property
    def rescale_recommended(self) -> bool:
        """True when either statistic crosses its warning threshold —
        the signal ``rescale_retry="auto"`` keys on."""
        return (
            self.condition_estimate >= CONDITION_THRESHOLD
            or self.row_norm_spread >= ROW_SPREAD_THRESHOLD
        )


def scaling_advice(lp: LinearProgram) -> ScalingAdvice:
    """Compute scaling statistics in one O(nnz) pass over the row
    buffers (same privileged-friend access as the other LP checks).
    NaN/inf entries are ignored here — LP001/LP002/LP003 own those."""
    data = np.asarray(lp._row_data, dtype=np.float64)
    ptr = np.asarray(lp._row_ptr, dtype=np.int64)
    mags = np.abs(data)
    mags = mags[np.isfinite(mags) & (mags > 0.0)]
    if mags.size == 0:
        return ScalingAdvice(1.0, 1.0, 0.0, 0.0)
    max_abs = float(mags.max())
    min_abs = float(mags.min())

    spread = 1.0
    lens = np.diff(ptr)
    if int(lens.max(initial=0)) > 0:
        finite = np.where(np.isfinite(data), np.abs(data), 0.0)
        row_ids = np.repeat(np.arange(len(lens)), lens)
        norms = np.zeros(len(lens), dtype=np.float64)
        np.maximum.at(norms, row_ids, finite)
        norms = norms[norms > 0.0]
        if norms.size:
            spread = float(norms.max() / norms.min())
    return ScalingAdvice(
        condition_estimate=max_abs / min_abs,
        row_norm_spread=spread,
        max_abs_coefficient=max_abs,
        min_abs_coefficient=min_abs,
    )


def check_scaling(lp: LinearProgram) -> list[Diagnostic]:
    """``LP015``/``LP016`` warning diagnostics for ``check_lp``."""
    advice = scaling_advice(lp)
    out: list[Diagnostic] = []
    if advice.condition_estimate >= CONDITION_THRESHOLD:
        out.append(
            Diagnostic(
                "LP015",
                f"coefficient magnitudes span "
                f"{advice.condition_estimate:.1e} "
                f"(|a| in [{advice.min_abs_coefficient:.1e}, "
                f"{advice.max_abs_coefficient:.1e}])",
            )
        )
    if advice.row_norm_spread >= ROW_SPREAD_THRESHOLD:
        out.append(
            Diagnostic(
                "LP016",
                f"row infinity norms span {advice.row_norm_spread:.1e}",
            )
        )
    return out
