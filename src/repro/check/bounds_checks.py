"""Delay-bound checks (``BD0xx``) against Definition 2.1's validity rules.

:class:`~repro.ebf.bounds.DelayBounds` already rejects the worst inputs
at construction time, but the checker cannot assume a well-behaved
constructor ran: fault injection, serialization, and hand-built objects
all reach the solver too.  Every rule is therefore re-verified here, and
the geometric floor (Eq. 3/4) — which the constructor *cannot* check
because it needs the topology — lives here as ``BD005``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.check.diagnostics import Diagnostic
from repro.ebf.bounds import DelayBounds, radius_of
from repro.geometry import manhattan
from repro.topology.tree import Topology

#: Same tolerance ``DelayBounds.check`` uses for the Eq. 3/4 floor.
_FLOOR_TOL = 1e-9


def check_bounds(
    bounds: DelayBounds,
    topo: Topology | None = None,
    *,
    geometric_floor: bool = True,
) -> list[Diagnostic]:
    """Run every ``BD0xx`` check; ``topo`` enables the count and floor
    checks.  ``geometric_floor=False`` skips ``BD005`` (callers probing
    deliberately infeasible bounds pass ``check_bounds=False`` to the
    solver, and the pre-check honors that)."""
    out: list[Diagnostic] = []
    lo = np.asarray(bounds.lower, dtype=float)
    hi = np.asarray(bounds.upper, dtype=float)

    if topo is not None and len(lo) != topo.num_sinks:
        out.append(
            Diagnostic(
                "BD004",
                f"{len(lo)} bound pairs for {topo.num_sinks} sinks",
                locus=f"{len(lo)} pairs",
            )
        )
        topo = None  # per-sink loci below would be misaligned

    for idx in range(len(lo)):
        sink = idx + 1
        l_i, u_i = float(lo[idx]), float(hi[idx])
        locus = f"sink {sink}"
        if math.isnan(l_i) or math.isnan(u_i) or math.isinf(l_i):
            out.append(
                Diagnostic(
                    "BD001",
                    f"bounds [{l_i!r}, {u_i!r}] are not usable",
                    locus=locus,
                )
            )
            continue
        if l_i > u_i:
            out.append(
                Diagnostic(
                    "BD002",
                    f"lower {l_i:g} exceeds upper {u_i:g}",
                    locus=locus,
                )
            )
        if l_i < 0:
            out.append(
                Diagnostic(
                    "BD003", f"lower bound {l_i:g} is negative", locus=locus
                )
            )
        if l_i == u_i and math.isfinite(u_i):
            out.append(
                Diagnostic(
                    "BD007",
                    f"exact zero-skew window at {u_i:g}",
                    locus=locus,
                )
            )

    if topo is not None and geometric_floor:
        out.extend(_check_floor(lo, hi, topo))
    return out


def _check_floor(
    lo: np.ndarray, hi: np.ndarray, topo: Topology
) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    src = topo.source_location
    if src is not None:
        if not (math.isfinite(src.x) and math.isfinite(src.y)):
            return out  # TP008 territory; a floor is meaningless here
        for i in topo.sink_ids():
            s = topo.sink_location(i)
            if not (math.isfinite(s.x) and math.isfinite(s.y)):
                continue
            need = manhattan(src, s)
            u_i = float(hi[i - 1])
            if not math.isnan(u_i) and u_i < need - _FLOOR_TOL:
                out.append(
                    Diagnostic(
                        "BD005",
                        f"upper bound {u_i:g} < dist(source, sink) = "
                        f"{need:g} (Eq. 3)",
                        locus=f"sink {i}",
                    )
                )
    else:
        r = radius_of(topo)
        if math.isfinite(r):
            for idx in np.nonzero(hi < r - _FLOOR_TOL)[0]:
                u_i = float(hi[idx])
                if not math.isnan(u_i):
                    out.append(
                        Diagnostic(
                            "BD005",
                            f"upper bound {u_i:g} < radius {r:g} (Eq. 4)",
                            locus=f"sink {int(idx) + 1}",
                        )
                    )
    return out
