"""Metrics, validation, paper-style table rendering — and the project
static analyzer (``python -m repro.analysis``; see ``engine.py``)."""

from repro.analysis.engine import (
    RULES,
    Finding,
    Rule,
    analyze_file,
    analyze_paths,
    changed_lines_vs,
    load_rules,
    render_json,
    render_sarif,
)
from repro.analysis.metrics import (
    TreeMetrics,
    measure_solution,
    measure_baseline,
    normalize_to_radius,
)
from repro.analysis.validate import validate_lubt_solution
from repro.analysis.tables import Table
from repro.analysis.plot import render_tree
from repro.analysis.svg import tree_to_svg, save_svg
from repro.analysis.power import (
    PowerParameters,
    PowerReport,
    tree_power,
    buffers_for_hold,
)
from repro.analysis.sensitivity import (
    SinkSensitivity,
    delay_sensitivities,
    sensitivities_from_solution,
)

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "analyze_file",
    "analyze_paths",
    "changed_lines_vs",
    "load_rules",
    "render_json",
    "render_sarif",
    "render_tree",
    "tree_to_svg",
    "save_svg",
    "PowerParameters",
    "PowerReport",
    "tree_power",
    "buffers_for_hold",
    "SinkSensitivity",
    "delay_sensitivities",
    "sensitivities_from_solution",
    "TreeMetrics",
    "measure_solution",
    "measure_baseline",
    "normalize_to_radius",
    "validate_lubt_solution",
    "Table",
]
