"""Delay-bound sensitivity analysis via LP duality.

Because EBF is an exact LP, the dual value of each delay row is the
marginal wirelength cost of that bound: the shadow price of sink ``i``'s
lower bound says how much tree cost one more unit of *minimum* delay
would add; the upper bound's price, how much one unit of relaxation of
the *maximum* delay would save.  This turns the paper's Table 2/Figure 8
observations ("sliding the window changes cost") into per-sink
actionable numbers — e.g. which flip-flop's hold requirement is actually
paying for the detour wire.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.ebf.bounds import DelayBounds
from repro.ebf.solver import LubtSolution, solve_lubt
from repro.topology import Topology

_DELAY_ROW = re.compile(r"^delay(\d+)(?:\.(lo|hi))?$")


@dataclass(frozen=True)
class SinkSensitivity:
    """Shadow prices of one sink's delay window."""

    sink: int
    delay: float
    lower_bound: float
    upper_bound: float
    lower_price: float  # d cost / d l_i  (>= 0: raising l costs wire)
    upper_price: float  # d cost / d u_i  (<= 0: raising u saves wire)

    @property
    def lower_binding(self) -> bool:
        return abs(self.lower_price) > 1e-9

    @property
    def upper_binding(self) -> bool:
        return abs(self.upper_price) > 1e-9


def delay_sensitivities(
    topo: Topology,
    bounds: DelayBounds,
    **solve_kwargs,
) -> tuple[LubtSolution, list[SinkSensitivity]]:
    """Solve LUBT (scipy backend, which reports duals) and return the
    per-sink window shadow prices alongside the solution."""
    solve_kwargs.setdefault("backend", "scipy")
    sol = solve_lubt(topo, bounds, keep_lp=True, **solve_kwargs)
    return sol, sensitivities_from_solution(sol)


def sensitivities_from_solution(sol: LubtSolution) -> list[SinkSensitivity]:
    """Extract per-sink shadow prices from a ``keep_lp=True`` solution."""
    lp = sol.lp
    result = sol.lp_result
    if lp is None or result is None:
        raise ValueError("solution was not created with keep_lp=True")
    duals = getattr(result, "duals", None)
    if duals is None:
        raise ValueError(
            f"backend {result.backend!r} does not report duals; "
            "use backend='scipy'"
        )

    lower: dict[int, float] = {}
    upper: dict[int, float] = {}
    for i in range(lp.num_constraints):
        m = _DELAY_ROW.match(lp.row_name(i))
        if not m:
            continue
        sink = int(m.group(1))
        part = m.group(2)
        if part == "lo":
            lower[sink] = float(duals[i])
        elif part == "hi":
            upper[sink] = float(duals[i])
        else:  # an equality row (l == u): one dual serves both sides
            lower[sink] = float(duals[i])
            upper[sink] = float(duals[i])

    topo: Topology = sol.topology  # type: ignore[assignment]
    out = []
    for i in topo.sink_ids():
        lo, hi = sol.bounds.window(i)
        out.append(
            SinkSensitivity(
                sink=i,
                delay=float(sol.delays[i - 1]),
                lower_bound=lo,
                upper_bound=hi,
                lower_price=lower.get(i, 0.0),
                upper_price=upper.get(i, 0.0),
            )
        )
    return out
