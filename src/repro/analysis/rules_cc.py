"""CC rule family: concurrency invariants of the service layer.

The asyncio solve server (``server/dispatch.py``), the fork-based
resident ``WorkerPool`` (``perf/pool.py``) and the thread-shared caches
(``server/cache.py``, ``server/warm.py``, ``resilience/breaker.py``)
share one failure mode: a blocked event loop, a racing store, or a
dropped task corrupts *scheduling* — and through it answer ordering —
without any test asserting on values noticing.  These rules encode the
project's concurrency discipline statically; the runtime counterpart is
:mod:`repro.resilience.sanitize` (``lubt chaos --sanitize``).

All CC inference is **lexical** (per-file AST, no cross-module call
graph).  Helper-under-lock patterns — a method whose *callers* hold the
lock — are expected to carry a documented ``noqa: CC002`` escape; the
RL900 audit keeps those escapes honest.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.engine import FileContext, Rule, register

register(Rule(
    "CC001", "blocking-call-in-async",
    "No blocking call inside an `async def` body.",
    doc="""time.sleep, os.fsync, fork/wait, subprocess, socket ops,
solve_* entry points, and WorkerPool construction / pool·thread joins
block the event loop for every connected client — one slow solve stalls
heartbeats, timeouts and accepts.  Route blocking work through
loop.run_in_executor(...) / asyncio.to_thread(...) (the called lambda or
function is sync context, so this rule does not fire inside it).""",
))

register(Rule(
    "CC002", "unlocked-shared-store",
    "No store to a lock-guarded attribute outside `with self._lock:`.",
    doc="""Per class, any attribute assigned somewhere inside a
`with self.<lock>:` block is inferred to be lock-guarded shared state;
a write to it (attribute/subscript store, augmented assign, or mutating
method call) outside a lock region in any method except __init__ is a
race.  The inference is lexical: a helper whose callers hold the lock
needs a documented `noqa: CC002` escape.""",
))

register(Rule(
    "CC003", "fork-unsafety",
    "No raw os.fork, and no thread/process spawn while holding a lock.",
    doc="""Forking while another thread holds a lock duplicates the lock
in its held state into the child, which deadlocks on first acquire (the
owning thread does not exist there).  Worker processes must be spawned
via the multiprocessing context in perf/pool.py, and never from inside a
`with <lock>:` region.""",
))

register(Rule(
    "CC004", "unawaited-coroutine",
    "Calling a coroutine function without awaiting it does nothing.",
    doc="""A bare statement call of an `async def` (or a known-awaitable
API such as asyncio.sleep or StreamWriter.drain) builds a coroutine
object and drops it — the body never runs, and Python only reports the
'never awaited' warning at GC time, if at all.""",
))

register(Rule(
    "CC005", "fire-and-forget-task",
    "asyncio.create_task result must be retained.",
    doc="""The event loop keeps only a weak reference to running tasks:
an unretained create_task/ensure_future result can be garbage-collected
mid-flight, and its exceptions are silently lost.  Store the task
(e.g. on self) and await/cancel it on teardown.""",
))

register(Rule(
    "CC006", "swallowed-cancellation",
    "No `except CancelledError` that fails to re-raise.",
    doc="""Swallowing CancelledError breaks cooperative teardown —
aclose()/wait_closed() hang on a task that refused to die.  Re-raise
after cleanup, or mark a documented teardown boundary (where the server
deliberately absorbs loop-shutdown cancellation) with a
`noqa: CC006` comment.""",
))

# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------
_LOCKISH_NAME = re.compile(r"(?:^|_)(?:lock|mutex|mu)\d*$", re.IGNORECASE)
_LOCK_CONSTRUCTORS = {"Lock", "RLock", "Condition"}


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _root_self_attr(node: ast.AST) -> str | None:
    """First attribute above ``self`` in a chain (``self.X...`` -> X)."""
    prev: str | None = None
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            prev = node.attr
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self" and prev is not None:
        return prev
    return None


# ----------------------------------------------------------------------
# CC001 — blocking calls in async context
# ----------------------------------------------------------------------
_BLOCKING_DOTTED = {
    "time.sleep",
    "os.fsync", "os.fork", "os.forkpty", "os.system",
    "os.wait", "os.waitpid",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "socket.create_connection",
}
#: Blocking no matter the receiver: raw socket/file-descriptor ops.
_BLOCKING_ATTRS = {"sendall", "recv", "recv_into", "accept", "fsync"}
#: Blocking when the receiver looks like a pool/thread/process handle.
_POOL_ATTRS = {"close", "join", "submit", "run_many", "map_many", "shutdown"}
_POOLISH = re.compile(r"pool|thread|proc|worker", re.IGNORECASE)


def _blocking_reason(node: ast.Call) -> str | None:
    func = node.func
    dotted = _dotted(func)
    if dotted is not None:
        if dotted in _BLOCKING_DOTTED:
            return f"{dotted}()"
        tail = dotted.rsplit(".", 1)[-1]
        if tail.startswith("solve_") or tail in ("run_many", "map_many"):
            return f"{tail}() (solver entry point)"
        if tail == "WorkerPool":
            return "WorkerPool() construction (forks workers)"
    if isinstance(func, ast.Attribute):
        if func.attr in _BLOCKING_ATTRS:
            return f".{func.attr}()"
        recv = _dotted(func.value)
        if func.attr in _POOL_ATTRS and recv is not None and _POOLISH.search(recv):
            return f"{recv}.{func.attr}() (pool/thread operation)"
    return None


# ----------------------------------------------------------------------
# CC004 — known awaitables
# ----------------------------------------------------------------------
_AWAITABLE_DOTTED = {
    "asyncio.sleep", "asyncio.gather", "asyncio.wait", "asyncio.wait_for",
    "asyncio.open_connection", "asyncio.start_server", "asyncio.to_thread",
}
_AWAITABLE_ATTRS = {"drain", "wait_closed"}

# ----------------------------------------------------------------------
# CC005 — task spawns
# ----------------------------------------------------------------------
_TASK_SPAWN_ATTRS = {"create_task", "ensure_future"}


class _CcVisitor(ast.NodeVisitor):
    """CC001 / CC003 (os.fork part) / CC004 / CC005 / CC006 in one walk."""

    def __init__(self, ctx: FileContext, async_names: frozenset[str]) -> None:
        self.ctx = ctx
        self.async_names = async_names
        #: Innermost function kind: True = async, False = sync.
        self._func_stack: list[bool] = []

    @property
    def _in_async(self) -> bool:
        return bool(self._func_stack) and self._func_stack[-1]

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._func_stack.append(False)
        self.generic_visit(node)
        self._func_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._func_stack.append(True)
        self.generic_visit(node)
        self._func_stack.pop()

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._func_stack.append(False)
        self.generic_visit(node)
        self._func_stack.pop()

    # -- CC001 + CC003(os.fork) ---------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted in ("os.fork", "os.forkpty"):
            self.ctx.report(
                "CC003",
                node,
                f"raw {dotted}() duplicates held locks into the child; "
                "spawn workers through the multiprocessing context in "
                "perf/pool.py",
            )
        if self._in_async:
            reason = _blocking_reason(node)
            if reason is not None:
                self.ctx.report(
                    "CC001",
                    node,
                    f"blocking call {reason} inside `async def` stalls the "
                    "event loop; route through loop.run_in_executor(...) "
                    "or asyncio.to_thread(...)",
                )
        self.generic_visit(node)

    # -- CC004 / CC005 -------------------------------------------------
    def visit_Expr(self, node: ast.Expr) -> None:
        call = node.value
        if isinstance(call, ast.Call):
            func = call.func
            dotted = _dotted(func)
            tail = dotted.rsplit(".", 1)[-1] if dotted else None
            if tail in _TASK_SPAWN_ATTRS:
                self.ctx.report(
                    "CC005",
                    node,
                    f"{dotted}(...) result dropped — the loop holds only a "
                    "weak reference; retain the task and await/cancel it "
                    "on teardown",
                )
            elif (
                (dotted in _AWAITABLE_DOTTED)
                or (isinstance(func, ast.Attribute)
                    and func.attr in _AWAITABLE_ATTRS)
                or (tail is not None and tail in self.async_names
                    and self._receiver_is_self_or_bare(func))
            ):
                what = dotted if dotted is not None else tail
                self.ctx.report(
                    "CC004",
                    node,
                    f"coroutine {what}(...) is never awaited — the body "
                    "never runs; add `await` (or schedule it as a task "
                    "and retain the handle)",
                )
        self.generic_visit(node)

    @staticmethod
    def _receiver_is_self_or_bare(func: ast.AST) -> bool:
        """Name-based coroutine matching only applies to ``foo()`` and
        ``self.foo()`` — ``other.foo()`` may be an unrelated sync method
        that merely shares a local coroutine's name (Thread.start vs an
        async ``start``)."""
        if isinstance(func, ast.Name):
            return True
        return (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        )

    # -- CC006 ---------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is not None and self._mentions_cancelled(node.type):
            reraises = any(
                isinstance(sub, ast.Raise)
                for stmt in node.body
                for sub in ast.walk(stmt)
            )
            if not reraises:
                self.ctx.report(
                    "CC006",
                    node,
                    "CancelledError swallowed — cooperative teardown "
                    "hangs; re-raise after cleanup, or mark a documented "
                    "teardown boundary with `noqa: CC006`",
                )
        self.generic_visit(node)

    @staticmethod
    def _mentions_cancelled(type_node: ast.AST) -> bool:
        for sub in ast.walk(type_node):
            if isinstance(sub, ast.Attribute) and sub.attr == "CancelledError":
                return True
            if isinstance(sub, ast.Name) and sub.id == "CancelledError":
                return True
        return False


# ----------------------------------------------------------------------
# CC002 — per-class lock-discipline inference
# ----------------------------------------------------------------------
def _lock_attrs_of(cls: ast.ClassDef) -> set[str]:
    """Attributes of ``self`` that hold a lock: lock-ish names, or
    anything assigned a Lock/RLock/Condition constructor."""
    locks: set[str] = set()
    for sub in ast.walk(cls):
        if not isinstance(sub, ast.Assign):
            continue
        for target in sub.targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            if _LOCKISH_NAME.search(target.attr):
                locks.add(target.attr)
                continue
            value = sub.value
            if isinstance(value, ast.Call):
                dotted = _dotted(value.func)
                if dotted is not None and (
                    dotted.rsplit(".", 1)[-1] in _LOCK_CONSTRUCTORS
                ):
                    locks.add(target.attr)
    return locks


def _with_holds_lock(node: ast.With, locks: set[str]) -> bool:
    for item in node.items:
        expr = item.context_expr
        # `with self._lock:` — also accept `.acquire_timeout(...)`-style
        # context helper calls on the lock attribute.
        if isinstance(expr, ast.Call):
            expr = expr.func
        root = _root_self_attr(expr)
        if root in locks:
            return True
    return False


def _lockish_with(node: ast.With) -> bool:
    """Any `with` whose context expression names something lock-like
    (for CC003: don't spawn while holding *any* lock)."""
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call):
            expr = expr.func
        dotted = _dotted(expr)
        if dotted is not None and any(
            _LOCKISH_NAME.search(part) for part in dotted.split(".")
        ):
            return True
    return False


def _stored_roots(stmt: ast.stmt) -> list[tuple[str, ast.AST]]:
    """``self.X``-rooted attribute names written by this statement alone
    (no recursion into child statements)."""
    out: list[tuple[str, ast.AST]] = []
    targets: list[ast.AST] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    for target in targets:
        elts = target.elts if isinstance(target, (ast.Tuple, ast.List)) else [target]
        for t in elts:
            root = _root_self_attr(t)
            if root is not None:
                out.append((root, t))
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        call = stmt.value
        if isinstance(call.func, ast.Attribute):
            from repro.analysis.rules_rl import MUTATING_METHODS

            if call.func.attr in MUTATING_METHODS:
                root = _root_self_attr(call.func.value)
                if root is not None:
                    out.append((root, call))
    return out


_CTOR_METHODS = {"__init__", "__new__", "__post_init__", "__del__"}
_SPAWNISH = re.compile(r"^(Thread|Process|WorkerPool)$")


class _LockDiscipline:
    """Two-pass CC002 (+ CC003 spawn-under-lock) over one class body."""

    def __init__(self, ctx: FileContext, cls: ast.ClassDef) -> None:
        self.ctx = ctx
        self.cls = cls
        self.locks = _lock_attrs_of(cls)

    def run(self) -> None:
        if not self.locks:
            return
        guarded: set[str] = set()
        # Pass 1: collect attrs written somewhere under the lock.
        for sub in ast.walk(self.cls):
            if isinstance(sub, ast.With) and _with_holds_lock(sub, self.locks):
                for inner in sub.body:
                    for stmt in ast.walk(inner):
                        if isinstance(stmt, ast.stmt):
                            for root, _node in _stored_roots(stmt):
                                guarded.add(root)
        guarded -= self.locks
        if not guarded:
            return
        # Pass 2: flag writes to guarded attrs outside any lock region.
        for method in self.cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in _CTOR_METHODS:
                continue
            self._walk(method.body, guarded, locked=False)

    def _walk(self, body: list[ast.stmt], guarded: set[str], locked: bool) -> None:
        for stmt in body:
            if isinstance(stmt, ast.With):
                inner_locked = locked or _with_holds_lock(stmt, self.locks)
                self._walk(stmt.body, guarded, inner_locked)
                continue
            if not locked:
                for root, node in _stored_roots(stmt):
                    if root in guarded:
                        self.ctx.report(
                            "CC002",
                            node,
                            f"store to lock-guarded attribute "
                            f"'self.{root}' outside a `with self."
                            f"{'/'.join(sorted(self.locks))}:` region "
                            "(inferred from guarded writes elsewhere in "
                            "this class)",
                        )
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    self._walk([child], guarded, locked)
                else:
                    # statement lists hide inside compound nodes
                    for field in ("body", "orelse", "finalbody", "handlers"):
                        sub = getattr(child, field, None)
                        if isinstance(sub, list):
                            self._walk(
                                [s for s in sub if isinstance(s, ast.stmt)],
                                guarded,
                                locked,
                            )


def _check_spawn_under_lock(tree: ast.Module, ctx: FileContext) -> None:
    for sub in ast.walk(tree):
        if not (isinstance(sub, ast.With) and _lockish_with(sub)):
            continue
        for inner in sub.body:
            for node in ast.walk(inner):
                if not isinstance(node, ast.Call):
                    continue
                dotted = _dotted(node.func)
                tail = dotted.rsplit(".", 1)[-1] if dotted else None
                if tail is not None and _SPAWNISH.match(tail):
                    ctx.report(
                        "CC003",
                        node,
                        f"{tail}(...) spawned while holding a lock — a "
                        "fork here duplicates the held lock into the "
                        "child; spawn outside the `with` region",
                    )


def run_cc_checks(tree: ast.Module, ctx: FileContext) -> None:
    """Entry point the engine calls once per parsed file."""
    async_names = frozenset(
        node.name
        for node in ast.walk(tree)
        if isinstance(node, ast.AsyncFunctionDef)
    )
    _CcVisitor(ctx, async_names).visit(tree)
    _check_spawn_under_lock(tree, ctx)
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            _LockDiscipline(ctx, node).run()
