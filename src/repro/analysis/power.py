"""Switching-power accounting for clock trees.

The paper's Section 1 motivates LUBT with power: extra buffers and long
wires both burn dynamic power ``P = alpha * f * Vdd^2 * C_switched``, and
meeting a short-path (hold) constraint by *wire elongation* is claimed to
cost less than inserting delay buffers.  This module provides the simple
capacitance-based model needed to make that comparison quantitative:

* a routed tree's switched capacitance is its wire capacitance plus the
  sink loads (plus any buffer input caps);
* a delay buffer contributes a fixed delay and a fixed input capacitance
  (and area), so hold-fixing a too-fast sink needs
  ``ceil(shortfall / buffer_delay)`` buffers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.topology import Topology


@dataclass(frozen=True)
class PowerParameters:
    """Dynamic-power model constants (normalized units by default)."""

    frequency: float = 1.0
    vdd: float = 1.0
    activity: float = 1.0  # clock nets switch every cycle
    wire_cap_per_unit: float = 1.0
    buffer_input_cap: float = 20.0
    buffer_delay: float = 50.0
    buffer_area: float = 10.0

    def __post_init__(self) -> None:
        if min(
            self.frequency,
            self.vdd,
            self.activity,
            self.wire_cap_per_unit,
            self.buffer_input_cap,
            self.buffer_delay,
            self.buffer_area,
        ) <= 0:
            raise ValueError("all power parameters must be positive")

    def dynamic_power(self, capacitance: float) -> float:
        return self.activity * self.frequency * self.vdd**2 * capacitance


@dataclass(frozen=True)
class PowerReport:
    """Switched capacitance / power / area of one hold-fixing strategy."""

    strategy: str
    wirelength: float
    buffers: int
    switched_capacitance: float
    power: float
    area_overhead: float


def tree_power(
    topo: Topology,
    edge_lengths: np.ndarray,
    params: PowerParameters,
    sink_load_cap: float = 0.0,
    buffers: int = 0,
    strategy: str = "wire elongation",
) -> PowerReport:
    """Power/area report for a routed tree (optionally with buffers)."""
    e = np.asarray(edge_lengths, dtype=float)
    wirelength = float(e[1:].sum())
    cap = (
        params.wire_cap_per_unit * wirelength
        + sink_load_cap * topo.num_sinks
        + params.buffer_input_cap * buffers
    )
    return PowerReport(
        strategy=strategy,
        wirelength=wirelength,
        buffers=buffers,
        switched_capacitance=cap,
        power=params.dynamic_power(cap),
        area_overhead=params.buffer_area * buffers,
    )


def buffers_for_hold(
    delays: np.ndarray, hold_requirement: float, params: PowerParameters
) -> int:
    """Delay buffers needed to lift every early arrival to the hold time
    (the conventional fix the paper's elongation replaces)."""
    d = np.asarray(delays, dtype=float)
    shortfalls = np.maximum(0.0, hold_requirement - d)
    return int(sum(math.ceil(s / params.buffer_delay) for s in shortfalls if s > 0))
