"""Tree quality metrics in the paper's reporting conventions."""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.bounded_skew import BaselineTree
from repro.ebf.bounds import radius_of
from repro.ebf.solver import LubtSolution
from repro.topology import Topology


@dataclass(frozen=True)
class TreeMetrics:
    """The columns the paper reports per tree."""

    cost: float
    shortest_delay: float
    longest_delay: float
    skew: float
    radius: float

    @property
    def shortest_normalized(self) -> float:
        return self.shortest_delay / self.radius if self.radius else 0.0

    @property
    def longest_normalized(self) -> float:
        return self.longest_delay / self.radius if self.radius else 0.0

    @property
    def skew_normalized(self) -> float:
        return self.skew / self.radius if self.radius else 0.0


def measure_solution(sol: LubtSolution) -> TreeMetrics:
    return TreeMetrics(
        cost=sol.cost,
        shortest_delay=sol.shortest_delay,
        longest_delay=sol.longest_delay,
        skew=sol.skew,
        radius=radius_of(sol.topology),
    )


def measure_baseline(tree: BaselineTree) -> TreeMetrics:
    return TreeMetrics(
        cost=tree.cost,
        shortest_delay=tree.shortest_delay,
        longest_delay=tree.longest_delay,
        skew=tree.skew,
        radius=radius_of(tree.topology),
    )


def normalize_to_radius(topo: Topology, value: float) -> float:
    """Express an absolute delay as a multiple of the topology radius."""
    r = radius_of(topo)
    return value / r if r else 0.0
