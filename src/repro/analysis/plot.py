"""Terminal rendering of embedded routing trees.

No plotting dependency: trees are rasterized onto a character grid with
L-shaped wires, which is enough to eyeball topology, detours, and sink
spread in examples and bug reports.

Legend: ``S`` source, digits/``*`` sinks, ``+`` Steiner point, ``-``/``|``
wire.
"""

from __future__ import annotations

from repro.embedding.pipeline import EmbeddedTree
from repro.geometry import Point


def render_tree(
    tree: EmbeddedTree, width: int = 72, height: int = 28
) -> str:
    """Rasterize an embedded tree to ASCII art."""
    if width < 8 or height < 4:
        raise ValueError("canvas too small")
    topo = tree.topology
    pts = tree.placements
    xs = [p.x for p in pts.values()]
    ys = [p.y for p in pts.values()]
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    span_x = max(xmax - xmin, 1e-9)
    span_y = max(ymax - ymin, 1e-9)

    def cell(p: Point) -> tuple[int, int]:
        col = round((p.x - xmin) / span_x * (width - 1))
        row = round((ymax - p.y) / span_y * (height - 1))  # y grows upward
        return int(row), int(col)

    grid = [[" "] * width for _ in range(height)]

    def draw_wire(a: Point, b: Point) -> None:
        """L-shaped: horizontal from a, then vertical to b."""
        ra, ca = cell(a)
        rb, cb = cell(b)
        for c in range(min(ca, cb), max(ca, cb) + 1):
            if grid[ra][c] == " ":
                grid[ra][c] = "-"
        for r in range(min(ra, rb), max(ra, rb) + 1):
            if grid[r][cb] == " ":
                grid[r][cb] = "|"

    for node in range(1, topo.num_nodes):
        draw_wire(pts[topo.parent(node)], pts[node])

    for node in range(topo.num_nodes - 1, -1, -1):
        r, c = cell(pts[node])
        if node == 0:
            grid[r][c] = "S"
        elif topo.is_sink(node):
            grid[r][c] = str(node) if node < 10 else "*"
        else:
            grid[r][c] = "+"

    lines = ["".join(row).rstrip() for row in grid]
    lines.append(
        f"cost={tree.cost:g} drawn={tree.drawn_wirelength:g} "
        f"elongation={tree.elongation:g}"
    )
    return "\n".join(lines)
