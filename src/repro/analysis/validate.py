"""End-to-end solution validation.

Combines every check the paper's claims rest on: delay windows, the full
Steiner constraint family, and actual embeddability — so experiment
harnesses can assert validity in one call.
"""

from __future__ import annotations

from repro.ebf.constraints import max_steiner_violation
from repro.ebf.solver import LubtSolution
from repro.embedding import embed_tree, embedding_violations


def validate_lubt_solution(sol: LubtSolution, tol: float = 1e-5) -> None:
    """Raise ``AssertionError`` describing the first failed property."""
    if not sol.bounds.satisfied_by(sol.delays, tol=tol):
        raise AssertionError("delay bounds violated")
    worst = max_steiner_violation(sol.topology, sol.edge_lengths)
    if worst > tol:
        raise AssertionError(f"a Steiner constraint is violated by {worst:g}")
    tree = embed_tree(sol.topology, sol.edge_lengths, verify=False)
    problems = embedding_violations(
        sol.topology, sol.edge_lengths, tree.placements, tol=tol
    )
    if problems:
        raise AssertionError("embedding invalid: " + "; ".join(problems[:3]))
