"""Core of the project static analyzer (``python -m repro.analysis``).

PR 4's single-file AST lint (``tools/lint_repro.py``) grew into this
package when the concurrent service layer (asyncio solve server, forked
worker pool, thread-shared caches) needed rules a flat script could not
carry: a typed rule registry with per-rule docs, ``# noqa`` suppression
with **unused-suppression detection** (RL900), machine output (JSON and
SARIF), and a diff-aware mode for CI.

Architecture::

    engine.py        Rule / Finding / FileContext, noqa bookkeeping,
                     path walking, diff awareness, output rendering
    rules_rl.py      RL001-RL006 determinism/correctness rules (ported
                     from the PR 4 lint) + the RL900 suppression audit
    rules_cc.py      CC001+ concurrency rules for the service layer
                     (blocking calls in async, lock discipline, fork
                     safety, asyncio hygiene)

Each rule is a :class:`Rule` record (stable code, slug, scope, full
doc); rule modules register themselves on import and contribute visitor
passes that report through a shared :class:`FileContext`, which applies
scope filtering and ``# noqa: <CODE>`` suppression while recording which
suppressions actually fired — any auditable suppression that never fires
becomes an RL900 finding, keeping the escape inventory honest.

The runtime counterpart of this *static* pass is the sanitizer harness
in :mod:`repro.resilience.sanitize` (lock-order cycles, event-loop
stalls), switched on by ``lubt chaos --sanitize``.  See
docs/STATIC_ANALYSIS.md.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Sequence

_NOQA = re.compile(r"#\s*noqa\s*:\s*([A-Z0-9, ]+)", re.IGNORECASE)

#: Suppression codes the RL900 audit owns.  ``BLE001`` rides along as the
#: documented alias for RL004 (ruff's select set does not include BLE, so
#: every BLE001 comment in this tree exists for this analyzer).
_AUDITABLE = re.compile(r"^(?:RL|CC)\d{3}$|^BLE001$")


@dataclass(frozen=True)
class Rule:
    """One registered analyzer rule (stable code, never reused)."""

    code: str
    name: str
    summary: str
    doc: str = ""
    #: Path substrings (POSIX) the rule applies to; ``None`` = everywhere.
    scope: tuple[str, ...] | None = None
    #: Path substrings exempt from the rule (the invariant's owner).
    exempt: tuple[str, ...] = ()
    severity: str = "error"


#: The registry.  Populated by :func:`load_rules` importing the rule
#: modules; stable codes are the public interface (CI greps key on them).
RULES: dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    existing = RULES.get(rule.code)
    if existing is not None and existing is not rule:
        raise ValueError(f"duplicate analyzer rule code {rule.code!r}")
    RULES[rule.code] = rule
    return rule


_rules_loaded = False


def load_rules() -> dict[str, Rule]:
    """Import every rule module (idempotent); returns the registry."""
    global _rules_loaded
    if not _rules_loaded:
        import repro.analysis.rules_cc  # noqa: F401 — registration side effect
        import repro.analysis.rules_rl  # noqa: F401 — registration side effect

        _rules_loaded = True
    return RULES


@dataclass(frozen=True)
class Finding:
    """One analyzer finding.  ``rule`` keeps the PR 4 field name so the
    ``tools/lint_repro.py`` shim stays drop-in compatible."""

    path: Path
    line: int
    col: int
    rule: str
    message: str

    @property
    def severity(self) -> str:
        r = RULES.get(self.rule)
        return r.severity if r is not None else "error"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": str(self.path),
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }


class FileContext:
    """Reporting surface one file's visitor passes share.

    Applies rule scoping and ``# noqa`` suppression, and records which
    suppressions were *used* so the RL900 audit can flag the stale ones.
    """

    def __init__(
        self,
        path: Path,
        rel: str,
        lines: list[str],
        enabled: frozenset[str],
    ) -> None:
        self.path = path
        self.rel = rel
        self.lines = lines
        self.enabled = enabled
        self.findings: list[Finding] = []
        #: ``(line, code)`` suppressions that actually fired.
        self.used_noqa: set[tuple[int, str]] = set()

    def noqa_codes(self, lineno: int) -> set[str]:
        if not (1 <= lineno <= len(self.lines)):
            return set()
        m = _NOQA.search(self.lines[lineno - 1])
        if not m:
            return set()
        return {c.strip().upper() for c in m.group(1).split(",") if c.strip()}

    def in_scope(self, code: str) -> bool:
        rule = RULES[code]
        for frag in rule.exempt:
            if frag in self.rel:
                return False
        return rule.scope is None or any(f in self.rel for f in rule.scope)

    def report(
        self,
        code: str,
        node: ast.AST | int,
        message: str,
        *,
        col: int | None = None,
        aliases: tuple[str, ...] = (),
    ) -> None:
        """File a finding for ``code`` at ``node`` (or a line number),
        honoring scope and suppression.  ``aliases`` are extra noqa codes
        that may suppress this rule (RL004 accepts ``BLE001``)."""
        if code not in self.enabled or not self.in_scope(code):
            return
        if isinstance(node, int):
            line = node
            column = col if col is not None else 0
        else:
            line = getattr(node, "lineno", 0)
            column = col if col is not None else getattr(node, "col_offset", 0)
        noqa = self.noqa_codes(line)
        for candidate in (code, *aliases):
            if candidate in noqa:
                self.used_noqa.add((line, candidate))
                return
        self.findings.append(Finding(self.path, line, column, code, message))


def _audit_suppressions(ctx: FileContext) -> None:
    """RL900: every auditable ``# noqa`` code that suppressed nothing on
    its line is itself a finding (stale escapes rot the inventory)."""
    if "RL900" not in ctx.enabled:
        return
    for lineno, text in enumerate(ctx.lines, start=1):
        m = _NOQA.search(text)
        if not m:
            continue
        for code in sorted(
            c.strip().upper() for c in m.group(1).split(",") if c.strip()
        ):
            if not _AUDITABLE.match(code) or code == "RL900":
                continue
            if (lineno, code) not in ctx.used_noqa:
                col = text.index("#")
                # RL900 findings are themselves suppressible the normal way.
                noqa = ctx.noqa_codes(lineno)
                if "RL900" in noqa:
                    ctx.used_noqa.add((lineno, "RL900"))
                    continue
                ctx.findings.append(Finding(
                    ctx.path, lineno, col, "RL900",
                    f"unused suppression: {code} does not fire on this "
                    f"line — remove the stale '# noqa: {code}' escape",
                ))


def _enabled_codes(
    families: Sequence[str],
    select: Sequence[str] | None,
    ignore: Sequence[str] | None,
) -> frozenset[str]:
    load_rules()
    codes = {
        c for c in RULES
        if any(c.startswith(fam) for fam in families)
    }
    if select:
        wanted = {s.upper() for s in select}
        codes = {c for c in codes if c in wanted}
    if ignore:
        dropped = {s.upper() for s in ignore}
        codes -= dropped
    return frozenset(codes)


def analyze_source(
    path: Path,
    rel: str,
    source: str,
    *,
    enabled: frozenset[str],
    audit: bool = True,
) -> list[Finding]:
    """Analyze one file's source text; returns ordered findings."""
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 0, exc.offset or 0, "RL000",
                        f"syntax error: {exc.msg}")]
    from repro.analysis.rules_cc import run_cc_checks
    from repro.analysis.rules_rl import RlVisitor

    ctx = FileContext(path, rel, source.splitlines(), enabled)
    RlVisitor(ctx).visit(tree)
    run_cc_checks(tree, ctx)
    if audit:
        _audit_suppressions(ctx)
    return sorted(ctx.findings, key=lambda f: (f.line, f.col, f.rule))


def analyze_file(
    path: Path,
    root: Path,
    *,
    families: Sequence[str] = ("RL", "CC"),
    audit: bool = True,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> list[Finding]:
    rel = "/" + path.resolve().relative_to(root.resolve()).as_posix()
    enabled = _enabled_codes(families, select, ignore)
    return analyze_source(
        path, rel, path.read_text(), enabled=enabled, audit=audit
    )


def analyze_paths(
    paths: Iterable[Path],
    *,
    families: Sequence[str] = ("RL", "CC"),
    audit: bool = True,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    changed: Mapping[Path, set[int] | None] | None = None,
) -> list[Finding]:
    """Analyze files/directories.  With ``changed`` (diff-aware mode),
    only listed files are analyzed and findings are filtered to the
    changed line sets (``None`` line set = whole file counts)."""
    enabled = _enabled_codes(families, select, ignore)
    findings: list[Finding] = []
    for given in paths:
        given = Path(given)
        root = given if given.is_dir() else given.parent
        files = sorted(given.rglob("*.py")) if given.is_dir() else [given]
        for f in files:
            resolved = f.resolve()
            lines: set[int] | None = None
            if changed is not None:
                if resolved not in changed:
                    continue
                lines = changed[resolved]
            rel = "/" + resolved.relative_to(root.resolve()).as_posix()
            found = analyze_source(
                f, rel, f.read_text(), enabled=enabled, audit=audit
            )
            if lines is not None:
                found = [x for x in found if x.line in lines]
            findings.extend(found)
    return findings


# ----------------------------------------------------------------------
# diff awareness
# ----------------------------------------------------------------------
_HUNK = re.compile(r"^@@ -\d+(?:,\d+)? \+(\d+)(?:,(\d+))? @@")


def changed_lines_vs(
    ref: str, repo_root: Path | None = None
) -> dict[Path, set[int] | None]:
    """``{absolute_path: changed_line_numbers}`` for ``git diff ref``.

    Parses ``git diff -U0`` so findings can be filtered to lines the
    change actually touched; a file that fails to parse hunk-wise maps to
    ``None`` (= every line counts).  Only ``.py`` files are returned.
    """
    cwd = str(repo_root) if repo_root is not None else None
    top = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        capture_output=True, text=True, cwd=cwd, check=True,
    ).stdout.strip()
    diff = subprocess.run(
        ["git", "diff", "-U0", "--no-color", ref, "--", "*.py"],
        capture_output=True, text=True, cwd=top, check=True,
    ).stdout
    out: dict[Path, set[int] | None] = {}
    current: set[int] | None = None
    for line in diff.splitlines():
        if line.startswith("+++ "):
            name = line[4:].strip()
            if name == "/dev/null":
                current = None
                continue
            if name.startswith("b/"):
                name = name[2:]
            current = set()
            out[(Path(top) / name).resolve()] = current
        elif line.startswith("@@") and current is not None:
            m = _HUNK.match(line)
            if m:
                start = int(m.group(1))
                count = int(m.group(2)) if m.group(2) is not None else 1
                current.update(range(start, start + max(count, 1)))
    return out


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def render_json(findings: Sequence[Finding]) -> str:
    return json.dumps(
        {
            "tool": "repro.analysis",
            "count": len(findings),
            "findings": [f.to_dict() for f in findings],
        },
        indent=2,
    )


def render_sarif(findings: Sequence[Finding]) -> str:
    """Minimal SARIF 2.1.0 document (one run, rules + results)."""
    load_rules()
    used = sorted({f.rule for f in findings})
    level = {"error": "error", "warning": "warning"}
    rules = [
        {
            "id": code,
            "name": RULES[code].name if code in RULES else code,
            "shortDescription": {
                "text": RULES[code].summary if code in RULES else code
            },
        }
        for code in used
    ]
    results = [
        {
            "ruleId": f.rule,
            "level": level.get(f.severity, "error"),
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": str(f.path)},
                        "region": {
                            "startLine": max(f.line, 1),
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        for f in findings
    ]
    doc = {
        "version": "2.1.0",
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "informationUri": "docs/STATIC_ANALYSIS.md",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2)


def rule_catalogue() -> str:
    load_rules()
    lines = ["repro.analysis rule catalogue", ""]
    for code in sorted(RULES):
        r = RULES[code]
        scope = ", ".join(r.scope) if r.scope else "everywhere"
        lines.append(f"{code} [{r.severity}] {r.name} (scope: {scope})")
        lines.append(f"    {r.summary}")
        if r.doc:
            for ln in r.doc.strip().splitlines():
                lines.append(f"    {ln}")
        lines.append("")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="LUBT project static analyzer "
        "(RL determinism rules, CC concurrency rules, RL900 noqa audit)",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to analyze (default: src/)",
    )
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable JSON output")
    parser.add_argument("--sarif", action="store_true",
                        help="SARIF 2.1.0 output")
    parser.add_argument(
        "--diff", metavar="REF", default=None,
        help="diff-aware mode: analyze only files changed vs. the git "
        "ref, and report only findings on changed lines",
    )
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--explain", metavar="CODE", default=None,
                        help="print one rule's full documentation and exit")
    parser.add_argument("--select", metavar="CODES", default=None,
                        help="comma-separated codes to run exclusively")
    parser.add_argument("--ignore", metavar="CODES", default=None,
                        help="comma-separated codes to skip")
    parser.add_argument(
        "--no-audit", action="store_true",
        help="disable the RL900 unused-suppression audit",
    )
    args = parser.parse_args(argv)
    load_rules()

    if args.list_rules:
        print(rule_catalogue())
        return 0
    if args.explain is not None:
        code = args.explain.upper()
        rule = RULES.get(code)
        if rule is None:
            print(f"unknown rule {code!r}", file=sys.stderr)
            return 2
        scope = ", ".join(rule.scope) if rule.scope else "everywhere"
        print(f"{rule.code} [{rule.severity}] {rule.name}")
        print(f"scope: {scope}")
        if rule.exempt:
            print(f"exempt: {', '.join(rule.exempt)}")
        print(f"\n{rule.summary}\n")
        if rule.doc:
            print(rule.doc.strip())
        return 0

    paths = args.paths or [Path("src")]
    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else None
    changed = None
    if args.diff is not None:
        try:
            changed = changed_lines_vs(args.diff)
        except (subprocess.CalledProcessError, OSError) as exc:
            print(f"repro.analysis: cannot diff against {args.diff!r}: "
                  f"{exc}", file=sys.stderr)
            return 2
    findings = analyze_paths(
        paths,
        audit=not args.no_audit,
        select=select,
        ignore=ignore,
        changed=changed,
    )
    if args.sarif:
        print(render_sarif(findings))
    elif args.as_json:
        print(render_json(findings))
    else:
        for f in findings:
            print(f.render())
        if findings:
            print(f"repro.analysis: {len(findings)} finding(s)")
        else:
            mode = f" (diff vs {args.diff})" if args.diff else ""
            print(f"repro.analysis: clean{mode}")
    return 1 if findings else 0
