"""Minimal fixed-width table renderer for paper-style output.

The benchmark harnesses print rows shaped exactly like Tables 1-3 and the
Figure 8 series; this renderer keeps that output aligned and dependency
free.
"""

from __future__ import annotations

from typing import Any, Sequence


class Table:
    """Accumulate rows, then render as an aligned ASCII table."""

    def __init__(self, columns: Sequence[str], title: str = "") -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([_fmt(v) for v in values])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(
                " | ".join(cell.rjust(w) for cell, w in zip(row, widths))
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        if v != v:  # NaN
            return "nan"
        if v in (float("inf"), float("-inf")):
            return "inf" if v > 0 else "-inf"
        if abs(v) >= 1000:
            return f"{v:.1f}"
        return f"{v:.3f}"
    return str(v)
