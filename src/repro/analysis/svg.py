"""SVG export of embedded routing trees (dependency-free).

Produces a standalone .svg: L-shaped wires, the source as a square, sinks
as circles, Steiner points as small diamonds, with elongated edges drawn
dashed (their drawn span is shorter than their electrical length).
"""

from __future__ import annotations

from pathlib import Path

from repro.embedding.pipeline import EmbeddedTree
from repro.geometry import Point, manhattan

_STYLE = (
    "<style>"
    ".wire{stroke:#3b6ea5;stroke-width:__W__;fill:none}"
    ".elong{stroke:#c2542e;stroke-width:__W__;fill:none;"
    "stroke-dasharray:__D__}"
    ".sink{fill:#2e7d32}.steiner{fill:#8657a3}.source{fill:#b3261e}"
    "text{font-family:monospace;font-size:__F__px;fill:#333}"
    "</style>"
)


def tree_to_svg(
    tree: EmbeddedTree,
    size: int = 640,
    margin: int = 24,
    label_sinks: bool = True,
) -> str:
    """Render an embedded tree as an SVG document string."""
    if size < 64:
        raise ValueError("size too small")
    topo = tree.topology
    pts = tree.placements
    xs = [p.x for p in pts.values()]
    ys = [p.y for p in pts.values()]
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    span = max(xmax - xmin, ymax - ymin, 1e-9)
    scale = (size - 2 * margin) / span

    def sx(p: Point) -> float:
        return margin + (p.x - xmin) * scale

    def sy(p: Point) -> float:
        return size - margin - (p.y - ymin) * scale  # y up

    stroke = max(1.0, size / 400.0)
    font = max(8, size // 60)
    marker = max(2.5, size / 180.0)

    from repro.embedding import serpentine_route

    body: list[str] = []
    max_amp = span / 40.0  # keep serpentines visually near their route
    for node in range(1, topo.num_nodes):
        a = pts[topo.parent(node)]
        b = pts[node]
        elongated = tree.edge_lengths[node] > manhattan(a, b) + 1e-6
        if elongated:
            # Draw the detour as actual serpentine geometry.
            route = serpentine_route(
                a, b, float(tree.edge_lengths[node]), max_amplitude=max_amp
            )
            path = f"M {sx(route[0]):.2f} {sy(route[0]):.2f} " + " ".join(
                f"L {sx(p):.2f} {sy(p):.2f}" for p in route[1:]
            )
            body.append(f'<path class="elong" d="{path}"/>')
        else:
            # L route: horizontal from a, vertical into b.
            body.append(
                f'<path class="wire" d="M {sx(a):.2f} {sy(a):.2f} '
                f'L {sx(b):.2f} {sy(a):.2f} L {sx(b):.2f} {sy(b):.2f}"/>'
            )
    for node in range(topo.num_nodes):
        p = pts[node]
        cx, cy = sx(p), sy(p)
        if node == 0:
            half = marker * 1.3
            body.append(
                f'<rect class="source" x="{cx - half:.2f}" '
                f'y="{cy - half:.2f}" width="{2 * half:.2f}" '
                f'height="{2 * half:.2f}"/>'
            )
        elif topo.is_sink(node):
            body.append(
                f'<circle class="sink" cx="{cx:.2f}" cy="{cy:.2f}" '
                f'r="{marker:.2f}"/>'
            )
            if label_sinks:
                body.append(
                    f'<text x="{cx + marker + 1:.2f}" '
                    f'y="{cy - marker:.2f}">s{node}</text>'
                )
        else:
            body.append(
                f'<circle class="steiner" cx="{cx:.2f}" cy="{cy:.2f}" '
                f'r="{marker * 0.7:.2f}"/>'
            )
    body.append(
        f'<text x="{margin}" y="{size - 6}">cost={tree.cost:.1f} '
        f"drawn={tree.drawn_wirelength:.1f} "
        f"elongation={tree.elongation:.1f}</text>"
    )

    style = (
        _STYLE.replace("__W__", f"{stroke:.2f}")
        .replace("__D__", f"{stroke * 3:.1f} {stroke * 2:.1f}")
        .replace("__F__", str(font))
    )
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" '
        f'height="{size}" viewBox="0 0 {size} {size}">'
        f"{style}<rect width='100%' height='100%' fill='white'/>"
        + "".join(body)
        + "</svg>"
    )


def save_svg(path: str | Path, tree: EmbeddedTree, **kwargs) -> None:
    """Write the tree rendering to ``path``."""
    Path(path).write_text(tree_to_svg(tree, **kwargs))
