"""RL rule family: determinism/correctness invariants of the numeric core.

Ported from PR 4's ``tools/lint_repro.py`` with identical semantics (that
script is now a thin shim over this module), plus the RL900
unused-suppression audit.  Rule semantics are frozen — the shipped test
suite pins them — so behavior changes need a new code, not an edit here.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import FileContext, Rule, register

register(Rule(
    "RL000", "syntax-error",
    "File does not parse; nothing else can be checked.",
    severity="error",
))

register(Rule(
    "RL001", "float-equality",
    "No bare ==/!= against float literals in geometric code.",
    doc="""Geometric predicates must use epsilon compares (math.isclose
or an explicit tolerance); exact float equality there is almost always a
latent bug.""",
    scope=("/geometry/", "/embedding/", "/ebf/"),
))

register(Rule(
    "RL002", "set-iteration",
    "No iteration over a bare set in LP row-assembly paths.",
    doc="""Iteration order of a set depends on hash seeding and insertion
history; in row assembly it silently changes row order and with it the
degenerate-optimum vertex a backend returns.  Wrap in sorted(...).""",
    scope=("/lp/", "/ebf/"),
))

register(Rule(
    "RL003", "cache-mutation",
    "No mutation of memoized Topology caches outside topology/tree.py.",
    doc="""No attribute stores on _sinks_under/_sink_uv/_incidence/_lift,
and no mutating method calls or subscript stores on the tables returned
by sinks_under()/sink_uv()/root_path_incidence().  Those tables are
shared and never invalidated — treat them as frozen.""",
    exempt=("/topology/tree.py",),
))

register(Rule(
    "RL004", "broad-except",
    "No `except Exception:` / bare `except:` outside resilience/.",
    doc="""Resilience owns the catch-everything boundary; elsewhere, name
the exception.  Suppress a deliberate boundary with `noqa: BLE001`.""",
    exempt=("/resilience/",),
))

register(Rule(
    "RL005", "set-rebuild-in-comprehension",
    "No set(...) constructed inside a comprehension's `if` clause.",
    doc="It is rebuilt once per element; hoist it.",
))

register(Rule(
    "RL006", "per-node-trr-in-loop",
    "No TRR(...) construction inside a loop in embedding/.",
    doc="""Per-node TRR objects in the postorder/preorder passes are
exactly what the array kernel (embedding/kernel.py) replaced; new
embedding code should work on the (u_lo, u_hi, v_lo, v_hi) bound arrays
and only materialise TRRs at the view boundary.""",
    scope=("/embedding/",),
))

register(Rule(
    "RL900", "unused-suppression",
    "A `# noqa` escape whose rule no longer fires is itself a finding.",
    doc="""Keeps the escape inventory honest: when the code a suppression
was covering is fixed or deleted, the stale comment would otherwise keep
masking future regressions on that line.  Audited codes are RLxxx, CCxxx
and BLE001 (the RL004 alias).  Remove the stale escape, or — for a
suppression that is intentionally conditional — silence the audit itself
with `# noqa: RL900`.""",
    severity="error",
))

#: Memoized Topology cache internals and their public accessors.
CACHE_ATTRS = {"_sinks_under", "_sink_uv", "_incidence", "_lift"}
CACHE_ACCESSORS = {"sinks_under", "sink_uv", "root_path_incidence"}
MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "pop", "clear", "sort",
    "reverse", "setdefault", "update",
}


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra on set expressions is still a set
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _is_trr_construction(node: ast.Call) -> bool:
    """``TRR(...)`` or a ``TRR.<classmethod>(...)`` such as ``from_point``
    / ``square`` — the per-node object builds the array kernel replaced."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "TRR"
    if isinstance(func, ast.Attribute):
        return isinstance(func.value, ast.Name) and func.value.id == "TRR"
    return False


def _mentions_cache_accessor(node: ast.AST) -> bool:
    """Does the expression chain contain a call to a memoized accessor?"""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr in CACHE_ACCESSORS
        ):
            return True
    return False


class RlVisitor(ast.NodeVisitor):
    """Single-pass visitor carrying RL001–RL006."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self._loop_depth = 0

    # -- RL001: float equality ----------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.Eq, ast.NotEq)) and (
                _is_float_literal(left) or _is_float_literal(right)
            ):
                self.ctx.report(
                    "RL001",
                    node,
                    "float equality compare; use an epsilon "
                    "(math.isclose or explicit tolerance)",
                )
        self.generic_visit(node)

    # -- RL002: set iteration -----------------------------------------
    def _check_iter(self, iter_node: ast.AST, where: ast.AST) -> None:
        if _is_set_expr(iter_node):
            self.ctx.report(
                "RL002",
                where,
                "iteration over a bare set (hash-order nondeterminism); "
                "wrap in sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter, node)
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_While(self, node: ast.While) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter, node)
            # RL005: set built in a comprehension condition
            for cond in gen.ifs:
                for sub in ast.walk(cond):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Name)
                        and sub.func.id in ("set", "frozenset")
                    ):
                        self.ctx.report(
                            "RL005",
                            sub,
                            "set constructed inside a comprehension "
                            "condition (rebuilt per element); hoist it",
                        )
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    # -- RL003: memoized-cache mutation -------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_cache_store(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_cache_store(node.target)
        self.generic_visit(node)

    def _check_cache_store(self, target: ast.AST) -> None:
        if isinstance(target, ast.Attribute) and target.attr in CACHE_ATTRS:
            self.ctx.report(
                "RL003",
                target,
                f"store to memoized Topology cache {target.attr!r} "
                "outside topology/tree.py",
            )
        if isinstance(target, ast.Subscript) and _mentions_cache_accessor(
            target.value
        ):
            self.ctx.report(
                "RL003",
                target,
                "subscript store into a memoized Topology table "
                "(treat accessor results as read-only)",
            )

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATING_METHODS
            and _mentions_cache_accessor(node.func.value)
        ):
            self.ctx.report(
                "RL003",
                node,
                f".{node.func.attr}() on a memoized Topology table "
                "(treat accessor results as read-only)",
            )
        # RL006: per-node TRR construction inside a loop
        if self._loop_depth > 0 and _is_trr_construction(node):
            self.ctx.report(
                "RL006",
                node,
                "per-node TRR construction inside a loop; use the array "
                "kernel's (u_lo, u_hi, v_lo, v_hi) bound vectors "
                "(embedding/kernel.py) and materialise TRRs only at the "
                "view boundary",
            )
        self.generic_visit(node)

    # -- RL004: broad except ------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        broad = node.type is None or (
            isinstance(node.type, ast.Name)
            and node.type.id in ("Exception", "BaseException")
        )
        if broad:
            what = "bare except" if node.type is None else (
                f"except {node.type.id}"  # type: ignore[union-attr]
            )
            self.ctx.report(
                "RL004",
                node,
                f"{what} outside resilience/; name the exception or "
                "mark the boundary with `noqa: BLE001`",
                aliases=("BLE001",),
            )
        self.generic_visit(node)
