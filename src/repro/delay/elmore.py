"""Elmore delay model — Equation 12 (Section 7 extension).

    delay(s_j) = sum over e_k in path(s_0, s_j) of
                 r_w * e_k * (c_w * e_k / 2 + C_k)

where ``C_k`` is the effective downstream capacitance at node ``s_k``: the
sum of sink load capacitances and wire capacitances of the subtree ``T_k``.
The delay is quadratic (posynomial) in the edge lengths; this module only
*evaluates* it — the EBF-with-Elmore NLP lives in :mod:`repro.ebf.elmore`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.topology import Topology


@dataclass(frozen=True)
class ElmoreParameters:
    """Unit wire parasitics and per-sink load capacitances.

    ``sink_caps`` maps sink id -> load capacitance; missing sinks default
    to ``default_sink_cap``.
    """

    wire_resistance: float = 1.0  # r_w, per unit length
    wire_capacitance: float = 1.0  # c_w, per unit length
    default_sink_cap: float = 0.0
    sink_caps: dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.wire_resistance <= 0 or self.wire_capacitance < 0:
            raise ValueError("wire parasitics must be positive (r) / non-negative (c)")

    def sink_cap(self, sink_id: int) -> float:
        return self.sink_caps.get(sink_id, self.default_sink_cap)


def downstream_capacitance(
    topo: Topology, e, params: ElmoreParameters
) -> np.ndarray:
    """``C_k`` for every node ``k``: subtree wire cap + sink loads.

    Follows the paper's definition: ``C_k`` is the effective tree
    capacitance *at* ``s_k``, i.e. the capacitance of subtree ``T_k``
    (edge ``e_k`` itself is accounted separately by the ``c_w e_k / 2``
    term in the delay formula).
    """
    e = np.asarray(e, dtype=float)
    if e.shape != (topo.num_nodes,):
        raise ValueError("edge vector shape mismatch")
    cap = np.zeros(topo.num_nodes)
    for k in topo.postorder():
        own = params.sink_cap(k) if topo.is_sink(k) else 0.0
        acc = own
        for c in topo.children(k):
            # Child subtree cap plus the child edge's full wire cap.
            acc += cap[c] + params.wire_capacitance * e[c]
        cap[k] = acc
    return cap


def node_delays_elmore(
    topo: Topology, e, params: ElmoreParameters
) -> np.ndarray:
    """Elmore delay from the source to every node."""
    e = np.asarray(e, dtype=float)
    cap = downstream_capacitance(topo, e, params)
    d = np.zeros(topo.num_nodes)
    rw, cw = params.wire_resistance, params.wire_capacitance
    for i in topo.preorder():
        p = topo.parent(i)
        if p is not None:
            d[i] = d[p] + rw * e[i] * (cw * e[i] / 2.0 + cap[i])
    return d


def sink_delays_elmore(
    topo: Topology, e, params: ElmoreParameters
) -> np.ndarray:
    """Array of length ``m``: Elmore delay of sink ``i`` at index ``i-1``."""
    return node_delays_elmore(topo, e, params)[1 : topo.num_sinks + 1]
