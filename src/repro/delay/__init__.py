"""Interconnect delay models.

The paper's main results use the **linear (pathlength) delay model**
(Equation 1): the delay to a sink is the total wire length from the source.
Section 7 extends EBF to the **Elmore delay model** (Equation 12), which is
quadratic in the edge lengths.  Both evaluators consume a topology plus an
edge-length vector (indexed by node id; entry 0 unused).
"""

from repro.delay.linear import (
    sink_delays_linear,
    node_delays_linear,
    delay_to_node_linear,
    tree_cost,
    skew,
    delay_spread,
)
from repro.delay.elmore import (
    ElmoreParameters,
    sink_delays_elmore,
    node_delays_elmore,
    downstream_capacitance,
)

__all__ = [
    "sink_delays_linear",
    "node_delays_linear",
    "delay_to_node_linear",
    "tree_cost",
    "skew",
    "delay_spread",
    "ElmoreParameters",
    "sink_delays_elmore",
    "node_delays_elmore",
    "downstream_capacitance",
]
