"""Linear (pathlength) delay model — Equation 1.

``delay(s_i) = sum of edge lengths on path(s_0, s_i)``.  All functions take
an edge-length vector ``e`` indexed by node id (``e[0]`` unused, by the
paper's ``e_i <-> s_i`` identification).
"""

from __future__ import annotations

import numpy as np

from repro.topology import Topology


def _as_edge_vector(topo: Topology, e) -> np.ndarray:
    e = np.asarray(e, dtype=float)
    if e.shape != (topo.num_nodes,):
        raise ValueError(
            f"edge vector has shape {e.shape}, expected ({topo.num_nodes},)"
        )
    return e


def delay_to_node_linear(topo: Topology, e, node: int) -> float:
    """Pathlength from the root to ``node``."""
    e = _as_edge_vector(topo, e)
    return float(e[topo.path_to_root(node)].sum())


def node_delays_linear(topo: Topology, e) -> np.ndarray:
    """Root-to-node pathlength for *every* node, one preorder sweep."""
    e = _as_edge_vector(topo, e)
    d = np.zeros(topo.num_nodes)
    for i in topo.preorder():
        p = topo.parent(i)
        if p is not None:
            d[i] = d[p] + e[i]
    return d


def sink_delays_linear(topo: Topology, e) -> np.ndarray:
    """Array of length ``m``: linear delay of sink ``i`` at index ``i - 1``."""
    d = node_delays_linear(topo, e)
    return d[1 : topo.num_sinks + 1]


def tree_cost(topo: Topology, e, weights=None) -> float:
    """Total (optionally weighted) wirelength — the EBF objective."""
    e = _as_edge_vector(topo, e)
    if weights is None:
        return float(e[1:].sum())
    w = np.asarray(weights, dtype=float)
    if w.shape != e.shape:
        raise ValueError("weights must align with the edge vector")
    return float((w[1:] * e[1:]).sum())


def skew(delays: np.ndarray) -> float:
    """``skew(T)`` — max minus min source-sink delay (Section 2)."""
    d = np.asarray(delays, dtype=float)
    if d.size == 0:
        return 0.0
    return float(d.max() - d.min())


def delay_spread(delays: np.ndarray) -> tuple[float, float]:
    """(shortest, longest) sink delay — the Table 1 columns."""
    d = np.asarray(delays, dtype=float)
    if d.size == 0:
        return (0.0, 0.0)
    return float(d.min()), float(d.max())
