"""Blocking client for the LUBT solve server.

A thin socket wrapper speaking the JSON-lines protocol of
:mod:`repro.server.protocol` — used by the ``lubt request`` subcommand,
the server smoke tests, and any script that wants solves answered by a
shared resident server instead of an in-process solver::

    with ServerClient(port=9155) as c:
        reply = c.solve(topo, bounds)
        print(reply["result"]["cost"], reply["cache_hit"])

The client retries transient failures so callers don't have to: a
refused/odd connection is retried with exponential backoff and
deterministic jitter (``connect_retries``), and a typed ``busy`` shed
from admission control is retried after the server's ``retry_after``
hint (``busy_retries``).  Both loops respect ``retry_deadline`` — a
total wall-clock budget after which the last error surfaces instead of
another sleep.  ``sleep``/``clock`` are injectable so the backoff
schedule is unit-testable with a fake clock.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.data.instance_json import instance_to_dict
from repro.ebf.bounds import DelayBounds
from repro.server.protocol import ProtocolError, encode_line, jsonable
from repro.topology.serialize import topology_to_dict
from repro.topology.tree import Topology

import json


class ServerError(RuntimeError):
    """The server answered a request with an error event."""

    def __init__(self, reply: Mapping[str, Any]):
        self.reply = dict(reply)
        self.error_type = reply.get("error_type", "Error")
        self.code = reply.get("code")
        super().__init__(f"{self.error_type}: {reply.get('error', '?')}")


class ServerBusyError(ServerError):
    """Admission control shed the request and retries were exhausted."""

    def __init__(self, reply: Mapping[str, Any]):
        super().__init__(reply)
        self.retry_after = float(reply.get("retry_after", 0.0))


class ServerClient:
    """One connection to a :class:`repro.server.SolveServer`.

    ``connect_retries`` bounds reconnect attempts (with backoff +
    jitter) when the initial connection fails — a server still binding
    its socket, or a load balancer blip, shouldn't kill a batch script.
    ``busy_retries`` bounds re-sends after typed ``busy`` sheds, waiting
    at least the server's ``retry_after`` hint between attempts.
    ``retry_deadline`` caps the *total* seconds spent retrying either
    way; ``jitter_seed`` makes the backoff schedule reproducible.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 9155,
        *,
        timeout: float | None = 300.0,
        connect_retries: int = 4,
        busy_retries: int = 4,
        backoff: float = 0.2,
        backoff_cap: float = 5.0,
        retry_deadline: float | None = None,
        jitter_seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ):
        if connect_retries < 0 or busy_retries < 0:
            raise ValueError("retry counts must be >= 0")
        self._busy_retries = busy_retries
        self._backoff = backoff
        self._backoff_cap = backoff_cap
        self._rng = random.Random(jitter_seed)
        self._sleep = sleep
        self._clock = clock
        self._deadline_at = (
            None if retry_deadline is None else clock() + retry_deadline
        )
        self._sock = self._connect(host, port, timeout, connect_retries)
        self._file = self._sock.makefile("rb")
        self._next_id = 0

    # ------------------------------------------------------------------
    # retry plumbing
    # ------------------------------------------------------------------
    def _backoff_delay(self, attempt: int) -> float:
        """Exponential backoff with deterministic jitter in [0.5x, 1x]."""
        base = min(self._backoff_cap, self._backoff * (2.0 ** attempt))
        return base * (0.5 + 0.5 * self._rng.random())

    def _budget_allows(self, delay: float) -> bool:
        """Would sleeping ``delay`` stay inside the retry deadline?"""
        if self._deadline_at is None:
            return True
        return self._clock() + delay <= self._deadline_at

    def _connect(
        self, host: str, port: int, timeout: float | None, retries: int
    ) -> socket.socket:
        attempt = 0
        while True:
            try:
                return socket.create_connection(
                    (host, port), timeout=timeout
                )
            except OSError:
                delay = self._backoff_delay(attempt)
                if attempt >= retries or not self._budget_allows(delay):
                    raise
                self._sleep(delay)
                attempt += 1

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _send(self, request: dict[str, Any]) -> int:
        self._next_id += 1
        request["id"] = self._next_id
        self._sock.sendall(encode_line(request))
        return self._next_id

    def _recv(self) -> dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        obj = json.loads(line)
        if not isinstance(obj, dict):
            raise ProtocolError("server reply is not a JSON object")
        return obj

    def request(self, request: dict[str, Any]) -> dict[str, Any]:
        """Send one request, return its single reply.

        A typed ``busy`` shed is retried up to ``busy_retries`` times,
        sleeping the larger of the server's ``retry_after`` hint and the
        jittered backoff; exhausted retries raise
        :class:`ServerBusyError`.  Other error events raise
        :class:`ServerError` immediately.
        """
        attempt = 0
        while True:
            self._send(request)
            reply = self._recv()
            if reply.get("ok", False):
                return reply
            if reply.get("code") != "busy":
                raise ServerError(reply)
            delay = max(
                float(reply.get("retry_after", 0.0)),
                self._backoff_delay(attempt),
            )
            if attempt >= self._busy_retries or not self._budget_allows(
                delay
            ):
                raise ServerBusyError(reply)
            self._sleep(delay)
            attempt += 1

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def ping(self) -> dict[str, Any]:
        return self.request({"op": "ping"})

    def stats(self) -> dict[str, Any]:
        return self.request({"op": "stats"})

    def shutdown(self) -> dict[str, Any]:
        return self.request({"op": "shutdown"})

    def solve(
        self,
        topo: Topology,
        bounds: DelayBounds,
        *,
        deadline: float | None = None,
        **options: Any,
    ) -> dict[str, Any]:
        """Solve one instance; returns the ``result`` reply (with
        ``instance_key`` / ``cache_hit`` / ``warm_rows`` provenance).

        ``deadline`` (seconds) travels with the request: the server
        fails it fast with ``deadline-expired`` rather than letting it
        rot in the admission queue, and the remaining budget caps the
        pool's hard-kill solve timeout.
        """
        req: dict[str, Any] = {
            "op": "solve",
            "instance": instance_to_dict(topo, bounds, options or None),
        }
        if deadline is not None:
            req["deadline"] = float(deadline)
        return self.request(req)

    def sweep(
        self,
        topo: Topology,
        bounds_list: Iterable[DelayBounds],
        **options: Any,
    ) -> tuple[list[dict[str, Any]], dict[str, Any]]:
        """Stream a sweep; returns ``(points, done)``.

        ``points`` holds every per-point event in reply order — error
        points included, distinguishable by ``p["ok"]`` — and ``done``
        is the final summary event.
        """
        blist: Sequence[DelayBounds] = list(bounds_list)
        self._send(
            {
                "op": "sweep",
                "tree": topology_to_dict(topo),
                "bounds_list": [
                    jsonable(
                        {
                            "lower": [float(v) for v in b.lower],
                            "upper": [float(v) for v in b.upper],
                        }
                    )
                    for b in blist
                ],
                "options": options,
            }
        )
        points: list[dict[str, Any]] = []
        while True:
            reply = self._recv()
            if reply.get("event") == "done":
                return points, reply
            if reply.get("event") == "error" and "index" not in reply:
                # request-level failure (bad tree/options): nothing more
                # is coming for this sweep.
                raise ServerError(reply)
            points.append(reply)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
