"""Blocking client for the LUBT solve server.

A thin socket wrapper speaking the JSON-lines protocol of
:mod:`repro.server.protocol` — used by the ``lubt request`` subcommand,
the server smoke tests, and any script that wants solves answered by a
shared resident server instead of an in-process solver::

    with ServerClient(port=9155) as c:
        reply = c.solve(topo, bounds)
        print(reply["result"]["cost"], reply["cache_hit"])
"""

from __future__ import annotations

import socket
from typing import Any, Iterable, Mapping, Sequence

from repro.data.instance_json import instance_to_dict
from repro.ebf.bounds import DelayBounds
from repro.server.protocol import ProtocolError, encode_line, jsonable
from repro.topology.serialize import topology_to_dict
from repro.topology.tree import Topology

import json


class ServerError(RuntimeError):
    """The server answered a request with an error event."""

    def __init__(self, reply: Mapping[str, Any]):
        self.reply = dict(reply)
        self.error_type = reply.get("error_type", "Error")
        super().__init__(f"{self.error_type}: {reply.get('error', '?')}")


class ServerClient:
    """One connection to a :class:`repro.server.SolveServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 9155,
        *,
        timeout: float | None = 300.0,
    ):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")
        self._next_id = 0

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _send(self, request: dict[str, Any]) -> int:
        self._next_id += 1
        request["id"] = self._next_id
        self._sock.sendall(encode_line(request))
        return self._next_id

    def _recv(self) -> dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        obj = json.loads(line)
        if not isinstance(obj, dict):
            raise ProtocolError("server reply is not a JSON object")
        return obj

    def request(self, request: dict[str, Any]) -> dict[str, Any]:
        """Send one request, return its single reply (raises
        :class:`ServerError` on an error event)."""
        self._send(request)
        reply = self._recv()
        if not reply.get("ok", False):
            raise ServerError(reply)
        return reply

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def ping(self) -> dict[str, Any]:
        return self.request({"op": "ping"})

    def stats(self) -> dict[str, Any]:
        return self.request({"op": "stats"})

    def shutdown(self) -> dict[str, Any]:
        return self.request({"op": "shutdown"})

    def solve(
        self,
        topo: Topology,
        bounds: DelayBounds,
        **options: Any,
    ) -> dict[str, Any]:
        """Solve one instance; returns the ``result`` reply (with
        ``instance_key`` / ``cache_hit`` / ``warm_rows`` provenance)."""
        return self.request(
            {
                "op": "solve",
                "instance": instance_to_dict(topo, bounds, options or None),
            }
        )

    def sweep(
        self,
        topo: Topology,
        bounds_list: Iterable[DelayBounds],
        **options: Any,
    ) -> tuple[list[dict[str, Any]], dict[str, Any]]:
        """Stream a sweep; returns ``(points, done)``.

        ``points`` holds every per-point event in reply order — error
        points included, distinguishable by ``p["ok"]`` — and ``done``
        is the final summary event.
        """
        blist: Sequence[DelayBounds] = list(bounds_list)
        self._send(
            {
                "op": "sweep",
                "tree": topology_to_dict(topo),
                "bounds_list": [
                    jsonable(
                        {
                            "lower": [float(v) for v in b.lower],
                            "upper": [float(v) for v in b.upper],
                        }
                    )
                    for b in blist
                ],
                "options": options,
            }
        )
        points: list[dict[str, Any]] = []
        while True:
            reply = self._recv()
            if reply.get("event") == "done":
                return points, reply
            if reply.get("event") == "error" and "index" not in reply:
                # request-level failure (bad tree/options): nothing more
                # is coming for this sweep.
                raise ServerError(reply)
            points.append(reply)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
