"""A thread-safe LRU result cache for the solve server.

Values are the fully rendered response payloads (plain dicts), stored by
canonical instance key.  A hit returns the stored object unchanged, so a
repeated query's costs, edge lengths, and delays are *bit-identical* to
the first answer — the cache layer never recomputes or re-rounds.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any


class LruCache:
    """Bounded mapping with least-recently-used eviction.

    ``get`` refreshes recency; ``put`` evicts the stalest entry once
    ``capacity`` is exceeded.  Hit/miss/eviction counters feed the
    server's ``stats`` op.  ``capacity=0`` disables storage (every
    lookup misses) without callers needing a special case.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._store: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> Any | None:
        with self._lock:
            if key in self._store:
                self._store.move_to_end(key)
                self.hits += 1
                return self._store[key]
            self.misses += 1
            return None

    def put(self, key: str, value: Any) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._store[key] = value
            self._store.move_to_end(key)
            while len(self._store) > self.capacity:
                self._store.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._store

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "size": len(self._store),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
