"""Cross-request WarmStart store, keyed by topology structural hash.

PR 5's :class:`repro.ebf.WarmStart` makes a *sweep* fast by carrying the
lazy loop's active Steiner rows from solve to solve.  The store lifts
that to the server's lifetime: every request that solves a topology
deposits its discovered rows under the topology's structural hash, and
every later request on the same structure — from any client, in any
connection — re-seeds from the accumulated set.  Soundness is inherited
from the sweep contract (a Steiner row is a fact about the topology,
never about the bounds), and the hash-rekeyed ``WarmStart`` refuses rows
whose key doesn't match the topology it is handed.
"""

from __future__ import annotations

import threading
from typing import Iterable

from repro.ebf.sweep import WarmStart

Pair = tuple[int, int, int]


class WarmStore:
    """Accumulated active Steiner rows per topology hash (thread-safe)."""

    def __init__(self, max_topologies: int = 512):
        if max_topologies < 1:
            raise ValueError("max_topologies must be >= 1")
        self._max = max_topologies
        self._rows: dict[str, list[Pair]] = {}
        self._seen: dict[str, set[tuple[int, int]]] = {}
        self._lock = threading.Lock()
        self.absorbed = 0

    def pairs(self, key: str) -> list[Pair]:
        """A snapshot of the carried rows for ``key`` (possibly empty)."""
        with self._lock:
            return list(self._rows.get(key, ()))

    def warm_for(self, key: str) -> WarmStart:
        """A fresh :class:`WarmStart` pre-seeded with the stored rows."""
        return WarmStart.seeded(key, self.pairs(key))

    def absorb(self, key: str, pairs: Iterable[Pair]) -> int:
        """Merge rows a solve discovered; returns the fresh-row count.

        Dedup is by orientation-normalized ``(i, j)`` — the same rule
        the lazy loop and ``WarmStart`` use — so replayed rows are free.
        """
        fresh = 0
        with self._lock:
            if key not in self._rows:
                # Bound total memory: drop the whole store rather than
                # track per-topology recency — warm rows are a pure
                # optimization, rebuilding them costs one cold solve.
                if len(self._rows) >= self._max:
                    self._rows.clear()
                    self._seen.clear()
                self._rows[key] = []
                self._seen[key] = set()
            rows, seen = self._rows[key], self._seen[key]
            for i, j, k in pairs:
                nk = (i, j) if i < j else (j, i)
                if nk not in seen:
                    seen.add(nk)
                    rows.append((int(i), int(j), int(k)))
                    fresh += 1
            self.absorbed += fresh
        return fresh

    def rows(self, key: str) -> int:
        with self._lock:
            return len(self._rows.get(key, ()))

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "topologies": len(self._rows),
                "total_rows": sum(len(r) for r in self._rows.values()),
                "absorbed": self.absorbed,
            }
