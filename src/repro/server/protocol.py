"""The solve-server wire protocol: JSON lines over a stream socket.

Each request is one JSON object on one line; each reply is one or more
JSON objects, one per line.  Multi-answer operations (sweeps) *stream*:
every solved point is written as soon as it exists, followed by a final
``done`` event, so a client watches progress instead of a silent pipe.

Requests::

    {"op": "solve", "id": 1, "instance": {...lubt-instance-v1...}}
    {"op": "sweep", "id": 2, "tree": {...lubt-tree-v1...},
     "bounds_list": [{"lower": [...], "upper": [...]}, ...],
     "options": {...}}
    {"op": "stats", "id": 3}
    {"op": "ping",  "id": 4}
    {"op": "shutdown", "id": 5}

Replies (``id`` echoes the request)::

    {"id": 1, "ok": true,  "event": "result", "instance_key": "...",
     "cache_hit": false, "warm_rows": 0, "result": {...}, "stats": {...}}
    {"id": 2, "ok": true,  "event": "point", "index": 0, ...}
    {"id": 2, "ok": true,  "event": "done", "points": 16,
     "cache_hits": 3, "warm_rows_total": 41}
    {"id": 1, "ok": false, "event": "error", "error": "...",
     "error_type": "InfeasibleError", "code": "solve-error"}
    {"id": 1, "ok": false, "event": "busy", "code": "busy",
     "retry_after": 0.8, "error": "..."}

Error replies carry a **stable machine-readable code** so clients can
react without parsing messages:

========================  ==============================================
``busy``                  admission control shed the request; retry
                          after ``retry_after`` seconds
``deadline-expired``      the request's ``deadline`` passed before a
                          solve slot opened
``oversized``             the request line exceeded the server's line
                          limit; the connection closes after this reply
``bad-request``           malformed request (bad JSON, unknown op/option)
``solve-error``           the solve itself failed (infeasible, backend
                          failure, timeout, ...)
========================  ==============================================

Solve/sweep requests may carry ``"deadline": <seconds>`` — a client-side
budget the server honors end to end: expired-in-queue requests fail fast
with ``deadline-expired``, and the remaining budget caps the pool's
hard-kill solve timeout.

``result`` carries ``cost`` (raw float, bit-exact), ``canonical_cost``
(:func:`repro.ebf.canonical_cost`), ``edge_lengths``, ``delays``;
``stats`` is the :class:`repro.ebf.SolveStats` record plus the resilient
:class:`~repro.resilience.SolveReport` attempt log when one exists.
Every payload is strict JSON — non-finite floats travel as the strings
``"inf"`` / ``"-inf"`` / ``"nan"`` (see :mod:`repro.data.instance_json`).
"""

from __future__ import annotations

import json
import math
from typing import Any

#: Protocol revision, echoed by ``ping`` and checked by clients.
PROTOCOL_VERSION = 1

OPS = ("solve", "sweep", "stats", "ping", "shutdown")

#: Hard per-line ceiling (16 MiB) so a confused client cannot balloon
#: the server's read buffer.
MAX_LINE_BYTES = 16 * 1024 * 1024


class ProtocolError(ValueError):
    """A request line the server cannot act on."""


def jsonable(value: Any) -> Any:
    """Recursively make ``value`` strict-JSON-safe (non-finite floats
    become their string spellings; numpy scalars/arrays are assumed to
    be converted by the caller)."""
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if math.isnan(value):
            return "nan"
        return value
    if isinstance(value, dict):
        return {k: jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    return value


def encode_line(obj: dict[str, Any]) -> bytes:
    """One reply/request object -> one newline-terminated JSON line."""
    return (
        json.dumps(jsonable(obj), separators=(",", ":"), allow_nan=False)
        + "\n"
    ).encode("utf-8")


def decode_line(line: bytes | str) -> dict[str, Any]:
    """Parse and structurally validate one request line."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object")
    op = obj.get("op")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r} (expected one of {', '.join(OPS)})"
        )
    return obj


def error_reply(
    req_id: Any,
    exc: BaseException | str,
    *,
    event: str = "error",
    code: str | None = None,
) -> dict[str, Any]:
    reply: dict[str, Any] = {"id": req_id, "ok": False, "event": event}
    if code is not None:
        reply["code"] = code
    if isinstance(exc, BaseException):
        reply["error"] = str(exc)
        reply["error_type"] = type(exc).__name__
    else:
        reply["error"] = str(exc)
    return reply


def busy_reply(req_id: Any, retry_after: float) -> dict[str, Any]:
    """The typed admission-control shed response (code ``busy``)."""
    return {
        "id": req_id,
        "ok": False,
        "event": "busy",
        "code": "busy",
        "retry_after": retry_after,
        "error": (
            f"server at admission capacity — retry in ~{retry_after:g}s"
        ),
    }
