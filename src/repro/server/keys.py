"""Canonical instance keys for the solve server.

Two requests should hit the same cache slot exactly when a solver could
not tell them apart.  The key therefore combines:

* the **topology hash** — :func:`repro.topology.topology_hash`, a
  structural SHA-256 over the serialized tree document;
* the **quantized bounds** — every bound rounded to
  :data:`repro.ebf.sweep.CANONICAL_BITS` significant mantissa bits by
  :func:`repro.ebf.canonical_cost` (~1e-10 relative), so two clients
  that computed the "same" window through different float paths (e.g.
  ``0.8 * radius`` vs ``radius * 8 / 10``) still share a key, while any
  difference a solver could resolve (LP tolerances are ~1e-6) gets its
  own slot;
* the **solve options**, canonically JSON-encoded — ``mode`` or
  ``backend`` change which vertex of a degenerate optimal face comes
  back, and a bit-identical cache must not mix them.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any, Mapping

from repro.ebf.bounds import DelayBounds
from repro.ebf.sweep import CANONICAL_BITS, canonical_cost
from repro.topology.serialize import topology_hash
from repro.topology.tree import Topology


def quantize_bounds(
    bounds: DelayBounds, bits: int = CANONICAL_BITS
) -> tuple[tuple[float, ...], tuple[float, ...]]:
    """The bounds with every entry mantissa-truncated to ``bits``."""
    return (
        tuple(canonical_cost(float(v), bits) for v in bounds.lower),
        tuple(canonical_cost(float(v), bits) for v in bounds.upper),
    )


def _bounds_token(bounds: DelayBounds) -> str:
    lo, hi = quantize_bounds(bounds)
    # repr() round-trips floats exactly; inf/nan spelled out explicitly
    # so the token never depends on json's non-standard literals.
    def tok(v: float) -> str:
        if math.isinf(v):
            return "inf" if v > 0 else "-inf"
        if math.isnan(v):
            return "nan"
        return repr(v)

    return ";".join(tok(v) for v in lo) + "|" + ";".join(tok(v) for v in hi)


def _options_token(options: Mapping[str, Any] | None) -> str:
    if not options:
        return "{}"
    return json.dumps(dict(options), sort_keys=True, separators=(",", ":"),
                      default=str)


def instance_key(
    topo: Topology,
    bounds: DelayBounds,
    options: Mapping[str, Any] | None = None,
) -> str:
    """The canonical cache key for one solve request (hex, 64 chars)."""
    h = hashlib.sha256()
    h.update(topology_hash(topo).encode())
    h.update(b"\x00")
    h.update(_bounds_token(bounds).encode())
    h.update(b"\x00")
    h.update(_options_token(options).encode())
    return h.hexdigest()
