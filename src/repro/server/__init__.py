"""LUBT-as-a-service: a resident solve server with a canonical instance
cache and cross-request warm-start reuse.

The pieces:

* :mod:`repro.server.keys` — canonical instance keys: topology structural
  hash + mantissa-quantized bounds + canonical options JSON;
* :mod:`repro.server.cache` — thread-safe LRU result cache (bit-identical
  repeated answers);
* :mod:`repro.server.warm` — cross-request Steiner-row store keyed by
  topology hash, feeding :class:`repro.ebf.WarmStart` re-seeding;
* :mod:`repro.server.protocol` — the JSON-lines wire format;
* :mod:`repro.server.dispatch` — the asyncio :class:`SolveServer` (and
  :class:`ServerThread` for embedding one in tests/benches), with
  admission control, client deadlines, and per-backend circuit
  breakers (see docs/SERVER.md "Overload, deadlines, and recovery");
* :mod:`repro.server.client` — the blocking :class:`ServerClient`,
  with backoff-and-jitter retries on connect failures and typed
  ``busy`` sheds.
"""

from repro.server.cache import LruCache
from repro.server.client import ServerBusyError, ServerClient, ServerError
from repro.server.dispatch import (
    ALLOWED_OPTIONS,
    DeadlineExpiredError,
    ServerOverloadedError,
    ServerThread,
    SolveServer,
)
from repro.server.keys import instance_key, quantize_bounds
from repro.server.protocol import (
    MAX_LINE_BYTES,
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    busy_reply,
    decode_line,
    encode_line,
    error_reply,
    jsonable,
)
from repro.server.warm import WarmStore

__all__ = [
    "ALLOWED_OPTIONS",
    "DeadlineExpiredError",
    "LruCache",
    "MAX_LINE_BYTES",
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServerBusyError",
    "ServerClient",
    "ServerError",
    "ServerOverloadedError",
    "ServerThread",
    "SolveServer",
    "WarmStore",
    "busy_reply",
    "decode_line",
    "encode_line",
    "error_reply",
    "instance_key",
    "jsonable",
    "quantize_bounds",
]
