"""LUBT-as-a-service: the resident solve server.

One :class:`SolveServer` process answers a stream of JSON solve/sweep
requests (see :mod:`repro.server.protocol`) against shared state that
makes repeated and related queries cheap:

* a **result cache** (:class:`~repro.server.cache.LruCache`) keyed by
  :func:`~repro.server.keys.instance_key` — a repeated query is answered
  bit-identically from memory, no LP runs;
* a **warm store** (:class:`~repro.server.warm.WarmStore`) keyed by
  topology hash — any client's sweep re-seeds its lazy loops from the
  active Steiner rows previous clients discovered on the same structure,
  turning PR 5's per-sweep ``WarmStart`` 3x into a cross-request win;
* a **resident worker pool** (:class:`repro.perf.WorkerPool`,
  ``jobs > 1``) — workers are forked once at startup and reused across
  requests, so per-request process cost disappears while the hard
  kill-on-timeout and crash-isolation guarantees stay.

Solves run off the event loop (executor thread, optionally a pooled
worker process), so the loop stays responsive: a 10-second LP never
blocks another client's cache hit.

Overload safety (see docs/SERVER.md "Overload, deadlines, and
recovery"): solves pass **admission control** — at most ``max_inflight``
run concurrently, at most ``queue_limit`` more wait, and anything beyond
that is shed immediately with a typed ``busy`` reply carrying a
retry-after hint, so saturation degrades into fast, honest refusals
instead of unbounded queueing.  Client ``deadline`` budgets are enforced
in the queue and propagated to the pool's hard-kill timeout.  A shared
:class:`~repro.resilience.BreakerRegistry` gives every request circuit
breakers over the LP backends; their state is visible in ``stats``.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Any, Mapping

from repro.data.instance_json import instance_from_dict
from repro.ebf.bounds import DelayBounds
from repro.ebf.sweep import WarmStart, canonical_cost
from repro.resilience.breaker import BreakerRegistry, default_registry
from repro.resilience.report import SolveReport
from repro.resilience.sanitize import StallMonitor
from repro.server.cache import LruCache
from repro.server.keys import instance_key
from repro.server.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    busy_reply,
    decode_line,
    encode_line,
    error_reply,
)
from repro.server.warm import WarmStore
from repro.topology.serialize import topology_from_dict, topology_hash


class ServerOverloadedError(RuntimeError):
    """Admission control refused the request (shed with ``busy``)."""

    def __init__(self, retry_after: float):
        self.retry_after = retry_after
        super().__init__(
            f"server at admission capacity — retry in ~{retry_after:g}s"
        )


class DeadlineExpiredError(RuntimeError):
    """The request's client-supplied deadline passed before it could run."""

#: solve_lubt keywords a request may set.  keep_lp is deliberately out
#: (payloads must stay picklable and bounded); weights/zero_edges wait
#: for a use case.
ALLOWED_OPTIONS = frozenset(
    {
        "mode",
        "backend",
        "batch",
        "max_rounds",
        "check_bounds",
        "validate",
        "resilient",
        "lp_timeout",
        "on_infeasible",
        "race",
    }
)


def _check_options(options: Mapping[str, Any]) -> dict[str, Any]:
    bad = set(options) - ALLOWED_OPTIONS
    if bad:
        raise ProtocolError(
            f"unknown solve option(s) {sorted(bad)}; "
            f"allowed: {sorted(ALLOWED_OPTIONS)}"
        )
    return dict(options)


def _deadline_at(req: Mapping[str, Any]) -> float | None:
    """Convert a request's ``deadline`` budget (seconds) to a monotonic
    instant, validating it is a positive finite number."""
    deadline = req.get("deadline")
    if deadline is None:
        return None
    try:
        seconds = float(deadline)
    except (TypeError, ValueError):
        raise ProtocolError(
            f"deadline must be a number of seconds, got {deadline!r}"
        ) from None
    if not (seconds > 0.0) or seconds != seconds or seconds == float("inf"):
        raise ProtocolError(
            f"deadline must be a positive finite number, got {deadline!r}"
        )
    return time.monotonic() + seconds


def _solve_job(
    topo, bounds, options, carried_pairs, topo_key,
    breakers=None, solvers=None,
):
    """One request's solve — runs inline, in an executor thread, or in a
    resident pool worker (module-level, so it pickles by reference).

    Returns ``(payload, pairs)``: the JSON-ready result payload and the
    warm rows (carried + newly discovered) to deposit back into the
    cross-request store.

    ``breakers`` is either a live :class:`BreakerRegistry` (inline mode)
    or the string ``"process"`` — pool workers resolve the latter to
    their own process-wide :func:`~repro.resilience.default_registry`,
    because a registry full of locks cannot travel over the task pipe
    but a *resident* worker still wants cross-request breaker memory.
    The registry's post-solve snapshot rides back on the payload under
    ``"breakers"`` (popped by the server before caching).
    """
    from repro.ebf.solver import solve_lubt

    if breakers == "process":
        breakers = default_registry()
    ws = WarmStart.seeded(topo_key, carried_pairs)
    sol = solve_lubt(
        topo, bounds, warm=ws, breakers=breakers, solvers=solvers,
        **options,
    )
    stats = sol.stats
    payload = {
        "cost": float(sol.cost),
        "canonical_cost": canonical_cost(float(sol.cost)),
        "edge_lengths": [float(v) for v in sol.edge_lengths],
        "delays": [float(v) for v in sol.delays],
        "skew": float(sol.skew),
        "stats": {
            "backend": stats.backend,
            "mode": stats.mode,
            "rounds": stats.rounds,
            "steiner_rows": stats.steiner_rows,
            "total_pairs": stats.total_pairs,
            "lp_iterations": stats.lp_iterations,
            "wall_seconds": stats.wall_seconds,
            "lp_seconds": stats.lp_seconds,
            "lp_fallbacks": stats.lp_fallbacks,
            "warm_rows": stats.warm_rows,
        },
        "attempts": [
            {
                "backend": a.backend,
                "outcome": a.outcome,
                "wall_seconds": a.wall_seconds,
            }
            for rep in sol.solve_reports
            for a in rep.attempts
        ],
        "relaxed": sol.diagnosis is not None,
    }
    if breakers is not None:
        payload["breakers"] = breakers.snapshot()
    return payload, list(ws.pairs)


class SolveServer:
    """The resident asyncio solve server (see module docstring).

    ``jobs=1`` solves in executor threads of the server process —
    zero-copy, ideal for tests and small deployments.  ``jobs > 1``
    forks a resident :class:`~repro.perf.WorkerPool` and ships each
    solve to a worker, so N requests solve truly concurrently and a
    pathological LP can be killed without hurting the server.

    ``solve_timeout`` is a hard per-request wall-clock limit (pool mode
    kills the worker; inline mode cannot interrupt a running LP and
    applies it only in pool mode).

    Admission control: at most ``max_inflight`` solves run concurrently
    (default: ``jobs``) and at most ``queue_limit`` more may wait for a
    slot; beyond that, requests are shed instantly with a typed ``busy``
    reply whose ``retry_after`` hint is an EWMA of recent solve times
    scaled by queue pressure.  Cache hits bypass admission entirely —
    an overloaded server still answers repeats from memory.

    ``solver_overrides`` maps backend names to replacement callables,
    forwarded to every solve (must be picklable in pool mode) — the
    fault-injection seam the chaos harness uses to force server-side
    backend failures.  ``max_line_bytes`` bounds one request line
    (default 16 MiB); an oversized line gets a typed ``oversized``
    error before the connection closes.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        jobs: int = 1,
        cache_size: int = 256,
        solve_timeout: float | None = None,
        start_method: str | None = None,
        max_inflight: int | None = None,
        queue_limit: int = 32,
        max_line_bytes: int = MAX_LINE_BYTES,
        solver_overrides: Mapping[str, Any] | None = None,
        stall_threshold: float | None = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if queue_limit < 0:
            raise ValueError(f"queue_limit must be >= 0, got {queue_limit}")
        if max_line_bytes < 1024:
            raise ValueError(
                f"max_line_bytes must be >= 1024, got {max_line_bytes}"
            )
        self.host = host
        self.port = port  # rewritten with the bound port after start()
        self.jobs = jobs
        self.solve_timeout = solve_timeout
        self.max_inflight = max_inflight if max_inflight is not None else jobs
        self.queue_limit = queue_limit
        self.max_line_bytes = max_line_bytes
        self.solver_overrides = (
            dict(solver_overrides) if solver_overrides else None
        )
        self.cache = LruCache(cache_size)
        self.warm = WarmStore()
        self.pool = None
        #: Shared circuit breakers for inline solves; pool workers keep
        #: their own process-wide registries (see ``_solve_job``).
        self.breakers = BreakerRegistry()
        self._start_method = start_method
        self.requests = 0
        self.solves = 0
        self.errors = 0
        #: Requests refused by admission control (typed ``busy`` replies).
        self.shed = 0
        #: Requests that died in the queue on their client deadline.
        self.deadline_expired = 0
        #: Solves (admitted or queued) currently in the system.
        self._load = 0
        self._slots: asyncio.Semaphore | None = None
        self._solve_ewma = 0.0
        #: Last breaker snapshot reported by any solve (pool workers
        #: merge theirs in via the result payload).
        self._breaker_view: dict[str, dict] = {}
        self.started_at: float | None = None
        #: Event-loop stall detector (sanitizer harness); armed when
        #: ``stall_threshold`` is given, e.g. by ``lubt chaos --sanitize``.
        self.stall_threshold = stall_threshold
        self._stall: StallMonitor | None = None
        self.last_stall_stats: dict[str, Any] | None = None
        self._server: asyncio.AbstractServer | None = None
        self._stop = asyncio.Event()
        #: Provenance reports of the most recent requests (telemetry).
        self.recent_reports: list[SolveReport] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket (async; idempotent)."""
        if self._server is not None:
            return
        if self.jobs > 1 and self.pool is None:
            from repro.perf.pool import WorkerPool

            # Forking the resident workers blocks on per-worker pipe
            # handshakes; keep it off the event loop so a concurrently
            # started server never stalls accepts (CC001).
            jobs, start_method = self.jobs, self._start_method
            self.pool = await asyncio.get_running_loop().run_in_executor(
                None, lambda: WorkerPool(jobs, start_method=start_method)
            )
        self._slots = asyncio.Semaphore(self.max_inflight)
        if self.stall_threshold is not None and self._stall is None:
            self._stall = StallMonitor(threshold=self.stall_threshold)
            self._stall.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=self.max_line_bytes,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.monotonic()

    async def serve_until_shutdown(self) -> None:
        """Start (if needed) and serve until a ``shutdown`` request or
        :meth:`request_stop`."""
        await self.start()
        try:
            await self._stop.wait()
        finally:
            await self.aclose()

    def request_stop(self) -> None:
        self._stop.set()

    async def aclose(self) -> None:
        if self._stall is not None:
            stall, self._stall = self._stall, None
            # Keep the final counters visible in post-shutdown stats().
            self.last_stall_stats = stall.stats()
            await stall.stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.pool is not None:
            # pool.close() joins (and after a grace period SIGKILLs)
            # every worker process — up to seconds of wall time.  Swap
            # the pool out first so no request races a closing pool,
            # then join off the event loop (CC001): heartbeats, stats
            # requests and connection teardowns keep flowing meanwhile.
            pool, self.pool = self.pool, None
            await asyncio.get_running_loop().run_in_executor(None, pool.close)

    def run(self) -> None:
        """Blocking entry point (the ``lubt serve`` subcommand)."""
        asyncio.run(self.serve_until_shutdown())

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:  # noqa: CC006 — teardown boundary
            # Event-loop teardown cancelled this connection (typically a
            # client parked in readline when the server shut down).  The
            # transport dies with the loop; completing normally keeps
            # asyncio's stream done-callback from logging the
            # cancellation as a crash.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            except asyncio.CancelledError:  # noqa: CC006 — teardown boundary
                pass  # cancelled mid-close; the transport dies regardless

    async def _serve_connection(self, reader, writer) -> None:
        while True:
            try:
                line = await reader.readline()
            except ValueError:
                # Oversized request line: tell the client *why* the
                # connection is about to close (stable code, so a
                # client can distinguish this from a crash) instead
                # of silently hanging up.
                self.errors += 1
                try:
                    await self._write(writer, error_reply(
                        None,
                        f"request line exceeds the server's "
                        f"{self.max_line_bytes}-byte limit",
                        code="oversized",
                    ))
                except (ConnectionError, OSError):
                    pass
                return
            except ConnectionError:
                return  # client vanished
            if not line:
                return
            if not line.strip():
                continue
            self.requests += 1
            try:
                await self._dispatch(line, writer)
            except (ConnectionError, OSError):
                return  # client vanished mid-reply; nothing to tell it
            if self._stop.is_set():
                return

    async def _dispatch(self, line: bytes, writer) -> None:
        req_id: Any = None
        try:
            req = decode_line(line)
            req_id = req.get("id")
            op = req["op"]
            if op == "ping":
                await self._write(
                    writer,
                    {
                        "id": req_id,
                        "ok": True,
                        "event": "pong",
                        "protocol": PROTOCOL_VERSION,
                    },
                )
            elif op == "stats":
                await self._write(writer, self._stats_reply(req_id))
            elif op == "shutdown":
                await self._write(
                    writer, {"id": req_id, "ok": True, "event": "bye"}
                )
                self.request_stop()
            elif op == "solve":
                await self._op_solve(req, writer)
            else:  # op == "sweep" (decode_line rejected everything else)
                await self._op_sweep(req, writer)
        except ServerOverloadedError as exc:
            self.shed += 1
            await self._write(writer, busy_reply(req_id, exc.retry_after))
        except DeadlineExpiredError as exc:
            self.deadline_expired += 1
            self.errors += 1
            await self._write(
                writer, error_reply(req_id, exc, code="deadline-expired")
            )
        except ProtocolError as exc:
            self.errors += 1
            await self._write(
                writer, error_reply(req_id, exc, code="bad-request")
            )
        except Exception as exc:  # noqa: BLE001 — protocol boundary: any
            # bad request or failed solve becomes an error reply; the
            # connection (and server) live on.
            self.errors += 1
            await self._write(
                writer, error_reply(req_id, exc, code="solve-error")
            )

    async def _write(self, writer, obj: dict[str, Any]) -> None:
        writer.write(encode_line(obj))
        await writer.drain()

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    async def _op_solve(self, req: dict[str, Any], writer) -> None:
        if "instance" not in req:
            raise ProtocolError("solve request needs an 'instance' document")
        topo, bounds, options = instance_from_dict(req["instance"])
        options.update(req.get("options") or {})
        options = _check_options(options)
        deadline_at = _deadline_at(req)
        reply = await self._answer(topo, bounds, options, deadline_at)
        reply.update({"id": req.get("id"), "ok": True, "event": "result"})
        await self._write(writer, reply)

    async def _op_sweep(self, req: dict[str, Any], writer) -> None:
        if "tree" not in req or "bounds_list" not in req:
            raise ProtocolError(
                "sweep request needs 'tree' and 'bounds_list'"
            )
        topo, _, _ = topology_from_dict(req["tree"])
        options = _check_options(req.get("options") or {})
        # Unchecked on purpose: a sweep may probe broken windows, and a
        # bad point must fail *as that point* (per-point error event),
        # not poison the whole request.  solve_lubt's check_bounds still
        # vets each point unless the client turned it off.
        bounds_list = [
            DelayBounds.unchecked(
                [float(v) for v in b["lower"]],
                [float(v) for v in b["upper"]],
            )
            for b in req["bounds_list"]
        ]
        req_id = req.get("id")
        deadline_at = _deadline_at(req)
        cache_hits = warm_total = errors = 0
        for index, bounds in enumerate(bounds_list):
            try:
                reply = await self._answer(topo, bounds, options, deadline_at)
            except ServerOverloadedError as exc:
                # A sweep sheds per point: earlier answers stand, this
                # point gets the typed busy event, the sweep goes on.
                self.shed += 1
                errors += 1
                point = busy_reply(req_id, exc.retry_after)
                point["index"] = index
                await self._write(writer, point)
                continue
            except Exception as exc:  # noqa: BLE001 — per-point boundary:
                # one infeasible point must not kill the rest of a sweep.
                errors += 1
                self.errors += 1
                code = (
                    "deadline-expired"
                    if isinstance(exc, DeadlineExpiredError)
                    else "solve-error"
                )
                if isinstance(exc, DeadlineExpiredError):
                    self.deadline_expired += 1
                point = error_reply(req_id, exc, code=code)
                point["index"] = index
                await self._write(writer, point)
                continue
            cache_hits += 1 if reply["cache_hit"] else 0
            warm_total += reply["warm_rows"]
            reply.update(
                {"id": req_id, "ok": True, "event": "point", "index": index}
            )
            await self._write(writer, reply)
        await self._write(
            writer,
            {
                "id": req_id,
                "ok": True,
                "event": "done",
                "points": len(bounds_list),
                "cache_hits": cache_hits,
                "warm_rows_total": warm_total,
                "errors": errors,
            },
        )

    def _cache_reply(self, key: str, cached: dict) -> dict[str, Any]:
        self._record_report(
            SolveReport(instance_key=key, cache_hit=True,
                        warm_rows=cached["stats"]["warm_rows"])
        )
        return {
            "instance_key": key,
            "cache_hit": True,
            "warm_rows": cached["stats"]["warm_rows"],
            "result": cached,
        }

    def _retry_after_hint(self) -> float:
        """How long a shed client should wait: the recent-solve EWMA
        scaled by queue pressure (more waiting work, longer hint)."""
        base = self._solve_ewma if self._solve_ewma > 0.0 else 0.25
        excess = max(0, self._load - self.max_inflight)
        return round(base * (1.0 + excess / max(1, self.max_inflight)), 3)

    async def _answer(
        self, topo, bounds, options, deadline_at: float | None = None
    ) -> dict[str, Any]:
        """Solve one (topology, bounds, options) query through the cache
        and warm store; returns the reply body (no envelope fields).

        Fresh solves pass admission control: shed with
        :class:`ServerOverloadedError` when the queue is full, wait for
        one of ``max_inflight`` slots otherwise, and honor
        ``deadline_at`` (monotonic) both in the queue and as a cap on
        the pool's hard-kill timeout.  Cache hits skip all of it.
        """
        key = instance_key(topo, bounds, options)
        cached = self.cache.get(key)
        if cached is not None:
            return self._cache_reply(key, cached)
        if self._load >= self.max_inflight + self.queue_limit:
            raise ServerOverloadedError(self._retry_after_hint())
        assert self._slots is not None, "server not started"
        self._load += 1
        try:
            async with self._slots:
                remaining = None
                if deadline_at is not None:
                    remaining = deadline_at - time.monotonic()
                    if remaining <= 0.0:
                        raise DeadlineExpiredError(
                            "deadline expired while waiting for a solve slot"
                        )
                # The wait may have outlived an identical in-flight
                # request; serving its cached answer keeps repeats
                # bit-identical and skips a redundant solve.
                cached = self.cache.get(key)
                if cached is not None:
                    return self._cache_reply(key, cached)
                tkey = topology_hash(topo)
                carried = self.warm.pairs(tkey)
                loop = asyncio.get_running_loop()
                t0 = time.monotonic()
                payload, pairs = await loop.run_in_executor(
                    None, self._solve_blocking,
                    topo, bounds, options, carried, tkey, remaining,
                )
                self._solve_ewma = (
                    0.7 * self._solve_ewma + 0.3 * (time.monotonic() - t0)
                    if self._solve_ewma > 0.0
                    else time.monotonic() - t0
                )
        finally:
            self._load -= 1
        self.solves += 1
        self._merge_breakers(payload.pop("breakers", None))
        self.warm.absorb(tkey, pairs)
        self.cache.put(key, payload)
        self._record_report(
            SolveReport(instance_key=key, cache_hit=False,
                        warm_rows=payload["stats"]["warm_rows"])
        )
        return {
            "instance_key": key,
            "cache_hit": False,
            "warm_rows": payload["stats"]["warm_rows"],
            "result": payload,
        }

    def _merge_breakers(self, snapshot: dict | None) -> None:
        if snapshot:
            self._breaker_view.update(snapshot)

    def _solve_blocking(
        self, topo, bounds, options, carried, tkey, remaining=None
    ):
        if self.pool is None:
            return _solve_job(
                topo, bounds, options, carried, tkey,
                breakers=self.breakers, solvers=self.solver_overrides,
            )
        timeout = self.solve_timeout
        if remaining is not None:
            timeout = remaining if timeout is None else min(timeout, remaining)
        outcome = self.pool.submit(
            _solve_job,
            (topo, bounds, options, carried, tkey,
             "process", self.solver_overrides),
            timeout=timeout,
        )
        if outcome.ok:
            return outcome.value
        kind = (
            "timed out" if outcome.timed_out
            else "crashed" if outcome.crashed
            else "failed"
        )
        raise RuntimeError(f"pooled solve {kind}: {outcome.error}")

    def _record_report(self, report: SolveReport) -> None:
        self.recent_reports.append(report)
        del self.recent_reports[:-64]

    def _stats_reply(self, req_id: Any) -> dict[str, Any]:
        uptime = (
            time.monotonic() - self.started_at
            if self.started_at is not None
            else 0.0
        )
        breakers = dict(self._breaker_view)
        breakers.update(self.breakers.snapshot())
        return {
            "id": req_id,
            "ok": True,
            "event": "stats",
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": uptime,
            "requests": self.requests,
            "solves": self.solves,
            "errors": self.errors,
            "shed": self.shed,
            "deadline_expired": self.deadline_expired,
            "jobs": self.jobs,
            "admission": {
                "max_inflight": self.max_inflight,
                "queue_limit": self.queue_limit,
                "load": self._load,
                "retry_after_hint": self._retry_after_hint(),
            },
            "breakers": breakers,
            "cache": self.cache.stats(),
            "warm": self.warm.stats(),
            "pool": (
                None
                if self.pool is None
                else {
                    "tasks_run": self.pool.tasks_run,
                    "workers_replaced": self.pool.workers_replaced,
                }
            ),
            "stall": (
                self._stall.stats()
                if self._stall is not None
                else self.last_stall_stats
            ),
        }


class ServerThread:
    """Run a :class:`SolveServer` on a daemon thread (tests, benches,
    and embedding a server inside another process).

    The constructor blocks until the socket is bound, so ``.port`` is
    immediately connectable::

        with ServerThread(jobs=2) as handle:
            client = ServerClient(port=handle.port)
    """

    def __init__(self, timeout: float = 30.0, **server_kwargs: Any):
        self.server = SolveServer(**server_kwargs)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._main, name="lubt-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server did not start in time")
        if self._error is not None:
            raise RuntimeError(f"server failed to start: {self._error}")

    @property
    def port(self) -> int:
        return self.server.port

    def _main(self) -> None:
        async def amain():
            try:
                await self.server.start()
                self._loop = asyncio.get_running_loop()
            except BaseException as exc:  # noqa: BLE001 — startup report
                self._error = exc
                self._ready.set()
                return
            self._ready.set()
            await self.server.serve_until_shutdown()

        asyncio.run(amain())

    def stop(self, timeout: float = 30.0) -> None:
        """Signal shutdown and join the server thread.

        Raises :class:`RuntimeError` if the thread is still alive after
        ``timeout`` seconds — a hung server must be a loud diagnostic
        (naming the port so the stuck process is findable), never a
        silent return that leaks a daemon thread holding the socket.
        """
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.server.request_stop)
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError(
                f"server thread did not exit within {timeout:g}s "
                f"(port {self.server.port}, "
                f"{self.server._load} solve(s) in flight) — "
                f"likely a wedged solve or executor; the daemon thread "
                f"has been abandoned"
            )

    def __enter__(self) -> "ServerThread":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
