"""LUBT-as-a-service: the resident solve server.

One :class:`SolveServer` process answers a stream of JSON solve/sweep
requests (see :mod:`repro.server.protocol`) against shared state that
makes repeated and related queries cheap:

* a **result cache** (:class:`~repro.server.cache.LruCache`) keyed by
  :func:`~repro.server.keys.instance_key` — a repeated query is answered
  bit-identically from memory, no LP runs;
* a **warm store** (:class:`~repro.server.warm.WarmStore`) keyed by
  topology hash — any client's sweep re-seeds its lazy loops from the
  active Steiner rows previous clients discovered on the same structure,
  turning PR 5's per-sweep ``WarmStart`` 3x into a cross-request win;
* a **resident worker pool** (:class:`repro.perf.WorkerPool`,
  ``jobs > 1``) — workers are forked once at startup and reused across
  requests, so per-request process cost disappears while the hard
  kill-on-timeout and crash-isolation guarantees stay.

Solves run off the event loop (executor thread, optionally a pooled
worker process), so the loop stays responsive: a 10-second LP never
blocks another client's cache hit.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Any, Mapping

from repro.data.instance_json import instance_from_dict
from repro.ebf.bounds import DelayBounds
from repro.ebf.sweep import WarmStart, canonical_cost
from repro.resilience.report import SolveReport
from repro.server.cache import LruCache
from repro.server.keys import instance_key
from repro.server.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_line,
    encode_line,
    error_reply,
)
from repro.server.warm import WarmStore
from repro.topology.serialize import topology_from_dict, topology_hash

#: solve_lubt keywords a request may set.  keep_lp is deliberately out
#: (payloads must stay picklable and bounded); weights/zero_edges wait
#: for a use case.
ALLOWED_OPTIONS = frozenset(
    {
        "mode",
        "backend",
        "batch",
        "max_rounds",
        "check_bounds",
        "validate",
        "resilient",
        "lp_timeout",
        "on_infeasible",
        "race",
    }
)


def _check_options(options: Mapping[str, Any]) -> dict[str, Any]:
    bad = set(options) - ALLOWED_OPTIONS
    if bad:
        raise ProtocolError(
            f"unknown solve option(s) {sorted(bad)}; "
            f"allowed: {sorted(ALLOWED_OPTIONS)}"
        )
    return dict(options)


def _solve_job(topo, bounds, options, carried_pairs, topo_key):
    """One request's solve — runs inline, in an executor thread, or in a
    resident pool worker (module-level, so it pickles by reference).

    Returns ``(payload, pairs)``: the JSON-ready result payload and the
    warm rows (carried + newly discovered) to deposit back into the
    cross-request store.
    """
    from repro.ebf.solver import solve_lubt

    ws = WarmStart.seeded(topo_key, carried_pairs)
    sol = solve_lubt(topo, bounds, warm=ws, **options)
    stats = sol.stats
    payload = {
        "cost": float(sol.cost),
        "canonical_cost": canonical_cost(float(sol.cost)),
        "edge_lengths": [float(v) for v in sol.edge_lengths],
        "delays": [float(v) for v in sol.delays],
        "skew": float(sol.skew),
        "stats": {
            "backend": stats.backend,
            "mode": stats.mode,
            "rounds": stats.rounds,
            "steiner_rows": stats.steiner_rows,
            "total_pairs": stats.total_pairs,
            "lp_iterations": stats.lp_iterations,
            "wall_seconds": stats.wall_seconds,
            "lp_seconds": stats.lp_seconds,
            "lp_fallbacks": stats.lp_fallbacks,
            "warm_rows": stats.warm_rows,
        },
        "attempts": [
            {
                "backend": a.backend,
                "outcome": a.outcome,
                "wall_seconds": a.wall_seconds,
            }
            for rep in sol.solve_reports
            for a in rep.attempts
        ],
        "relaxed": sol.diagnosis is not None,
    }
    return payload, list(ws.pairs)


class SolveServer:
    """The resident asyncio solve server (see module docstring).

    ``jobs=1`` solves in executor threads of the server process —
    zero-copy, ideal for tests and small deployments.  ``jobs > 1``
    forks a resident :class:`~repro.perf.WorkerPool` and ships each
    solve to a worker, so N requests solve truly concurrently and a
    pathological LP can be killed without hurting the server.

    ``solve_timeout`` is a hard per-request wall-clock limit (pool mode
    kills the worker; inline mode cannot interrupt a running LP and
    applies it only in pool mode).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        jobs: int = 1,
        cache_size: int = 256,
        solve_timeout: float | None = None,
        start_method: str | None = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.host = host
        self.port = port  # rewritten with the bound port after start()
        self.jobs = jobs
        self.solve_timeout = solve_timeout
        self.cache = LruCache(cache_size)
        self.warm = WarmStore()
        self.pool = None
        self._start_method = start_method
        self.requests = 0
        self.solves = 0
        self.errors = 0
        self.started_at: float | None = None
        self._server: asyncio.AbstractServer | None = None
        self._stop = asyncio.Event()
        #: Provenance reports of the most recent requests (telemetry).
        self.recent_reports: list[SolveReport] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket (async; idempotent)."""
        if self._server is not None:
            return
        if self.jobs > 1 and self.pool is None:
            from repro.perf.pool import WorkerPool

            self.pool = WorkerPool(self.jobs, start_method=self._start_method)
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.monotonic()

    async def serve_until_shutdown(self) -> None:
        """Start (if needed) and serve until a ``shutdown`` request or
        :meth:`request_stop`."""
        await self.start()
        try:
            await self._stop.wait()
        finally:
            await self.aclose()

    def request_stop(self) -> None:
        self._stop.set()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.pool is not None:
            self.pool.close()
            self.pool = None

    def run(self) -> None:
        """Blocking entry point (the ``lubt serve`` subcommand)."""
        asyncio.run(self.serve_until_shutdown())

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    break  # oversized line or client vanished
                if not line:
                    break
                if not line.strip():
                    continue
                self.requests += 1
                await self._dispatch(line, writer)
                if self._stop.is_set():
                    break
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            except asyncio.CancelledError:
                # Loop teardown cancelled us mid-close; the transport is
                # going away regardless, and returning normally keeps
                # asyncio's stream done-callback from logging the
                # cancellation as a crash.
                pass

    async def _dispatch(self, line: bytes, writer) -> None:
        req_id: Any = None
        try:
            req = decode_line(line)
            req_id = req.get("id")
            op = req["op"]
            if op == "ping":
                await self._write(
                    writer,
                    {
                        "id": req_id,
                        "ok": True,
                        "event": "pong",
                        "protocol": PROTOCOL_VERSION,
                    },
                )
            elif op == "stats":
                await self._write(writer, self._stats_reply(req_id))
            elif op == "shutdown":
                await self._write(
                    writer, {"id": req_id, "ok": True, "event": "bye"}
                )
                self.request_stop()
            elif op == "solve":
                await self._op_solve(req, writer)
            else:  # op == "sweep" (decode_line rejected everything else)
                await self._op_sweep(req, writer)
        except Exception as exc:  # noqa: BLE001 — protocol boundary: any
            # bad request or failed solve becomes an error reply; the
            # connection (and server) live on.
            self.errors += 1
            await self._write(writer, error_reply(req_id, exc))

    async def _write(self, writer, obj: dict[str, Any]) -> None:
        writer.write(encode_line(obj))
        await writer.drain()

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    async def _op_solve(self, req: dict[str, Any], writer) -> None:
        if "instance" not in req:
            raise ProtocolError("solve request needs an 'instance' document")
        topo, bounds, options = instance_from_dict(req["instance"])
        options.update(req.get("options") or {})
        options = _check_options(options)
        reply = await self._answer(topo, bounds, options)
        reply.update({"id": req.get("id"), "ok": True, "event": "result"})
        await self._write(writer, reply)

    async def _op_sweep(self, req: dict[str, Any], writer) -> None:
        if "tree" not in req or "bounds_list" not in req:
            raise ProtocolError(
                "sweep request needs 'tree' and 'bounds_list'"
            )
        topo, _, _ = topology_from_dict(req["tree"])
        options = _check_options(req.get("options") or {})
        # Unchecked on purpose: a sweep may probe broken windows, and a
        # bad point must fail *as that point* (per-point error event),
        # not poison the whole request.  solve_lubt's check_bounds still
        # vets each point unless the client turned it off.
        bounds_list = [
            DelayBounds.unchecked(
                [float(v) for v in b["lower"]],
                [float(v) for v in b["upper"]],
            )
            for b in req["bounds_list"]
        ]
        req_id = req.get("id")
        cache_hits = warm_total = errors = 0
        for index, bounds in enumerate(bounds_list):
            try:
                reply = await self._answer(topo, bounds, options)
            except Exception as exc:  # noqa: BLE001 — per-point boundary:
                # one infeasible point must not kill the rest of a sweep.
                errors += 1
                self.errors += 1
                point = error_reply(req_id, exc)
                point["index"] = index
                await self._write(writer, point)
                continue
            cache_hits += 1 if reply["cache_hit"] else 0
            warm_total += reply["warm_rows"]
            reply.update(
                {"id": req_id, "ok": True, "event": "point", "index": index}
            )
            await self._write(writer, reply)
        await self._write(
            writer,
            {
                "id": req_id,
                "ok": True,
                "event": "done",
                "points": len(bounds_list),
                "cache_hits": cache_hits,
                "warm_rows_total": warm_total,
                "errors": errors,
            },
        )

    async def _answer(self, topo, bounds, options) -> dict[str, Any]:
        """Solve one (topology, bounds, options) query through the cache
        and warm store; returns the reply body (no envelope fields)."""
        key = instance_key(topo, bounds, options)
        cached = self.cache.get(key)
        if cached is not None:
            self._record_report(
                SolveReport(instance_key=key, cache_hit=True,
                            warm_rows=cached["stats"]["warm_rows"])
            )
            return {
                "instance_key": key,
                "cache_hit": True,
                "warm_rows": cached["stats"]["warm_rows"],
                "result": cached,
            }
        tkey = topology_hash(topo)
        carried = self.warm.pairs(tkey)
        loop = asyncio.get_running_loop()
        payload, pairs = await loop.run_in_executor(
            None, self._solve_blocking, topo, bounds, options, carried, tkey
        )
        self.solves += 1
        self.warm.absorb(tkey, pairs)
        self.cache.put(key, payload)
        self._record_report(
            SolveReport(instance_key=key, cache_hit=False,
                        warm_rows=payload["stats"]["warm_rows"])
        )
        return {
            "instance_key": key,
            "cache_hit": False,
            "warm_rows": payload["stats"]["warm_rows"],
            "result": payload,
        }

    def _solve_blocking(self, topo, bounds, options, carried, tkey):
        if self.pool is None:
            return _solve_job(topo, bounds, options, carried, tkey)
        outcome = self.pool.submit(
            _solve_job,
            (topo, bounds, options, carried, tkey),
            timeout=self.solve_timeout,
        )
        if outcome.ok:
            return outcome.value
        kind = (
            "timed out" if outcome.timed_out
            else "crashed" if outcome.crashed
            else "failed"
        )
        raise RuntimeError(f"pooled solve {kind}: {outcome.error}")

    def _record_report(self, report: SolveReport) -> None:
        self.recent_reports.append(report)
        del self.recent_reports[:-64]

    def _stats_reply(self, req_id: Any) -> dict[str, Any]:
        uptime = (
            time.monotonic() - self.started_at
            if self.started_at is not None
            else 0.0
        )
        return {
            "id": req_id,
            "ok": True,
            "event": "stats",
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": uptime,
            "requests": self.requests,
            "solves": self.solves,
            "errors": self.errors,
            "jobs": self.jobs,
            "cache": self.cache.stats(),
            "warm": self.warm.stats(),
            "pool": (
                None
                if self.pool is None
                else {
                    "tasks_run": self.pool.tasks_run,
                    "workers_replaced": self.pool.workers_replaced,
                }
            ),
        }


class ServerThread:
    """Run a :class:`SolveServer` on a daemon thread (tests, benches,
    and embedding a server inside another process).

    The constructor blocks until the socket is bound, so ``.port`` is
    immediately connectable::

        with ServerThread(jobs=2) as handle:
            client = ServerClient(port=handle.port)
    """

    def __init__(self, timeout: float = 30.0, **server_kwargs: Any):
        self.server = SolveServer(**server_kwargs)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._main, name="lubt-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server did not start in time")
        if self._error is not None:
            raise RuntimeError(f"server failed to start: {self._error}")

    @property
    def port(self) -> int:
        return self.server.port

    def _main(self) -> None:
        async def amain():
            try:
                await self.server.start()
                self._loop = asyncio.get_running_loop()
            except BaseException as exc:  # noqa: BLE001 — startup report
                self._error = exc
                self._ready.set()
                return
            self._ready.set()
            await self.server.serve_until_shutdown()

        asyncio.run(amain())

    def stop(self) -> None:
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.server.request_stop)
        self._thread.join(timeout=30)

    def __enter__(self) -> "ServerThread":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
