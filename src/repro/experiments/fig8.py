"""Figure 8: the cost vs [lower, upper] bounds tradeoff curve (prim2).

The paper plots tree cost against the bound window.  We regenerate the
surface as a family of series: one per window *width* (the skew budget),
sweeping the window position; each series traces how cost falls as the
window slides away from the zero-skew corner and flattens once the bounds
stop binding.  The figure's qualitative content — monotone decrease in
both the width and the position until saturation at the unbounded-Steiner
cost — is asserted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import Table
from repro.data import Benchmark
from repro.ebf import DelayBounds, canonical_cost
from repro.geometry import manhattan_radius_from
from repro.perf import solve_sweep_sharded
from repro.topology import nearest_neighbor_topology

#: Window widths (skew budgets) and lower-bound sweep, normalized.
DEFAULT_WIDTHS = (0.0, 0.1, 0.3, 0.5, 1.0)
DEFAULT_LOWERS = (1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.25, 0.0)


@dataclass(frozen=True)
class Fig8Point:
    bench: str
    width: float  # u - l, normalized
    lower: float  # normalized
    upper: float  # normalized
    cost: float


def run_fig8(
    bench: Benchmark,
    widths=DEFAULT_WIDTHS,
    lowers=DEFAULT_LOWERS,
    backend: str = "auto",
    jobs: int = 1,
    warm: bool = True,
    journal=None,
) -> list[Fig8Point]:
    """The tradeoff sweep, warm-started.

    The grid is one fixed topology under many bound sets, so it runs as
    a :func:`~repro.perf.solve_sweep_sharded` sweep: each solve seeds
    the next one's lazy loop with its active Steiner rows (``warm=False``
    solves every point cold).  Each window is ``[l, max(l + w, 1)]`` so
    every point is feasible (Eq. 3 needs u >= 1 in radius units).
    ``jobs > 1`` splits the sweep into contiguous shards, one worker
    (and one process-local warm state) per shard.  Reported costs are
    :func:`~repro.ebf.canonical_cost`-quantized, so warm, cold, and
    sharded runs agree bit for bit; the shape checks run on the
    gathered series either way.  ``journal`` (a
    :class:`~repro.perf.SolveJournal`) replays completed grid points
    and durably appends fresh ones, so a killed sweep resumes where it
    stopped (``lubt fig8 --journal/--resume``).
    """
    sinks = list(bench.sinks)
    radius = manhattan_radius_from(bench.source, sinks)
    topo = nearest_neighbor_topology(sinks, bench.source)

    grid = [(w, lo, max(lo + w, 1.0)) for w in widths for lo in lowers]
    bounds_list = [
        DelayBounds.uniform(bench.num_sinks, lo * radius, hi * radius)
        for _, lo, hi in grid
    ]
    sols = solve_sweep_sharded(
        topo,
        bounds_list,
        jobs=jobs,
        journal=journal,
        warm=warm,
        backend=backend,
        check_bounds=False,
    )
    points = [
        Fig8Point(bench.name, w, lo, hi, canonical_cost(sol.cost))
        for (w, lo, hi), sol in zip(grid, sols)
    ]
    for start in range(0, len(points), len(lowers)):
        _check_series(points[start : start + len(lowers)])
    _check_across_widths(points)
    return points


def _check_series(series: list[Fig8Point]) -> None:
    """Within one width, lowering the lower bound never raises cost."""
    by_lower = sorted(series, key=lambda p: p.lower)
    for looser, tighter in zip(by_lower, by_lower[1:]):
        if looser.cost > tighter.cost + 1e-6 * max(1.0, tighter.cost):
            raise AssertionError(
                f"Fig 8 shape violated: cost rose from l={tighter.lower} "
                f"to l={looser.lower} at width {tighter.width}"
            )


def _check_across_widths(points: list[Fig8Point]) -> None:
    """At equal lower bound, a wider window never costs more."""
    by_key: dict[float, list[Fig8Point]] = {}
    for p in points:
        by_key.setdefault(p.lower, []).append(p)
    for lower, group in by_key.items():
        group.sort(key=lambda p: p.width)
        for narrow, wide in zip(group, group[1:]):
            if wide.upper >= narrow.upper and wide.cost > narrow.cost + 1e-6 * max(
                1.0, narrow.cost
            ):
                raise AssertionError(
                    f"Fig 8 shape violated at l={lower}: widening the window "
                    "increased cost"
                )


def render_fig8(points: list[Fig8Point]) -> str:
    table = Table(
        ["bench", "width (u-l)", "lower", "upper", "tree cost"],
        title="Figure 8 data: tree cost vs [lower, upper] bounds "
        "(bounds normalized to the radius)",
    )
    for p in points:
        table.add_row(p.bench, p.width, p.lower, p.upper, p.cost)
    return table.render()


def ascii_plot(points: list[Fig8Point], plot_width: int = 60) -> str:
    """A small terminal rendering of the tradeoff curves, one row per
    (width, lower) combination, bar length proportional to cost."""
    if not points:
        return "(no points)"
    max_cost = max(p.cost for p in points)
    lines = ["cost vs bounds (each bar ~ tree cost)"]
    for p in points:
        bar = "#" * max(1, int(plot_width * p.cost / max_cost))
        lines.append(
            f"w={p.width:>4.2f} [l={p.lower:>4.2f},u={p.upper:>4.2f}] "
            f"{bar} {p.cost:.1f}"
        )
    return "\n".join(lines)
