"""Reproduction drivers for every table and figure in the evaluation.

Each module regenerates one artifact of Section 8:

* :mod:`repro.experiments.table1` — [9]-style baseline vs LUBT over skew
  bounds {0, 0.01, 0.05, 0.1, 0.5, 1, 2, inf};
* :mod:`repro.experiments.table2` — same skew, shifted [lower, upper]
  windows;
* :mod:`repro.experiments.table3` — global-routing style bound combos;
* :mod:`repro.experiments.fig8` — the cost vs bounds tradeoff surface.

The drivers are used by both the ``benchmarks/`` harness and the CLI, and
include per-row shape assertions (see DESIGN.md "acceptance criteria") so
a regression in any qualitative claim fails loudly.
"""

from repro.experiments.table1 import (
    Table1Row,
    run_table1,
    run_table1_row,
    render_table1,
)
from repro.experiments.table2 import Table2Row, run_table2, render_table2
from repro.experiments.table3 import Table3Row, run_table3, render_table3
from repro.experiments.fig8 import Fig8Point, run_fig8, render_fig8

__all__ = [
    "Table1Row",
    "run_table1",
    "run_table1_row",
    "render_table1",
    "Table2Row",
    "run_table2",
    "render_table2",
    "Table3Row",
    "run_table3",
    "render_table3",
    "Fig8Point",
    "run_fig8",
    "render_fig8",
]
