"""Table 2: same skew bound, different [lower, upper] windows.

This is the capability the baseline lacks (paper Section 8): for a fixed
skew ``d``, slide the window ``[l, l + d]`` and observe the cost.  The
topology is the baseline's (obtained at that skew bound), and the
baseline's own realized window is included, marked with ``*`` exactly as
in the paper.  The paper's qualitative finding: the cheapest window sits
strictly inside the sweep — "for the same skew, the longest delay can be
reduced with little increase in the tree cost".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import Table
from repro.baselines import bounded_skew_tree
from repro.data import Benchmark
from repro.ebf import DelayBounds, solve_lubt
from repro.geometry import manhattan_radius_from
from repro.perf import map_many

#: The paper's window grids (lower-bound offsets, normalized).
PAPER_WINDOWS = {
    0.3: (0.70, 0.80, 0.95),
    0.5: (0.50, 0.60, 0.75),
}


@dataclass(frozen=True)
class Table2Row:
    bench: str
    skew_bound: float
    lower: float  # normalized
    upper: float  # normalized
    cost: float
    from_baseline: bool  # the paper's '*' marker


def _table2_window_row(
    bench: Benchmark, topo, radius, skew_bound, lo, hi, starred, backend
) -> Table2Row:
    """One window of a Table 2 block (module-level so it pickles)."""
    bounds = DelayBounds.uniform(bench.num_sinks, lo * radius, hi * radius)
    sol = solve_lubt(topo, bounds, backend=backend, check_bounds=False)
    return Table2Row(bench.name, skew_bound, lo, hi, sol.cost, starred)


def run_table2(
    bench: Benchmark,
    skew_bound: float,
    lower_offsets=None,
    backend: str = "auto",
    jobs: int = 1,
) -> list[Table2Row]:
    """All windows for one (benchmark, skew bound) block of Table 2.

    ``jobs > 1`` solves the windows in worker processes; the baseline
    tree (which fixes the topology) is built once up front either way.
    """
    sinks = list(bench.sinks)
    radius = manhattan_radius_from(bench.source, sinks)
    base = bounded_skew_tree(sinks, skew_bound * radius, bench.source, verify=False)
    topo = base.topology

    if lower_offsets is None:
        lower_offsets = PAPER_WINDOWS.get(skew_bound, (0.5, 0.7, 0.9))
    windows = [(lo, lo + skew_bound, False) for lo in lower_offsets]
    # The baseline's realized window, starred.  Its realized skew can be
    # below the bound; keep its true window.
    windows.append(
        (
            base.shortest_delay / radius,
            base.longest_delay / radius,
            True,
        )
    )
    windows.sort()

    rows = map_many(
        _table2_window_row,
        [
            (bench, topo, radius, skew_bound, lo, hi, starred, backend)
            for lo, hi, starred in windows
        ],
        jobs=jobs,
    )
    for row in rows:
        if row.from_baseline and row.cost > base.cost + 1e-6 * max(1.0, base.cost):
            raise AssertionError(
                "LUBT at the baseline's own window exceeds the baseline cost"
            )
    return rows


def render_table2(rows: list[Table2Row]) -> str:
    table = Table(
        ["bench", "skew bound", "lower bound", "upper bound", "tree cost"],
        title="Table 2: LUBT cost for the same skew but shifted windows "
        "(*: window realized by the baseline)",
    )
    for r in rows:
        star = "*" if r.from_baseline else " "
        table.add_row(
            r.bench,
            r.skew_bound,
            f"{star}{r.lower:.3f}",
            f"{star}{r.upper:.3f}",
            r.cost,
        )
    return table.render()
