"""Table 2: same skew bound, different [lower, upper] windows.

This is the capability the baseline lacks (paper Section 8): for a fixed
skew ``d``, slide the window ``[l, l + d]`` and observe the cost.  The
topology is the baseline's (obtained at that skew bound), and the
baseline's own realized window is included, marked with ``*`` exactly as
in the paper.  The paper's qualitative finding: the cheapest window sits
strictly inside the sweep — "for the same skew, the longest delay can be
reduced with little increase in the tree cost".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import Table
from repro.baselines import bounded_skew_tree
from repro.data import Benchmark
from repro.ebf import DelayBounds, canonical_cost
from repro.geometry import manhattan_radius_from
from repro.perf import solve_sweep_sharded

#: The paper's window grids (lower-bound offsets, normalized).
PAPER_WINDOWS = {
    0.3: (0.70, 0.80, 0.95),
    0.5: (0.50, 0.60, 0.75),
}


@dataclass(frozen=True)
class Table2Row:
    bench: str
    skew_bound: float
    lower: float  # normalized
    upper: float  # normalized
    cost: float
    from_baseline: bool  # the paper's '*' marker


def run_table2(
    bench: Benchmark,
    skew_bound: float,
    lower_offsets=None,
    backend: str = "auto",
    jobs: int = 1,
    warm: bool = True,
    journal=None,
) -> list[Table2Row]:
    """All windows for one (benchmark, skew bound) block of Table 2.

    The block shares one topology (the baseline's), so the windows run
    as a warm-started sweep — each solve seeds the next one's lazy loop
    (``warm=False`` for cold solves); reported costs are
    :func:`~repro.ebf.canonical_cost`-quantized so warm/cold/sharded
    runs agree bit for bit.  ``jobs > 1`` solves contiguous window
    shards in worker processes; the baseline tree (which fixes the
    topology) is built once up front either way.  ``journal`` (a
    :class:`~repro.perf.SolveJournal`) makes the sweep crash-safe and
    resumable: completed windows replay from the journal, fresh ones
    are durably appended (``lubt table2 --journal/--resume``).
    """
    sinks = list(bench.sinks)
    radius = manhattan_radius_from(bench.source, sinks)
    base = bounded_skew_tree(sinks, skew_bound * radius, bench.source, verify=False)
    topo = base.topology

    if lower_offsets is None:
        lower_offsets = PAPER_WINDOWS.get(skew_bound, (0.5, 0.7, 0.9))
    windows = [(lo, lo + skew_bound, False) for lo in lower_offsets]
    # The baseline's realized window, starred.  Its realized skew can be
    # below the bound; keep its true window.
    windows.append(
        (
            base.shortest_delay / radius,
            base.longest_delay / radius,
            True,
        )
    )
    windows.sort()

    bounds_list = [
        DelayBounds.uniform(bench.num_sinks, lo * radius, hi * radius)
        for lo, hi, _ in windows
    ]
    sols = solve_sweep_sharded(
        topo,
        bounds_list,
        jobs=jobs,
        journal=journal,
        warm=warm,
        backend=backend,
        check_bounds=False,
    )
    rows = [
        Table2Row(
            bench.name, skew_bound, lo, hi, canonical_cost(sol.cost), starred
        )
        for (lo, hi, starred), sol in zip(windows, sols)
    ]
    for row in rows:
        if row.from_baseline and row.cost > base.cost + 1e-6 * max(1.0, base.cost):
            raise AssertionError(
                "LUBT at the baseline's own window exceeds the baseline cost"
            )
    return rows


def render_table2(rows: list[Table2Row]) -> str:
    table = Table(
        ["bench", "skew bound", "lower bound", "upper bound", "tree cost"],
        title="Table 2: LUBT cost for the same skew but shifted windows "
        "(*: window realized by the baseline)",
    )
    for r in rows:
        star = "*" if r.from_baseline else " "
        table.add_row(
            r.bench,
            r.skew_bound,
            f"{star}{r.lower:.3f}",
            f"{star}{r.upper:.3f}",
            r.cost,
        )
    return table.render()
