"""Table 1: routing costs for the bounded-skew baseline vs LUBT.

Protocol (paper Section 8): for each benchmark and skew bound, run the
[9]-style algorithm to obtain a topology, its tree cost, and the realized
[shortest, longest] sink delays; then run EBF LUBT with exactly those
delays as lower/upper bounds on the *same* topology.  By Theorem 4.2 the
LUBT column can never exceed the baseline column — the relationship every
row of the paper's Table 1 exhibits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.tables import Table
from repro.baselines import bounded_skew_tree
from repro.data import Benchmark
from repro.ebf import DelayBounds, solve_lubt
from repro.geometry import manhattan_radius_from
from repro.perf import map_many

#: The paper's skew-bound column (normalized to the radius).
PAPER_SKEW_BOUNDS = (0.0, 0.01, 0.05, 0.1, 0.5, 1.0, 2.0, math.inf)


@dataclass(frozen=True)
class Table1Row:
    bench: str
    skew_bound: float  # normalized
    shortest_delay: float  # normalized
    longest_delay: float  # normalized
    baseline_cost: float
    lubt_cost: float

    @property
    def improvement(self) -> float:
        """Fractional cost reduction of LUBT over the baseline."""
        if self.baseline_cost == 0:
            return 0.0
        return 1.0 - self.lubt_cost / self.baseline_cost


def run_table1_row(
    bench: Benchmark, skew_bound: float, backend: str = "auto"
) -> Table1Row:
    """One (benchmark, skew bound) row of Table 1."""
    sinks = list(bench.sinks)
    radius = manhattan_radius_from(bench.source, sinks)
    bound_abs = skew_bound * radius if math.isfinite(skew_bound) else math.inf

    base = bounded_skew_tree(sinks, bound_abs, bench.source, verify=False)
    bounds = DelayBounds.uniform(
        bench.num_sinks, base.shortest_delay, base.longest_delay
    )
    sol = solve_lubt(base.topology, bounds, backend=backend, check_bounds=False)

    if sol.cost > base.cost + 1e-6 * max(1.0, base.cost):
        raise AssertionError(
            f"Theorem 4.2 violated on {bench.name}: LUBT {sol.cost:g} > "
            f"baseline {base.cost:g}"
        )
    return Table1Row(
        bench=bench.name,
        skew_bound=skew_bound,
        shortest_delay=base.shortest_delay / radius,
        longest_delay=base.longest_delay / radius,
        baseline_cost=base.cost,
        lubt_cost=sol.cost,
    )


def run_table1(
    bench: Benchmark,
    skew_bounds=PAPER_SKEW_BOUNDS,
    backend: str = "auto",
    jobs: int = 1,
) -> list[Table1Row]:
    """All rows of Table 1 for one benchmark, with shape checks.

    Checks (DESIGN.md acceptance criteria): LUBT <= baseline on every row,
    and the skew-0 row is the most expensive LUBT row (cost falls —
    weakly, modulo topology changes across bounds — toward skew = inf).

    ``jobs > 1`` solves the rows in worker processes; row order and
    values are identical to the serial run.
    """
    rows = map_many(
        run_table1_row, [(bench, s, backend) for s in skew_bounds], jobs=jobs
    )
    zero_rows = [r for r in rows if r.skew_bound == 0.0]
    inf_rows = [r for r in rows if math.isinf(r.skew_bound)]
    if zero_rows and inf_rows:
        if inf_rows[0].lubt_cost > zero_rows[0].lubt_cost + 1e-6:
            raise AssertionError(
                f"{bench.name}: unbounded-skew tree costs more than the "
                "zero-skew tree — Table 1 shape violated"
            )
    return rows


def render_table1(rows: list[Table1Row]) -> str:
    table = Table(
        [
            "bench",
            "skew bound",
            "shortest delay",
            "longest delay",
            "baseline cost",
            "LUBT cost",
            "LUBT gain",
        ],
        title="Table 1: routing costs for the bounded-skew baseline and LUBT "
        "(bounds normalized to the radius)",
    )
    for r in rows:
        table.add_row(
            r.bench,
            r.skew_bound,
            r.shortest_delay,
            r.longest_delay,
            r.baseline_cost,
            r.lubt_cost,
            f"{100 * r.improvement:.2f}%",
        )
    return table.render()
