"""Table 3: other bound combinations (global routing and bounded-skew,
bounded-longest-delay routing).

The paper sweeps windows the baseline cannot express at all: near-zero
skew windows pinned at the radius ([0.99, 1] ... [0.9, 1]), a loose
low-power window [0.5, 1], and pure global-routing bounds with zero lower
bound ([0, 1], [0, 1.5], [0, 2]).  Topology: the nearest-neighbor merge
tree (the baseline's unbounded-skew topology), fixed across all rows of a
benchmark so the cost column isolates the effect of the bounds.

Shape claim checked here: "as the skew bound is tightened, the tree cost
increases" — within each family (u = 1 windows tightening upward, and
u growing with l = 0), cost is monotone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import Table
from repro.data import Benchmark
from repro.ebf import DelayBounds, canonical_cost
from repro.geometry import manhattan_radius_from
from repro.perf import solve_sweep_sharded
from repro.topology import nearest_neighbor_topology

#: The paper's (lower, upper) combinations, normalized to the radius.
PAPER_BOUND_COMBOS = (
    (0.99, 1.0),
    (0.98, 1.0),
    (0.95, 1.0),
    (0.90, 1.0),
    (0.50, 1.0),
    (0.00, 1.0),
    (0.00, 1.5),
    (0.00, 2.0),
)


@dataclass(frozen=True)
class Table3Row:
    bench: str
    lower: float  # normalized
    upper: float  # normalized
    cost: float


def run_table3(
    bench: Benchmark,
    combos=PAPER_BOUND_COMBOS,
    backend: str = "auto",
    jobs: int = 1,
    warm: bool = True,
    journal=None,
) -> list[Table3Row]:
    """All bound combinations for one benchmark, as a warm-started sweep
    on the shared nearest-neighbor topology (``warm=False`` solves each
    combination cold); costs are
    :func:`~repro.ebf.canonical_cost`-quantized so warm/cold/sharded
    runs agree bit for bit.  ``journal`` (a
    :class:`~repro.perf.SolveJournal`) replays completed combinations
    and durably appends fresh ones, so a killed run resumes where it
    stopped (``lubt table3 --journal/--resume``)."""
    sinks = list(bench.sinks)
    radius = manhattan_radius_from(bench.source, sinks)
    topo = nearest_neighbor_topology(sinks, bench.source)

    bounds_list = [
        DelayBounds.uniform(bench.num_sinks, lo * radius, hi * radius)
        for lo, hi in combos
    ]
    sols = solve_sweep_sharded(
        topo,
        bounds_list,
        jobs=jobs,
        journal=journal,
        warm=warm,
        backend=backend,
        check_bounds=False,
    )
    rows = [
        Table3Row(bench.name, lo, hi, canonical_cost(sol.cost))
        for (lo, hi), sol in zip(combos, sols)
    ]
    _check_shapes(rows)
    return rows


def _check_shapes(rows: list[Table3Row]) -> None:
    """Monotonicity within the two families of the paper's sweep."""
    pinned = sorted(
        (r for r in rows if r.upper == 1.0), key=lambda r: r.lower
    )
    for tighter, looser in zip(pinned[1:], pinned):
        # Larger lower bound => tighter window => cost must not drop.
        if tighter.cost < looser.cost - 1e-6 * max(1.0, looser.cost):
            raise AssertionError(
                f"{tighter.bench}: tightening [l, 1] from l={looser.lower} "
                f"to l={tighter.lower} reduced cost — Table 3 shape violated"
            )
    global_routing = sorted(
        (r for r in rows if r.lower == 0.0), key=lambda r: r.upper
    )
    for tight, loose in zip(global_routing, global_routing[1:]):
        if loose.cost > tight.cost + 1e-6 * max(1.0, tight.cost):
            raise AssertionError(
                f"{loose.bench}: loosening [0, u] increased cost — "
                "Table 3 shape violated"
            )


def render_table3(rows: list[Table3Row]) -> str:
    table = Table(
        ["bench", "lower bound", "upper bound", "tree cost"],
        title="Table 3: LUBT cost for various other bounds "
        "(bounds normalized to the radius)",
    )
    for r in rows:
        table.add_row(r.bench, r.lower, r.upper, r.cost)
    return table.render()
