"""Recursive H-tree topologies and per-net builder dispatch.

An H-tree recursively bisects the die at the geometric center of the
current region, alternating cut axes — the classic CTS skeleton, here
encoded as a full binary tree (each H level is two alternating binary
cuts).  Like the paper's nearest-neighbor generator, every sink is a
leaf, so Lemma 3.1 guarantees LUBT feasibility for any valid bounds;
unlike it, construction is O(m log m)-ish top-down and produces the
spatially balanced trunk structure a chip-scale clock net wants.

:func:`build_net_topology` is the per-net dispatcher the CTS driver
uses: nearest-neighbor merge for small nets (best quality, O(m^2)
merge), balanced bipartition for mid-size nets, H-tree for large ones —
selectable explicitly or by sink count with ``kind="auto"``.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import Point
from repro.topology.builders import (
    balanced_bipartition_topology,
    binary_merge_tree,
    nearest_neighbor_topology,
)
from repro.topology.tree import Topology

#: ``kind="auto"`` thresholds: nets up to this many sinks use the
#: nearest-neighbor merge ...
AUTO_NN_MAX_SINKS = 32
#: ... up to this many the balanced bipartition, beyond it the H-tree.
AUTO_BIPARTITION_MAX_SINKS = 256

#: Builder names accepted by :func:`build_net_topology`.
TOPOLOGY_KINDS = ("auto", "nn", "bipartition", "htree")


def htree_topology(
    sinks: list[Point], source: Point | None = None
) -> Topology:
    """Recursive H-tree over ``sinks`` (full binary, all sinks leaves).

    Each recursion cuts the current sink set at the geometric center of
    its bounding box, alternating axes, starting across the wider span.
    A cut that separates nothing (every sink on one side — collinear or
    coincident points, or a span collapsed to zero) falls back to a
    stable median split on the same axis, so the recursion always
    terminates with depth O(log m + float-span bits).  Steiner point
    locations are left to the LP, as everywhere else in the repro — the
    topology only fixes the H-tree's *connectivity*.
    """
    m = len(sinks)
    if m == 0:
        raise ValueError("cannot build a topology over zero sinks")
    if m == 1:
        return Topology([None, 0], 1, sinks, source)

    xs = np.array([p.x for p in sinks], dtype=float)
    ys = np.array([p.y for p in sinks], dtype=float)
    merges: list[tuple[int, int]] = []
    next_internal = [m]

    def cut(indices: np.ndarray, vertical: bool) -> int:
        if len(indices) == 1:
            return int(indices[0])
        key = xs[indices] if vertical else ys[indices]
        mid = (float(key.max()) + float(key.min())) / 2.0
        left_mask = key <= mid
        left, right = indices[left_mask], indices[~left_mask]
        if len(left) == 0 or len(right) == 0:
            order = indices[np.argsort(key, kind="stable")]
            half = len(order) // 2
            left, right = order[:half], order[half:]
        lt = cut(left, not vertical)
        rt = cut(right, not vertical)
        token = next_internal[0]
        next_internal[0] += 1
        merges.append((lt, rt))
        return token

    span_x = float(xs.max() - xs.min())
    span_y = float(ys.max() - ys.min())
    cut(np.arange(m), span_x >= span_y)
    topo, _ = binary_merge_tree(sinks, merges, source)
    return topo


def build_net_topology(
    sinks: list[Point],
    source: Point | None = None,
    *,
    kind: str = "auto",
) -> Topology:
    """Build one net's topology with the builder suited to its size.

    ``kind``: ``"nn"`` (nearest-neighbor merge), ``"bipartition"``
    (balanced median bipartition), ``"htree"``, or ``"auto"`` — by sink
    count: nn up to :data:`AUTO_NN_MAX_SINKS`, bipartition up to
    :data:`AUTO_BIPARTITION_MAX_SINKS`, H-tree beyond.  Every builder
    returns a full binary tree with all sinks as leaves.
    """
    if kind == "auto":
        m = len(sinks)
        if m <= AUTO_NN_MAX_SINKS:
            kind = "nn"
        elif m <= AUTO_BIPARTITION_MAX_SINKS:
            kind = "bipartition"
        else:
            kind = "htree"
    if kind == "nn":
        return nearest_neighbor_topology(sinks, source)
    if kind == "bipartition":
        return balanced_bipartition_topology(sinks, source)
    if kind == "htree":
        return htree_topology(sinks, source)
    raise ValueError(
        f"unknown topology kind {kind!r} (expected one of {TOPOLOGY_KINDS})"
    )
