"""Bounds-guided topology generation — the paper's Section 9 future work.

The paper closes by noting its topology generator "uses the amount of
skew to guide the topology generation, rather than the explicit
lower/upper bounds", and calls for one "guided by both the lower and the
upper bounds".  This module implements that: a nearest-neighbor merge
whose pair-selection cost blends geometric distance with *estimated
balance mismatch*, weighted by how tight the requested delay window is.

Rationale: with a tight window (zero-skew-like), unbalanced merges force
wire elongation later, so penalizing height mismatch up front produces
cheaper LUBTs; with a loose window the mismatch never costs anything and
pure nearest-neighbor merging is best.  The blend weight is

    lam = clamp(1 - (u - l) / radius, 0, 1)

and the merge cost between clusters ``a``/``b`` is

    dist(a, b) + lam * |h_a - h_b|

where ``h`` is each cluster's estimated pathlength height (half its
running merge "diameter" — exact for single sinks, a good proxy after
merges).  ``lam = 0`` reproduces :func:`nearest_neighbor_topology`
exactly; ``lam = 1`` is a balance-first generator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.geometry import Point, manhattan_diameter, manhattan_radius_from
from repro.topology.builders import binary_merge_tree
from repro.topology.tree import Topology

if TYPE_CHECKING:  # avoid a circular import with repro.ebf at runtime
    from repro.ebf.bounds import DelayBounds


def bounds_guided_topology(
    sinks: list[Point],
    bounds: "DelayBounds",
    source: Point | None = None,
) -> Topology:
    """Nearest-neighbor merge steered by the width of the delay window."""
    m = len(sinks)
    if m == 0:
        raise ValueError("cannot build a topology over zero sinks")
    if bounds.num_sinks != m:
        raise ValueError("bounds/sink count mismatch")
    if m == 1:
        return Topology([None, 0], 1, sinks, source)

    if source is not None:
        radius = manhattan_radius_from(source, sinks)
    else:
        radius = manhattan_diameter(sinks) / 2.0
    window = float(np.min(bounds.upper - bounds.lower))
    lam = 1.0 if radius <= 0 else min(1.0, max(0.0, 1.0 - window / radius))
    return _guided_merge(sinks, source, lam)


def balance_aware_topology(
    sinks: list[Point],
    source: Point | None = None,
    balance_weight: float = 1.0,
) -> Topology:
    """The generator with an explicit balance weight (``0`` = pure NN)."""
    if not 0.0 <= balance_weight <= 10.0:
        raise ValueError("balance_weight out of range")
    m = len(sinks)
    if m == 0:
        raise ValueError("cannot build a topology over zero sinks")
    if m == 1:
        return Topology([None, 0], 1, sinks, source)
    return _guided_merge(sinks, source, balance_weight)


def _guided_merge(
    sinks: list[Point], source: Point | None, lam: float
) -> Topology:
    if lam == 0.0:
        # No balance pressure: identical to the plain generator (the
        # representative policy differs, so delegate for exact equality).
        from repro.topology.builders import nearest_neighbor_topology

        return nearest_neighbor_topology(sinks, source)
    m = len(sinks)
    us = np.array([p.u for p in sinks], dtype=float)
    vs = np.array([p.v for p in sinks], dtype=float)
    heights = np.zeros(m)
    active = np.ones(m, dtype=bool)
    token_of_slot = list(range(m))
    next_token = m
    merges: list[tuple[int, int]] = []

    # Incrementally maintained cost matrix: O(m) update per merge.
    cost = np.maximum(
        np.abs(us[:, None] - us[None, :]), np.abs(vs[:, None] - vs[None, :])
    )
    np.fill_diagonal(cost, np.inf)

    def refresh_row(a: int) -> None:
        row = np.maximum(np.abs(us - us[a]), np.abs(vs - vs[a]))
        row += lam * np.abs(heights - heights[a])
        row[~active] = np.inf
        row[a] = np.inf
        cost[a, :] = row
        cost[:, a] = row

    for _ in range(m - 1):
        a, b = divmod(int(np.argmin(cost)), m)
        d = max(abs(us[a] - us[b]), abs(vs[a] - vs[b]))
        merges.append((token_of_slot[a], token_of_slot[b]))
        # Merged representative: the (height-weighted) balance point, and
        # the ZST-merge height estimate.
        h_a, h_b = heights[a], heights[b]
        if abs(h_a - h_b) <= d:
            t = (d + h_b - h_a) / (2.0 * d) if d > 0 else 0.5
        else:
            t = 0.0 if h_a > h_b else 1.0
        us[a] = us[a] * (1 - t) + us[b] * t
        vs[a] = vs[a] * (1 - t) + vs[b] * t
        heights[a] = max(h_a, h_b, (d + h_a + h_b) / 2.0)
        token_of_slot[a] = next_token
        next_token += 1
        active[b] = False
        cost[b, :] = np.inf
        cost[:, b] = np.inf
        refresh_row(a)

    topo, _ = binary_merge_tree(sinks, merges, source)
    return topo
