"""Topology validation helpers.

The EBF accepts any rooted topology, but the paper's feasibility guarantee
(Lemma 3.1) requires every sink to be a leaf.  :func:`validate_topology`
checks structural sanity; :func:`all_sinks_are_leaves` checks the Lemma 3.1
precondition so callers can warn (or assert) before solving.
"""

from __future__ import annotations

from repro.topology.tree import Topology


class TopologyError(ValueError):
    """Raised when a topology violates a structural requirement."""


def validate_topology(topo: Topology, require_binary: bool = False) -> None:
    """Raise :class:`TopologyError` on malformed topologies.

    Checks that every Steiner point actually branches (a degree-2 Steiner
    point is useless and indicates a builder bug), and that with
    ``require_binary`` no node exceeds the paper's degree-3 assumption
    (root with free location: two children; fixed root: one child;
    Steiner: two children).
    """
    for k in topo.steiner_ids():
        if topo.is_leaf(k):
            raise TopologyError(f"Steiner point {k} is a leaf (dangling)")
    if require_binary:
        for k in topo.steiner_ids():
            if len(topo.children(k)) > 2:
                raise TopologyError(
                    f"Steiner point {k} has {len(topo.children(k))} children; "
                    "run split_high_degree_steiner first"
                )
        root_kids = len(topo.children(0))
        limit = 1 if topo.source_location is not None else 2
        if root_kids > limit:
            raise TopologyError(
                f"root has {root_kids} children (limit {limit} for "
                f"{'fixed' if topo.source_location is not None else 'free'} source)"
            )


def all_sinks_are_leaves(topo: Topology) -> bool:
    """Lemma 3.1 precondition: LUBT feasibility for any valid bounds."""
    return all(topo.is_leaf(i) for i in topo.sink_ids())
