"""Topology generators.

The paper adopts the topology generator of [9] (Huang/Kahng/Tsao), which is
"based on nearest neighbor merge [5]" (Edahiro) and produces **full binary
trees in which every sink is a leaf**, so Lemma 3.1 guarantees LUBT
feasibility for any valid bounds.  :func:`nearest_neighbor_topology`
implements that merge rule; :func:`balanced_bipartition_topology` is a
classic top-down alternative (means-and-medians style) used for ablations.
``star`` and ``chain`` builders construct the degenerate topologies of
Figure 1 used in feasibility tests.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import Point
from repro.topology.tree import Topology


def topology_from_parents(
    parents: list[int | None],
    sink_locations: list[Point],
    source_location: Point | None = None,
) -> Topology:
    """Build a :class:`Topology` from an explicit parent array.

    Convenience wrapper that infers ``num_sinks`` from the location list.
    """
    return Topology(parents, len(sink_locations), sink_locations, source_location)


def star_topology(
    sinks: list[Point], source: Point | None = None
) -> Topology:
    """Every sink connected directly to the root — no Steiner points."""
    m = len(sinks)
    parents: list[int | None] = [None] + [0] * m
    return Topology(parents, m, sinks, source)


def chain_topology(
    sinks: list[Point], source: Point | None = None
) -> Topology:
    """Root -> s_1 -> s_2 -> ... — the Figure 1(a) shape where interior
    sinks are *not* leaves (and LUBTs may not exist)."""
    m = len(sinks)
    parents: list[int | None] = [None] + [i for i in range(m)]
    return Topology(parents, m, sinks, source)


def nearest_neighbor_topology(
    sinks: list[Point], source: Point | None = None
) -> Topology:
    """Bottom-up nearest-neighbor merge (Edahiro-style, see [5] and [9]).

    Repeatedly merges the two clusters whose representative points are
    closest in Manhattan distance; the merged cluster's representative is
    the midpoint of the two.  Produces a full binary tree with all sinks as
    leaves.  When ``source`` is given, the root node 0 is the source with
    the top merge node as its only child (paper Section 3); otherwise the
    top merge node *is* the root ``s_0`` whose location is free.
    """
    m = len(sinks)
    if m == 0:
        raise ValueError("cannot build a topology over zero sinks")
    if m == 1:
        return Topology([None, 0], 1, sinks, source)

    merges = _nearest_neighbor_merge_order(sinks)
    topo, _ = binary_merge_tree(sinks, merges, source)
    return topo


def balanced_bipartition_topology(
    sinks: list[Point], source: Point | None = None
) -> Topology:
    """Top-down recursive median bipartition on the wider bbox axis.

    Also yields a full binary tree with all sinks as leaves; used as an
    alternative generator in ablation experiments.
    """
    m = len(sinks)
    if m == 0:
        raise ValueError("cannot build a topology over zero sinks")
    if m == 1:
        return Topology([None, 0], 1, sinks, source)

    # Build merge list bottom-up from a top-down partition: process with an
    # explicit stack, emitting (left_token, right_token) merges postorder.
    xs = np.array([p.x for p in sinks])
    ys = np.array([p.y for p in sinks])

    merges: list[tuple[int, int]] = []
    next_internal = [m]  # internal tokens start at m (leaf tokens are 0..m-1)

    def partition(indices: np.ndarray) -> int:
        """Return the token of the subtree over ``indices`` (iteratively
        unrolled below — this inner function recursion depth is log2(m))."""
        if len(indices) == 1:
            return int(indices[0])
        span_x = xs[indices].max() - xs[indices].min()
        span_y = ys[indices].max() - ys[indices].min()
        key = xs[indices] if span_x >= span_y else ys[indices]
        order = indices[np.argsort(key, kind="stable")]
        half = len(order) // 2
        left = partition(order[:half])
        right = partition(order[half:])
        token = next_internal[0]
        next_internal[0] += 1
        merges.append((left, right))
        return token

    partition(np.arange(m))
    topo, _ = binary_merge_tree(sinks, merges, source)
    return topo


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------
def _nearest_neighbor_merge_order(sinks: list[Point]) -> list[tuple[int, int]]:
    """Agglomerative merge order over sink tokens ``0..m-1``; merged
    clusters receive tokens ``m, m+1, ...`` in creation order."""
    m = len(sinks)
    reps_u = np.array([p.u for p in sinks], dtype=float)
    reps_v = np.array([p.v for p in sinks], dtype=float)
    # Chebyshev distance in (u, v) == Manhattan distance in (x, y).
    dist = np.maximum(
        np.abs(reps_u[:, None] - reps_u[None, :]),
        np.abs(reps_v[:, None] - reps_v[None, :]),
    )
    np.fill_diagonal(dist, np.inf)

    # slot -> current cluster token occupying that matrix row/column
    token_of_slot = list(range(m))
    active = np.ones(m, dtype=bool)
    merges: list[tuple[int, int]] = []
    next_token = m

    for _ in range(m - 1):
        flat = np.argmin(dist)
        a, b = divmod(int(flat), m)
        merges.append((token_of_slot[a], token_of_slot[b]))
        # Merge b into a's slot: representative is the midpoint.
        reps_u[a] = (reps_u[a] + reps_u[b]) / 2.0
        reps_v[a] = (reps_v[a] + reps_v[b]) / 2.0
        token_of_slot[a] = next_token
        next_token += 1
        active[b] = False
        dist[b, :] = np.inf
        dist[:, b] = np.inf
        d_new = np.maximum(
            np.abs(reps_u - reps_u[a]), np.abs(reps_v - reps_v[a])
        )
        d_new[~active] = np.inf
        d_new[a] = np.inf
        dist[a, :] = d_new
        dist[:, a] = d_new
    return merges


def binary_merge_tree(
    sinks: list[Point],
    merges: list[tuple[int, int]],
    source: Point | None,
) -> tuple[Topology, dict[int, int]]:
    """Convert a merge sequence over tokens into a paper-numbered Topology.

    Tokens: ``0..m-1`` are sinks in input order; token ``m+k`` is the
    cluster created by ``merges[k]``.  The final merge is the tree top.
    Returns the topology plus the token -> node-id map (used by merge
    algorithms — e.g. the bounded-skew baseline — that must transfer
    per-cluster edge lengths onto the final numbering).
    """
    m = len(sinks)
    n_internal = len(merges)
    top_token = m + n_internal - 1

    # Map tokens to final node ids.  Sinks: token t -> node t+1.  Internal
    # nodes other than the top: Steiner ids m+1.. in creation order.  The
    # top token becomes the root (0) when the source floats, else the last
    # Steiner id with the true source as node 0.
    node_of: dict[int, int] = {t: t + 1 for t in range(m)}
    next_steiner = m + 1
    for k in range(n_internal):
        token = m + k
        if source is None and token == top_token:
            node_of[token] = 0
        else:
            node_of[token] = next_steiner
            next_steiner += 1

    total_nodes = 1 + m + (n_internal if source is not None else n_internal - 1)
    parents: list[int | None] = [None] * total_nodes
    for k, (a, b) in enumerate(merges):
        pa = node_of[m + k]
        parents[node_of[a]] = pa
        parents[node_of[b]] = pa
    if source is not None:
        parents[node_of[top_token]] = 0
    return Topology(parents, m, sinks, source), node_of
