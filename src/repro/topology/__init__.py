"""Rooted routing-tree topologies (Sections 2 and 3).

A *topology* is pure connectivity: the source ``s_0``, sinks ``s_1..s_m``
(locations given), and Steiner points ``s_{m+1}..s_n`` (locations to be
determined).  Each non-root node ``s_i`` owns the edge ``e_i`` to its parent
— the paper's edge/node identification, kept verbatim here.

This package provides the data structure, validation, the degree-4 Steiner
split of Section 3 / Figure 2, and topology *generators* (nearest-neighbor
merge in the style the paper adopts from [9]/[5], plus a balanced geometric
bipartition alternative).
"""

from repro.topology.tree import Topology, NodeKind
from repro.topology.builders import (
    nearest_neighbor_topology,
    balanced_bipartition_topology,
    star_topology,
    chain_topology,
    topology_from_parents,
    binary_merge_tree,
)
from repro.topology.split import split_high_degree_steiner
from repro.topology.validate import (
    TopologyError,
    validate_topology,
    all_sinks_are_leaves,
)
from repro.topology.guided import (
    bounds_guided_topology,
    balance_aware_topology,
)
from repro.topology.htree import (
    AUTO_BIPARTITION_MAX_SINKS,
    AUTO_NN_MAX_SINKS,
    TOPOLOGY_KINDS,
    build_net_topology,
    htree_topology,
)
from repro.topology.serialize import (
    topology_to_dict,
    topology_from_dict,
    topology_hash,
    save_tree,
    load_tree,
)

__all__ = [
    "Topology",
    "NodeKind",
    "nearest_neighbor_topology",
    "balanced_bipartition_topology",
    "star_topology",
    "chain_topology",
    "topology_from_parents",
    "binary_merge_tree",
    "split_high_degree_steiner",
    "TopologyError",
    "validate_topology",
    "all_sinks_are_leaves",
    "bounds_guided_topology",
    "balance_aware_topology",
    "AUTO_BIPARTITION_MAX_SINKS",
    "AUTO_NN_MAX_SINKS",
    "TOPOLOGY_KINDS",
    "build_net_topology",
    "htree_topology",
    "topology_to_dict",
    "topology_from_dict",
    "topology_hash",
    "save_tree",
    "load_tree",
]
