"""The rooted topology data structure (paper Section 2).

Node numbering follows the paper exactly:

* node ``0`` is the root/source ``s_0`` (its location may be ``None``),
* nodes ``1..m`` are sinks with given locations,
* nodes ``m+1..n`` are Steiner points whose locations are unknown.

Each non-root node ``i`` owns edge ``e_i`` connecting it to its parent, so an
edge-length assignment is simply a vector indexed by node id with entry 0
unused.  All traversals are iterative (topologies can be chains hundreds of
nodes deep).
"""

from __future__ import annotations

from enum import Enum
from typing import Iterator, Sequence

import numpy as np

from repro.geometry import Point


class NodeKind(Enum):
    ROOT = "root"
    SINK = "sink"
    STEINER = "steiner"


class Topology:
    """An immutable rooted tree over source, sinks and Steiner points.

    Parameters
    ----------
    parents:
        ``parents[i]`` is the parent node id of node ``i``; ``parents[0]``
        must be ``None``.  Length is ``n + 1`` (total node count).
    num_sinks:
        ``m``; nodes ``1..m`` are sinks, the rest Steiner points.
    sink_locations:
        The ``m`` given sink locations, ``sink_locations[i - 1]`` for sink
        ``i``.
    source_location:
        Location of ``s_0`` or ``None`` when the source may float (the
        paper's "source location is not given" case).
    """

    def __init__(
        self,
        parents: Sequence[int | None],
        num_sinks: int,
        sink_locations: Sequence[Point],
        source_location: Point | None = None,
    ) -> None:
        if not parents or parents[0] is not None:
            raise ValueError("parents[0] must be None (node 0 is the root)")
        if num_sinks < 1:
            raise ValueError("a topology needs at least one sink")
        if len(sink_locations) != num_sinks:
            raise ValueError(
                f"{num_sinks} sinks declared but {len(sink_locations)} locations given"
            )
        if len(parents) < num_sinks + 1:
            raise ValueError("parents array shorter than 1 + num_sinks")

        self._parents: tuple[int | None, ...] = tuple(parents)
        self._m = num_sinks
        self._sink_locations: tuple[Point, ...] = tuple(sink_locations)
        self._source_location = source_location

        n_nodes = len(parents)
        self._children: list[list[int]] = [[] for _ in range(n_nodes)]
        for i in range(1, n_nodes):
            p = parents[i]
            if p is None or not (0 <= p < n_nodes) or p == i:
                raise ValueError(f"node {i} has invalid parent {p!r}")
            self._children[p].append(i)

        self._depth = self._compute_depths()
        self._post = self._compute_postorder()
        # Lazily-built, memoized derived tables (the topology is
        # immutable, so they never invalidate): binary-lifting ancestors,
        # per-subtree sink lists, rotated sink coordinates, and the
        # root-path edge-incidence matrix used by the vectorized
        # Steiner-row builder.
        self._lift: list[list[int]] | None = None
        self._sinks_under: list[list[int]] | None = None
        self._sink_uv: tuple[np.ndarray, np.ndarray] | None = None
        self._incidence = None

    # ------------------------------------------------------------------
    # shape accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._parents)

    @property
    def num_sinks(self) -> int:
        return self._m

    @property
    def num_edges(self) -> int:
        """``n`` — one edge per non-root node."""
        return self.num_nodes - 1

    @property
    def num_steiner(self) -> int:
        return self.num_nodes - 1 - self._m

    @property
    def source_location(self) -> Point | None:
        return self._source_location

    @property
    def sink_locations(self) -> tuple[Point, ...]:
        return self._sink_locations

    def sink_ids(self) -> range:
        return range(1, self._m + 1)

    def steiner_ids(self) -> range:
        return range(self._m + 1, self.num_nodes)

    def kind(self, i: int) -> NodeKind:
        if i == 0:
            return NodeKind.ROOT
        if i <= self._m:
            return NodeKind.SINK
        return NodeKind.STEINER

    def is_sink(self, i: int) -> bool:
        return 1 <= i <= self._m

    def is_leaf(self, i: int) -> bool:
        return not self._children[i]

    def parent(self, i: int) -> int | None:
        return self._parents[i]

    def children(self, i: int) -> tuple[int, ...]:
        return tuple(self._children[i])

    def degree(self, i: int) -> int:
        """Tree degree (children + parent edge)."""
        return len(self._children[i]) + (0 if i == 0 else 1)

    def depth(self, i: int) -> int:
        return self._depth[i]

    def sink_location(self, i: int) -> Point:
        if not self.is_sink(i):
            raise ValueError(f"node {i} is not a sink")
        return self._sink_locations[i - 1]

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def postorder(self) -> tuple[int, ...]:
        """Children before parents; root last."""
        return self._post

    def preorder(self) -> Iterator[int]:
        """Parents before children; root first."""
        return reversed(self._post)

    def path_to_root(self, i: int) -> list[int]:
        """Edge ids (= node ids) on the path from node ``i`` up to the root.

        ``path_to_root(0)`` is empty; otherwise the list starts at ``i``.
        """
        out = []
        while i != 0:
            out.append(i)
            i = self._parents[i]  # type: ignore[assignment]
        return out

    def lca(self, a: int, b: int) -> int:
        """Lowest common ancestor via binary lifting (O(log n) per query)."""
        if self._lift is None:
            self._build_lift()
        lift = self._lift
        assert lift is not None
        if self._depth[a] < self._depth[b]:
            a, b = b, a
        diff = self._depth[a] - self._depth[b]
        level = 0
        while diff:
            if diff & 1:
                a = lift[level][a]
            diff >>= 1
            level += 1
        if a == b:
            return a
        for level in range(len(lift) - 1, -1, -1):
            if lift[level][a] != lift[level][b]:
                a = lift[level][a]
                b = lift[level][b]
        return self._parents[a]  # type: ignore[return-value]

    def path_between(self, a: int, b: int) -> list[int]:
        """Edge ids on the tree path between nodes ``a`` and ``b``.

        This is the paper's ``path(s_a, s_b)``: both legs down from the LCA.
        """
        k = self.lca(a, b)
        out = []
        i = a
        while i != k:
            out.append(i)
            i = self._parents[i]  # type: ignore[assignment]
        i = b
        while i != k:
            out.append(i)
            i = self._parents[i]  # type: ignore[assignment]
        return out

    def subtree_nodes(self, k: int) -> list[int]:
        """All nodes of the subtree rooted at ``k`` (including ``k``)."""
        out = [k]
        stack = list(self._children[k])
        while stack:
            i = stack.pop()
            out.append(i)
            stack.extend(self._children[i])
        return out

    def subtree_sinks(self, k: int) -> list[int]:
        """Sink ids in the subtree rooted at ``k`` (the sinks of ``T_k``)."""
        return [i for i in self.subtree_nodes(k) if self.is_sink(i)]

    def sinks_under(self) -> list[list[int]]:
        """For every node, the sorted sinks of its subtree — O(n * m) total,
        computed in one postorder sweep.

        Memoized on the instance (repeated constraint/violation passes in
        the lazy solver call this every round): treat the returned lists
        as read-only.
        """
        if self._sinks_under is None:
            acc: list[list[int]] = [[] for _ in range(self.num_nodes)]
            for i in self._post:
                own = [i] if self.is_sink(i) else []
                merged = own
                for c in self._children[i]:
                    merged = merged + acc[c]
                acc[i] = merged
            self._sinks_under = acc
        return self._sinks_under

    def sink_uv(self) -> tuple[np.ndarray, np.ndarray]:
        """Rotated (u, v) sink coordinates indexed by *node id*, with
        non-sink entries zeroed; memoized (read-only)."""
        if self._sink_uv is None:
            su = np.zeros(self.num_nodes)
            sv = np.zeros(self.num_nodes)
            for i in self.sink_ids():
                p = self._sink_locations[i - 1]
                su[i] = p.u
                sv[i] = p.v
            self._sink_uv = (su, sv)
        return self._sink_uv

    def root_path_incidence(self):
        """CSR edge-incidence of every root path, memoized (read-only).

        Row ``v`` has a 1.0 in column ``e`` iff edge ``e`` (owned by node
        ``e``) lies on ``path(s_0, s_v)``; column 0 is always empty.  The
        Steiner row for a sink pair then falls out without walking any
        path:  ``row(i, j) = inc[i] + inc[j] - 2 * inc[lca(i, j)]`` (the
        shared root prefix cancels exactly).
        """
        if self._incidence is None:
            from scipy import sparse

            n = self.num_nodes
            depth = np.asarray(self._depth, dtype=np.int64)
            ptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(depth, out=ptr[1:])
            cols = np.empty(int(ptr[-1]), dtype=np.int32)
            for v in self.preorder():
                p = self._parents[v]
                if p is None:
                    continue
                a = ptr[v]
                cols[a : a + depth[p]] = cols[ptr[p] : ptr[p + 1]]
                cols[ptr[v + 1] - 1] = v
            self._incidence = sparse.csr_matrix(
                (np.ones(len(cols)), cols, ptr), shape=(n, n)
            )
        return self._incidence

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _compute_depths(self) -> list[int]:
        n = self.num_nodes
        depth = [-1] * n
        depth[0] = 0
        # BFS from the root so chains of any depth work.
        frontier = [0]
        seen = 1
        while frontier:
            nxt = []
            for p in frontier:
                for c in self._children[p]:
                    depth[c] = depth[p] + 1
                    nxt.append(c)
                    seen += 1
            frontier = nxt
        if seen != n:
            raise ValueError("parents array does not form a tree rooted at 0")
        return depth

    def _compute_postorder(self) -> tuple[int, ...]:
        order: list[int] = []
        stack: list[int] = [0]
        while stack:
            i = stack.pop()
            order.append(i)
            stack.extend(self._children[i])
        order.reverse()  # reversed preorder with children pushed = postorder
        return tuple(order)

    def _build_lift(self) -> None:
        n = self.num_nodes
        max_depth = max(self._depth)
        levels = max(1, max_depth.bit_length())
        lift = [[0] * n]
        for i in range(n):
            p = self._parents[i]
            lift[0][i] = p if p is not None else 0
        for lv in range(1, levels):
            prev = lift[lv - 1]
            lift.append([prev[prev[i]] for i in range(n)])
        self._lift = lift

    def __repr__(self) -> str:
        return (
            f"Topology(nodes={self.num_nodes}, sinks={self.num_sinks}, "
            f"steiner={self.num_steiner}, "
            f"source={'fixed' if self._source_location else 'free'})"
        )
