"""Topology and routed-tree (de)serialization.

Plain-JSON format so solved trees can be stored next to a design, diffed,
and reloaded without this library.  Schema::

    {
      "format": "lubt-tree-v1",
      "num_sinks": 3,
      "parents": [null, 4, 4, 0, 0],
      "sinks": [[x, y], ...],
      "source": [x, y] | null,
      "edge_lengths": [...],        # optional
      "placements": [[x, y], ...]   # optional, index = node id
    }
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.geometry import Point
from repro.topology.tree import Topology

FORMAT = "lubt-tree-v1"

_HASH_CACHE: "dict[int, tuple[Any, str]]" = {}
_HASH_CACHE_MAX = 4096


def topology_hash(topo: Topology) -> str:
    """Structural SHA-256 of a topology (hex digest).

    Two topologies hash equally iff their serialized ``lubt-tree-v1``
    documents (parents, sink/source coordinates, sink count) are
    identical — i.e. they are the *same instance* for solving purposes,
    regardless of which Python objects hold them.  This is the canonical
    key for cross-request caches and :class:`repro.ebf.WarmStart` reuse.

    Memoized per live object (topologies are immutable), so hashing on
    every solve of a sweep costs one dict hit after the first.
    """
    key = id(topo)
    hit = _HASH_CACHE.get(key)
    # Guard against id() reuse after garbage collection: the cache holds
    # a strong reference to the topology it hashed, so a live hit always
    # refers to the same object.
    if hit is not None and hit[0] is topo:
        return hit[1]
    blob = json.dumps(
        topology_to_dict(topo), sort_keys=True, separators=(",", ":")
    )
    digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()
    if len(_HASH_CACHE) >= _HASH_CACHE_MAX:
        _HASH_CACHE.clear()
    _HASH_CACHE[key] = (topo, digest)
    return digest


def topology_to_dict(
    topo: Topology,
    edge_lengths: np.ndarray | None = None,
    placements: dict[int, Point] | None = None,
) -> dict[str, Any]:
    """Serialize a topology (optionally with lengths and placements)."""
    out: dict[str, Any] = {
        "format": FORMAT,
        "num_sinks": topo.num_sinks,
        "parents": [topo.parent(i) for i in range(topo.num_nodes)],
        "sinks": [[p.x, p.y] for p in topo.sink_locations],
        "source": (
            [topo.source_location.x, topo.source_location.y]
            if topo.source_location is not None
            else None
        ),
    }
    if edge_lengths is not None:
        e = np.asarray(edge_lengths, dtype=float)
        if e.shape != (topo.num_nodes,):
            raise ValueError("edge_lengths shape mismatch")
        out["edge_lengths"] = e.tolist()
    if placements is not None:
        out["placements"] = [
            [placements[i].x, placements[i].y] for i in range(topo.num_nodes)
        ]
    return out


def topology_from_dict(
    data: dict[str, Any],
) -> tuple[Topology, np.ndarray | None, dict[int, Point] | None]:
    """Inverse of :func:`topology_to_dict`.

    Returns ``(topology, edge_lengths | None, placements | None)``.
    """
    if data.get("format") != FORMAT:
        raise ValueError(f"not a {FORMAT} document")
    sinks = [Point(float(x), float(y)) for x, y in data["sinks"]]
    src = data.get("source")
    source = Point(float(src[0]), float(src[1])) if src is not None else None
    topo = Topology(data["parents"], int(data["num_sinks"]), sinks, source)

    e = None
    if "edge_lengths" in data:
        e = np.asarray(data["edge_lengths"], dtype=float)
        if e.shape != (topo.num_nodes,):
            raise ValueError("edge_lengths shape mismatch")
    placements = None
    if "placements" in data:
        raw = data["placements"]
        if len(raw) != topo.num_nodes:
            raise ValueError("placements length mismatch")
        placements = {
            i: Point(float(x), float(y)) for i, (x, y) in enumerate(raw)
        }
    return topo, e, placements


def save_tree(
    path: str | Path,
    topo: Topology,
    edge_lengths: np.ndarray | None = None,
    placements: dict[int, Point] | None = None,
) -> None:
    """Write a topology/tree JSON file."""
    doc = topology_to_dict(topo, edge_lengths, placements)
    Path(path).write_text(json.dumps(doc, indent=1))


def load_tree(
    path: str | Path,
) -> tuple[Topology, np.ndarray | None, dict[int, Point] | None]:
    """Read a topology/tree JSON file."""
    return topology_from_dict(json.loads(Path(path).read_text()))
