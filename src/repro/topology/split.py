"""Degree-4 Steiner point splitting (Section 3, Figure 2).

In the Manhattan plane every Steiner point has degree 3 or 4.  The paper
splits each degree-4 Steiner point ``S`` into ``S1``/``S2`` joined by a new
zero-length edge so that every Steiner point has exactly one parent and two
children.  This transformation does not change the LUBT solution; the new
edge's length is pinned to zero.

:func:`split_high_degree_steiner` generalizes the construction to any
number of children (splitting repeatedly), returning the new topology plus
the set of edge ids that must be fixed to zero in the EBF.
"""

from __future__ import annotations

from repro.topology.tree import Topology


def split_high_degree_steiner(topo: Topology) -> tuple[Topology, frozenset[int]]:
    """Split every Steiner/root node with more than two children.

    Returns ``(new_topology, zero_edges)`` where ``zero_edges`` are the ids
    of the freshly introduced tie edges whose lengths the EBF must force to
    zero.  Sink nodes are never split (the paper only splits Steiner
    points); node ids of the root and all sinks are preserved, and
    pre-existing Steiner nodes keep their ids because new nodes are
    appended after them.
    """
    m = topo.num_sinks
    parents: list[int | None] = [topo.parent(i) for i in range(topo.num_nodes)]
    children: dict[int, list[int]] = {
        i: list(topo.children(i)) for i in range(topo.num_nodes)
    }
    zero_edges: set[int] = set()
    next_id = topo.num_nodes

    # Work queue of nodes that may need splitting; appended nodes are
    # enqueued too so chains of splits terminate with all fan-outs <= 2.
    queue = [i for i in range(topo.num_nodes) if not topo.is_sink(i)]
    while queue:
        node = queue.pop()
        kids = children[node]
        while len(kids) > 2:
            # Peel two children into a fresh Steiner node tied to `node`
            # with a zero-length edge (Figure 2 applied repeatedly).
            a = kids.pop()
            b = kids.pop()
            fresh = next_id
            next_id += 1
            parents.append(node)
            children[fresh] = [a, b]
            parents[a] = fresh
            parents[b] = fresh
            kids.append(fresh)
            zero_edges.add(fresh)

    new_topo = Topology(
        parents, m, list(topo.sink_locations), topo.source_location
    )
    return new_topo, frozenset(zero_edges)
