"""LUBT: Lower and Upper Bounded delay routing Trees via linear programming.

Reproduction of Oh, Pyo, Pedram, "Constructing Lower and Upper Bounded
Delay Routing Trees Using Linear Programming" (USC CENG 96-05 / DAC 1996).

Quickstart::

    from repro import (
        Point, DelayBounds, nearest_neighbor_topology, solve_lubt, embed_tree,
    )

    sinks = [Point(0, 0), Point(40, 10), Point(25, 30)]
    topo = nearest_neighbor_topology(sinks, source=Point(20, 20))
    bounds = DelayBounds.normalized(topo, 0.8, 1.2)   # radius units
    solution = solve_lubt(topo, bounds)
    tree = embed_tree(topo, solution.edge_lengths)
    print(solution.cost, tree.placements)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.geometry import Point, TRR, manhattan
from repro.topology import (
    Topology,
    nearest_neighbor_topology,
    balanced_bipartition_topology,
    star_topology,
    chain_topology,
    split_high_degree_steiner,
)
from repro.delay import (
    ElmoreParameters,
    sink_delays_linear,
    sink_delays_elmore,
    tree_cost,
    skew,
)
from repro.ebf import (
    DelayBounds,
    BoundsError,
    LubtSolution,
    solve_lubt,
    solve_zero_skew,
    solve_lubt_elmore,
)
from repro.embedding import EmbeddedTree, embed_tree, solve_and_embed
from repro.baselines import (
    BaselineTree,
    bounded_skew_tree,
    zero_skew_tree,
    shortest_path_tree,
)
from repro.data import load_benchmark, benchmark_names
from repro.lp import BackendCapabilityError, InfeasibleError
from repro.resilience import (
    InfeasibilityDiagnosis,
    SolveReport,
    diagnose_infeasibility,
    solve_lp_resilient,
)

__version__ = "1.0.0"

__all__ = [
    "Point",
    "TRR",
    "manhattan",
    "Topology",
    "nearest_neighbor_topology",
    "balanced_bipartition_topology",
    "star_topology",
    "chain_topology",
    "split_high_degree_steiner",
    "ElmoreParameters",
    "sink_delays_linear",
    "sink_delays_elmore",
    "tree_cost",
    "skew",
    "DelayBounds",
    "BoundsError",
    "LubtSolution",
    "solve_lubt",
    "solve_zero_skew",
    "solve_lubt_elmore",
    "EmbeddedTree",
    "embed_tree",
    "solve_and_embed",
    "BaselineTree",
    "bounded_skew_tree",
    "zero_skew_tree",
    "shortest_path_tree",
    "load_benchmark",
    "benchmark_names",
    "InfeasibleError",
    "BackendCapabilityError",
    "InfeasibilityDiagnosis",
    "SolveReport",
    "diagnose_infeasibility",
    "solve_lp_resilient",
    "__version__",
]
