"""Top-down placement (Section 5, Figure 7).

Once feasible regions exist, points are placed root-first: the possible
placements of child ``c`` of an already-placed parent ``p`` are

    FR_c  intersect  TRR({p}, e_c)

which Theorem 4.1 guarantees non-empty.  Within that region any point is
valid; two policies are provided:

* ``"nearest"`` (default) — the point closest to the parent, which keeps
  the *drawn* wire as short as possible (elongation is then realized as a
  serpentine detour of exactly ``e_c`` total length, the paper's "wire
  elongation");
* ``"center"`` — the region center, matching the illustrative figures.
"""

from __future__ import annotations

import numpy as np

from repro.embedding.feasible import EmbeddingError
from repro.geometry import Point, TRR
from repro.topology import Topology

#: Numerical cushion for region intersections at the float boundary.
_SLACK = 1e-9

PLACEMENT_POLICIES = ("nearest", "center")


def place_points(
    topo: Topology,
    edge_lengths,
    fr: dict[int, TRR],
    policy: str = "nearest",
) -> dict[int, Point]:
    """Return a location for every node, consistent with ``edge_lengths``.

    ``fr`` is the output of :func:`repro.embedding.feasible_regions`.
    Runs on the array kernel (:func:`repro.embedding.kernel.place_xy`),
    bit-identical to :func:`place_points_scalar`.
    """
    if policy not in PLACEMENT_POLICIES:
        raise ValueError(f"unknown placement policy {policy!r}")
    from repro.embedding.kernel import place_xy  # cycle: kernel imports feasible

    fb = np.empty((topo.num_nodes, 4), dtype=np.float64)
    for k in range(topo.num_nodes):
        t = fr[k]
        fb[k, 0] = t.ulo
        fb[k, 1] = t.uhi
        fb[k, 2] = t.vlo
        fb[k, 3] = t.vhi
    xy = place_xy(topo, edge_lengths, fb, policy=policy)
    return {
        k: Point(float(xy[k, 0]), float(xy[k, 1])) for k in range(topo.num_nodes)
    }


def place_points_scalar(
    topo: Topology,
    edge_lengths,
    fr: dict[int, TRR],
    policy: str = "nearest",
) -> dict[int, Point]:
    """The per-node scalar sweep — reference path for the array kernel.

    Kept verbatim so ``tests/test_embedding_kernel.py`` can pin the
    kernel's bit-compatibility against it; production callers go through
    :func:`place_points`.
    """
    if policy not in PLACEMENT_POLICIES:
        raise ValueError(f"unknown placement policy {policy!r}")
    e = np.asarray(edge_lengths, dtype=float)

    placements: dict[int, Point] = {}
    if topo.source_location is not None:
        placements[0] = topo.source_location
    else:
        placements[0] = fr[0].center()

    for node in topo.preorder():
        if node == 0:
            continue
        parent_at = placements[topo.parent(node)]  # placed before (preorder)
        ball = TRR.square(parent_at, max(0.0, e[node]) + _SLACK)  # noqa: RL006 (scalar reference path)
        region = fr[node].intersect(ball)
        if region.is_empty():
            raise EmbeddingError(
                f"placement region of node {node} is empty "
                "(edge lengths inconsistent with feasible regions)"
            )
        if policy == "center":
            placements[node] = region.center()
        else:
            placements[node] = region.closest_point_to(parent_at)
    return placements
