"""Embedding verification.

A valid embedding must satisfy, for every non-root node ``k`` with parent
``p`` (Section 2):

    e_k >= dist(location(k), location(p))

with equality for *tight* edges and strict inequality for *elongated*
ones.  Sinks must sit at their given coordinates and a fixed source at its
given location.  The verifier reports every violation rather than stopping
at the first, which makes property-test failures diagnosable.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import Point, manhattan
from repro.topology import Topology


def embedding_violations(
    topo: Topology,
    edge_lengths,
    placements: dict[int, Point],
    tol: float = 1e-6,
) -> list[str]:
    """All violations of embedding validity, as human-readable strings."""
    e = np.asarray(edge_lengths, dtype=float)
    problems: list[str] = []

    for i in topo.sink_ids():
        want = topo.sink_location(i)
        got = placements.get(i)
        if got is None:
            problems.append(f"sink {i} not placed")
        elif manhattan(want, got) > tol:
            problems.append(f"sink {i} placed at {got}, expected {want}")

    if topo.source_location is not None:
        got = placements.get(0)
        if got is None or manhattan(topo.source_location, got) > tol:
            problems.append(
                f"source placed at {placements.get(0)}, expected "
                f"{topo.source_location}"
            )

    for k in range(1, topo.num_nodes):
        p = topo.parent(k)
        if k not in placements or p not in placements:
            problems.append(f"edge e_{k}: endpoint missing")
            continue
        d = manhattan(placements[k], placements[p])
        if d > e[k] + tol:
            problems.append(
                f"edge e_{k} = {e[k]:g} shorter than embedded distance {d:g}"
            )
    return problems


def verify_embedding(
    topo: Topology,
    edge_lengths,
    placements: dict[int, Point],
    tol: float = 1e-6,
) -> None:
    """Raise ``AssertionError`` listing all problems, if any."""
    problems = embedding_violations(topo, edge_lengths, placements, tol)
    if problems:
        raise AssertionError(
            "invalid embedding:\n  " + "\n  ".join(problems)
        )


def tight_edges(
    topo: Topology,
    edge_lengths,
    placements: dict[int, Point],
    tol: float = 1e-6,
) -> tuple[list[int], list[int], list[int]]:
    """Classify edges as (tight, elongated, degenerate) — Section 2 terms."""
    e = np.asarray(edge_lengths, dtype=float)
    tight: list[int] = []
    elongated: list[int] = []
    degenerate: list[int] = []
    for k in range(1, topo.num_nodes):
        d = manhattan(placements[k], placements[topo.parent(k)])
        if e[k] <= tol:
            degenerate.append(k)
        elif abs(e[k] - d) <= tol:
            tight.append(k)
        else:
            elongated.append(k)
    return tight, elongated, degenerate
