"""Bottom-up feasible region construction (Section 5, Figure 6).

For a Steiner point ``s_k`` with children ``c_1 .. c_j``:

    FR_k = intersection of TRR(FR_{c_i}, e_{c_i})

and ``TRR_k = TRR(FR_k, e_k)`` feeds the construction of ``k``'s parent.
Sinks have point feasible regions at their given locations.  The appendix
shows ``FR_k`` equals the intersection of square TRRs centered at the
subtree's sinks with radii ``pathlength(sink, k)`` — an identity the test
suite checks directly.

An empty region means the edge lengths violate some Steiner constraint
(the contrapositive of Theorem 4.1); we raise :class:`EmbeddingError`
identifying the offending node.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import TRR
from repro.topology import Topology


class EmbeddingError(RuntimeError):
    """Raised when edge lengths admit no valid placement."""


def feasible_regions(topo: Topology, edge_lengths) -> dict[int, TRR]:
    """Compute ``FR_k`` for every node, bottom-up.

    ``edge_lengths`` is indexed by node id (entry 0 unused).  For a fixed
    source the root's region is additionally intersected with the source
    point; Theorem 4.1 plus the fixed-source delay strengthening (see
    :mod:`repro.ebf.formulation`) keeps it non-empty for EBF solutions.

    This is a :class:`TRR` view over the array kernel
    (:func:`repro.embedding.kernel.feasible_bounds`), bit-identical to
    :func:`feasible_regions_scalar`.
    """
    from repro.embedding.kernel import feasible_bounds  # cycle: kernel imports us

    fb = feasible_bounds(topo, edge_lengths)
    return {
        k: TRR(fb[k, 0], fb[k, 1], fb[k, 2], fb[k, 3])  # noqa: RL006 (view layer)
        for k in range(topo.num_nodes)
    }


def feasible_regions_scalar(topo: Topology, edge_lengths) -> dict[int, TRR]:
    """The per-node scalar sweep — reference path for the array kernel.

    Kept verbatim so ``tests/test_embedding_kernel.py`` can pin the
    kernel's bit-compatibility against it; production callers go through
    :func:`feasible_regions`.
    """
    e = np.asarray(edge_lengths, dtype=float)
    if e.shape != (topo.num_nodes,):
        raise ValueError("edge vector shape mismatch")
    if np.any(e[1:] < -1e-9):
        raise EmbeddingError("negative edge length")

    fr: dict[int, TRR] = {}
    for k in topo.postorder():
        if topo.is_sink(k):
            fr[k] = TRR.from_point(topo.sink_location(k))  # noqa: RL006 (scalar reference path)
            continue
        kids = topo.children(k)
        if not kids:
            raise EmbeddingError(f"Steiner node {k} has no children")
        region = fr[kids[0]].expanded(max(0.0, e[kids[0]]))
        for c in kids[1:]:
            region = region.intersect(fr[c].expanded(max(0.0, e[c])))
        if k == 0 and topo.source_location is not None:
            region = region.intersect(TRR.from_point(topo.source_location))  # noqa: RL006 (scalar reference path)
        if region.is_empty():
            raise EmbeddingError(
                f"feasible region of node {k} is empty: the edge lengths "
                "violate a Steiner constraint (Theorem 4.1 contrapositive)"
            )
        fr[k] = region
    return fr


def feasible_region_via_sinks(topo: Topology, edge_lengths, k: int) -> TRR:
    """The appendix's Equation 13 characterization of ``FR_k``:
    intersection of sink-centered square TRRs with pathlength radii.

    Exponentially clearer but quadratically slower than the sweep; used by
    tests to validate :func:`feasible_regions`.
    """
    e = np.asarray(edge_lengths, dtype=float)
    sinks = topo.subtree_sinks(k)
    if not sinks:
        raise EmbeddingError(f"node {k} has no sink descendants")
    region: TRR | None = None
    for i in sinks:
        # pathlength(s_i, s_k): edges from the sink up to (excluding) k.
        radius = 0.0
        node = i
        while node != k:
            radius += e[node]
            node = topo.parent(node)  # type: ignore[assignment]
        ball = TRR.square(topo.sink_location(i), radius)  # noqa: RL006 (Eq. 13 test helper)
        region = ball if region is None else region.intersect(ball)
    assert region is not None
    return region
