"""Array embedding kernel: level-batched feasible regions and placement.

The Section 5 sweeps are box arithmetic in the rotated (u, v) frame —
per node, four floats ``(u_lo, u_hi, v_lo, v_hi)``.  The scalar
implementation (kept in :mod:`repro.embedding.feasible` /
:mod:`repro.embedding.placement` as the reference path) materializes a
Python :class:`~repro.geometry.TRR` object per node per pass, which on
paper-scale nets dominates the embedding phase.  This module runs both
sweeps over whole ``(n, 4)`` / ``(n, 2)`` float64 arrays instead,
batched by tree depth: every child of a depth-``d`` node lives at depth
``d + 1``, so one scatter-reduce (``np.minimum.at`` / ``np.maximum.at``)
per level replaces the per-node Python loop.

Bit-compatibility with the scalar path is a hard contract, pinned by
``tests/test_embedding_kernel.py``.  Three details carry it:

* min/max/add/sub on float64 arrays are the same IEEE-754 operations the
  scalar code performs one at a time, and min/max folds are
  order-insensitive, so the scatter-reduce reproduces the per-child
  ``intersect``/``expanded`` folds exactly;
* the scalar top-down pass stores each placement as a :class:`Point`
  (x, y) and re-derives ``u = x + y`` / ``v = y - x`` when the node acts
  as a parent — a lossy round-trip in floating point — so this kernel
  stores (x, y) too and re-rotates per level instead of carrying (u, v);
* emptiness uses the same ``GEOM_EPS`` test, and the offending node
  reported on failure is the postorder-first (bottom-up) /
  preorder-first (top-down) problem node, exactly like the scalar loops
  (nodes ordered before the first problem compute identically in both
  paths, so the first problem node is the same).

Column layout everywhere: ``[u_lo, u_hi, v_lo, v_hi]``.
"""

from __future__ import annotations

import numpy as np

from repro.embedding.feasible import EmbeddingError
from repro.geometry import Point
from repro.geometry.trr import GEOM_EPS
from repro.topology import Topology

#: Same numerical cushion the scalar placement path uses at region
#: boundaries (``placement._SLACK``).
PLACEMENT_SLACK = 1e-9

_ULO, _UHI, _VLO, _VHI = 0, 1, 2, 3


def _levels(topo: Topology) -> list[np.ndarray]:
    """Node ids grouped by depth: ``levels[d]`` holds every node at depth
    ``d`` in increasing id order (children lists are id-ascending too, so
    scatter order matches the scalar child fold)."""
    depth = np.fromiter(
        (topo.depth(i) for i in range(topo.num_nodes)),
        dtype=np.int64,
        count=topo.num_nodes,
    )
    order = np.argsort(depth, kind="stable")
    splits = np.searchsorted(depth[order], np.arange(1, int(depth.max()) + 1))
    return np.split(order, splits)


def _parents_array(topo: Topology) -> np.ndarray:
    """Parent ids as an int array (entry 0 is a self-loop placeholder)."""
    par = np.zeros(topo.num_nodes, dtype=np.int64)
    for i in range(1, topo.num_nodes):
        par[i] = topo.parent(i)  # type: ignore[assignment]
    return par


def _first_in_order(order, problem: np.ndarray) -> int:
    for k in order:
        if problem[k]:
            return k
    raise AssertionError("no problem node found")  # pragma: no cover


def feasible_bounds(topo: Topology, edge_lengths) -> np.ndarray:
    """Bottom-up feasible regions for every node as an ``(n, 4)`` array.

    Row ``k`` is ``FR_k`` in rotated coordinates; sinks are point rows.
    Raises :class:`EmbeddingError` — identifying the first offending node
    in postorder, exactly like the scalar path — when any region is
    empty (Theorem 4.1 contrapositive).
    """
    e = np.asarray(edge_lengths, dtype=float)
    if e.shape != (topo.num_nodes,):
        raise ValueError("edge vector shape mismatch")
    if np.any(e[1:] < -1e-9):
        raise EmbeddingError("negative edge length")

    n = topo.num_nodes
    r = np.maximum(0.0, e)  # the scalar path clamps per-child radii
    su, sv = topo.sink_uv()
    is_sink = np.zeros(n, dtype=bool)
    is_sink[1 : topo.num_sinks + 1] = True

    fb = np.empty((n, 4), dtype=np.float64)
    # Steiner/root rows start as the whole plane and shrink by
    # intersection; sink rows are pinned to their point and never widen.
    fb[:, _ULO] = -np.inf
    fb[:, _UHI] = np.inf
    fb[:, _VLO] = -np.inf
    fb[:, _VHI] = np.inf
    fb[is_sink, _ULO] = su[is_sink]
    fb[is_sink, _UHI] = su[is_sink]
    fb[is_sink, _VLO] = sv[is_sink]
    fb[is_sink, _VHI] = sv[is_sink]

    par = _parents_array(topo)
    levels = _levels(topo)
    # Deepest level first: when level d is processed every node there is
    # final, and its expanded box folds into its (depth d-1) parent.
    for level in reversed(levels[1:]):
        c = level
        p = par[c]
        # Interior sinks keep their point region — the scalar sweep never
        # intersects children into a sink node.
        grow = ~is_sink[p]
        c, p = c[grow], p[grow]
        if not len(c):
            continue
        np.maximum.at(fb[:, _ULO], p, fb[c, _ULO] - r[c])
        np.minimum.at(fb[:, _UHI], p, fb[c, _UHI] + r[c])
        np.maximum.at(fb[:, _VLO], p, fb[c, _VLO] - r[c])
        np.minimum.at(fb[:, _VHI], p, fb[c, _VHI] + r[c])

    src = topo.source_location
    if src is not None:
        fb[0, _ULO] = max(fb[0, _ULO], src.u)
        fb[0, _UHI] = min(fb[0, _UHI], src.u)
        fb[0, _VLO] = max(fb[0, _VLO], src.v)
        fb[0, _VHI] = min(fb[0, _VHI], src.v)

    empty = (fb[:, _UHI] - fb[:, _ULO] < -GEOM_EPS) | (
        fb[:, _VHI] - fb[:, _VLO] < -GEOM_EPS
    )
    # A childless Steiner node never shrinks from the whole plane; the
    # scalar loop reports it the moment postorder reaches it.
    childless = np.ones(n, dtype=bool)
    childless[par[1:]] = False
    childless &= ~is_sink
    childless[0] = False
    problem = empty | childless
    if problem.any():
        k = _first_in_order(topo.postorder(), problem)
        if childless[k]:
            raise EmbeddingError(f"Steiner node {k} has no children")
        raise EmbeddingError(
            f"feasible region of node {k} is empty: the edge lengths "
            "violate a Steiner constraint (Theorem 4.1 contrapositive)"
        )
    return fb


def place_xy(
    topo: Topology,
    edge_lengths,
    fb: np.ndarray,
    policy: str = "nearest",
) -> np.ndarray:
    """Top-down placement over the array bounds; returns ``(n, 2)``
    original-frame ``(x, y)`` coordinates.

    ``fb`` is the output of :func:`feasible_bounds`.  Policies match the
    scalar path: ``"nearest"`` clamps the parent's position into the
    child's region, ``"center"`` takes the region midpoint.
    """
    if policy not in ("nearest", "center"):
        raise ValueError(f"unknown placement policy {policy!r}")
    e = np.asarray(edge_lengths, dtype=float)
    n = topo.num_nodes
    ball = np.maximum(0.0, e) + PLACEMENT_SLACK

    xy = np.empty((n, 2), dtype=np.float64)
    src = topo.source_location
    if src is not None:
        xy[0, 0] = src.x
        xy[0, 1] = src.y
    else:
        u0 = (fb[0, _ULO] + fb[0, _UHI]) / 2.0
        v0 = (fb[0, _VLO] + fb[0, _VHI]) / 2.0
        xy[0, 0] = (u0 - v0) / 2.0
        xy[0, 1] = (u0 + v0) / 2.0

    par = _parents_array(topo)
    any_empty = np.zeros(n, dtype=bool)
    for level in _levels(topo)[1:]:
        c = level
        p = par[c]
        # Re-derive (u, v) from the stored (x, y) exactly as Point.u /
        # Point.v do — the rotation round-trip is lossy in floating
        # point, and the scalar path goes through Point between levels.
        px, py = xy[p, 0], xy[p, 1]
        pu = px + py
        pv = py - px
        ulo = np.maximum(fb[c, _ULO], pu - ball[c])
        uhi = np.minimum(fb[c, _UHI], pu + ball[c])
        vlo = np.maximum(fb[c, _VLO], pv - ball[c])
        vhi = np.minimum(fb[c, _VHI], pv + ball[c])
        any_empty[c] = (uhi - ulo < -GEOM_EPS) | (vhi - vlo < -GEOM_EPS)
        if policy == "center":
            cu = (ulo + uhi) / 2.0
            cv = (vlo + vhi) / 2.0
        else:
            cu = np.minimum(np.maximum(pu, ulo), uhi)
            cv = np.minimum(np.maximum(pv, vlo), vhi)
        xy[c, 0] = (cu - cv) / 2.0  # Point.from_uv
        xy[c, 1] = (cu + cv) / 2.0
    if any_empty.any():
        # Positions below an empty region are garbage; the scalar loop
        # never reaches them because it raises at the preorder-first
        # empty node — report exactly that node.
        node = _first_in_order(topo.preorder(), any_empty)
        raise EmbeddingError(
            f"placement region of node {node} is empty "
            "(edge lengths inconsistent with feasible regions)"
        )
    return xy


def embed_placements(
    topo: Topology, edge_lengths, policy: str = "nearest"
) -> dict[int, Point]:
    """Both sweeps end to end; returns the node -> :class:`Point` map the
    pipeline and SVG layers consume.

    Bit-identical to the scalar
    ``place_points(topo, e, feasible_regions(topo, e))`` composition.
    """
    fb = feasible_bounds(topo, edge_lengths)
    xy = place_xy(topo, edge_lengths, fb, policy=policy)
    return {
        k: Point(float(xy[k, 0]), float(xy[k, 1])) for k in range(topo.num_nodes)
    }
