"""Serpentine realization of elongated wires.

The paper's *wire elongation* (Section 2: ``e_i > dist(s_i, s_p)``) is an
electrical length; a real layout must realize it as geometry.  This
module turns an edge (two endpoints plus a required length) into an
axis-aligned polyline of **exactly** that length: the plain L-route when
the edge is tight, and an L-route with perpendicular zig-zags absorbing
the detour otherwise.  Each zag of amplitude ``h`` adds ``2 h`` of wire,
so any non-negative detour is realizable; the number of zags is chosen
to respect a maximum amplitude (detours stay near the nominal route).
"""

from __future__ import annotations

import math

from repro.geometry import Point, manhattan

_EPS = 1e-9


def serpentine_route(
    a: Point,
    b: Point,
    length: float,
    max_amplitude: float | None = None,
) -> list[Point]:
    """Axis-aligned polyline from ``a`` to ``b`` of total L1 length
    exactly ``length``.

    ``length`` must be at least ``manhattan(a, b)`` (up to epsilon —
    tiny LP noise is absorbed).  ``max_amplitude`` caps how far the
    zig-zags stray from the nominal L-route (default: unlimited, one
    bump).
    """
    d = manhattan(a, b)
    if length < d - 1e-6:
        raise ValueError(
            f"requested length {length:g} below endpoint distance {d:g}"
        )
    extra = max(0.0, length - d)

    if extra <= _EPS:
        return _l_route(a, b)

    # Choose zag amplitude and count: k zags of amplitude h, 2 k h = extra.
    if max_amplitude is not None and max_amplitude > 0:
        k = max(1, math.ceil(extra / (2.0 * max_amplitude)))
    else:
        k = 1
    h = extra / (2.0 * k)

    # Zig-zag along the longer axis of the route; perpendicular bumps.
    dx = b.x - a.x
    dy = b.y - a.y
    horizontal = abs(dx) >= abs(dy)
    span = abs(dx) if horizontal else abs(dy)

    if span <= _EPS:
        # Degenerate run (coincident or purely perpendicular): hang the
        # zags off the start point instead.
        out: list[Point] = [a]
        for _ in range(k):
            out.append(Point(a.x + h, a.y) if not horizontal else Point(a.x, a.y + h))
            out.append(a)
        return _extend(out, _l_route(a, b)[1:])

    step = span / (k + 1)
    sgn = 1.0 if (dx if horizontal else dy) >= 0 else -1.0
    out = [a]
    pos = 0.0
    for i in range(1, k + 1):
        pos = step * i
        if horizontal:
            base = Point(a.x + sgn * pos, a.y)
            bump = Point(base.x, base.y + h)
        else:
            base = Point(a.x, a.y + sgn * pos)
            bump = Point(base.x + h, base.y)
        prev = out[-1]
        if horizontal:
            out.append(Point(base.x, prev.y))
        else:
            out.append(Point(prev.x, base.y))
        out.append(bump)
        out.append(base)
    # Finish the remaining run plus the perpendicular leg.
    if horizontal:
        out.append(Point(b.x, a.y))
        if abs(b.y - a.y) > _EPS:
            out.append(b)
    else:
        out.append(Point(a.x, b.y))
        if abs(b.x - a.x) > _EPS:
            out.append(b)
    return _dedupe(out, b)


def polyline_length(points: list[Point]) -> float:
    """Total L1 length of a polyline."""
    return sum(
        manhattan(p, q) for p, q in zip(points, points[1:])
    )


def _l_route(a: Point, b: Point) -> list[Point]:
    """Horizontal-then-vertical L (degenerates to a straight segment)."""
    if abs(a.x - b.x) <= _EPS or abs(a.y - b.y) <= _EPS:
        return [a, b]
    return [a, Point(b.x, a.y), b]


def _extend(base: list[Point], tail: list[Point]) -> list[Point]:
    out = list(base)
    for p in tail:
        if manhattan(out[-1], p) > _EPS:
            out.append(p)
    return out


def _dedupe(points: list[Point], last: Point) -> list[Point]:
    out: list[Point] = []
    for p in points:
        if not out or manhattan(out[-1], p) > _EPS:
            out.append(p)
    if manhattan(out[-1], last) > _EPS:
        out.append(last)
    return out
