"""End-to-end embedding pipeline and the combined solve-and-embed entry.

This is the full two-stage flow of the paper: EBF LP for edge lengths,
then feasible regions + top-down placement for coordinates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from repro.delay import sink_delays_linear
from repro.ebf.bounds import DelayBounds
from repro.ebf.solver import LubtSolution, solve_lubt
from repro.embedding.kernel import embed_placements
from repro.embedding.verify import verify_embedding
from repro.geometry import Point, manhattan
from repro.topology import Topology


@dataclass(frozen=True)
class EmbeddedTree:
    """A routed tree: edge lengths plus realized coordinates.

    ``cost`` counts the LP edge lengths (what the wires consume,
    serpentine detours included); ``drawn_wirelength`` counts only the
    point-to-point Manhattan distances (what a plot shows), which is
    always <= cost.
    """

    topology: Topology
    edge_lengths: np.ndarray
    placements: dict[int, Point]

    @property
    def cost(self) -> float:
        return float(self.edge_lengths[1:].sum())

    @property
    def drawn_wirelength(self) -> float:
        return sum(
            manhattan(self.placements[k], self.placements[self.topology.parent(k)])
            for k in range(1, self.topology.num_nodes)
        )

    @property
    def elongation(self) -> float:
        """Total detour length (cost minus drawn wirelength)."""
        return self.cost - self.drawn_wirelength

    def sink_delays(self) -> np.ndarray:
        return sink_delays_linear(self.topology, self.edge_lengths)

    def root_location(self) -> Point:
        return self.placements[0]


def embed_tree(
    topo: Topology,
    edge_lengths,
    policy: str = "nearest",
    verify: bool = True,
) -> EmbeddedTree:
    """Realize ``edge_lengths`` as coordinates (Theorem 4.1 in code).

    Raises :class:`repro.embedding.EmbeddingError` when the lengths
    violate a Steiner constraint, and (with ``verify=True``) asserts the
    resulting placement is valid.
    """
    e = np.asarray(edge_lengths, dtype=float)
    placements = embed_placements(topo, e, policy=policy)
    if verify:
        verify_embedding(topo, e, placements, tol=1e-5)
    return EmbeddedTree(topo, e, placements)


def solve_and_embed(
    topo: Topology,
    bounds: DelayBounds,
    *,
    policy: str = "nearest",
    resilient: bool = False,
    on_infeasible: str = "raise",
    **solve_kwargs,
) -> tuple[LubtSolution, EmbeddedTree]:
    """One-call LUBT: LP solve then placement.

    Resilience knobs pass straight through to :func:`solve_lubt`:
    ``resilient=True`` runs every LP through the backend fallback chain
    (plus ``lp_timeout=`` for per-attempt wall-clock limits), and
    ``on_infeasible="relax"`` degrades gracefully — the returned solution
    carries ``sol.diagnosis`` and the tree is embedded under the
    minimally relaxed bounds, which stay embeddable because the elastic
    re-solve keeps the geometric ``path >= dist(source, sink)`` floor
    hard (see docs/ROBUSTNESS.md).
    """
    sol = solve_lubt(
        topo,
        bounds,
        resilient=resilient,
        on_infeasible=on_infeasible,
        **solve_kwargs,
    )
    t0 = time.perf_counter()
    tree = embed_tree(topo, sol.edge_lengths, policy=policy)
    embed_seconds = time.perf_counter() - t0
    sol = replace(sol, stats=replace(sol.stats, embed_seconds=embed_seconds))
    return sol, tree
