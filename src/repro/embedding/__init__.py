"""Tree embedding: from edge lengths to Steiner-point coordinates (Sec. 5).

The EBF determines edge lengths; this package realizes them in the
Manhattan plane with the paper's two sweeps:

1. **bottom-up** — feasible regions ``FR_k`` built by intersecting the
   children's expanded TRRs (Figure 6);
2. **top-down** — each point placed inside ``FR_k`` intersected with the
   square TRR around its already-placed parent (Figure 7).

Theorem 4.1 guarantees the sweeps never get stuck when the edge lengths
satisfy the Steiner constraints; :func:`verify_embedding` checks the
resulting placement (``e_k >= dist(s_k, parent)``) explicitly.
"""

from repro.embedding.feasible import (
    EmbeddingError,
    feasible_regions,
    feasible_regions_scalar,
)
from repro.embedding.kernel import embed_placements, feasible_bounds, place_xy
from repro.embedding.placement import (
    place_points,
    place_points_scalar,
    PLACEMENT_POLICIES,
)
from repro.embedding.verify import verify_embedding, embedding_violations
from repro.embedding.pipeline import EmbeddedTree, embed_tree, solve_and_embed
from repro.embedding.serpentine import serpentine_route, polyline_length

__all__ = [
    "serpentine_route",
    "polyline_length",
    "EmbeddingError",
    "feasible_regions",
    "feasible_regions_scalar",
    "feasible_bounds",
    "place_xy",
    "embed_placements",
    "place_points",
    "place_points_scalar",
    "PLACEMENT_POLICIES",
    "verify_embedding",
    "embedding_violations",
    "EmbeddedTree",
    "embed_tree",
    "solve_and_embed",
]
