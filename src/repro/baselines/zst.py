"""Zero-skew tree baseline (Boese-Kahng [7] DME under linear delay).

Exposed separately because Table 1's first row per benchmark is exactly
this algorithm, and because it generates its own topology (unlike
:func:`repro.ebf.solve_zero_skew`, which requires one).
"""

from __future__ import annotations

from repro.baselines.bounded_skew import BaselineTree
from repro.baselines.trimmed_zst import trimmed_zero_skew_tree
from repro.geometry import Point


def zero_skew_tree(
    sinks: list[Point], source: Point | None = None
) -> BaselineTree:
    """Nearest-neighbor-merge topology + exact DME zero-skew lengths."""
    return trimmed_zero_skew_tree(sinks, 0.0, source)
