"""Exact zero-skew tree under the Elmore delay model (Tsay [4]).

The DME-style bottom-up merge, with Elmore-delay balancing instead of
pathlength balancing.  Merging subtrees ``a``/``b`` whose merging
segments are ``L`` apart, with sink delays ``t`` and downstream
capacitances ``C``, the tap point splits the connecting wire at
``l_a = z L``:

    z = (t_b - t_a + r L (C_b + c L / 2)) / (r L (c L + C_a + C_b))

(the quadratic terms cancel, Tsay's classic closed form).  When ``z``
falls outside ``[0, 1]`` the faster side's wire is *elongated*: with
``l_a = 0``,

    l_b = (sqrt((r C_b)^2 + 2 r c (t_a - t_b)) - r C_b) / (r c)

which solves ``t_a = t_b + r l_b (c l_b / 2 + C_b)`` exactly.  Geometry
is the same TRR arithmetic as the linear-delay case: the merging segment
is ``TRR(ms_a, l_a) ∩ TRR(ms_b, l_b)``.

This gives the paper's reference point for Section 7: an Elmore-exact
zero-skew construction to compare the Elmore-EBF extension against.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.bounded_skew import BaselineTree
from repro.delay import ElmoreParameters, sink_delays_elmore
from repro.geometry import Point, TRR
from repro.lp import InfeasibleError
from repro.topology import Topology, nearest_neighbor_topology


def elmore_zero_skew_tree(
    sinks: list[Point],
    params: ElmoreParameters,
    source: Point | None = None,
    topology: Topology | None = None,
) -> BaselineTree:
    """Build an exact zero-skew tree under Elmore delay.

    Uses the given ``topology`` (binary, sinks as leaves) or generates a
    nearest-neighbor merge one.  The returned tree's *Elmore* sink skew
    is zero to numerical precision; its cost is the total wire length.
    """
    topo = topology if topology is not None else nearest_neighbor_topology(
        sinks, source
    )
    if topo.num_sinks != len(sinks):
        raise ValueError("topology/sink count mismatch")
    for i in topo.sink_ids():
        if not topo.is_leaf(i):
            raise InfeasibleError(
                f"sink {i} is interior: zero skew unachievable"
            )

    e = np.zeros(topo.num_nodes)
    ms: dict[int, TRR] = {}
    t: dict[int, float] = {}
    cap: dict[int, float] = {}
    rw, cw = params.wire_resistance, params.wire_capacitance

    for k in topo.postorder():
        if topo.is_sink(k):
            ms[k] = TRR.from_point(topo.sink_location(k))
            t[k] = 0.0
            cap[k] = params.sink_cap(k)
            continue
        kids = list(topo.children(k))
        if k == 0 and topo.source_location is not None:
            continue
        if len(kids) == 1:
            (a,) = kids
            e[a] = 0.0
            ms[k] = ms[a]
            t[k] = t[a]
            cap[k] = cap[a]
            continue
        if len(kids) != 2:
            raise InfeasibleError(
                f"node {k} has {len(kids)} children; "
                "run split_high_degree_steiner first"
            )
        a, b = kids
        l_a, l_b = _balance(
            t[a], cap[a], t[b], cap[b], ms[a].distance_to(ms[b]), rw, cw
        )
        e[a], e[b] = l_a, l_b
        region = ms[a].expanded(l_a).intersect(ms[b].expanded(l_b))
        if region.is_empty():
            raise AssertionError("Elmore DME merge produced an empty region")
        ms[k] = region
        t[k] = t[a] + rw * l_a * (cw * l_a / 2.0 + cap[a])
        cap[k] = cap[a] + cap[b] + cw * (l_a + l_b)

    if topo.source_location is not None:
        root_kids = topo.children(0)
        if len(root_kids) != 1:
            raise InfeasibleError(
                "fixed-source Elmore zero-skew requires a single root child"
            )
        (child,) = root_kids
        e[child] = ms[child].distance_to(TRR.from_point(topo.source_location))

    delays = sink_delays_elmore(topo, e, params)
    spread = float(delays.max() - delays.min()) if len(delays) else 0.0
    scale = max(1.0, float(np.abs(delays).max()) if len(delays) else 1.0)
    if spread > 1e-6 * scale:
        raise AssertionError(f"Elmore zero-skew sweep left skew {spread:g}")
    return BaselineTree(topo, e, float(e[1:].sum()), delays)


def _balance(
    t_a: float,
    c_a: float,
    t_b: float,
    c_b: float,
    distance: float,
    rw: float,
    cw: float,
) -> tuple[float, float]:
    """Tsay's merge: wire lengths equalizing the two Elmore delays."""
    length = distance
    if length > 0:
        denom = rw * length * (cw * length + c_a + c_b)
        z = (t_b - t_a + rw * length * (c_b + cw * length / 2.0)) / denom
        if 0.0 <= z <= 1.0:
            return z * length, (1.0 - z) * length
    # Degenerate or out-of-range: pin the slower side, elongate the other.
    if t_a >= t_b:
        return 0.0, max(length, _elongated_length(t_a - t_b, c_b, rw, cw))
    return max(length, _elongated_length(t_b - t_a, c_a, rw, cw)), 0.0


def _elongated_length(
    delta_t: float, c_load: float, rw: float, cw: float
) -> float:
    """Positive root of ``r l (c l / 2 + C) = delta_t``."""
    if delta_t <= 0:
        return 0.0
    if cw <= 0:
        return delta_t / (rw * c_load) if c_load > 0 else 0.0
    disc = (rw * c_load) ** 2 + 2.0 * rw * cw * delta_t
    return (math.sqrt(disc) - rw * c_load) / (rw * cw)
