"""Buffer insertion on a routed tree (van Ginneken's algorithm).

The paper's introduction contrasts LUBT's *wire-length* delay control
against the buffer-insertion approach of [10] ("delays are controlled by
buffer sizing, rather than by controlling the wire lengths"), arguing
wires cost less area and power.  To make that comparison quantitative we
implement the classic dynamic program (L. van Ginneken, ISCAS 1990) that
optimally places buffers from a library at tree nodes to minimize the
maximum source-sink Elmore delay:

* bottom-up, every node carries a Pareto set of ``(C, Q)`` candidates —
  downstream capacitance vs required-arrival-time (RAT, higher = slower
  paths allowed); dominated candidates (both worse) are pruned, which
  keeps the sets small and the DP exact;
* traversing edge ``e`` costs ``r_w e (c_w e / 2 + C)`` of RAT and adds
  ``c_w e`` of capacitance;
* inserting a buffer resets the visible capacitance to its input cap at
  the price of ``d0 + r_b C`` of RAT;
* at a merge, candidates combine as ``(C_a + C_b, min(Q_a, Q_b))``;
* at the source, a driver of resistance ``r_src`` sees the root load, so
  the tree's max delay is ``r_src * C_root - Q_root`` (sinks start at
  ``Q = 0``), minimized over the root candidate set.

This is the node-insertion variant (buffers at sinks/Steiner points, not
mid-wire) — the standard simplification when the tree's tap points are
dense, and exactly what our trees provide.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.delay import ElmoreParameters
from repro.topology import Topology


@dataclass(frozen=True)
class Buffer:
    """One buffer type from the library."""

    input_cap: float
    intrinsic_delay: float
    output_resistance: float

    def __post_init__(self) -> None:
        if min(self.input_cap, self.output_resistance) <= 0 or (
            self.intrinsic_delay < 0
        ):
            raise ValueError("invalid buffer parameters")


@dataclass(frozen=True)
class BufferingSolution:
    """Outcome of the insertion DP."""

    max_delay: float
    num_buffers: int
    buffered_nodes: frozenset[int]
    root_capacitance: float

    @property
    def uses_buffers(self) -> bool:
        return self.num_buffers > 0


@dataclass(frozen=True)
class _Candidate:
    cap: float
    q: float
    buffers: int
    # Chosen buffered nodes, kept as a frozenset for traceability; sets
    # stay tiny because of Pareto pruning.
    nodes: frozenset[int]


def van_ginneken(
    topo: Topology,
    edge_lengths: np.ndarray,
    params: ElmoreParameters,
    buffer: Buffer,
    source_resistance: float = 1.0,
    max_buffers: int | None = None,
) -> BufferingSolution:
    """Minimize the maximum Elmore delay of the routed tree by optimally
    inserting ``buffer`` instances at tree nodes.

    ``max_buffers`` optionally caps the count (the DP then returns the
    best solution within the budget).
    """
    if source_resistance <= 0:
        raise ValueError("source resistance must be positive")
    e = np.asarray(edge_lengths, dtype=float)
    if e.shape != (topo.num_nodes,):
        raise ValueError("edge vector shape mismatch")
    rw, cw = params.wire_resistance, params.wire_capacitance

    cands: dict[int, list[_Candidate]] = {}
    for node in topo.postorder():
        if topo.is_leaf(node):
            if not topo.is_sink(node):
                raise ValueError(f"dangling Steiner node {node}")
            base = [
                _Candidate(params.sink_cap(node), 0.0, 0, frozenset())
            ]
        else:
            base = None
            for child in topo.children(node):
                lifted = _through_edge(cands[child], e[child], rw, cw)
                base = lifted if base is None else _merge(base, lifted)
            assert base is not None
        # Option: place a buffer at this node (not at the root, whose
        # driver is the clock source itself).
        options = list(base)
        if node != 0:
            for c in base:
                nb = c.buffers + 1
                if max_buffers is not None and nb > max_buffers:
                    continue
                options.append(
                    _Candidate(
                        buffer.input_cap,
                        c.q - buffer.intrinsic_delay
                        - buffer.output_resistance * c.cap,
                        nb,
                        c.nodes | {node},
                    )
                )
        cands[node] = _prune(options)

    best = min(
        cands[0], key=lambda c: source_resistance * c.cap - c.q
    )
    return BufferingSolution(
        max_delay=source_resistance * best.cap - best.q,
        num_buffers=best.buffers,
        buffered_nodes=best.nodes,
        root_capacitance=best.cap,
    )


def _through_edge(
    options: list[_Candidate], length: float, rw: float, cw: float
) -> list[_Candidate]:
    out = []
    for c in options:
        delay = rw * length * (cw * length / 2.0 + c.cap)
        out.append(
            _Candidate(c.cap + cw * length, c.q - delay, c.buffers, c.nodes)
        )
    return out


def _merge(
    a: list[_Candidate], b: list[_Candidate]
) -> list[_Candidate]:
    out = [
        _Candidate(
            ca.cap + cb.cap,
            min(ca.q, cb.q),
            ca.buffers + cb.buffers,
            ca.nodes | cb.nodes,
        )
        for ca in a
        for cb in b
    ]
    return _prune(out)


def _prune(options: list[_Candidate]) -> list[_Candidate]:
    """Keep the (cap, q, buffers)-Pareto frontier.

    Sorted by cap ascending, then sweep keeping candidates that improve q
    (per buffer count level, so a budgeted query stays answerable).
    """
    best_q: dict[int, float] = {}
    frontier: list[_Candidate] = []
    for c in sorted(options, key=lambda c: (c.cap, -c.q, c.buffers)):
        dominated = any(
            q >= c.q - 1e-15 for nb, q in best_q.items() if nb <= c.buffers
        )
        if dominated:
            continue
        frontier.append(c)
        if c.buffers not in best_q or c.q > best_q[c.buffers]:
            best_q[c.buffers] = c.q
    return frontier
