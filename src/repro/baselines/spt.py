"""Shortest-path tree baseline.

Connects every sink straight to the source; every delay equals its lower
geometric limit ``dist(s_0, s_i)``.  This is the cheapest-delay (not
cheapest-wire) extreme used as a sanity baseline for global routing
comparisons, and the starting point of the Lemma 3.1 feasibility argument.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.bounded_skew import BaselineTree
from repro.delay import sink_delays_linear
from repro.geometry import Point, manhattan
from repro.topology import star_topology


def shortest_path_tree(sinks: list[Point], source: Point) -> BaselineTree:
    """Direct source-to-sink star; delays are exactly the distances."""
    topo = star_topology(sinks, source)
    e = np.zeros(topo.num_nodes)
    for i in topo.sink_ids():
        e[i] = manhattan(source, topo.sink_location(i))
    delays = sink_delays_linear(topo, e)
    return BaselineTree(topo, e, float(e[1:].sum()), delays)
