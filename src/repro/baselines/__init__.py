"""Baseline routing algorithms the paper compares against.

* :func:`bounded_skew_tree` — the Table 1 comparator in the style of
  Huang/Kahng/Tsao [9]: the min-envelope of two valid constructions
  (DME + slack trimming for tight budgets, greedy bounded-skew Steiner
  attachment for loose ones).  It both *generates its topology* and
  assigns edge lengths meeting the skew bound.
* :func:`greedy_attachment_tree` / :func:`trimmed_zero_skew_tree` — the
  two constructions individually (used by ablations).
* :func:`zero_skew_tree` — the skew-bound-0 special case ([7]'s DME).
* :func:`shortest_path_tree` — the trivial source-to-sink star (minimum
  possible per-sink delays; the global-routing strawman).
"""

from repro.baselines.bounded_skew import BaselineTree, greedy_attachment_tree
from repro.baselines.buffering import Buffer, BufferingSolution, van_ginneken
from repro.baselines.comparator import bounded_skew_tree
from repro.baselines.elmore_zst import elmore_zero_skew_tree
from repro.baselines.spt import shortest_path_tree
from repro.baselines.trimmed_zst import trimmed_zero_skew_tree
from repro.baselines.zst import zero_skew_tree

__all__ = [
    "BaselineTree",
    "bounded_skew_tree",
    "greedy_attachment_tree",
    "trimmed_zero_skew_tree",
    "zero_skew_tree",
    "elmore_zero_skew_tree",
    "shortest_path_tree",
    "Buffer",
    "BufferingSolution",
    "van_ginneken",
]
