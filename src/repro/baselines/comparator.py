"""The combined bounded-skew comparator used by the Table 1 protocol.

[9]'s BME algorithm behaves like an interpolation between exact zero-skew
DME and a rectilinear Steiner heuristic.  We reproduce that envelope with
two independent constructions and take the cheaper tree:

* :func:`repro.baselines.trimmed_zst.trimmed_zero_skew_tree` — exact DME
  plus greedy slack trimming; the stronger construction for tight skew
  budgets (its window is the paper's gradually widening ``[1 - B, 1]``);
* :func:`repro.baselines.bounded_skew.greedy_attachment_tree` — greedy
  bounded-skew Steiner attachment; the stronger construction for loose
  budgets (approaching a plain Steiner tree at ``B = inf``).

Both are valid for every budget (measured skew <= bound), so the minimum
is too.  This min-envelope is flat for very small budgets where [9]'s
octilinear merging regions would buy a few extra percent — documented as
a known comparator gap in EXPERIMENTS.md.
"""

from __future__ import annotations

import math

from repro.baselines.bounded_skew import BaselineTree, greedy_attachment_tree
from repro.baselines.trimmed_zst import trimmed_zero_skew_tree
from repro.geometry import Point


def bounded_skew_tree(
    sinks: list[Point],
    skew_bound: float,
    source: Point | None = None,
    verify: bool = True,
) -> BaselineTree:
    """The cheaper of the two bounded-skew constructions (see module
    docstring).  ``skew_bound`` is absolute; ``math.inf`` allowed."""
    greedy = greedy_attachment_tree(sinks, skew_bound, source, verify=verify)
    if len(sinks) == 1:
        return greedy
    trimmed = trimmed_zero_skew_tree(sinks, skew_bound, source)
    best = trimmed if trimmed.cost < greedy.cost else greedy
    if math.isfinite(skew_bound) and best.skew > skew_bound + 1e-6:
        raise AssertionError("comparator produced an out-of-bound skew")
    return best
