"""Bounded-skew clock tree construction — the Table 1 comparator.

A greedy *bounded-skew Steiner attachment* heuristic standing in for the
algorithm of [9] (Huang, Kahng, Tsao).  Sinks are processed in decreasing
distance from the source and attached, one by one, to the cheapest valid
point of the wire built so far:

* attaching at a mid-wire point ``w`` creates a Steiner *tap* node that
  splits the host edge (the tap has exactly the upstream piece, the
  downstream piece, and the new sink under it);
* under the linear delay model the delay at ``w`` is the pathlength from
  the source, known exactly from the embedded geometry;
* the new sink's delay is ``delay(w) + wire``; if that would undershoot
  the window (faster than ``W_hi - B``), the wire is *elongated* with a
  serpentine detour — the paper's wire elongation — so its delay lands
  exactly on the window floor;
* an attachment is valid only if the resulting delay stays within
  ``W_lo + B`` (it can never push previously placed sinks out of the
  window).  Attaching straight to the source is always valid because
  sinks are processed farthest-first, so this greedy never gets stuck.

The skew bound interpolates the classic extremes: ``B = 0`` forces every
sink delay to exactly the radius (a valid zero-skew tree — Table 1's
``1.000/1.000`` row), while ``B = inf`` degenerates to a plain greedy
rectilinear Steiner heuristic (nearest-point attachment, no elongation),
matching the paper's remark that the comparator solves the Steiner
problem when the skew bound is infinite.  Every returned tree is exact:
edge lengths are realized by explicit L-shaped geometry plus bookkept
detour length, so the tree embeds and its measured skew respects the
bound by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.delay import sink_delays_linear
from repro.geometry import Point, bounding_box, manhattan
from repro.topology import Topology


@dataclass(frozen=True)
class BaselineTree:
    """A routed tree produced by a baseline algorithm."""

    topology: Topology
    edge_lengths: np.ndarray
    cost: float
    delays: np.ndarray

    @property
    def shortest_delay(self) -> float:
        return float(self.delays.min())

    @property
    def longest_delay(self) -> float:
        return float(self.delays.max())

    @property
    def skew(self) -> float:
        return float(self.delays.max() - self.delays.min())


class _Wire:
    """The growing embedded tree: nodes, edges and their segment geometry.

    Segments are axis-aligned pieces of the L-shaped edge embeddings,
    stored in flat numpy arrays so each attachment scans all existing
    wire vectorized.  Any detour (elongation) of an edge is accounted at
    the *downstream end* of its L, which keeps mid-wire delays exact.
    """

    def __init__(self, root_pos: Point) -> None:
        self.pos: list[Point] = [root_pos]
        self.parent: list[int | None] = [None]
        self.length: list[float] = [0.0]
        self.delay: list[float] = [0.0]
        self.is_tap: list[bool] = [False]
        # Segment store (grown in python lists, viewed as arrays on scan).
        self._sx: list[float] = []
        self._sy: list[float] = []
        self._ex: list[float] = []
        self._ey: list[float] = []
        self._delay0: list[float] = []  # delay at the (sx, sy) end
        self._edge: list[int] = []  # child-node id of the owning edge
        self._seg_of_edge: dict[int, list[int]] = {}

    # ------------------------------------------------------------------
    def num_segments(self) -> int:
        return len(self._sx)

    def add_node(self, p: Point, parent: int, length: float, is_tap: bool) -> int:
        node = len(self.pos)
        self.pos.append(p)
        self.parent.append(parent)
        self.length.append(length)
        self.delay.append(self.delay[parent] + length)
        self.is_tap.append(is_tap)
        return node

    def add_edge_geometry(self, child: int) -> None:
        """Embed edge (parent(child) -> child) as an L, horizontal first."""
        p = self.pos[self.parent[child]]  # type: ignore[index]
        q = self.pos[child]
        d0 = self.delay[self.parent[child]]  # type: ignore[index]
        segs = self._seg_of_edge.setdefault(child, [])
        if p.x != q.x:
            segs.append(self._push_segment(p.x, p.y, q.x, p.y, d0, child))
        if p.y != q.y or p.x == q.x:
            segs.append(
                self._push_segment(
                    q.x, p.y, q.x, q.y, d0 + abs(q.x - p.x), child
                )
            )

    def _push_segment(self, sx, sy, ex, ey, delay0, edge) -> int:
        idx = len(self._sx)
        self._sx.append(sx)
        self._sy.append(sy)
        self._ex.append(ex)
        self._ey.append(ey)
        self._delay0.append(delay0)
        self._edge.append(edge)
        return idx

    # ------------------------------------------------------------------
    def best_attachment(
        self, s: Point, w_lo: float, w_hi: float, bound: float
    ):
        """Scan all wire for the cheapest valid attachment of sink ``s``.

        Returns ``(added_wire, seg_index, w, delay_w)`` or ``None`` when
        no wire exists yet.  ``added_wire`` includes any forced detour.
        """
        n = len(self._sx)
        if n == 0:
            return None
        sx = np.asarray(self._sx)
        sy = np.asarray(self._sy)
        ex = np.asarray(self._ex)
        ey = np.asarray(self._ey)
        wx = np.clip(s.x, np.minimum(sx, ex), np.maximum(sx, ex))
        wy = np.clip(s.y, np.minimum(sy, ey), np.maximum(sy, ey))
        dist = np.abs(s.x - wx) + np.abs(s.y - wy)
        delay_w = np.asarray(self._delay0) + np.abs(wx - sx) + np.abs(wy - sy)
        natural = delay_w + dist
        floor = max(0.0, w_hi - bound) if math.isfinite(bound) else 0.0
        final = np.maximum(natural, floor)
        added = dist + (final - natural)
        cap = w_lo + bound if math.isfinite(bound) else math.inf
        valid = final <= cap + 1e-9
        if not np.any(valid):
            return None
        added = np.where(valid, added, np.inf)
        j = int(np.argmin(added))
        return float(added[j]), j, Point(float(wx[j]), float(wy[j])), float(delay_w[j])

    def split_at(self, seg_index: int, w: Point, delay_w: float) -> int:
        """Split the owning edge at ``w``; returns the new tap node id.

        The upstream piece keeps exact geometric length; the downstream
        piece inherits the remainder (including any detour), which is
        always >= its endpoint distance.
        """
        child = self._edge[seg_index]
        parent = self.parent[child]
        assert parent is not None
        up_len = delay_w - self.delay[parent]
        down_len = self.length[child] - up_len
        assert up_len >= -1e-9 and down_len >= -1e-9

        tap = self.add_node(w, parent, max(0.0, up_len), is_tap=True)
        # Re-parent the downstream node under the tap.
        self.parent[child] = tap
        self.length[child] = max(0.0, down_len)

        # Rebuild geometry: retire the old edge's segments, re-embed the
        # two pieces along the original L (split at w on seg_index).
        old = self._seg_of_edge.pop(child, [])
        keep_up, keep_down = [], []
        for idx in old:
            if idx == seg_index:
                continue
            # Segments strictly before the split segment go to the upper
            # piece; after it, to the lower piece (delay decides).
            if self._delay0[idx] < delay_w - 1e-12:
                keep_up.append(idx)
            else:
                keep_down.append(idx)
        up_segs, down_segs = [], []
        for idx in keep_up:
            self._edge[idx] = tap
            up_segs.append(idx)
        # Split the host segment itself into two pieces at w.
        sxx, syy = self._sx[seg_index], self._sy[seg_index]
        exx, eyy = self._ex[seg_index], self._ey[seg_index]
        d0 = self._delay0[seg_index]
        if abs(w.x - sxx) + abs(w.y - syy) > 1e-12:
            up_segs.append(
                self._push_segment(sxx, syy, w.x, w.y, d0, tap)
            )
        if abs(w.x - exx) + abs(w.y - eyy) > 1e-12:
            down_segs.append(
                self._push_segment(w.x, w.y, exx, eyy, delay_w, child)
            )
        # Retire the host segment by collapsing it to a point (scans will
        # never pick it: zero length at the same spot as the new pieces).
        self._sx[seg_index] = self._ex[seg_index] = w.x
        self._sy[seg_index] = self._ey[seg_index] = w.y
        self._delay0[seg_index] = delay_w
        self._edge[seg_index] = tap

        for idx in keep_down:
            down_segs.append(idx)
        self._seg_of_edge[tap] = up_segs
        self._seg_of_edge[child] = down_segs
        return tap


def greedy_attachment_tree(
    sinks: list[Point],
    skew_bound: float,
    source: Point | None = None,
    verify: bool = True,
) -> BaselineTree:
    """Build a bounded-skew routing tree over ``sinks`` by greedy
    attachment (see module docstring).

    ``skew_bound`` is absolute (same units as coordinates); ``math.inf``
    gives the unconstrained greedy Steiner tree.  With ``source=None``
    the tree is rooted at the sink bounding-box center and the returned
    topology leaves the source location free.
    """
    if skew_bound < 0:
        raise ValueError("skew bound must be non-negative")
    m = len(sinks)
    if m == 0:
        raise ValueError("no sinks")

    if source is None:
        xmin, ymin, xmax, ymax = bounding_box(sinks)
        root_pos = Point((xmin + xmax) / 2.0, (ymin + ymax) / 2.0)
    else:
        root_pos = source

    wire = _Wire(root_pos)
    order = sorted(
        range(m), key=lambda i: manhattan(root_pos, sinks[i]), reverse=True
    )
    node_of_sink: dict[int, int] = {}
    w_lo, w_hi = math.inf, -math.inf

    for i in order:
        s = sinks[i]
        pick = wire.best_attachment(s, w_lo, w_hi, skew_bound)
        if pick is None:
            # First sink: a direct edge from the root.
            length = manhattan(root_pos, s)
            node = wire.add_node(s, 0, length, is_tap=False)
            wire.add_edge_geometry(node)
            d = length
        else:
            added, seg_index, w, delay_w = pick
            geo = manhattan(w, s)
            length = added  # geometric wire + forced detour
            tap = wire.split_at(seg_index, w, delay_w)
            node = wire.add_node(s, tap, length, is_tap=False)
            wire.add_edge_geometry(node)
            d = delay_w + length
            assert length >= geo - 1e-9
        node_of_sink[i] = node
        w_lo = min(w_lo, d)
        w_hi = max(w_hi, d)
        if math.isfinite(skew_bound):
            assert w_hi - w_lo <= skew_bound + 1e-6

    topo, e = _to_topology(wire, sinks, node_of_sink, source)
    delays = sink_delays_linear(topo, e)
    tree = BaselineTree(topo, e, float(e[1:].sum()), delays)
    if verify:
        _check(tree, skew_bound)
    return tree


def _to_topology(
    wire: _Wire,
    sinks: list[Point],
    node_of_sink: dict[int, int],
    source: Point | None,
) -> tuple[Topology, np.ndarray]:
    """Renumber internal wire nodes to the paper convention."""
    m = len(sinks)
    renum: dict[int, int] = {0: 0}
    for i in range(m):
        renum[node_of_sink[i]] = i + 1
    next_id = m + 1
    for node in range(1, len(wire.pos)):
        if node not in renum:
            renum[node] = next_id
            next_id += 1

    parents: list[int | None] = [None] * len(wire.pos)
    lengths = np.zeros(len(wire.pos))
    for node in range(1, len(wire.pos)):
        parents[renum[node]] = renum[wire.parent[node]]  # type: ignore[index]
        lengths[renum[node]] = wire.length[node]
    topo = Topology(parents, m, sinks, source)
    return topo, lengths


def _check(tree: BaselineTree, bound: float) -> None:
    if math.isfinite(bound) and tree.skew > bound + 1e-6:
        raise AssertionError(
            f"baseline produced skew {tree.skew:g} > bound {bound:g}"
        )
    if np.any(tree.edge_lengths < -1e-9):
        raise AssertionError("baseline produced a negative edge length")
    # Every edge must be at least as long as its embedded span.
    topo = tree.topology
    from repro.embedding import embed_tree

    embed_tree(topo, tree.edge_lengths)
