"""Zero-skew tree with greedy elongation trimming.

The second construction behind the bounded-skew comparator, strongest for
*small* skew budgets.  Start from the exact zero-skew DME solution on a
nearest-neighbor-merge topology (every sink at delay ``t*``); then spend
the skew budget by shrinking edge *slack* — the difference between an
edge's length and the distance between its embedded endpoints, i.e. pure
detour wire.  Shrinking edge ``k`` by ``delta`` speeds every sink below
it up by ``delta``, so the greedy walks the tree top-down (shared edges
first), clipping each edge by the smallest remaining per-sink budget.

The embedding is untouched (only lengths shrink toward their endpoint
distances), so the result is valid by construction, its maximum delay
stays exactly ``t*``, and the realized window is ``[t* - spent, t*]`` —
the same gradually-widening ``[1 - B, 1]`` windows the paper's Table 1
shows for small skew bounds.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.bounded_skew import BaselineTree
from repro.delay import sink_delays_linear
from repro.ebf.zero_skew import solve_zero_skew
from repro.embedding import embed_tree
from repro.geometry import Point, manhattan
from repro.topology import nearest_neighbor_topology


def trimmed_zero_skew_tree(
    sinks: list[Point],
    skew_bound: float,
    source: Point | None = None,
) -> BaselineTree:
    """Exact DME zero-skew tree, then greedy slack trimming up to the
    skew budget.  ``skew_bound = 0`` is the plain zero-skew DME tree."""
    if skew_bound < 0:
        raise ValueError("skew bound must be non-negative")
    topo = nearest_neighbor_topology(sinks, source)
    zst = solve_zero_skew(topo)
    e = zst.edge_lengths.copy()

    if skew_bound > 0:
        placed = embed_tree(topo, e, verify=False).placements
        slack = np.zeros(topo.num_nodes)
        for k in range(1, topo.num_nodes):
            span = manhattan(placed[k], placed[topo.parent(k)])
            slack[k] = max(0.0, e[k] - span)

        budget = np.full(topo.num_nodes, float(skew_bound))  # per sink
        sinks_under = topo.sinks_under()
        for k in topo.preorder():
            if k == 0 or slack[k] <= 0:
                continue
            below = sinks_under[k]
            allow = min(budget[i] for i in below)
            delta = min(slack[k], allow)
            if delta <= 0:
                continue
            e[k] -= delta
            for i in below:
                budget[i] -= delta

    delays = sink_delays_linear(topo, e)
    return BaselineTree(topo, e, float(e[1:].sum()), delays)
