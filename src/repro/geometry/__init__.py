"""Manhattan-plane geometry substrate.

The LUBT paper works entirely in the rectilinear (L1) plane.  Its embedding
machinery is built on *tilted rectangular regions* (TRRs): rectangles whose
sides have slope +-1.  This package provides:

* :class:`Point` and the Manhattan metric,
* :class:`TRR` — exact TRR algebra (intersection, expansion, distance) in
  rotated coordinates where every TRR is an axis-aligned box,
* Euclidean-metric helpers used only to demonstrate the paper's Section 4.7
  counterexample (EBF is *not* valid in Euclidean space).
"""

from repro.geometry.point import (
    Point,
    manhattan,
    euclidean,
    chebyshev,
    bounding_box,
    manhattan_diameter,
    manhattan_radius_from,
)
from repro.geometry.trr import TRR, helly_intersection
from repro.geometry.octilinear import Octilinear
from repro.geometry.euclid import (
    Disk,
    disks_have_common_point,
    pairwise_disks_intersect,
)

__all__ = [
    "Point",
    "manhattan",
    "euclidean",
    "chebyshev",
    "bounding_box",
    "manhattan_diameter",
    "manhattan_radius_from",
    "TRR",
    "helly_intersection",
    "Octilinear",
    "Disk",
    "disks_have_common_point",
    "pairwise_disks_intersect",
]
