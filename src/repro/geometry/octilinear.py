"""Octilinear convex regions — the geometry of bounded-skew routing.

The paper (Section 1) notes that with non-zero skew bounds "the feasible
locations for Steiner points are octilinear convex polygons" [8, 9]: a
convex region whose sides have slopes 0, infinity, +1 or -1.  Such a
region is exactly the intersection of an axis-aligned box in ``(x, y)``
with an axis-aligned box in the rotated frame ``(u, v) = (x+y, y-x)``,
so eight scalars describe it:

    x in [xlo, xhi],  y in [ylo, yhi],  u in [ulo, uhi],  v in [vlo, vhi]

The representation is kept **canonical** (every bound tight with respect
to the others) via the UTVPI/octagon closure rules, which makes emptiness
and the other predicates trivial.  Operations:

* ``intersect`` — componentwise bound intersection + canonicalization;
* ``expanded(r)`` — Minkowski sum with the L1 ball: every one of the 8
  support bounds grows by exactly ``r`` (both the diamond's xy and uv
  supports are ``r``), canonical form is preserved;
* ``distance_to`` — the L1 set distance in closed form:

      dist(A, B) = max(gap_x + gap_y, gap_u, gap_v)

  ``>=`` holds because L1 length decomposes over x and y (so the x and y
  gaps add) and dominates both |du| and |dv|; ``<=`` because a witness
  pair can always be constructed on the boundary (property-tested
  against brute force in the test suite);
* ``hull`` — componentwise bound hull (the smallest octilinear region
  containing both).

A :class:`repro.geometry.TRR` is the special case with vacuous xy
bounds; an axis-aligned rectangle is the case with vacuous uv bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.geometry.point import Point

_EPS = 1e-9
_INF = math.inf


@dataclass(frozen=True, slots=True)
class Octilinear:
    """A canonical octilinear convex region (possibly empty/degenerate)."""

    xlo: float
    xhi: float
    ylo: float
    yhi: float
    ulo: float
    uhi: float
    vlo: float
    vhi: float

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def empty() -> "Octilinear":
        return Octilinear(1, -1, 1, -1, 1, -1, 1, -1)

    @staticmethod
    def whole_plane() -> "Octilinear":
        return Octilinear(-_INF, _INF, -_INF, _INF, -_INF, _INF, -_INF, _INF)

    @staticmethod
    def from_point(p: Point) -> "Octilinear":
        return Octilinear(p.x, p.x, p.y, p.y, p.u, p.u, p.v, p.v)

    @staticmethod
    def from_bounds(
        xlo: float = -_INF, xhi: float = _INF,
        ylo: float = -_INF, yhi: float = _INF,
        ulo: float = -_INF, uhi: float = _INF,
        vlo: float = -_INF, vhi: float = _INF,
    ) -> "Octilinear":
        """Build from raw bounds; canonicalizes (may come out empty)."""
        return _canonicalize(xlo, xhi, ylo, yhi, ulo, uhi, vlo, vhi)

    @staticmethod
    def rect(xlo: float, xhi: float, ylo: float, yhi: float) -> "Octilinear":
        """Axis-aligned rectangle."""
        return Octilinear.from_bounds(xlo=xlo, xhi=xhi, ylo=ylo, yhi=yhi)

    @staticmethod
    def l1_ball(center: Point, radius: float) -> "Octilinear":
        """The Manhattan disk (a diamond)."""
        if radius < 0:
            raise ValueError(f"negative radius {radius}")
        return Octilinear.from_bounds(
            ulo=center.u - radius,
            uhi=center.u + radius,
            vlo=center.v - radius,
            vhi=center.v + radius,
        )

    @staticmethod
    def from_points(points: Iterable[Point]) -> "Octilinear":
        """Octilinear hull of a point set."""
        pts = list(points)
        if not pts:
            return Octilinear.empty()
        return Octilinear.from_bounds(
            xlo=min(p.x for p in pts),
            xhi=max(p.x for p in pts),
            ylo=min(p.y for p in pts),
            yhi=max(p.y for p in pts),
            ulo=min(p.u for p in pts),
            uhi=max(p.u for p in pts),
            vlo=min(p.v for p in pts),
            vhi=max(p.v for p in pts),
        )

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        return (
            self.xhi - self.xlo < -_EPS
            or self.yhi - self.ylo < -_EPS
            or self.uhi - self.ulo < -_EPS
            or self.vhi - self.vlo < -_EPS
        )

    def is_point(self) -> bool:
        if self.is_empty():
            return False
        return (
            self.xhi - self.xlo <= _EPS
            and self.yhi - self.ylo <= _EPS
        )

    def contains(self, p: Point, tol: float = _EPS) -> bool:
        if self.is_empty():
            return False
        return (
            self.xlo - tol <= p.x <= self.xhi + tol
            and self.ylo - tol <= p.y <= self.yhi + tol
            and self.ulo - tol <= p.u <= self.uhi + tol
            and self.vlo - tol <= p.v <= self.vhi + tol
        )

    def contains_region(self, other: "Octilinear", tol: float = _EPS) -> bool:
        if other.is_empty():
            return True
        if self.is_empty():
            return False
        return (
            self.xlo - tol <= other.xlo
            and other.xhi <= self.xhi + tol
            and self.ylo - tol <= other.ylo
            and other.yhi <= self.yhi + tol
            and self.ulo - tol <= other.ulo
            and other.uhi <= self.uhi + tol
            and self.vlo - tol <= other.vlo
            and other.vhi <= self.vhi + tol
        )

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def intersect(self, other: "Octilinear") -> "Octilinear":
        if self.is_empty() or other.is_empty():
            return Octilinear.empty()
        return _canonicalize(
            max(self.xlo, other.xlo),
            min(self.xhi, other.xhi),
            max(self.ylo, other.ylo),
            min(self.yhi, other.yhi),
            max(self.ulo, other.ulo),
            min(self.uhi, other.uhi),
            max(self.vlo, other.vlo),
            min(self.vhi, other.vhi),
        )

    def expanded(self, r: float) -> "Octilinear":
        """Minkowski sum with the L1 ball of radius ``r`` (exact)."""
        if r < 0:
            raise ValueError(f"negative expansion {r}")
        if self.is_empty():
            return self
        # Support numbers of a Minkowski sum add; both polygons have all
        # faces among the 8 directions, so no re-canonicalization needed.
        return Octilinear(
            self.xlo - r, self.xhi + r,
            self.ylo - r, self.yhi + r,
            self.ulo - r, self.uhi + r,
            self.vlo - r, self.vhi + r,
        )

    def hull(self, other: "Octilinear") -> "Octilinear":
        """Smallest octilinear region containing both."""
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        return Octilinear(
            min(self.xlo, other.xlo), max(self.xhi, other.xhi),
            min(self.ylo, other.ylo), max(self.yhi, other.yhi),
            min(self.ulo, other.ulo), max(self.uhi, other.uhi),
            min(self.vlo, other.vlo), max(self.vhi, other.vhi),
        )

    def distance_to(self, other: "Octilinear") -> float:
        """Minimum L1 distance between the two regions (0 if they meet)."""
        if self.is_empty() or other.is_empty():
            raise ValueError("distance involving an empty region")
        gx = max(0.0, other.xlo - self.xhi, self.xlo - other.xhi)
        gy = max(0.0, other.ylo - self.yhi, self.ylo - other.yhi)
        gu = max(0.0, other.ulo - self.uhi, self.ulo - other.uhi)
        gv = max(0.0, other.vlo - self.vhi, self.vlo - other.vhi)
        return max(gx + gy, gu, gv)

    def distance_to_point(self, p: Point) -> float:
        return self.distance_to(Octilinear.from_point(p))

    def closest_point_to(self, p: Point) -> Point:
        """A point of the region at minimum L1 distance from ``p``.

        Found by walking from ``p``: clamp into the xy box, then repair
        any uv violation by sliding along the cheaper axis (a move along
        x or y changes u and v by the same magnitude, so the repair never
        breaks the satisfied bounds more than it fixes).
        """
        if self.is_empty():
            raise ValueError("closest point of an empty region")
        x = min(max(p.x, self.xlo), self.xhi)
        y = min(max(p.y, self.ylo), self.yhi)
        for _ in range(4):
            u = x + y
            v = y - x
            if u < self.ulo - _EPS:
                need = self.ulo - u
                dx = min(need, self.xhi - x)
                x += dx
                y += need - dx
            elif u > self.uhi + _EPS:
                need = u - self.uhi
                dx = min(need, x - self.xlo)
                x -= dx
                y -= need - dx
            u = x + y
            v = y - x
            if v < self.vlo - _EPS:
                need = self.vlo - v
                dy = min(need, self.yhi - y)
                y += dy
                x -= need - dy
            elif v > self.vhi + _EPS:
                need = v - self.vhi
                dy = min(need, y - self.ylo)
                y -= dy
                x += need - dy
        out = Point(x, y)
        if not self.contains(out, tol=1e-6):
            # Fallback: exhaustive corner check (degenerate regions).
            best, best_d = None, _INF
            for c in self.corners():
                d = abs(c.x - p.x) + abs(c.y - p.y)
                if d < best_d:
                    best, best_d = c, d
            assert best is not None
            return best
        return out

    def corners(self) -> list[Point]:
        """Vertices of the region (up to 8, deduplicated, unordered)."""
        if self.is_empty():
            return []
        out: list[Point] = []

        def push(x: float, y: float) -> None:
            if not (math.isfinite(x) and math.isfinite(y)):
                return
            p = Point(x, y)
            if self.contains(p, tol=1e-6) and all(
                abs(p.x - q.x) + abs(p.y - q.y) > 1e-9 for q in out
            ):
                out.append(p)

        # Intersections of adjacent constraint lines in the 8 directions.
        for x in (self.xlo, self.xhi):
            for y in (self.ylo, self.yhi):
                push(x, y)
            for u in (self.ulo, self.uhi):
                push(x, u - x)
            for v in (self.vlo, self.vhi):
                push(x, v + x)
        for y in (self.ylo, self.yhi):
            for u in (self.ulo, self.uhi):
                push(u - y, y)
            for v in (self.vlo, self.vhi):
                push(y - v, y)
        for u in (self.ulo, self.uhi):
            for v in (self.vlo, self.vhi):
                push((u - v) / 2.0, (u + v) / 2.0)
        return out

    def __repr__(self) -> str:
        if self.is_empty():
            return "Octilinear(empty)"
        return (
            f"Octilinear(x=[{self.xlo:g},{self.xhi:g}], "
            f"y=[{self.ylo:g},{self.yhi:g}], u=[{self.ulo:g},{self.uhi:g}], "
            f"v=[{self.vlo:g},{self.vhi:g}])"
        )


def _canonicalize(
    xlo: float, xhi: float, ylo: float, yhi: float,
    ulo: float, uhi: float, vlo: float, vhi: float,
) -> Octilinear:
    """Tighten the 8 bounds to their octagon closure.

    Rules (u = x + y, v = y - x):
        uhi <= xhi + yhi          ulo >= xlo + ylo
        vhi <= yhi - xlo          vlo >= ylo - xhi
        xhi <= (uhi - vlo) / 2    xlo >= (ulo - vhi) / 2
        yhi <= (uhi + vhi) / 2    ylo >= (ulo + vlo) / 2
    Two passes reach the fixpoint for this constraint system.
    """
    if (
        xlo > xhi + _EPS
        or ylo > yhi + _EPS
        or ulo > uhi + _EPS
        or vlo > vhi + _EPS
    ):
        return Octilinear.empty()
    for _ in range(3):
        uhi = min(uhi, xhi + yhi)
        ulo = max(ulo, xlo + ylo)
        vhi = min(vhi, yhi - xlo)
        vlo = max(vlo, ylo - xhi)
        xhi = min(xhi, (uhi - vlo) / 2.0)
        xlo = max(xlo, (ulo - vhi) / 2.0)
        yhi = min(yhi, (uhi + vhi) / 2.0)
        ylo = max(ylo, (ulo + vlo) / 2.0)
    region = Octilinear(xlo, xhi, ylo, yhi, ulo, uhi, vlo, vhi)
    return Octilinear.empty() if region.is_empty() else region
