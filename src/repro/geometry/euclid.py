"""Euclidean-metric helpers for the Section 4.7 counterexample.

The paper shows EBF is *not* valid under the Euclidean metric: three unit
disks of radius 1/2 centered at the corners of a unit equilateral triangle
intersect pairwise but share no common point, so edge lengths satisfying the
Steiner constraints need not be embeddable.  (Footnote 3: Helly fails for
circles.)  These helpers let tests and examples demonstrate exactly that.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Sequence

from repro.geometry.point import Point, euclidean

_EPS = 1e-9


@dataclass(frozen=True, slots=True)
class Disk:
    """A closed Euclidean disk."""

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise ValueError(f"negative disk radius: {self.radius}")

    def contains(self, p: Point, tol: float = _EPS) -> bool:
        return euclidean(self.center, p) <= self.radius + tol

    def intersects(self, other: "Disk", tol: float = _EPS) -> bool:
        return euclidean(self.center, other.center) <= self.radius + other.radius + tol


def pairwise_disks_intersect(disks: Sequence[Disk]) -> bool:
    """True iff every pair of disks has non-empty intersection."""
    return all(a.intersects(b) for a, b in itertools.combinations(disks, 2))


def disks_have_common_point(disks: Sequence[Disk], tol: float = 1e-7) -> bool:
    """Exact test for a common point of up to a few disks.

    The intersection of closed disks is convex; it is non-empty iff the
    point minimizing the maximum *normalized violation* lies in all disks.
    For the small instances used in tests we find that point by checking
    (a) each center, (b) each pairwise lens's two "deepest" candidates —
    the intersection points of each pair of circles and the midpoint of the
    center segment — against all disks.  This is exact for <= 3 disks (a
    classical result: if 3 convex sets in the plane have pairwise but no
    triple intersection, it is witnessed on the boundary arcs), and the
    only consumer is the 3-disk counterexample plus tests.
    """
    if not disks:
        raise ValueError("no disks")
    if len(disks) == 1:
        return True

    candidates: list[Point] = [d.center for d in disks]
    for a, b in itertools.combinations(disks, 2):
        candidates.extend(_circle_intersections(a, b))
        candidates.append(
            Point(
                (a.center.x + b.center.x) / 2.0,
                (a.center.y + b.center.y) / 2.0,
            )
        )
    return any(all(d.contains(p, tol) for d in disks) for p in candidates)


def _circle_intersections(a: Disk, b: Disk) -> list[Point]:
    """Intersection points of the two circles' boundaries (0, 1 or 2)."""
    d = euclidean(a.center, b.center)
    if d < _EPS:
        return []
    if d > a.radius + b.radius + _EPS:
        return []
    if d < abs(a.radius - b.radius) - _EPS:
        return []
    # Standard two-circle intersection.
    x = (d * d - b.radius * b.radius + a.radius * a.radius) / (2.0 * d)
    h_sq = a.radius * a.radius - x * x
    h = math.sqrt(max(0.0, h_sq))
    ex = (b.center.x - a.center.x) / d
    ey = (b.center.y - a.center.y) / d
    px = a.center.x + x * ex
    py = a.center.y + x * ey
    if h <= _EPS:
        return [Point(px, py)]
    return [Point(px - h * ey, py + h * ex), Point(px + h * ey, py - h * ex)]
