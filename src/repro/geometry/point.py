"""Points and metrics in the routing plane.

The paper's distance is always the Manhattan (L1) distance (Section 2).  A
key identity used throughout this reproduction: under the 45-degree rotation

    u = x + y,   v = y - x

the Manhattan distance between two points equals the *Chebyshev* (L-infinity)
distance between their rotated images:

    |dx| + |dy| == max(|du|, |dv|)

so every L1 ball becomes an axis-aligned square and every tilted rectangular
region (TRR) becomes an axis-aligned box.  :class:`Point` exposes both frames.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence


@dataclass(frozen=True, slots=True)
class Point:
    """An immutable point in the routing plane (original x/y frame)."""

    x: float
    y: float

    @property
    def u(self) -> float:
        """Rotated coordinate ``x + y``."""
        return self.x + self.y

    @property
    def v(self) -> float:
        """Rotated coordinate ``y - x``."""
        return self.y - self.x

    @staticmethod
    def from_uv(u: float, v: float) -> "Point":
        """Inverse of the 45-degree rotation used for TRR arithmetic."""
        return Point((u - v) / 2.0, (u + v) / 2.0)

    def translated(self, dx: float, dy: float) -> "Point":
        return Point(self.x + dx, self.y + dy)

    def __iter__(self) -> "Iterator[float]":
        yield self.x
        yield self.y

    def __repr__(self) -> str:  # compact, used heavily in test output
        return f"({self.x:g}, {self.y:g})"


def manhattan(a: Point, b: Point) -> float:
    """Manhattan (L1) distance — the paper's ``dist``."""
    return abs(a.x - b.x) + abs(a.y - b.y)


def euclidean(a: Point, b: Point) -> float:
    """Euclidean distance (used only by the Section 4.7 counterexample)."""
    return math.hypot(a.x - b.x, a.y - b.y)


def chebyshev(a: Point, b: Point) -> float:
    """Chebyshev (L-infinity) distance."""
    return max(abs(a.x - b.x), abs(a.y - b.y))


def bounding_box(points: Iterable[Point]) -> tuple[float, float, float, float]:
    """Axis-aligned bounding box ``(xmin, ymin, xmax, ymax)``.

    Raises ``ValueError`` on an empty iterable.
    """
    pts = list(points)
    if not pts:
        raise ValueError("bounding_box of no points")
    xs = [p.x for p in pts]
    ys = [p.y for p in pts]
    return min(xs), min(ys), max(xs), max(ys)


def manhattan_diameter(points: Sequence[Point]) -> float:
    """Largest Manhattan distance between any two of ``points``.

    The paper's *diameter* (Section 2).  Computed exactly in O(n) using the
    rotated frame: the L1 diameter is ``max(range(u), range(v))``.
    """
    if len(points) < 2:
        return 0.0
    us = [p.u for p in points]
    vs = [p.v for p in points]
    return max(max(us) - min(us), max(vs) - min(vs))


def manhattan_radius_from(source: Point, sinks: Sequence[Point]) -> float:
    """Distance from ``source`` to the farthest sink.

    The paper's *radius* when the source location is given (Section 2).
    """
    if not sinks:
        return 0.0
    return max(manhattan(source, s) for s in sinks)
