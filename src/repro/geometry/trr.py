"""Tilted Rectangular Regions (TRRs) — Section 5 and the Appendix.

A TRR is a (possibly degenerate) rectangle whose sides have slope +1 or -1 in
the routing plane.  Under the rotation ``(u, v) = (x + y, y - x)`` every TRR
is exactly an axis-aligned box ``[ulo, uhi] x [vlo, vhi]``, the Manhattan
metric becomes the Chebyshev metric, and the paper's three TRR operations
become elementary box arithmetic:

* ``TRR(A, r)`` — all points within Manhattan distance ``r`` of ``A``
  (Figure 5b) — is the box inflated by ``r`` on each side;
* intersection of TRRs (Figure 5c) is box intersection;
* the distance between separated TRRs is the Chebyshev box gap.

Degenerate cases are first-class: a zero-width box is the paper's
line-segment TRR, a zero-size box is a single point (``{s_k}`` in the text).

Lemma 10.1 (the Helly property: pairwise-intersecting TRRs share a common
point) is immediate for boxes — intervals on each rotated axis satisfy
Helly's theorem in one dimension — and :func:`helly_intersection` exposes it.
That property is exactly what fails for Euclidean disks, which is why EBF is
restricted to the Manhattan metric (Section 4.7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.geometry.point import Point

#: Slack used when deciding emptiness/containment in floating point.
GEOM_EPS = 1e-9


@dataclass(frozen=True, slots=True)
class TRR:
    """A tilted rectangular region stored as a box in rotated coordinates.

    Use the constructors :meth:`from_point`, :meth:`square`, and
    :meth:`from_points` rather than passing raw rotated bounds.
    An *empty* TRR is represented by inverted bounds; test with
    :meth:`is_empty`.
    """

    ulo: float
    uhi: float
    vlo: float
    vhi: float

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def empty() -> "TRR":
        return TRR(1.0, -1.0, 1.0, -1.0)

    @staticmethod
    def from_point(p: Point) -> "TRR":
        """The singleton TRR ``{p}``."""
        return TRR(p.u, p.u, p.v, p.v)

    @staticmethod
    def square(center: Point, radius: float) -> "TRR":
        """Square TRR centered at ``center`` — the L1 ball of ``radius``.

        The paper's analogue of a circle (Section 5).  ``radius`` must be
        non-negative.
        """
        if radius < 0:
            raise ValueError(f"negative TRR radius: {radius}")
        return TRR(
            center.u - radius, center.u + radius, center.v - radius, center.v + radius
        )

    @staticmethod
    def from_points(points: Iterable[Point]) -> "TRR":
        """Smallest TRR containing all ``points`` (their rotated bbox)."""
        pts = list(points)
        if not pts:
            return TRR.empty()
        us = [p.u for p in pts]
        vs = [p.v for p in pts]
        return TRR(min(us), max(us), min(vs), max(vs))

    # ------------------------------------------------------------------
    # predicates and scalar properties
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        return self.uhi - self.ulo < -GEOM_EPS or self.vhi - self.vlo < -GEOM_EPS

    def is_point(self) -> bool:
        return (
            not self.is_empty()
            and abs(self.uhi - self.ulo) <= GEOM_EPS
            and abs(self.vhi - self.vlo) <= GEOM_EPS
        )

    def is_segment(self) -> bool:
        """True when the TRR has zero width but positive length."""
        if self.is_empty() or self.is_point():
            return False
        return self.width <= GEOM_EPS

    @property
    def u_extent(self) -> float:
        return max(0.0, self.uhi - self.ulo)

    @property
    def v_extent(self) -> float:
        return max(0.0, self.vhi - self.vlo)

    @property
    def width(self) -> float:
        """Length of the shorter pair of sides, in Manhattan-plane units.

        The rotated frame doubles L2 lengths of the +-45-degree sides; side
        lengths in the original plane are ``extent / sqrt(2) * sqrt(2) =
        extent`` measured along the tilted side's own axis — we report the
        rotated extent directly, which is the quantity all the algebra uses
        (a TRR is a segment iff ``width == 0``, exactly as in the paper).
        """
        if self.is_empty():
            return 0.0
        return min(self.u_extent, self.v_extent)

    @property
    def length(self) -> float:
        """Length of the longer pair of sides (rotated-frame extent)."""
        if self.is_empty():
            return 0.0
        return max(self.u_extent, self.v_extent)

    @property
    def radius(self) -> float:
        """Radius of a square TRR (Chebyshev distance center -> boundary)."""
        if self.is_empty():
            return 0.0
        return max(self.u_extent, self.v_extent) / 2.0

    def center(self) -> Point:
        if self.is_empty():
            raise ValueError("center of an empty TRR")
        return Point.from_uv((self.ulo + self.uhi) / 2.0, (self.vlo + self.vhi) / 2.0)

    def contains(self, p: Point, tol: float = GEOM_EPS) -> bool:
        if self.is_empty():
            return False
        return (
            self.ulo - tol <= p.u <= self.uhi + tol
            and self.vlo - tol <= p.v <= self.vhi + tol
        )

    def contains_trr(self, other: "TRR", tol: float = GEOM_EPS) -> bool:
        if other.is_empty():
            return True
        if self.is_empty():
            return False
        return (
            self.ulo - tol <= other.ulo
            and other.uhi <= self.uhi + tol
            and self.vlo - tol <= other.vlo
            and other.vhi <= self.vhi + tol
        )

    def corners(self) -> list[Point]:
        """The four corners in the original frame (duplicates possible for
        degenerate TRRs)."""
        if self.is_empty():
            return []
        return [
            Point.from_uv(self.ulo, self.vlo),
            Point.from_uv(self.uhi, self.vlo),
            Point.from_uv(self.uhi, self.vhi),
            Point.from_uv(self.ulo, self.vhi),
        ]

    # ------------------------------------------------------------------
    # the three core operations of Section 5
    # ------------------------------------------------------------------
    def expanded(self, r: float) -> "TRR":
        """``TRR(self, r)`` — all points within Manhattan distance ``r``.

        Figure 5(b).  Expanding an empty TRR stays empty.
        """
        if r < 0:
            raise ValueError(f"negative expansion radius: {r}")
        if self.is_empty():
            return self
        return TRR(self.ulo - r, self.uhi + r, self.vlo - r, self.vhi + r)

    def intersect(self, other: "TRR") -> "TRR":
        """Intersection of two TRRs — always a TRR (Figure 5(c))."""
        if self.is_empty() or other.is_empty():
            return TRR.empty()
        out = TRR(
            max(self.ulo, other.ulo),
            min(self.uhi, other.uhi),
            max(self.vlo, other.vlo),
            min(self.vhi, other.vhi),
        )
        return out if not out.is_empty() else TRR.empty()

    def hull(self, other: "TRR") -> "TRR":
        """Smallest TRR containing both regions (componentwise bound hull)."""
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        return TRR(
            min(self.ulo, other.ulo),
            max(self.uhi, other.uhi),
            min(self.vlo, other.vlo),
            max(self.vhi, other.vhi),
        )

    def distance_to(self, other: "TRR") -> float:
        """Minimum Manhattan distance between the two regions.

        Zero when they intersect (Appendix definition of ``dist(TRR, TRR)``).
        """
        if self.is_empty() or other.is_empty():
            raise ValueError("distance involving an empty TRR")
        gap_u = max(0.0, other.ulo - self.uhi, self.ulo - other.uhi)
        gap_v = max(0.0, other.vlo - self.vhi, self.vlo - other.vhi)
        return max(gap_u, gap_v)

    def distance_to_point(self, p: Point) -> float:
        return self.distance_to(TRR.from_point(p))

    def closest_point_to(self, p: Point) -> Point:
        """The point of this TRR nearest to ``p`` (any minimizer).

        In the rotated frame this is per-axis clamping, which minimizes the
        Chebyshev (= original Manhattan) distance.
        """
        if self.is_empty():
            raise ValueError("closest point of an empty TRR")
        cu = min(max(p.u, self.ulo), self.uhi)
        cv = min(max(p.v, self.vlo), self.vhi)
        return Point.from_uv(cu, cv)

    def sample_points(self, per_axis: int = 3) -> list[Point]:
        """A small deterministic grid of points covering the region.

        Used by property tests and placement policies; includes all corners
        and the center.
        """
        if self.is_empty():
            return []
        if per_axis < 2:
            return [self.center()]
        out: list[Point] = []
        for i in range(per_axis):
            for j in range(per_axis):
                fu = i / (per_axis - 1)
                fv = j / (per_axis - 1)
                out.append(
                    Point.from_uv(
                        self.ulo + fu * (self.uhi - self.ulo),
                        self.vlo + fv * (self.vhi - self.vlo),
                    )
                )
        return out

    def __repr__(self) -> str:
        if self.is_empty():
            return "TRR(empty)"
        return f"TRR(u=[{self.ulo:g},{self.uhi:g}], v=[{self.vlo:g},{self.vhi:g}])"


def helly_intersection(trrs: Sequence[TRR]) -> TRR:
    """Common intersection of many TRRs.

    Lemma 10.1: if every *pair* of TRRs intersects, the common intersection
    is non-empty.  For boxes this follows from the one-dimensional Helly
    property on each rotated axis, so simply folding :meth:`TRR.intersect`
    is exact.  An empty input yields the (degenerate) whole plane marker —
    callers must pass at least one TRR.
    """
    if not trrs:
        raise ValueError("helly_intersection of no TRRs")
    out = trrs[0]
    for t in trrs[1:]:
        out = out.intersect(t)
        if out.is_empty():
            return TRR.empty()
    return out
