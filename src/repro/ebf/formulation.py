"""EBF LP assembly (Section 4.3's "Summary of the Formulation").

Variables are the edge lengths ``e_1 .. e_n`` (variable ``j`` is edge
``j + 1``).  Rows:

* Steiner constraints for a chosen set of sink pairs (all pairs by
  default; the lazy solver passes a growing subset);
* delay range rows per sink: ``l_i <= sum path(s_0, s_i) <= u_i``;
* zero-pinned tie edges from degree-4 splitting.

When the source location is *given*, the effective lower bound of each
delay row is raised to ``max(l_i, dist(s_0, s_i))`` — the path from a fixed
source to a sink can never embed shorter than their Manhattan distance, so
this strengthening is sound and makes Theorem 4.1's embedding guarantee
carry over to the fixed-source case (the source acts as an extra terminal
of every root path).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.ebf.bounds import DelayBounds
from repro.ebf.constraints import all_sink_pairs, steiner_row_matrix
from repro.geometry import manhattan
from repro.lp import LinearProgram, Sense
from repro.topology import Topology


def edge_var(edge_id: int) -> int:
    """Column index of edge ``e_i`` (paper numbering) in the EBF LP."""
    if edge_id < 1:
        raise ValueError(f"edge ids start at 1, got {edge_id}")
    return edge_id - 1


def build_ebf_lp(
    topo: Topology,
    bounds: DelayBounds,
    *,
    weights: Sequence[float] | None = None,
    pairs: Sequence[tuple[int, int]] | None = None,
    zero_edges: Iterable[int] = (),
) -> LinearProgram:
    """Build the EBF LP for ``topo`` with the given delay bounds.

    ``weights`` (indexed by node id, entry 0 ignored) give the Section 7
    weighted objective; ``pairs`` restricts the Steiner rows to a subset
    (used by lazy row generation); ``zero_edges`` pins tie edges to zero.
    """
    if bounds.num_sinks != topo.num_sinks:
        raise ValueError("bounds/sink count mismatch")
    if weights is not None and len(weights) != topo.num_nodes:
        raise ValueError("weights must be indexed by node id (len = num_nodes)")

    lp = LinearProgram()
    for i in range(1, topo.num_nodes):
        w = 1.0 if weights is None else float(weights[i])
        if w < 0:
            raise ValueError(f"negative edge weight for e_{i}")
        lp.add_variable(f"e{i}", cost=w)
    zero_edges = tuple(zero_edges)
    for i in zero_edges:
        lp.fix_variable(edge_var(i), 0.0)

    windows = add_delay_rows(lp, topo, bounds)
    add_steiner_rows(lp, topo, pairs)
    _stamp_tree_meta(lp, topo, windows, zero_edges, weights)
    return lp


def add_delay_rows(
    lp: LinearProgram, topo: Topology, bounds: DelayBounds
) -> tuple[np.ndarray, np.ndarray]:
    """One range row per sink (Equation 8), with the fixed-source
    strengthening described in the module docstring.

    Returns the effective ``(lower, upper)`` window arrays indexed by
    node id (sink entries meaningful, strengthening applied, inverted
    windows stored raw) — the exact windows the rows encode, which the
    tree backend's metadata reuses so the two formulations can never
    drift.
    """
    src = topo.source_location
    lower = np.zeros(topo.num_nodes)
    upper = np.zeros(topo.num_nodes)
    for i in topo.sink_ids():
        lo, hi = bounds.window(i)
        if src is not None:
            lo = max(lo, manhattan(src, topo.sink_location(i)))
        lower[i], upper[i] = lo, hi
        if lo > hi + 1e-12:
            # Bounds violating Eq. 3 produce an immediately-infeasible row
            # rather than a silent wrong answer.
            lp.add_constraint({}, Sense.GE, 1.0, name=f"delay{i}.impossible")
            continue
        coeffs = {edge_var(k): 1.0 for k in topo.path_to_root(i)}
        lp.add_range_constraint(coeffs, lo, hi, name=f"delay{i}")
    return lower, upper


def add_steiner_rows(
    lp: LinearProgram,
    topo: Topology,
    pairs: Sequence[tuple] | None,
) -> list[int]:
    """Append Steiner rows for ``pairs`` (all sink pairs when ``None``);
    returns the new row indices.

    ``pairs`` entries are ``(i, j)`` or ``(i, j, lca)``.  Rows are built
    in one vectorized pass (:func:`steiner_row_matrix`) and appended as a
    CSR block — no per-pair path walk or per-row tuple construction.
    """
    if pairs is None:
        pairs = list(all_sink_pairs(topo))
    if not pairs:
        return []
    block, dist = steiner_row_matrix(topo, pairs)
    # Node-id columns -> LP columns (edge e_i lives in column i - 1).
    sub = block[:, 1:]
    names = [f"steiner{p[0]},{p[1]}" for p in pairs]
    rows = list(
        lp.add_rows(sub.data, sub.indices, sub.indptr, Sense.GE, dist, names)
    )
    # Every Steiner row is a member of the family the tree backend's
    # collapsed formulation implies, so appending one keeps the model
    # tree-solvable: advance the coverage watermark.
    if lp.tree_meta is not None:
        lp.tree_meta.covered_rows = lp.num_constraints
    return rows


def _stamp_tree_meta(
    lp: LinearProgram,
    topo: Topology,
    windows: tuple[np.ndarray, np.ndarray],
    zero_edges: tuple[int, ...],
    weights: Sequence[float] | None,
) -> None:
    """Record the tree facts the flat rows no longer expose, enabling the
    structure-aware ``backend="tree"`` (see :mod:`repro.lp.treesolve`)."""
    from repro.lp import TreeLpMeta

    parents = np.zeros(topo.num_nodes, dtype=np.int64)
    for v in range(1, topo.num_nodes):
        parents[v] = topo.parent(v)
    su, sv = topo.sink_uv()
    lower, upper = windows
    lp.tree_meta = TreeLpMeta(
        parents=parents,
        num_sinks=topo.num_sinks,
        su=su,
        sv=sv,
        lower=lower,
        upper=upper,
        zero_edges=zero_edges,
        weights=None if weights is None else np.asarray(weights, dtype=float),
        covered_rows=lp.num_constraints,
    )


def expand_edge_vector(topo: Topology, x: np.ndarray) -> np.ndarray:
    """LP solution vector -> edge-length vector indexed by node id."""
    e = np.zeros(topo.num_nodes)
    e[1:] = np.maximum(np.asarray(x, dtype=float), 0.0)
    return e
