"""Edge-Based Formulation (EBF) — the paper's core contribution (Sec. 4).

The LUBT problem is solved as a linear program whose variables are the
*edge lengths* of a given topology:

    min   sum_k w_k e_k
    s.t.  sum_{e_k in path(s_i, s_j)} e_k >= dist(s_i, s_j)   (Steiner)
          l_i <= sum_{e_k in path(s_0, s_i)} e_k <= u_i       (delay)

Public entry points:

* :func:`solve_lubt` — LUBT under the linear delay model (LP, optimal);
* :func:`solve_sweep` / :class:`WarmStart` — warm-started bound sweeps
  on a fixed topology (each solve seeds the next one's lazy loop);
* :func:`solve_zero_skew` — the Section 4.6 zero-skew special case via
  direct bottom-up equations (no optimization);
* :func:`solve_lubt_elmore` — the Section 7 Elmore-delay extension (NLP);
* :class:`DelayBounds` — per-sink bound sets, with the paper's
  radius-normalized convention and the tolerable-skew helper (Section 6).
"""

from repro.ebf.bounds import DelayBounds, BoundsError
from repro.ebf.constraints import (
    steiner_constraint_rows,
    steiner_row_matrix,
    steiner_violations,
    seed_constraint_pairs,
    sink_pair_count,
)
from repro.ebf.formulation import build_ebf_lp
from repro.ebf.solver import LubtSolution, solve_lubt
from repro.ebf.sweep import WarmStart, canonical_cost, solve_sweep
from repro.ebf.zero_skew import solve_zero_skew
from repro.ebf.elmore import solve_lubt_elmore, ElmoreSolution

__all__ = [
    "DelayBounds",
    "BoundsError",
    "steiner_constraint_rows",
    "steiner_row_matrix",
    "steiner_violations",
    "seed_constraint_pairs",
    "sink_pair_count",
    "build_ebf_lp",
    "LubtSolution",
    "solve_lubt",
    "WarmStart",
    "canonical_cost",
    "solve_sweep",
    "solve_zero_skew",
    "solve_lubt_elmore",
    "ElmoreSolution",
]
