"""EBF under the Elmore delay model (Section 7).

The Steiner constraints stay linear; only the delay constraints change,
becoming quadratic (posynomial) in the edge lengths:

    l_i <= sum_{e_k in path(s_0, s_j)} r_w e_k (c_w e_k / 2 + C_k) <= u_i

With lower bounds the feasible set is non-convex, so — as the paper says —
the problem is solved heuristically with a general NLP method; we use
scipy's SLSQP (sequential quadratic programming, the method the paper's
conclusion names) with an analytic Jacobian.  With ``l_i = 0`` the problem
is convex and SLSQP's local optimum is global.

Jacobian (derived from Eq. 12; ``D`` is the root pathlength vector):

    d delay_j / d e_t = [t in path(j)] * r (c e_t + C_t)
                      + r c (D_lca(j, t) - [t in path(j)] * e_t)

The first term is the direct resistance term; the second collects
``e_t``'s wire capacitance seen through every upstream resistance shared
with the path to ``s_j``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import LinearConstraint, NonlinearConstraint, minimize

from repro.delay import (
    ElmoreParameters,
    downstream_capacitance,
    node_delays_linear,
    sink_delays_elmore,
)
from repro.ebf.bounds import DelayBounds
from repro.ebf.constraints import all_sink_pairs, steiner_constraint_rows
from repro.lp import InfeasibleError
from repro.topology import Topology


@dataclass(frozen=True)
class ElmoreSolution:
    """Result of the Elmore-delay EBF NLP."""

    edge_lengths: np.ndarray
    cost: float
    delays: np.ndarray  # Elmore sink delays
    converged: bool
    message: str
    iterations: int

    @property
    def skew(self) -> float:
        return float(self.delays.max() - self.delays.min())


def elmore_delay_jacobian(
    topo: Topology, e: np.ndarray, params: ElmoreParameters
) -> np.ndarray:
    """``J[j-1, t-1] = d delay(s_j) / d e_t`` for all sinks j, edges t."""
    n = topo.num_edges
    m = topo.num_sinks
    cap = downstream_capacitance(topo, e, params)
    pathlen = node_delays_linear(topo, e)
    rw, cw = params.wire_resistance, params.wire_capacitance
    jac = np.zeros((m, n))
    for j in topo.sink_ids():
        on_path = set(topo.path_to_root(j))
        for t in range(1, topo.num_nodes):
            k = topo.lca(j, t)
            val = rw * cw * pathlen[k]
            if t in on_path:
                val += rw * (cw * e[t] + cap[t]) - rw * cw * e[t]
            jac[j - 1, t - 1] = val
    return jac


def solve_lubt_elmore(
    topo: Topology,
    bounds: DelayBounds,
    params: ElmoreParameters,
    *,
    weights=None,
    zero_edges=(),
    x0: np.ndarray | None = None,
    max_iterations: int = 500,
    tol: float = 1e-9,
    method: str = "slsqp",
) -> ElmoreSolution:
    """Solve LUBT with Elmore delay constraints via SQP.

    Intended for small-to-medium nets (the full C(m,2) Steiner rows are
    materialized).  ``x0`` is an optional warm start indexed by node id;
    by default every subtree is collapsed toward the root and sink edges
    carry the geometric distance, the feasible construction of Lemma 3.1.
    ``method`` is ``"slsqp"`` (default) or ``"trust-constr"`` (scipy's
    interior-point-flavoured solver — the closer analogue of the paper's
    LOQO, sometimes more robust on badly-scaled windows).

    Raises :class:`InfeasibleError` when the solver terminates on an
    infeasible point — under Elmore delay this is a *heuristic* verdict
    (the paper only guarantees optimality for ``l = 0``).
    """
    if method not in ("slsqp", "trust-constr"):
        raise ValueError(f"unknown method {method!r}")
    if bounds.num_sinks != topo.num_sinks:
        raise ValueError("bounds/sink count mismatch")
    n = topo.num_edges

    w = np.ones(n)
    if weights is not None:
        w = np.asarray(weights, dtype=float)[1:]

    steiner = [
        (edges, d) for _, _, edges, d in steiner_constraint_rows(
            topo, list(all_sink_pairs(topo))
        )
    ]
    if topo.source_location is not None:
        # A fixed source embeds like an extra terminal of every root path.
        from repro.geometry import manhattan

        for i in topo.sink_ids():
            steiner.append(
                (topo.path_to_root(i), manhattan(topo.source_location, topo.sink_location(i)))
            )

    def to_edge_vector(x: np.ndarray) -> np.ndarray:
        e = np.zeros(topo.num_nodes)
        e[1:] = x
        return e

    def objective(x):
        return float(w @ x)

    def objective_grad(_x):
        return w

    steiner_matrix = np.zeros((len(steiner), n))
    steiner_rhs = np.zeros(len(steiner))
    for row, (edges, d) in enumerate(steiner):
        for k in edges:
            steiner_matrix[row, k - 1] = 1.0
        steiner_rhs[row] = d

    lower = np.asarray(bounds.lower, dtype=float)
    upper = np.asarray(bounds.upper, dtype=float)
    finite_upper = np.isfinite(upper)

    def delays_of(x):
        return sink_delays_elmore(topo, to_edge_vector(x), params)

    def jac_of(x):
        return elmore_delay_jacobian(topo, to_edge_vector(x), params)

    var_bounds = [(0.0, None)] * n
    for i in zero_edges:
        var_bounds[i - 1] = (0.0, 0.0)

    if x0 is None:
        x_start = _lemma31_start(topo, lower)
    else:
        x_start = np.asarray(x0, dtype=float)[1:]

    if method == "slsqp":
        constraints = [
            {
                "type": "ineq",
                "fun": (lambda x, a=a, d=d: float(a @ x - d)),
                "jac": (lambda _x, a=a: a),
            }
            for a, d in zip(steiner_matrix, steiner_rhs)
        ]
        constraints.append(
            {
                "type": "ineq",
                "fun": lambda x: delays_of(x) - lower,
                "jac": lambda x: jac_of(x),
            }
        )
        if np.any(finite_upper):
            big = np.where(finite_upper, upper, 0.0)
            sel = np.flatnonzero(finite_upper)
            constraints.append(
                {
                    "type": "ineq",
                    "fun": lambda x: (big - delays_of(x))[sel],
                    "jac": lambda x: -jac_of(x)[sel],
                }
            )
        res = minimize(
            objective,
            x_start,
            jac=objective_grad,
            bounds=var_bounds,
            constraints=constraints,
            method="SLSQP",
            options={"maxiter": max_iterations, "ftol": tol},
        )
    else:  # trust-constr: vectorized constraint objects
        constraints = []
        if len(steiner):
            constraints.append(
                LinearConstraint(steiner_matrix, lb=steiner_rhs, ub=np.inf)
            )
        delay_ub = np.where(finite_upper, upper, np.inf)
        constraints.append(
            NonlinearConstraint(delays_of, lb=lower, ub=delay_ub, jac=jac_of)
        )
        res = minimize(
            objective,
            x_start,
            jac=objective_grad,
            hess=lambda _x: np.zeros((n, n)),  # objective is linear
            bounds=var_bounds,
            constraints=constraints,
            method="trust-constr",
            options={"maxiter": max_iterations * 4, "gtol": tol},
        )

    e = to_edge_vector(np.maximum(res.x, 0.0))
    delays = sink_delays_elmore(topo, e, params)
    ok = bool(res.success)
    within = bool(
        np.all(delays >= lower - 1e-6)
        and np.all(delays[finite_upper] <= upper[finite_upper] + 1e-6)
    )
    if not within:
        raise InfeasibleError(
            f"{method} could not satisfy the Elmore delay windows "
            f"(status: {res.message})"
        )
    return ElmoreSolution(
        edge_lengths=e,
        cost=float(w @ e[1:]),
        delays=delays,
        converged=ok,
        message=str(res.message),
        iterations=int(getattr(res, "nit", 0) or getattr(res, "niter", 0)),
    )


def _lemma31_start(topo: Topology, lower: np.ndarray) -> np.ndarray:
    """Feasible-ish warm start in the spirit of Lemma 3.1: Steiner points
    collapsed to the source, sink edges spanning the geometry."""
    from repro.geometry import manhattan, bounding_box, Point

    src = topo.source_location
    if src is None:
        xmin, ymin, xmax, ymax = bounding_box(topo.sink_locations)
        src = Point((xmin + xmax) / 2.0, (ymin + ymax) / 2.0)
    x = np.zeros(topo.num_edges)
    for i in topo.sink_ids():
        x[i - 1] = manhattan(src, topo.sink_location(i))
    return x
