"""Warm-started bound sweeps over a fixed topology.

The Figure 8 tradeoff curves and the Table 2/3 drivers solve the *same*
topology dozens of times under different delay bounds.  The lazy solver
(Section 4.6 row generation) re-discovers essentially the same active
Steiner rows at every sweep point: the binding pairs depend mostly on the
sink geometry, only weakly on the bounds.  :class:`WarmStart` carries the
accumulated active pair set from solve to solve, and
:func:`repro.ebf.solver.solve_lubt` seeds its lazy loop with it — after
the first point, most solves converge in a single round.

Soundness: a Steiner row ``pathlength(s_i, s_j) >= dist(s_i, s_j)`` is a
fact about the topology, never about the bounds, so carrying rows across
bound changes can only *tighten* the relaxation toward the true feasible
set — the converged optimum is unchanged.  What warm-starting *can*
change is which vertex of a degenerate optimal face the backend returns,
i.e. the raw cost float can wiggle at the last few ulps.
:func:`canonical_cost` quantizes that noise away (keeping ~1e-10 relative
precision, four orders finer than the solver's 1e-6 feasibility
tolerances); sweep-level consumers report canonical costs so warm and
cold sweeps are bit-identical.  See docs/PERFORMANCE.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.ebf.bounds import DelayBounds
from repro.ebf.solver import LubtSolution, solve_lubt

#: Significant mantissa bits kept by :func:`canonical_cost` — 33 bits is
#: ~1e-10 relative resolution: far above the ~1e-16 degenerate-vertex
#: noise it exists to cancel, far below the 1e-6 LP tolerances that
#: bound any *real* cost difference.
CANONICAL_BITS = 33


def canonical_cost(cost: float, bits: int = CANONICAL_BITS) -> float:
    """Round ``cost`` to ``bits`` significant mantissa bits.

    Deterministic (round-half-even on an exact power-of-two grid, no
    float-decimal round-trip) and scale-free.  Used to report sweep costs
    invariantly to which vertex of a degenerate optimal face the LP
    backend happened to return — warm-started, cold, and differently
    sharded sweeps all quantize to the same float.
    """
    if not math.isfinite(cost) or not cost:
        return cost
    # cost = m * 2**exp with 0.5 <= |m| < 1; shift so the integer part
    # holds exactly `bits` bits, round, shift back.  All steps exact
    # except the round itself.
    _, exp = math.frexp(cost)
    scaled = math.ldexp(cost, bits - exp)
    return math.ldexp(float(round(scaled)), exp - bits)


@dataclass
class WarmStart:
    """Carry-over state for a bound sweep on one topology.

    Holds the orientation-normalized active Steiner pair set — every
    ``(i, j, lca)`` row the lazy loop discovered beyond its per-solve
    seeds — in discovery order, so re-seeding is deterministic.  The
    state is keyed to the topology by **structural hash**
    (:func:`repro.topology.topology_hash`): handing the object a
    structurally different topology resets it (rows are meaningless
    across topologies), which makes one ``WarmStart`` safe to thread
    through heterogeneous drivers like the Table 1 suite — while two
    *distinct but identical* topology objects (one per client request,
    one per worker process) share their rows, the property the
    :mod:`repro.server` cross-request warm store is built on.  An
    identity fast path keeps the common same-object sweep free of
    re-hashing.
    """

    #: Structural hash the carried rows belong to.
    key: str | None = None
    #: Last topology object seen (identity fast path only).
    topology: object | None = field(default=None, repr=False)
    #: Carried ``(i, j, lca)`` rows in first-discovery order.
    pairs: list[tuple[int, int, int]] = field(default_factory=list)
    _seen: set[tuple[int, int]] = field(default_factory=set, repr=False)
    #: Solves that absorbed into this object (diagnostics only).
    solves: int = 0

    @classmethod
    def seeded(
        cls, key: str, pairs: Iterable[tuple[int, int, int]]
    ) -> "WarmStart":
        """Build a carry-over pre-loaded with rows known valid for the
        topology whose structural hash is ``key`` (server warm store)."""
        ws = cls(key=key)
        for i, j, k in pairs:
            nk = (i, j) if i < j else (j, i)
            if nk not in ws._seen:
                ws._seen.add(nk)
                ws.pairs.append((int(i), int(j), int(k)))
        return ws

    def _rekey(self, topo) -> None:
        if topo is self.topology:
            return
        from repro.topology.serialize import topology_hash

        h = topology_hash(topo)
        if h != self.key:
            self.key = h
            self.pairs = []
            self._seen = set()
        self.topology = topo

    def pairs_for(self, topo) -> list[tuple[int, int, int]]:
        """The carried rows, valid for ``topo`` (empty after a reset)."""
        self._rekey(topo)
        return self.pairs

    def absorb(self, topo, new_pairs: Iterable[tuple[int, int, int]]) -> None:
        """Merge rows a solve discovered; duplicates are dropped."""
        self._rekey(topo)
        for i, j, k in new_pairs:
            key = (i, j) if i < j else (j, i)
            if key not in self._seen:
                self._seen.add(key)
                self.pairs.append((i, j, k))
        self.solves += 1


def solve_sweep(
    topo,
    bounds_seq: Sequence[DelayBounds],
    *,
    warm: "WarmStart | bool | None" = True,
    **solve_kwargs,
) -> list[LubtSolution]:
    """Solve one topology under a sequence of delay bounds, warm-started.

    ``warm=True`` (default) threads a fresh :class:`WarmStart` through
    the sequence; pass an existing :class:`WarmStart` to continue
    accumulating across calls, or ``False``/``None`` to solve each point
    cold.  Any other :func:`~repro.ebf.solver.solve_lubt` keyword passes
    through unchanged.
    """
    if warm is True:
        warm = WarmStart()
    elif warm is False:
        warm = None
    return [
        solve_lubt(topo, bounds, warm=warm, **solve_kwargs)
        for bounds in bounds_seq
    ]
