"""Per-sink delay bound sets (Definition 2.1) and the paper's conventions.

The paper's tables normalize all bounds to the tree *radius* (half the sink
diameter for a free source, source-to-farthest-sink distance otherwise).
:meth:`DelayBounds.normalized` applies that convention.  Section 6's
tolerable-skew requirement (common upper bound ``u``, skew ``<= d``) maps to
the uniform window ``[u - d, u]`` via :meth:`DelayBounds.tolerable_skew`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geometry import manhattan, manhattan_diameter, manhattan_radius_from
from repro.topology import Topology


class BoundsError(ValueError):
    """Raised when bounds violate Definition 2.1's validity conditions."""


@dataclass(frozen=True)
class DelayBounds:
    """Lower and upper delay bounds, one pair per sink.

    ``lower[i - 1]``/``upper[i - 1]`` bound sink ``i``.  Infinite upper
    bounds are allowed (the unbounded / pure-Steiner special case).
    """

    lower: np.ndarray
    upper: np.ndarray

    def __post_init__(self) -> None:
        lo = np.asarray(self.lower, dtype=float)
        hi = np.asarray(self.upper, dtype=float)
        object.__setattr__(self, "lower", lo)
        object.__setattr__(self, "upper", hi)
        if lo.shape != hi.shape or lo.ndim != 1:
            raise BoundsError("lower/upper must be 1-D arrays of equal length")
        if np.any(lo < 0):
            raise BoundsError("lower bounds must be non-negative (Eq. 3/4)")
        if np.any(lo > hi):
            raise BoundsError("each lower bound must not exceed its upper bound")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def uniform(num_sinks: int, lower: float, upper: float) -> "DelayBounds":
        """The same ``[lower, upper]`` window for every sink."""
        return DelayBounds(
            np.full(num_sinks, float(lower)), np.full(num_sinks, float(upper))
        )

    @staticmethod
    def tolerable_skew(num_sinks: int, upper: float, skew: float) -> "DelayBounds":
        """Section 6: delays ``<= upper`` and pairwise skew ``<= skew``.

        Implemented as the uniform window ``[upper - skew, upper]`` (the
        paper's ``l = u - d`` substitution).
        """
        if skew < 0:
            raise BoundsError("skew bound must be non-negative")
        return DelayBounds.uniform(num_sinks, max(0.0, upper - skew), upper)

    @staticmethod
    def zero_skew(num_sinks: int, target: float) -> "DelayBounds":
        """``l_i = u_i = target`` — the zero-skew special case."""
        return DelayBounds.uniform(num_sinks, target, target)

    @staticmethod
    def unbounded(num_sinks: int) -> "DelayBounds":
        """``l = 0, u = inf`` — optimal Steiner tree under the topology."""
        return DelayBounds.uniform(num_sinks, 0.0, math.inf)

    @staticmethod
    def unchecked(lower, upper) -> "DelayBounds":
        """Construct *without* Definition 2.1 validation.

        Exists for the static verification layer and fault injection:
        deliberately broken windows (inverted, NaN) must be representable
        so :func:`repro.check.check_bounds` has something to report.
        Never feed an unchecked instance to a solver without running the
        checker first.
        """
        b = object.__new__(DelayBounds)
        object.__setattr__(b, "lower", np.asarray(lower, dtype=float))
        object.__setattr__(b, "upper", np.asarray(upper, dtype=float))
        return b

    @staticmethod
    def per_sink(pairs: list[tuple[float, float]]) -> "DelayBounds":
        """Distinct bounds per sink, e.g. per-pipeline-stage windows."""
        if not pairs:
            raise BoundsError("no bounds given")
        lo, hi = zip(*pairs)
        return DelayBounds(np.array(lo, dtype=float), np.array(hi, dtype=float))

    # ------------------------------------------------------------------
    # the paper's radius normalization
    # ------------------------------------------------------------------
    def scaled(self, factor: float) -> "DelayBounds":
        if factor <= 0:
            raise BoundsError("scale factor must be positive")
        return DelayBounds(self.lower * factor, self.upper * factor)

    @staticmethod
    def normalized(
        topo: Topology, lower: float, upper: float
    ) -> "DelayBounds":
        """Uniform bounds given as multiples of the topology's radius.

        "All bounds are normalized to the radius" — Tables 1-3.
        """
        r = radius_of(topo)
        return DelayBounds.uniform(topo.num_sinks, lower * r, upper * r)

    # ------------------------------------------------------------------
    # validity (Definition 2.1, Eq. 3/4)
    # ------------------------------------------------------------------
    def check(self, topo: Topology) -> None:
        """Raise :class:`BoundsError` unless the bounds satisfy Eq. 3/4.

        With a given source: ``u_i >= dist(s_0, s_i)`` per sink; with a
        free source: ``u_i >= radius``.
        """
        if len(self.lower) != topo.num_sinks:
            raise BoundsError(
                f"{len(self.lower)} bound pairs for {topo.num_sinks} sinks"
            )
        src = topo.source_location
        if src is not None:
            for i in topo.sink_ids():
                need = manhattan(src, topo.sink_location(i))
                if self.upper[i - 1] < need - 1e-9:
                    raise BoundsError(
                        f"u_{i} = {self.upper[i - 1]:g} < dist(source, sink) = "
                        f"{need:g} (Eq. 3)"
                    )
        else:
            r = radius_of(topo)
            if np.any(self.upper < r - 1e-9):
                raise BoundsError(f"every upper bound must be >= radius = {r:g} (Eq. 4)")

    @property
    def num_sinks(self) -> int:
        return len(self.lower)

    def window(self, sink_id: int) -> tuple[float, float]:
        return float(self.lower[sink_id - 1]), float(self.upper[sink_id - 1])

    def satisfied_by(self, delays: np.ndarray, tol: float = 1e-6) -> bool:
        d = np.asarray(delays, dtype=float)
        return bool(
            np.all(d >= self.lower - tol) and np.all(d <= self.upper + tol)
        )


def radius_of(topo: Topology) -> float:
    """The paper's *radius* (Section 2): farthest-sink distance for a fixed
    source, half the sink diameter for a free one."""
    sinks = list(topo.sink_locations)
    if topo.source_location is not None:
        return manhattan_radius_from(topo.source_location, sinks)
    return manhattan_diameter(sinks) / 2.0
