"""The LUBT solver: EBF LP + (optional) lazy constraint generation.

``mode="full"`` builds all C(m,2) Steiner rows up front — the literal
formulation of Section 4.3.  ``mode="lazy"`` implements the Section 4.6
constraint reduction as sound row generation: seed with the farthest cross
pair per branching node, solve, add violated rows, repeat.  Both modes end
with an exact all-pairs violation check, so a returned solution always
satisfies *every* Steiner constraint; by LP optimality it is the minimum
cost LUBT for the topology (Theorem 4.2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.delay import sink_delays_linear, tree_cost
from repro.ebf.bounds import DelayBounds
from repro.ebf.constraints import (
    all_sink_pairs,
    seed_constraint_pairs,
    steiner_violations,
)
from repro.ebf.formulation import (
    add_steiner_rows,
    build_ebf_lp,
    expand_edge_vector,
)
from repro.lp import solve_lp

_VIOLATION_TOL = 1e-6


@dataclass(frozen=True)
class SolveStats:
    """Diagnostics for one LUBT solve."""

    backend: str
    mode: str
    rounds: int
    steiner_rows: int
    total_pairs: int
    lp_iterations: int
    wall_seconds: float


@dataclass(frozen=True)
class LubtSolution:
    """A minimum-cost LUBT for a fixed topology (edge lengths only).

    Steiner point *locations* are recovered separately by
    :func:`repro.embedding.embed_tree`, mirroring the paper's two stage
    structure (LP first, DME-style placement second).

    ``lp``/``lp_result`` are retained when ``solve_lubt(keep_lp=True)``
    so downstream analyses (e.g. delay-bound shadow prices) can read row
    duals without re-solving.
    """

    topology: object
    bounds: DelayBounds
    edge_lengths: np.ndarray
    cost: float
    delays: np.ndarray
    stats: SolveStats
    weights: np.ndarray | None = field(default=None, repr=False)
    lp: object | None = field(default=None, repr=False, compare=False)
    lp_result: object | None = field(default=None, repr=False, compare=False)

    @property
    def skew(self) -> float:
        return float(self.delays.max() - self.delays.min())

    @property
    def shortest_delay(self) -> float:
        return float(self.delays.min())

    @property
    def longest_delay(self) -> float:
        return float(self.delays.max())


def solve_lubt(
    topo,
    bounds: DelayBounds,
    *,
    weights=None,
    zero_edges=(),
    backend: str = "auto",
    mode: str = "lazy",
    batch: int = 4000,
    max_rounds: int = 60,
    check_bounds: bool = True,
    validate: bool = True,
    keep_lp: bool = False,
) -> LubtSolution:
    """Solve the LUBT problem for a fixed topology (Definition 2.1).

    Raises :class:`repro.lp.InfeasibleError` when no LUBT exists for the
    topology and bounds — per Section 9, EBF infeasibility is exactly that
    certificate.

    Parameters
    ----------
    mode:
        ``"lazy"`` (Section 4.6 row generation, default) or ``"full"``
        (all C(m,2) Steiner rows up front).
    batch:
        Most-violated rows added per lazy round.
    check_bounds:
        Verify Definition 2.1's Eq. 3/4 validity conditions first.  Turn
        off to probe infeasible bound sets deliberately.
    """
    if check_bounds:
        bounds.check(topo)
    if mode not in ("lazy", "full"):
        raise ValueError(f"unknown mode {mode!r}")

    start = time.perf_counter()
    if mode == "full":
        pairs = list(all_sink_pairs(topo))
        lp = build_ebf_lp(
            topo, bounds, weights=weights, pairs=pairs, zero_edges=zero_edges
        )
        result = solve_lp(lp, backend).require_optimal()
        e = expand_edge_vector(topo, result.x)
        rounds, iters = 1, result.iterations
    else:
        pairs = seed_constraint_pairs(topo)
        lp = build_ebf_lp(
            topo, bounds, weights=weights, pairs=pairs, zero_edges=zero_edges
        )
        iters = 0
        e = None
        for rounds in range(1, max_rounds + 1):
            result = solve_lp(lp, backend).require_optimal()
            iters += result.iterations
            e = expand_edge_vector(topo, result.x)
            violated = steiner_violations(topo, e, _VIOLATION_TOL, limit=batch)
            if not violated:
                break
            add_steiner_rows(lp, topo, [(i, j) for i, j, _ in violated])
            pairs += [(i, j) for i, j, _ in violated]
        else:
            raise RuntimeError(
                f"lazy row generation did not converge in {max_rounds} rounds"
            )
        assert e is not None

    wall = time.perf_counter() - start
    delays = sink_delays_linear(topo, e)
    w = None if weights is None else np.asarray(weights, dtype=float)
    cost = tree_cost(topo, e, weights=w)

    if validate:
        _validate_solution(topo, bounds, e, delays)

    stats = SolveStats(
        backend=result.backend,
        mode=mode,
        rounds=rounds,
        steiner_rows=len(pairs),
        total_pairs=topo.num_sinks * (topo.num_sinks - 1) // 2,
        lp_iterations=iters,
        wall_seconds=wall,
    )
    return LubtSolution(
        topo,
        bounds,
        e,
        cost,
        delays,
        stats,
        w,
        lp if keep_lp else None,
        result if keep_lp else None,
    )


def _validate_solution(topo, bounds, e, delays) -> None:
    """Exact post-checks: delay windows and all Steiner constraints."""
    if not bounds.satisfied_by(delays, tol=1e-5):
        raise AssertionError("solver returned delays outside the bounds")
    leftovers = steiner_violations(topo, e, tol=1e-5, limit=1)
    if leftovers:
        i, j, v = leftovers[0]
        raise AssertionError(
            f"Steiner constraint ({i},{j}) violated by {v:g} after solve"
        )
