"""The LUBT solver: EBF LP + (optional) lazy constraint generation.

``mode="full"`` builds all C(m,2) Steiner rows up front — the literal
formulation of Section 4.3.  ``mode="lazy"`` implements the Section 4.6
constraint reduction as sound row generation: seed with the farthest cross
pair per branching node, solve, add violated rows, repeat.  Both modes end
with an exact all-pairs violation check, so a returned solution always
satisfies *every* Steiner constraint; by LP optimality it is the minimum
cost LUBT for the topology (Theorem 4.2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.delay import sink_delays_linear, tree_cost
from repro.ebf.bounds import BoundsError, DelayBounds
from repro.ebf.constraints import (
    all_sink_pairs,
    seed_constraint_pairs,
    steiner_violations,
)
from repro.ebf.formulation import (
    add_steiner_rows,
    build_ebf_lp,
    expand_edge_vector,
)
from repro.lp import InfeasibleError, solve_lp
from repro.lp.solve import preferred_backend

_VIOLATION_TOL = 1e-6


@dataclass(frozen=True)
class SolveStats:
    """Diagnostics for one LUBT solve."""

    backend: str
    mode: str
    rounds: int
    steiner_rows: int
    total_pairs: int
    lp_iterations: int
    wall_seconds: float
    #: Extra LP attempts (retries + backend switches) under resilient mode.
    lp_fallbacks: int = 0
    #: Wall-clock spent inside LP backends, total and per lazy round.
    lp_seconds: float = 0.0
    round_lp_seconds: tuple[float, ...] = ()
    #: Steiner rows seeded from a :class:`~repro.ebf.sweep.WarmStart`
    #: carry-over before the first LP solve (lazy mode only).
    warm_rows: int = 0
    #: Wall-clock of the embedding stage.  The solver itself never embeds;
    #: :func:`repro.embedding.solve_and_embed` stamps this in afterwards.
    embed_seconds: float = 0.0
    #: Tree-backend provenance (zero when no LP was solved by
    #: ``backend="tree"``): simplex iterations of the collapsed
    #: node-potential master, O(n) tree walks performed, and master LP
    #: solves, summed over every LP of the solve (see
    #: :mod:`repro.lp.treesolve`).
    dual_iterations: int = 0
    dp_passes: int = 0
    restricted_master_rounds: int = 0

    @property
    def assembly_seconds(self) -> float:
        """Non-LP time inside the solve: row generation, violation scans,
        bookkeeping (embedding excluded — it happens after the solve)."""
        return max(0.0, self.wall_seconds - self.lp_seconds)


@dataclass(frozen=True)
class LubtSolution:
    """A minimum-cost LUBT for a fixed topology (edge lengths only).

    Steiner point *locations* are recovered separately by
    :func:`repro.embedding.embed_tree`, mirroring the paper's two stage
    structure (LP first, DME-style placement second).

    ``lp``/``lp_result`` are retained when ``solve_lubt(keep_lp=True)``
    so downstream analyses (e.g. delay-bound shadow prices) can read row
    duals without re-solving.

    ``diagnosis`` is set only on the graceful-degradation path
    (``on_infeasible="relax"``): the original bounds were infeasible and
    ``bounds`` here are the minimally relaxed ones the diagnosis
    produced.  ``solve_reports`` (resilient mode) records every LP
    attempt the fallback chain made, one report per LP solve.
    """

    topology: object
    bounds: DelayBounds
    edge_lengths: np.ndarray
    cost: float
    delays: np.ndarray
    stats: SolveStats
    weights: np.ndarray | None = field(default=None, repr=False)
    lp: object | None = field(default=None, repr=False, compare=False)
    lp_result: object | None = field(default=None, repr=False, compare=False)
    diagnosis: object | None = field(default=None, repr=False, compare=False)
    solve_reports: tuple = field(default=(), repr=False, compare=False)

    @property
    def skew(self) -> float:
        return float(self.delays.max() - self.delays.min())

    @property
    def shortest_delay(self) -> float:
        return float(self.delays.min())

    @property
    def longest_delay(self) -> float:
        return float(self.delays.max())


def solve_lubt(
    topo,
    bounds: DelayBounds,
    *,
    weights=None,
    zero_edges=(),
    backend: str = "auto",
    mode: str = "lazy",
    batch: int = 4000,
    max_rounds: int = 60,
    check_bounds: bool = True,
    validate: bool | str = True,
    keep_lp: bool = False,
    resilient: bool = False,
    lp_timeout: float | None = None,
    on_infeasible: str = "raise",
    warm=None,
    race: str | None = None,
    breakers=None,
    solvers=None,
) -> LubtSolution:
    """Solve the LUBT problem for a fixed topology (Definition 2.1).

    Raises :class:`repro.lp.InfeasibleError` when no LUBT exists for the
    topology and bounds — per Section 9, EBF infeasibility is exactly that
    certificate.

    Parameters
    ----------
    backend:
        ``"auto"`` (size-based simplex/scipy choice, default),
        ``"simplex"``, ``"scipy"``, or ``"tree"`` — the structure-aware
        node-potential solver (:mod:`repro.lp.treesolve`) that solves
        the *entire* Steiner family in one collapsed O(n)-row LP, so the
        lazy loop converges in a single round; its
        ``dual_iterations``/``dp_passes``/``restricted_master_rounds``
        provenance lands in :class:`SolveStats`.
    mode:
        ``"lazy"`` (Section 4.6 row generation, default) or ``"full"``
        (all C(m,2) Steiner rows up front).
    batch:
        Most-violated rows added per lazy round.
    check_bounds:
        Verify Definition 2.1's Eq. 3/4 validity conditions first.  Turn
        off to probe infeasible bound sets deliberately.
    validate:
        Static pre-check (:func:`repro.check.check_instance`) plus exact
        post-checks.  ``"strict"`` raises
        :class:`repro.check.InstanceCheckError` on any error-severity
        diagnostic before solving — in strict mode the built LP is
        checked too; ``"warn"`` (= ``True``, the default) surfaces
        error findings as :class:`~repro.check.DiagnosticWarning`
        warnings and solves anyway; ``"off"`` (= ``False``) skips both
        the pre-check and the post-solve validation.
        ``check_bounds=False`` also disables the pre-check's geometric
        floor (``BD005``), keeping the two knobs consistent.
    resilient:
        Route every LP through :func:`repro.resilience.solve_lp_resilient`
        (backend cascade + per-attempt ``lp_timeout`` + rescale retry)
        instead of a single backend; the per-LP
        :class:`~repro.resilience.SolveReport` history lands in
        ``solution.solve_reports``.
    on_infeasible:
        ``"raise"`` (default) raises :class:`InfeasibleError` as before;
        ``"diagnose"`` additionally runs the elastic re-solve and raises
        with ``err.diagnosis`` populated; ``"relax"`` degrades gracefully
        — it re-solves under the minimally relaxed bounds and returns
        that solution with ``solution.diagnosis`` set.
    warm:
        A :class:`repro.ebf.sweep.WarmStart` carry-over (or ``None``).
        In lazy mode its remembered active pair set — the Steiner rows
        previous solves on the *same topology* discovered — is added
        alongside the seed rows before the first LP solve, which
        typically collapses a sweep's follow-up solves to one round.
        After convergence the rows this solve discovered are absorbed
        back, so the object learns across a sweep.  Sound regardless of
        bounds: Steiner rows depend only on the topology, never on the
        delay bounds, so a carried row is always a valid (if possibly
        slack) constraint.  Ignored in full mode (all rows are present
        anyway).
    race:
        ``"auto"`` races the backend cascade concurrently on every LP —
        first definitive answer wins, losers are cancelled and recorded
        (see :func:`repro.resilience.solve_lp_resilient`).  Implies
        ``resilient=True`` (racing lives in the resilient pipeline);
        every race's :class:`~repro.resilience.SolveReport` lands in
        ``solution.solve_reports``, cancelled losers included.
    breakers:
        A :class:`~repro.resilience.BreakerRegistry` shared across
        solves (resilient mode only).  Backends whose circuit is open
        are skipped without paying their timeout; each LP attempt feeds
        the registry, and per-LP breaker states appear in the solve
        reports.  Long-lived callers (the solve server, pool workers)
        pass one registry so a backend's failures in one request protect
        every later request.
    solvers:
        Backend-callable overrides forwarded to
        :func:`repro.resilience.solve_lp_resilient` (resilient mode
        only) — the fault-injection seam chaos tests use to force
        server-side backend failures.
    """
    if race not in (None, "off", "auto"):
        raise ValueError(f"unknown race mode {race!r}")
    if race == "auto":
        resilient = True
    if on_infeasible not in ("raise", "diagnose", "relax"):
        raise ValueError(f"unknown on_infeasible {on_infeasible!r}")
    if mode not in ("lazy", "full"):
        raise ValueError(f"unknown mode {mode!r}")
    if validate is True:
        validate = "warn"
    elif validate is False:
        validate = "off"
    if validate not in ("strict", "warn", "off"):
        raise ValueError(f"unknown validate {validate!r}")
    post_validate = validate != "off"

    if validate != "off":
        _precheck(topo, bounds, strict=validate == "strict",
                  geometric_floor=check_bounds)

    retry_kwargs = dict(
        weights=weights,
        zero_edges=zero_edges,
        backend=backend,
        mode=mode,
        batch=batch,
        max_rounds=max_rounds,
        validate=validate,
        keep_lp=keep_lp,
        resilient=resilient,
        lp_timeout=lp_timeout,
        warm=warm,
        race=race,
        breakers=breakers,
        solvers=solvers,
    )
    if check_bounds:
        try:
            bounds.check(topo)
        except BoundsError:
            # Eq. 3/4 violations are infeasibility certificates known
            # before any LP; route them through the same handler.
            if on_infeasible == "raise":
                raise
            return _handle_infeasible(topo, bounds, on_infeasible, retry_kwargs)

    reports: list = []
    round_lp_seconds: list[float] = []
    tree_prov = {
        "dual_iterations": 0,
        "dp_passes": 0,
        "restricted_master_rounds": 0,
    }

    def _absorb_provenance(result) -> None:
        p = getattr(result, "provenance", None)
        if p:
            for key in tree_prov:
                tree_prov[key] += int(p.get(key, 0))

    def _solve(lp, resolved):
        t0 = time.perf_counter()
        try:
            if not resilient:
                return solve_lp(lp, resolved)
            from repro.resilience import backend_chain, solve_lp_resilient

            report = solve_lp_resilient(
                lp, backend_chain(lp, resolved), timeout=lp_timeout,
                race=race, breakers=breakers, solvers=solvers,
            )
            reports.append(report)
            return report.result
        finally:
            round_lp_seconds.append(time.perf_counter() - t0)

    start = time.perf_counter()
    warm_rows = 0
    try:
        if mode == "full":
            pairs = list(all_sink_pairs(topo))
            lp = build_ebf_lp(
                topo, bounds, weights=weights, pairs=pairs,
                zero_edges=zero_edges,
            )
            if validate == "strict":
                _check_built_lp(lp)
            result = _solve(lp, backend).require_optimal()
            _absorb_provenance(result)
            e = expand_edge_vector(topo, result.x)
            rounds, iters = 1, result.iterations
        else:
            pairs = seed_constraint_pairs(topo)
            lp = build_ebf_lp(
                topo, bounds, weights=weights, pairs=pairs,
                zero_edges=zero_edges,
            )
            if validate == "strict":
                _check_built_lp(lp)
            # Already-added pairs, orientation-normalized: violation
            # tolerance jitter must not append duplicate Steiner rows.
            seen = {(i, j) if i < j else (j, i) for i, j in pairs}
            if warm is not None:
                carried = [
                    (i, j, k)
                    for i, j, k in warm.pairs_for(topo)
                    if ((i, j) if i < j else (j, i)) not in seen
                ]
                if carried:
                    add_steiner_rows(lp, topo, carried)
                    seen.update(
                        (i, j) if i < j else (j, i) for i, j, _ in carried
                    )
                    pairs = pairs + [(i, j) for i, j, _ in carried]
                    warm_rows = len(carried)
            total_pairs = topo.num_sinks * (topo.num_sinks - 1) // 2
            # Resolve "auto" once, against the row count the lazy loop is
            # heading toward, and stick with it: re-deciding per round
            # wastes a dense-tableau solve on the small seed LP only to
            # hand the grown model to scipy next round anyway.
            resolved = backend
            if backend == "auto":
                projected = lp.num_constraints + min(
                    batch, max(0, total_pairs - len(pairs))
                )
                resolved = preferred_backend(lp, projected_rows=projected)
            iters = 0
            e = None
            discovered: list[tuple[int, int, int]] = []
            for rounds in range(1, max_rounds + 1):
                result = _solve(lp, resolved).require_optimal()
                _absorb_provenance(result)
                iters += result.iterations
                e = expand_edge_vector(topo, result.x)
                violated = steiner_violations(
                    topo, e, _VIOLATION_TOL, limit=batch, with_lca=True
                )
                picked = [
                    (i, j, k, v)
                    for i, j, k, v in violated
                    if ((i, j) if i < j else (j, i)) not in seen
                ]
                # Total order on the batch (violation desc, then sink ids):
                # the scan's tie order is an implementation detail, and row
                # append order decides which degenerate optimum vertex the
                # backend returns — sort so reruns are bit-reproducible.
                picked.sort(key=lambda t: (-t[3], t[0], t[1]))
                fresh = [(i, j, k) for i, j, k, _ in picked]
                if not fresh:
                    # Either no violations, or every violated pair is
                    # already a row (sub-tolerance LP slack); re-adding
                    # identical rows cannot change the optimum, and the
                    # exact post-validation still guards the result.
                    break
                add_steiner_rows(lp, topo, fresh)
                seen.update(
                    (i, j) if i < j else (j, i) for i, j, _ in fresh
                )
                pairs += [(i, j) for i, j, _ in fresh]
                discovered += fresh
            else:
                raise RuntimeError(
                    f"lazy row generation did not converge in "
                    f"{max_rounds} rounds"
                )
            assert e is not None
            if warm is not None:
                # Steiner rows are topology facts, so rows found under
                # these bounds remain valid for every later sweep point.
                warm.absorb(topo, discovered)
    except InfeasibleError:
        if on_infeasible == "raise":
            raise
        return _handle_infeasible(topo, bounds, on_infeasible, retry_kwargs)

    wall = time.perf_counter() - start
    delays = sink_delays_linear(topo, e)
    w = None if weights is None else np.asarray(weights, dtype=float)
    cost = tree_cost(topo, e, weights=w)

    if post_validate:
        _validate_solution(topo, bounds, e, delays)

    stats = SolveStats(
        backend=result.backend,
        mode=mode,
        rounds=rounds,
        steiner_rows=len(pairs),
        total_pairs=topo.num_sinks * (topo.num_sinks - 1) // 2,
        lp_iterations=iters,
        wall_seconds=wall,
        lp_fallbacks=sum(r.fallbacks_used for r in reports),
        lp_seconds=sum(round_lp_seconds),
        round_lp_seconds=tuple(round_lp_seconds),
        warm_rows=warm_rows,
        dual_iterations=tree_prov["dual_iterations"],
        dp_passes=tree_prov["dp_passes"],
        restricted_master_rounds=tree_prov["restricted_master_rounds"],
    )
    return LubtSolution(
        topo,
        bounds,
        e,
        cost,
        delays,
        stats,
        w,
        lp if keep_lp else None,
        result if keep_lp else None,
        solve_reports=tuple(reports),
    )


def _precheck(topo, bounds, *, strict: bool, geometric_floor: bool) -> None:
    """Static verification of the (topology, bounds) instance before any
    LP is built; see :mod:`repro.check`."""
    from repro.check import check_instance

    result = check_instance(
        topo, bounds, geometric_floor=geometric_floor
    )
    if strict:
        result.raise_if_errors("cannot solve: instance failed static checks")
    elif not result.ok:
        import warnings

        from repro.check import DiagnosticWarning

        for d in result.errors:
            warnings.warn(DiagnosticWarning(d), stacklevel=3)


def _check_built_lp(lp) -> None:
    """Strict mode also vets the assembled LP (NaN rows, dominated or
    duplicate Steiner rows, ...) before handing it to a backend."""
    from repro.check import CheckResult, check_lp

    CheckResult(tuple(check_lp(lp))).raise_if_errors(
        "cannot solve: assembled LP failed static checks"
    )


def _handle_infeasible(topo, bounds, on_infeasible, retry_kwargs):
    """Shared ``"diagnose"``/``"relax"`` path: run the elastic re-solve,
    then either raise with the diagnosis attached or solve under the
    relaxed bounds."""
    from repro.resilience import diagnose_infeasibility

    diag = diagnose_infeasibility(
        topo,
        bounds,
        zero_edges=retry_kwargs["zero_edges"],
        backend=retry_kwargs["backend"],
        mode=retry_kwargs["mode"],
        batch=retry_kwargs["batch"],
        max_rounds=retry_kwargs["max_rounds"],
        resilient=retry_kwargs["resilient"],
        timeout=retry_kwargs["lp_timeout"],
    )
    if on_infeasible == "diagnose":
        err = InfeasibleError(
            "no LUBT exists for these bounds (Section 9 certificate)\n"
            + diag.summary()
        )
        err.diagnosis = diag
        raise err
    relaxed = solve_lubt(
        topo,
        diag.relaxed_bounds,
        check_bounds=False,
        on_infeasible="raise",
        **retry_kwargs,
    )
    return LubtSolution(
        relaxed.topology,
        relaxed.bounds,
        relaxed.edge_lengths,
        relaxed.cost,
        relaxed.delays,
        relaxed.stats,
        relaxed.weights,
        relaxed.lp,
        relaxed.lp_result,
        diagnosis=diag,
        solve_reports=relaxed.solve_reports,
    )


def _validate_solution(topo, bounds, e, delays) -> None:
    """Exact post-checks: delay windows and all Steiner constraints."""
    if not bounds.satisfied_by(delays, tol=1e-5):
        raise AssertionError("solver returned delays outside the bounds")
    leftovers = steiner_violations(topo, e, tol=1e-5, limit=1)
    if leftovers:
        i, j, v = leftovers[0]
        raise AssertionError(
            f"Steiner constraint ({i},{j}) violated by {v:g} after solve"
        )
