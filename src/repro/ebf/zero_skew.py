"""Zero-skew special case (Section 4.6).

With ``l_i = u_i`` the EBF inequalities collapse: the paper notes that all
constraints reduce to ``n`` linear *equations* and "no optimization is
necessary".  Operationally those equations are the classic linear-delay
DME merge relations (Boese-Kahng [7]): at every internal node the two
child subtrees' sink delays must be equalized, and the cheapest way to do
so is determined by the distance between the children's merging regions:

    |h_a - h_b| <= d :  e_a = (d + h_b - h_a) / 2,  e_b = d - e_a
    h_a - h_b  >  d :  e_a = 0,  e_b = h_a - h_b     (wire elongation)

where ``h`` is the (common) node-to-sink pathlength of a subtree and ``d``
the distance between the children's merging regions.  This module solves
those equations bottom-up with exact TRR arithmetic; tests verify the
result equals the EBF LP optimum with ``l = u``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.delay import sink_delays_linear
from repro.geometry import TRR
from repro.lp import InfeasibleError
from repro.topology import Topology


@dataclass(frozen=True)
class ZeroSkewSolution:
    """Edge lengths of a minimum-cost zero-skew tree for a topology."""

    edge_lengths: np.ndarray
    cost: float
    delay: float  # the common source-to-sink delay
    merging_regions: dict[int, TRR]

    @property
    def skew(self) -> float:
        return 0.0


def solve_zero_skew(
    topo: Topology, target_delay: float | None = None
) -> ZeroSkewSolution:
    """Minimum-cost zero-skew edge lengths for ``topo``.

    ``target_delay=None`` yields the minimum achievable common delay
    ``t*``; an explicit target must satisfy ``target >= t*`` (wire
    elongation absorbs the slack: on the root edge for a fixed source, on
    both root child edges for a free one) or :class:`InfeasibleError` is
    raised.  Requires every sink to be a leaf (an interior sink forces a
    sink-to-sink delay difference, so zero skew is impossible unless the
    subtree collapses — we reject it outright).
    """
    for i in topo.sink_ids():
        if not topo.is_leaf(i):
            raise InfeasibleError(
                f"sink {i} is interior: zero skew unachievable for this topology"
            )

    e = np.zeros(topo.num_nodes)
    ms: dict[int, TRR] = {}
    height: dict[int, float] = {}

    for k in topo.postorder():
        if topo.is_sink(k):
            ms[k] = TRR.from_point(topo.sink_location(k))
            height[k] = 0.0
            continue
        kids = list(topo.children(k))
        if k == 0 and topo.source_location is not None:
            continue  # handled after the sweep
        if len(kids) == 0:
            raise InfeasibleError(f"node {k} is a dangling Steiner point")
        if len(kids) > 2:
            raise InfeasibleError(
                f"node {k} has {len(kids)} children; run "
                "split_high_degree_steiner first (Section 3)"
            )
        if len(kids) == 1:
            # Pass-through node: a zero-length edge preserves zero skew.
            (a,) = kids
            e[a] = 0.0
            ms[k] = ms[a]
            height[k] = height[a]
            continue
        a, b = kids
        region, h, (e_a, e_b) = _merge(ms[a], height[a], ms[b], height[b])
        e[a], e[b] = e_a, e_b
        ms[k] = region
        height[k] = h

    # Root/source handling and the common delay.
    src = topo.source_location
    if src is None:
        t_star = height[0]
        slack_edges = list(topo.children(0))
    else:
        root_kids = topo.children(0)
        if len(root_kids) != 1:
            raise InfeasibleError(
                "fixed-source zero-skew requires a single root child "
                "(run split_high_degree_steiner)"
            )
        (child,) = root_kids
        src_trr = TRR.from_point(src)
        e[child] = ms[child].distance_to(src_trr)
        ms[0] = src_trr
        height[0] = height[child] + e[child]
        t_star = height[0]
        slack_edges = [child]

    if target_delay is not None:
        if target_delay < t_star - 1e-9:
            raise InfeasibleError(
                f"zero-skew target {target_delay:g} below the topology's "
                f"minimum achievable delay {t_star:g}"
            )
        slack = max(0.0, target_delay - t_star)
        for j in slack_edges:
            e[j] += slack
        t_star = target_delay

    delays = sink_delays_linear(topo, e)
    spread = float(delays.max() - delays.min()) if len(delays) else 0.0
    if spread > 1e-6 * max(1.0, t_star):
        raise AssertionError(f"zero-skew sweep left skew {spread:g}")
    return ZeroSkewSolution(e, float(e[1:].sum()), t_star, ms)


def _merge(
    ms_a: TRR, h_a: float, ms_b: TRR, h_b: float
) -> tuple[TRR, float, tuple[float, float]]:
    """One DME merge: returns (merged region, new height, (e_a, e_b))."""
    d = ms_a.distance_to(ms_b)
    if abs(h_a - h_b) <= d:
        e_a = (d + h_b - h_a) / 2.0
        e_b = d - e_a
    elif h_a > h_b:
        e_a, e_b = 0.0, h_a - h_b  # detour wire on the b side
    else:
        e_a, e_b = h_b - h_a, 0.0
    merged = ms_a.expanded(e_a).intersect(ms_b.expanded(e_b))
    if merged.is_empty():
        raise AssertionError("DME merge produced an empty region")
    return merged, h_a + e_a, (e_a, e_b)
