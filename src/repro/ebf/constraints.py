"""Steiner-constraint generation and violation checking (Sections 4.1, 4.6).

There are C(m, 2) Steiner constraints — one per sink pair.  Generating all
of them is exact but heavy for paper-scale nets, so this module supports
the paper's Section 4.6 "reduction of the constraints" as a sound lazy
scheme: start from one well-chosen *seed* pair per internal node (the
farthest cross pair, which tends to be the binding one), then add only the
pairs a candidate solution actually violates.  The violation check is
vectorized over LCA groups:

    pathlength(s_i, s_j) = D_i + D_j - 2 * D_lca(i,j)

where ``D`` is the root-to-node pathlength vector, and the Manhattan
distance is the Chebyshev distance of the rotated sink coordinates.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

import numpy as np

from repro.delay import node_delays_linear
from repro.geometry import manhattan
from repro.topology import Topology


def sink_pair_count(topo: Topology) -> int:
    """C(m, 2) — the full Steiner constraint count of Section 4.6."""
    m = topo.num_sinks
    return m * (m - 1) // 2


def _lca_groups(topo: Topology) -> Iterator[tuple[int, list[list[int]]]]:
    """Yield ``(node, sink_groups)`` covering every sink pair exactly once.

    A pair's LCA is either a branching node (the pair crosses two child
    subtrees) or — in topologies with interior sinks, like Figure 1(a)'s
    chain — a sink that is an ancestor of the other.  The ancestor sink
    is emitted as its own singleton group so ``itertools.combinations``
    over the groups enumerates both kinds uniformly.
    """
    sinks_under = topo.sinks_under()
    for k in range(topo.num_nodes):
        kids = topo.children(k)
        if not kids:
            continue
        groups = [g for g in (sinks_under[c] for c in kids) if g]
        if topo.is_sink(k):
            groups.append([k])
        if len(groups) >= 2:
            yield k, groups


def all_sink_pairs(topo: Topology) -> Iterator[tuple[int, int]]:
    """Every unordered sink pair, grouped by LCA."""
    for _, groups in _lca_groups(topo):
        for ga, gb in itertools.combinations(groups, 2):
            for i in ga:
                for j in gb:
                    yield (i, j)


def steiner_constraint_rows(
    topo: Topology, pairs: Sequence[tuple[int, int]] | None = None
) -> Iterator[tuple[int, int, list[int], float]]:
    """Yield ``(i, j, path_edge_ids, dist)`` rows for the given sink pairs
    (default: all C(m,2) of them)."""
    if pairs is None:
        pairs = list(all_sink_pairs(topo))
    for i, j in pairs:
        edges = topo.path_between(i, j)
        d = manhattan(topo.sink_location(i), topo.sink_location(j))
        yield i, j, edges, d


def _sink_uv(topo: Topology) -> tuple[np.ndarray, np.ndarray]:
    """Rotated sink coordinates indexed by *node id* (non-sinks zeroed);
    memoized on the topology."""
    return topo.sink_uv()


def steiner_row_matrix(
    topo: Topology, pairs: Sequence[tuple]
) -> tuple[object, np.ndarray]:
    """Vectorized Steiner-row assembly for a batch of sink pairs.

    ``pairs`` holds ``(i, j)`` or ``(i, j, lca)`` tuples (the violation
    scan already knows each pair's LCA; pairs without one fall back to
    the O(log n) lifted-ancestor query).  Returns ``(block, dist)``:
    ``block`` is a CSR matrix over *node-id* columns (column ``e`` = edge
    ``e``, column 0 empty) with one row per pair, derived from the
    memoized root-path incidence as

        row(i, j) = inc[i] + inc[j] - 2 * inc[lca(i, j)]

    so no per-pair ``path_between`` walk happens; ``dist`` is the
    Manhattan distance (paper rhs) per pair.
    """
    inc = topo.root_path_incidence()
    ii = np.fromiter((p[0] for p in pairs), dtype=np.int64, count=len(pairs))
    jj = np.fromiter((p[1] for p in pairs), dtype=np.int64, count=len(pairs))
    kk = np.fromiter(
        (p[2] if len(p) > 2 else topo.lca(p[0], p[1]) for p in pairs),
        dtype=np.int64,
        count=len(pairs),
    )
    block = inc[ii] + inc[jj] - 2.0 * inc[kk]
    block.eliminate_zeros()  # the shared root prefix cancels to exact 0.0
    su, sv = topo.sink_uv()
    dist = np.maximum(np.abs(su[ii] - su[jj]), np.abs(sv[ii] - sv[jj]))
    return block, dist


def seed_constraint_pairs(topo: Topology) -> list[tuple[int, int]]:
    """One seed pair per branching node: the farthest cross pair.

    For each LCA and each pair of its child groups, the maximizing pair of
    ``max(|du|, |dv|)`` is found from the groups' u/v extremes (16 candidate
    combinations) — O(m) per node instead of O(|A|*|B|).
    """
    su, sv = _sink_uv(topo)
    seeds: list[tuple[int, int]] = []
    for _, groups in _lca_groups(topo):
        extremes = []
        for g in groups:
            arr = np.asarray(g)
            extremes.append(
                {
                    "umin": int(arr[np.argmin(su[arr])]),
                    "umax": int(arr[np.argmax(su[arr])]),
                    "vmin": int(arr[np.argmin(sv[arr])]),
                    "vmax": int(arr[np.argmax(sv[arr])]),
                }
            )
        for (ga, ea), (gb, eb) in itertools.combinations(
            zip(groups, extremes), 2
        ):
            # Candidate extremes are deduped *and sorted*: iterating a bare
            # set here would make the argmax tie-break depend on hash order,
            # and with it the seed rows and the degenerate-optimum vertex.
            best: tuple[float, int, int] | None = None
            for i in sorted(set(ea.values())):
                for j in sorted(set(eb.values())):
                    d = max(abs(su[i] - su[j]), abs(sv[i] - sv[j]))
                    if best is None or d > best[0]:
                        best = (d, i, j)
            assert best is not None
            seeds.append((best[1], best[2]))
    return seeds


def steiner_violations(
    topo: Topology,
    edge_lengths: np.ndarray,
    tol: float = 1e-7,
    limit: int | None = None,
    with_lca: bool = False,
) -> list[tuple]:
    """All sink pairs whose Steiner constraint is violated by more than
    ``tol``, as ``(i, j, violation)`` sorted by decreasing violation.

    ``limit`` caps the returned count (the most-violated rows are kept),
    which is what the lazy solver uses for batched row generation.
    ``with_lca=True`` returns ``(i, j, lca, violation)`` instead — the
    scan knows each pair's LCA already, and handing it to
    :func:`steiner_row_matrix` skips the per-pair ancestor query.
    """
    d = node_delays_linear(topo, edge_lengths)
    su, sv = _sink_uv(topo)
    ii_parts: list[np.ndarray] = []
    jj_parts: list[np.ndarray] = []
    kk_parts: list[np.ndarray] = []
    vv_parts: list[np.ndarray] = []
    for k, groups in _lca_groups(topo):
        arrays = [np.asarray(g) for g in groups]
        for a, b in itertools.combinations(arrays, 2):
            pathsum = d[a][:, None] + d[b][None, :] - 2.0 * d[k]
            dist = np.maximum(
                np.abs(su[a][:, None] - su[b][None, :]),
                np.abs(sv[a][:, None] - sv[b][None, :]),
            )
            viol = dist - pathsum
            ia, ib = np.nonzero(viol > tol)
            if not len(ia):
                continue
            # Column-stacked, in the scan (row-major) order the old
            # per-element loop produced — the order ties are broken in.
            ii_parts.append(a[ia])
            jj_parts.append(b[ib])
            kk_parts.append(np.full(len(ia), k, dtype=np.int64))
            vv_parts.append(viol[ia, ib])
    if not ii_parts:
        return []
    ii = np.concatenate(ii_parts)
    jj = np.concatenate(jj_parts)
    kk = np.concatenate(kk_parts)
    vv = np.concatenate(vv_parts)

    if limit is not None and len(vv) > limit:
        # Threshold selection via partition instead of a full sort.  To
        # reproduce the previous stable-sort-then-slice semantics exactly,
        # keep everything strictly above the limit-th largest violation,
        # then fill the remainder with threshold ties in scan order.
        neg = -vv
        thresh = np.partition(neg, limit - 1)[limit - 1]
        sel = np.flatnonzero(neg < thresh)
        need = limit - len(sel)
        if need > 0:
            sel = np.sort(
                np.concatenate([sel, np.flatnonzero(neg == thresh)[:need]])
            )
        order = sel[np.argsort(neg[sel], kind="stable")]
    else:
        order = np.argsort(-vv, kind="stable")

    if with_lca:
        return [
            (int(ii[t]), int(jj[t]), int(kk[t]), float(vv[t])) for t in order
        ]
    return [(int(ii[t]), int(jj[t]), float(vv[t])) for t in order]


def max_steiner_violation(topo: Topology, edge_lengths: np.ndarray) -> float:
    """Largest Steiner-constraint violation (<= 0 when all satisfied)."""
    d = node_delays_linear(topo, edge_lengths)
    su, sv = _sink_uv(topo)
    worst = -np.inf
    for k, groups in _lca_groups(topo):
        arrays = [np.asarray(g) for g in groups]
        for a, b in itertools.combinations(arrays, 2):
            pathsum = d[a][:, None] + d[b][None, :] - 2.0 * d[k]
            dist = np.maximum(
                np.abs(su[a][:, None] - su[b][None, :]),
                np.abs(sv[a][:, None] - sv[b][None, :]),
            )
            worst = max(worst, float((dist - pathsum).max()))
    return worst if np.isfinite(worst) else 0.0
