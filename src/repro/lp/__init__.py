"""Linear-programming substrate.

The paper solves EBF with LOQO, a commercial interior-point solver that is
not freely redistributable.  This package substitutes two interchangeable
backends behind one interface:

* :mod:`repro.lp.simplex` — a from-scratch dense two-phase primal simplex
  (Bland anti-cycling), fully self-contained, used for small/medium LPs and
  as an independent cross-check;
* :mod:`repro.lp.scipy_backend` — ``scipy.optimize.linprog`` (HiGHS), used
  for paper-scale instances.

Both consume the same :class:`LinearProgram` model and produce the same
:class:`LpResult`.  Since EBF is an exact LP, the optimal *cost* is backend
independent (optimal vertices may differ), which tests verify.
"""

from repro.lp.model import LinearProgram, Sense
from repro.lp.result import (
    BackendCapabilityError,
    InfeasibleError,
    LpResult,
    LpStatus,
    UnboundedError,
)
from repro.lp.solve import preferred_backend, solve_lp
from repro.lp.treesolve import TreeLpMeta, solve_tree
from repro.lp.io import lp_to_string, write_lp_file

__all__ = [
    "LinearProgram",
    "Sense",
    "LpResult",
    "LpStatus",
    "InfeasibleError",
    "UnboundedError",
    "BackendCapabilityError",
    "preferred_backend",
    "solve_lp",
    "TreeLpMeta",
    "solve_tree",
    "lp_to_string",
    "write_lp_file",
]
