"""A from-scratch dense two-phase primal simplex.

This is the self-contained replacement for the paper's LOQO solver.  It is
a textbook tableau implementation (Luenberger [12], Ch. 3) with Bland's
anti-cycling rule, adequate for the small/medium EBF instances used in
tests and ablations; the scipy/HiGHS backend handles paper-scale LPs.

Model handling: general variable bounds are reduced to the non-negative
standard form by the shift ``x = lb + x'`` (fixed variables are substituted
out; finite upper bounds become extra rows).  Equalities and >= rows get
artificial variables; phase 1 minimizes their sum.
"""

from __future__ import annotations

import math

import numpy as np

from repro.lp.model import LinearProgram, Sense
from repro.lp.result import BackendCapabilityError, LpResult, LpStatus

_TOL = 1e-9
_FEAS_TOL = 1e-7

_STATUS_NOTES = {
    LpStatus.ERROR: "simplex hit the iteration limit or a phase-1 failure",
    LpStatus.INFEASIBLE: "phase 1 terminated with positive artificial sum",
    LpStatus.UNBOUNDED: "entering column has no positive ratio",
}


def solve_simplex(lp: LinearProgram, max_iterations: int = 200_000) -> LpResult:
    """Solve ``lp`` with the two-phase tableau simplex."""
    n = lp.num_variables
    lb = lp.lower_bounds.copy()
    ub = lp.upper_bounds.copy()

    if np.any(~np.isfinite(lb)):
        raise BackendCapabilityError(
            "simplex backend requires finite lower bounds "
            "(standard-form shift x = lb + x'); use the scipy backend"
        )

    fixed = ub - lb <= _TOL
    free_idx = np.flatnonzero(~fixed)
    col_of = {int(j): k for k, j in enumerate(free_idx)}
    n_free = len(free_idx)

    rows: list[tuple[dict[int, float], Sense, float]] = []
    for i in range(lp.num_constraints):
        coeffs, sense, rhs = lp.row(i)
        acc: dict[int, float] = {}
        shift = 0.0
        for j, a in coeffs:
            shift += a * lb[j]
            if not fixed[j]:
                acc[col_of[j]] = acc.get(col_of[j], 0.0) + a
        rows.append((acc, sense, rhs - shift))

    # Finite upper bounds on free variables become <= rows.
    for k, j in enumerate(free_idx):
        if math.isfinite(ub[j]):
            rows.append(({k: 1.0}, Sense.LE, ub[j] - lb[j]))

    cost = np.array([lp.costs[j] for j in free_idx], dtype=float)
    if not lp.minimize:
        cost = -cost

    x_free, status, iters = _two_phase(rows, cost, n_free, max_iterations)
    if status is not LpStatus.OPTIMAL:
        return LpResult(
            status, None, None, iters, "simplex",
            message=_STATUS_NOTES.get(status),
        )

    x = lb.copy()
    x[free_idx] += x_free
    obj = lp.objective_value(x)
    return LpResult(LpStatus.OPTIMAL, x, obj, iters, "simplex")


def _two_phase(
    rows: list[tuple[dict[int, float], Sense, float]],
    cost: np.ndarray,
    n: int,
    max_iterations: int,
) -> tuple[np.ndarray, LpStatus, int]:
    """Core: min cost'x s.t. rows, x >= 0."""
    m = len(rows)
    if m == 0:
        # Unconstrained non-negative minimization: x = 0 unless some cost
        # is negative, in which case the LP is unbounded.
        if np.any(cost < -_TOL):
            return np.zeros(n), LpStatus.UNBOUNDED, 0
        return np.zeros(n), LpStatus.OPTIMAL, 0

    # Normalize every row to non-negative rhs, then classify.
    a = np.zeros((m, n))
    b = np.zeros(m)
    senses: list[Sense] = []
    for i, (coeffs, sense, rhs) in enumerate(rows):
        for k, v in coeffs.items():
            a[i, k] = v
        if rhs < 0:
            a[i] = -a[i]
            rhs = -rhs
            sense = {Sense.LE: Sense.GE, Sense.GE: Sense.LE, Sense.EQ: Sense.EQ}[sense]
        b[i] = rhs
        senses.append(sense)

    n_slack = sum(1 for s in senses if s is not Sense.EQ)
    n_art = sum(1 for s in senses if s is not Sense.LE)
    total = n + n_slack + n_art

    tableau = np.zeros((m, total + 1))
    tableau[:, :n] = a
    tableau[:, -1] = b
    basis = np.empty(m, dtype=int)

    s_col = n
    a_col = n + n_slack
    art_cols = []
    for i, sense in enumerate(senses):
        if sense is Sense.LE:
            tableau[i, s_col] = 1.0
            basis[i] = s_col
            s_col += 1
        elif sense is Sense.GE:
            tableau[i, s_col] = -1.0
            s_col += 1
            tableau[i, a_col] = 1.0
            basis[i] = a_col
            art_cols.append(a_col)
            a_col += 1
        else:
            tableau[i, a_col] = 1.0
            basis[i] = a_col
            art_cols.append(a_col)
            a_col += 1

    iters = 0
    if art_cols:
        phase1_cost = np.zeros(total)
        phase1_cost[art_cols] = 1.0
        status, it = _iterate(tableau, basis, phase1_cost, max_iterations)
        iters += it
        if status is not LpStatus.OPTIMAL:
            return np.zeros(n), LpStatus.ERROR, iters
        art_set = set(art_cols)
        art_value = sum(
            tableau[i, -1] for i in range(m) if basis[i] in art_set
        )
        if art_value > _FEAS_TOL * (1.0 + abs(b).max()):
            return np.zeros(n), LpStatus.INFEASIBLE, iters
        _drive_out_artificials(tableau, basis, art_set, n + n_slack)
        # Deactivate artificial columns for phase 2.
        tableau[:, n + n_slack : total] = 0.0

    phase2_cost = np.zeros(total)
    phase2_cost[:n] = cost
    status, it = _iterate(tableau, basis, phase2_cost, max_iterations)
    iters += it
    if status is not LpStatus.OPTIMAL:
        return np.zeros(n), status, iters

    x = np.zeros(total)
    for i in range(m):
        x[basis[i]] = tableau[i, -1]
    return x[:n], LpStatus.OPTIMAL, iters


def _iterate(
    tableau: np.ndarray,
    basis: np.ndarray,
    cost: np.ndarray,
    max_iterations: int,
) -> tuple[LpStatus, int]:
    """Primal simplex iterations with Bland's rule; mutates in place."""
    m, width = tableau.shape
    total = width - 1
    for it in range(max_iterations):
        # Reduced costs: c_j - c_B' B^-1 A_j, computed from the tableau.
        cb = cost[basis]
        reduced = cost[:total] - cb @ tableau[:, :total]
        reduced[basis] = 0.0
        entering_candidates = np.flatnonzero(reduced < -_TOL)
        if entering_candidates.size == 0:
            return LpStatus.OPTIMAL, it
        j = int(entering_candidates[0])  # Bland: smallest index

        col = tableau[:, j]
        positive = col > _TOL
        if not np.any(positive):
            return LpStatus.UNBOUNDED, it
        ratios = np.full(m, np.inf)
        ratios[positive] = tableau[positive, -1] / col[positive]
        best = ratios.min()
        # Bland tie-break: among minimizers, leave the smallest basis var.
        ties = np.flatnonzero(ratios <= best + _TOL)
        r = int(ties[np.argmin(basis[ties])])

        _pivot(tableau, r, j)
        basis[r] = j
    return LpStatus.ERROR, max_iterations


def _pivot(tableau: np.ndarray, r: int, j: int) -> None:
    tableau[r] /= tableau[r, j]
    col = tableau[:, j].copy()
    col[r] = 0.0
    tableau -= np.outer(col, tableau[r])


def _drive_out_artificials(
    tableau: np.ndarray,
    basis: np.ndarray,
    art_cols: set[int],
    n_real: int,
) -> None:
    """Pivot basic artificials (at value ~0) onto any real column."""
    m = tableau.shape[0]
    for i in range(m):
        if basis[i] not in art_cols:
            continue
        row = tableau[i, :n_real]
        nz = np.flatnonzero(np.abs(row) > _TOL)
        if nz.size:
            _pivot(tableau, i, int(nz[0]))
            basis[i] = int(nz[0])
        # else: the row is redundant (all-zero over real vars); the basic
        # artificial stays at zero and never re-enters, which is harmless.
