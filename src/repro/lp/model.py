"""A small sparse LP model builder.

Models are of the form

    min  c' x
    s.t. row_i : sum_j a_ij x_j  (<= | >= | ==)  b_i
         lb_j <= x_j <= ub_j          (lb defaults to 0, ub to +inf)

which covers everything EBF needs: non-negative edge lengths, >= Steiner
constraints, range delay constraints (expressed as a >= and a <= row), and
pinned zero-length tie edges (lb = ub = 0).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Mapping

import numpy as np
from scipy import sparse


class Sense(Enum):
    LE = "<="
    GE = ">="
    EQ = "=="


@dataclass(slots=True)
class _Row:
    coeffs: tuple[tuple[int, float], ...]
    sense: Sense
    rhs: float
    name: str = ""


@dataclass
class LinearProgram:
    """Sparse LP model; rows/columns are appended and never removed."""

    minimize: bool = True
    _costs: list[float] = field(default_factory=list)
    _lb: list[float] = field(default_factory=list)
    _ub: list[float] = field(default_factory=list)
    _names: list[str] = field(default_factory=list)
    _rows: list[_Row] = field(default_factory=list)

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    def add_variable(
        self,
        name: str = "",
        cost: float = 0.0,
        lb: float = 0.0,
        ub: float = math.inf,
    ) -> int:
        """Add a variable; returns its column index."""
        if lb > ub:
            raise ValueError(f"variable {name!r}: lb {lb} > ub {ub}")
        self._costs.append(float(cost))
        self._lb.append(float(lb))
        self._ub.append(float(ub))
        self._names.append(name or f"x{len(self._costs) - 1}")
        return len(self._costs) - 1

    def add_variables(self, count: int, prefix: str = "x", cost: float = 0.0) -> range:
        start = len(self._costs)
        for k in range(count):
            self.add_variable(f"{prefix}{start + k}", cost=cost)
        return range(start, start + count)

    def set_cost(self, var: int, cost: float) -> None:
        self._costs[var] = float(cost)

    def fix_variable(self, var: int, value: float) -> None:
        self._lb[var] = float(value)
        self._ub[var] = float(value)

    def add_constraint(
        self,
        coeffs: Mapping[int, float] | Iterable[tuple[int, float]],
        sense: Sense,
        rhs: float,
        name: str = "",
    ) -> int:
        """Add a row; duplicate variable entries are summed."""
        items = coeffs.items() if isinstance(coeffs, Mapping) else coeffs
        acc: dict[int, float] = {}
        for j, a in items:
            if not (0 <= j < len(self._costs)):
                raise ValueError(f"constraint references unknown variable {j}")
            acc[j] = acc.get(j, 0.0) + float(a)
        row = _Row(tuple(sorted(acc.items())), sense, float(rhs), name)
        self._rows.append(row)
        return len(self._rows) - 1

    def add_range_constraint(
        self,
        coeffs: Mapping[int, float] | Iterable[tuple[int, float]],
        lo: float,
        hi: float,
        name: str = "",
    ) -> tuple[int, ...]:
        """``lo <= a'x <= hi`` expressed as up to two rows.

        An infinite bound on either side drops the corresponding row;
        ``lo == hi`` emits a single equality.
        """
        if lo > hi:
            if lo - hi <= 1e-9 * max(1.0, abs(lo), abs(hi)):
                # Inverted only by floating-point noise (e.g. an
                # interpolated upper bound landing 1 ulp below an exact
                # lower floor): collapse to equality at the midpoint.
                lo = hi = 0.5 * (lo + hi)
            else:
                raise ValueError(
                    f"range constraint {name!r}: lo {lo} > hi {hi}"
                )
        items = list(coeffs.items() if isinstance(coeffs, Mapping) else coeffs)
        if lo == hi and math.isfinite(lo):
            return (self.add_constraint(items, Sense.EQ, lo, name),)
        rows = []
        if math.isfinite(lo) and lo > -math.inf:
            rows.append(self.add_constraint(items, Sense.GE, lo, f"{name}.lo"))
        if math.isfinite(hi):
            rows.append(self.add_constraint(items, Sense.LE, hi, f"{name}.hi"))
        return tuple(rows)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def num_variables(self) -> int:
        return len(self._costs)

    @property
    def num_constraints(self) -> int:
        return len(self._rows)

    @property
    def costs(self) -> np.ndarray:
        return np.asarray(self._costs, dtype=float)

    @property
    def lower_bounds(self) -> np.ndarray:
        return np.asarray(self._lb, dtype=float)

    @property
    def upper_bounds(self) -> np.ndarray:
        return np.asarray(self._ub, dtype=float)

    def variable_name(self, j: int) -> str:
        return self._names[j]

    def row_name(self, i: int) -> str:
        return self._rows[i].name

    def row_sense(self, i: int) -> Sense:
        return self._rows[i].sense

    def row(self, i: int) -> tuple[tuple[tuple[int, float], ...], Sense, float]:
        r = self._rows[i]
        return r.coeffs, r.sense, r.rhs

    def evaluate_row(self, i: int, x: np.ndarray) -> float:
        r = self._rows[i]
        return float(sum(a * x[j] for j, a in r.coeffs))

    def residuals(self, x: np.ndarray) -> np.ndarray:
        """Signed feasibility slack per row (>= 0 means satisfied)."""
        out = np.empty(len(self._rows))
        for i, r in enumerate(self._rows):
            lhs = sum(a * x[j] for j, a in r.coeffs)
            if r.sense is Sense.LE:
                out[i] = r.rhs - lhs
            elif r.sense is Sense.GE:
                out[i] = lhs - r.rhs
            else:
                out[i] = -abs(lhs - r.rhs)
        return out

    def is_feasible(self, x: np.ndarray, tol: float = 1e-6) -> bool:
        lb, ub = self.lower_bounds, self.upper_bounds
        if np.any(x < lb - tol) or np.any(x > ub + tol):
            return False
        return bool(np.all(self.residuals(x) >= -tol))

    def objective_value(self, x: np.ndarray) -> float:
        return float(self.costs @ x)

    # ------------------------------------------------------------------
    # matrix export (for the scipy backend)
    # ------------------------------------------------------------------
    def to_arrays(self):
        """Export as ``(c, A_ub, b_ub, A_eq, b_eq, bounds)``.

        GE rows are negated into <= form.  Matrices are CSR; either may be
        ``None`` when there are no rows of that kind.
        """
        n = self.num_variables
        ub_rows: list[_Row] = []
        eq_rows: list[_Row] = []
        for r in self._rows:
            (eq_rows if r.sense is Sense.EQ else ub_rows).append(r)

        def build(rows: list[_Row], negate_ge: bool):
            if not rows:
                return None, None
            data, idx, ptr, rhs = [], [], [0], []
            for r in rows:
                flip = -1.0 if (negate_ge and r.sense is Sense.GE) else 1.0
                for j, a in r.coeffs:
                    idx.append(j)
                    data.append(flip * a)
                ptr.append(len(idx))
                rhs.append(flip * r.rhs)
            mat = sparse.csr_matrix(
                (data, idx, ptr), shape=(len(rows), n), dtype=float
            )
            return mat, np.asarray(rhs, dtype=float)

        a_ub, b_ub = build(ub_rows, negate_ge=True)
        a_eq, b_eq = build(eq_rows, negate_ge=False)
        bounds = [
            (lo, None if math.isinf(hi) else hi)
            for lo, hi in zip(self._lb, self._ub)
        ]
        return self.costs, a_ub, b_ub, a_eq, b_eq, bounds
