"""A small sparse LP model builder.

Models are of the form

    min  c' x
    s.t. row_i : sum_j a_ij x_j  (<= | >= | ==)  b_i
         lb_j <= x_j <= ub_j          (lb defaults to 0, ub to +inf)

which covers everything EBF needs: non-negative edge lengths, >= Steiner
constraints, range delay constraints (expressed as a >= and a <= row), and
pinned zero-length tie edges (lb = ub = 0).

Rows are stored columnarly (growing CSR-style buffers) rather than as
per-row tuples, and :meth:`LinearProgram.to_arrays` keeps an incremental
export cache: after the first export, appending rows only converts and
splits the *new* rows, so lazy row generation pays O(new nnz) per round
instead of re-walking the whole model.  Bulk row blocks produced by
vectorized builders go in through :meth:`LinearProgram.add_rows` without
any per-row Python object construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np
from scipy import sparse

if TYPE_CHECKING:
    from repro.lp.treesolve import TreeLpMeta


class Sense(Enum):
    LE = "<="
    GE = ">="
    EQ = "=="


#: Relative inversion (``lo - hi``) up to which :meth:`add_range_constraint`
#: treats an inverted range as float noise and collapses it to an equality
#: (emitting a ``BD006`` diagnostic) instead of raising.  Pinned by a
#: regression test — widening it silently would mask real bound inversions.
_RANGE_COLLAPSE_RTOL = 1e-9


def _empty_split_cache() -> dict:
    return {
        "rows_done": 0,
        "ub_data": np.empty(0, dtype=np.float64),
        "ub_cols": np.empty(0, dtype=np.int32),
        "ub_ptr": np.zeros(1, dtype=np.int64),
        "ub_rhs": np.empty(0, dtype=np.float64),
        "eq_data": np.empty(0, dtype=np.float64),
        "eq_cols": np.empty(0, dtype=np.int32),
        "eq_ptr": np.zeros(1, dtype=np.int64),
        "eq_rhs": np.empty(0, dtype=np.float64),
        "mats": None,  # (a_ub, a_eq) built at mats_n columns
        "mats_n": -1,
    }


@dataclass
class LinearProgram:
    """Sparse LP model; rows/columns are appended and never removed."""

    minimize: bool = True
    _costs: list[float] = field(default_factory=list)
    _lb: list[float] = field(default_factory=list)
    _ub: list[float] = field(default_factory=list)
    _names: list[str] = field(default_factory=list)
    # Columnar row storage: row i occupies slots _row_ptr[i]:_row_ptr[i+1]
    # of _row_data/_row_cols.
    _row_data: list[float] = field(default_factory=list, repr=False)
    _row_cols: list[int] = field(default_factory=list, repr=False)
    _row_ptr: list[int] = field(default_factory=lambda: [0], repr=False)
    _row_sense: list[Sense] = field(default_factory=list, repr=False)
    _row_rhs: list[float] = field(default_factory=list, repr=False)
    _row_names: list[str] = field(default_factory=list, repr=False)
    # Incremental export cache (derived state, excluded from comparison).
    _split_cache: dict | None = field(
        default=None, repr=False, compare=False
    )
    _residual_cache: tuple | None = field(
        default=None, repr=False, compare=False
    )
    #: Tree facts stamped by ``repro.ebf.build_ebf_lp`` so the structure
    #: aware ``"tree"`` backend can re-derive the model; ``None`` for
    #: generic LPs.  Derived/advisory state: excluded from comparison.
    tree_meta: "TreeLpMeta | None" = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    def add_variable(
        self,
        name: str = "",
        cost: float = 0.0,
        lb: float = 0.0,
        ub: float = math.inf,
    ) -> int:
        """Add a variable; returns its column index."""
        if lb > ub:
            raise ValueError(f"variable {name!r}: lb {lb} > ub {ub}")
        self._costs.append(float(cost))
        self._lb.append(float(lb))
        self._ub.append(float(ub))
        self._names.append(name or f"x{len(self._costs) - 1}")
        return len(self._costs) - 1

    def add_variables(self, count: int, prefix: str = "x", cost: float = 0.0) -> range:
        start = len(self._costs)
        for k in range(count):
            self.add_variable(f"{prefix}{start + k}", cost=cost)
        return range(start, start + count)

    def set_cost(self, var: int, cost: float) -> None:
        self._costs[var] = float(cost)

    def fix_variable(self, var: int, value: float) -> None:
        self._lb[var] = float(value)
        self._ub[var] = float(value)

    def add_constraint(
        self,
        coeffs: Mapping[int, float] | Iterable[tuple[int, float]],
        sense: Sense,
        rhs: float,
        name: str = "",
    ) -> int:
        """Add a row; duplicate variable entries are summed."""
        items = coeffs.items() if isinstance(coeffs, Mapping) else coeffs
        acc: dict[int, float] = {}
        for j, a in items:
            if not (0 <= j < len(self._costs)):
                raise ValueError(f"constraint references unknown variable {j}")
            acc[j] = acc.get(j, 0.0) + float(a)
        for j in sorted(acc):
            self._row_cols.append(j)
            self._row_data.append(acc[j])
        self._row_ptr.append(len(self._row_cols))
        self._row_sense.append(sense)
        self._row_rhs.append(float(rhs))
        self._row_names.append(name)
        self._residual_cache = None
        return len(self._row_rhs) - 1

    def add_rows(
        self,
        data: np.ndarray,
        cols: np.ndarray,
        indptr: np.ndarray,
        sense: Sense | Sequence[Sense],
        rhs: np.ndarray,
        names: Sequence[str] | None = None,
    ) -> range:
        """Bulk-append a CSR block of rows; returns the new row indices.

        ``data``/``cols``/``indptr`` describe the block exactly as
        ``scipy.sparse.csr_matrix`` would (``indptr[0] == 0``); each row
        must already be canonical (no duplicate columns).  ``sense`` is
        one :class:`Sense` for the whole block or one per row.  This is
        the fast path for vectorized row builders — no per-row Python
        tuples are created.
        """
        data = np.asarray(data, dtype=np.float64)
        cols = np.asarray(cols, dtype=np.int64)
        indptr = np.asarray(indptr, dtype=np.int64)
        rhs = np.asarray(rhs, dtype=np.float64)
        k = len(rhs)
        if indptr.shape != (k + 1,) or (k and indptr[0] != 0):
            raise ValueError("indptr must have len(rhs) + 1 entries, starting at 0")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if int(indptr[-1]) != len(data) or len(data) != len(cols):
            raise ValueError("data/cols length must match indptr[-1]")
        if len(cols) and (cols.min() < 0 or cols.max() >= len(self._costs)):
            raise ValueError("row block references unknown variables")
        senses = (
            [sense] * k if isinstance(sense, Sense) else list(sense)
        )
        if len(senses) != k:
            raise ValueError("one sense per row required")
        if names is not None and len(names) != k:
            raise ValueError("one name per row required")

        start = len(self._row_rhs)
        base = self._row_ptr[-1]
        self._row_data.extend(data.tolist())
        self._row_cols.extend(cols.tolist())
        self._row_ptr.extend((base + indptr[1:]).tolist())
        self._row_sense.extend(senses)
        self._row_rhs.extend(rhs.tolist())
        self._row_names.extend(names if names is not None else [""] * k)
        self._residual_cache = None
        return range(start, start + k)

    def add_range_constraint(
        self,
        coeffs: Mapping[int, float] | Iterable[tuple[int, float]],
        lo: float,
        hi: float,
        name: str = "",
    ) -> tuple[int, ...]:
        """``lo <= a'x <= hi`` expressed as up to two rows.

        An infinite bound on either side drops the corresponding row;
        ``lo == hi`` emits a single equality.
        """
        if lo > hi:
            if lo - hi <= _RANGE_COLLAPSE_RTOL * max(1.0, abs(lo), abs(hi)):
                # Inverted only by floating-point noise (e.g. an
                # interpolated upper bound landing 1 ulp below an exact
                # lower floor): collapse to equality at the midpoint, and
                # say so — a silent collapse hides upstream bound bugs.
                from repro.check.diagnostics import Diagnostic, emit

                emit(
                    Diagnostic(
                        "BD006",
                        f"range [{lo!r}, {hi!r}] inverted by float noise; "
                        f"collapsed to equality at {0.5 * (lo + hi)!r}",
                        locus=f"row {name!r}" if name else "row",
                    )
                )
                lo = hi = 0.5 * (lo + hi)
            else:
                raise ValueError(
                    f"range constraint {name!r}: lo {lo} > hi {hi}"
                )
        items = list(coeffs.items() if isinstance(coeffs, Mapping) else coeffs)
        if lo == hi and math.isfinite(lo):
            return (self.add_constraint(items, Sense.EQ, lo, name),)
        rows = []
        if math.isfinite(lo) and lo > -math.inf:
            rows.append(self.add_constraint(items, Sense.GE, lo, f"{name}.lo"))
        if math.isfinite(hi):
            rows.append(self.add_constraint(items, Sense.LE, hi, f"{name}.hi"))
        return tuple(rows)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def num_variables(self) -> int:
        return len(self._costs)

    @property
    def num_constraints(self) -> int:
        return len(self._row_rhs)

    @property
    def costs(self) -> np.ndarray:
        return np.asarray(self._costs, dtype=float)

    @property
    def lower_bounds(self) -> np.ndarray:
        return np.asarray(self._lb, dtype=float)

    @property
    def upper_bounds(self) -> np.ndarray:
        return np.asarray(self._ub, dtype=float)

    def variable_name(self, j: int) -> str:
        return self._names[j]

    def row_name(self, i: int) -> str:
        return self._row_names[i]

    def row_sense(self, i: int) -> Sense:
        return self._row_sense[i]

    def row(self, i: int) -> tuple[tuple[tuple[int, float], ...], Sense, float]:
        if not (0 <= i < len(self._row_rhs)):
            raise IndexError(f"row {i} out of range")
        a, b = self._row_ptr[i], self._row_ptr[i + 1]
        coeffs = tuple(
            (self._row_cols[k], self._row_data[k]) for k in range(a, b)
        )
        return coeffs, self._row_sense[i], self._row_rhs[i]

    def evaluate_row(self, i: int, x: np.ndarray) -> float:
        coeffs, _, _ = self.row(i)
        return float(sum(a * x[j] for j, a in coeffs))

    def _row_matrix(self) -> tuple["sparse.csr_matrix", np.ndarray, np.ndarray]:
        """Full row matrix (as written, no sense negation) + senses + rhs,
        cached until the row set changes."""
        m = len(self._row_rhs)
        nnz = len(self._row_data)
        n = len(self._costs)
        cached = self._residual_cache
        if cached is not None and cached[0] == (m, nnz, n):
            return cached[1], cached[2], cached[3]
        mat = sparse.csr_matrix(
            (
                np.asarray(self._row_data, dtype=np.float64),
                np.asarray(self._row_cols, dtype=np.int32),
                np.asarray(self._row_ptr, dtype=np.int64),
            ),
            shape=(m, n),
        )
        ge = np.fromiter(
            (s is Sense.GE for s in self._row_sense), dtype=bool, count=m
        )
        eq = np.fromiter(
            (s is Sense.EQ for s in self._row_sense), dtype=bool, count=m
        )
        rhs = np.asarray(self._row_rhs, dtype=np.float64)
        self._residual_cache = ((m, nnz, n), mat, (ge, eq), rhs)
        return mat, (ge, eq), rhs

    def residuals(self, x: np.ndarray) -> np.ndarray:
        """Signed feasibility slack per row (>= 0 means satisfied)."""
        mat, (ge, eq), rhs = self._row_matrix()
        lhs = mat @ np.asarray(x, dtype=float)
        out = rhs - lhs  # LE orientation
        out[ge] = lhs[ge] - rhs[ge]
        out[eq] = -np.abs(lhs[eq] - rhs[eq])
        return out

    def is_feasible(self, x: np.ndarray, tol: float = 1e-6) -> bool:
        lb, ub = self.lower_bounds, self.upper_bounds
        if np.any(x < lb - tol) or np.any(x > ub + tol):
            return False
        if not self._row_rhs:
            return True
        return bool(np.all(self.residuals(x) >= -tol))

    def objective_value(self, x: np.ndarray) -> float:
        return float(self.costs @ x)

    # ------------------------------------------------------------------
    # matrix export (for the scipy backend)
    # ------------------------------------------------------------------
    def _advance_split_cache(self, st: dict) -> None:
        """Fold rows [st['rows_done'], num_constraints) into the cached
        <=/== split, vectorized over the whole appended slice."""
        r0, r1 = st["rows_done"], len(self._row_rhs)
        if r1 == r0:
            return
        ptr = np.asarray(self._row_ptr[r0 : r1 + 1], dtype=np.int64)
        lens = np.diff(ptr)
        k0, k1 = int(ptr[0]), int(ptr[-1])
        data = np.asarray(self._row_data[k0:k1], dtype=np.float64)
        cols = np.asarray(self._row_cols[k0:k1], dtype=np.int32)
        rhs = np.asarray(self._row_rhs[r0:r1], dtype=np.float64)
        senses = self._row_sense[r0:r1]
        is_eq = np.fromiter(
            (s is Sense.EQ for s in senses), dtype=bool, count=r1 - r0
        )
        is_ge = np.fromiter(
            (s is Sense.GE for s in senses), dtype=bool, count=r1 - r0
        )
        # GE rows are negated into <= form.
        flip_row = np.where(is_ge, -1.0, 1.0)
        elem_eq = np.repeat(is_eq, lens)
        elem_flip = np.repeat(flip_row, lens)

        ub_lens = lens[~is_eq]
        st["ub_data"] = np.concatenate(
            [st["ub_data"], (data * elem_flip)[~elem_eq]]
        )
        st["ub_cols"] = np.concatenate([st["ub_cols"], cols[~elem_eq]])
        st["ub_ptr"] = np.concatenate(
            [st["ub_ptr"], st["ub_ptr"][-1] + np.cumsum(ub_lens)]
        )
        st["ub_rhs"] = np.concatenate(
            [st["ub_rhs"], (rhs * flip_row)[~is_eq]]
        )

        eq_lens = lens[is_eq]
        st["eq_data"] = np.concatenate([st["eq_data"], data[elem_eq]])
        st["eq_cols"] = np.concatenate([st["eq_cols"], cols[elem_eq]])
        st["eq_ptr"] = np.concatenate(
            [st["eq_ptr"], st["eq_ptr"][-1] + np.cumsum(eq_lens)]
        )
        st["eq_rhs"] = np.concatenate([st["eq_rhs"], rhs[is_eq]])

        st["rows_done"] = r1
        st["mats"] = None

    def to_arrays(self, cache: bool = True) -> tuple[
        np.ndarray,
        "sparse.csr_matrix | None",
        np.ndarray | None,
        "sparse.csr_matrix | None",
        np.ndarray | None,
        list[tuple[float, float | None]],
    ]:
        """Export as ``(c, A_ub, b_ub, A_eq, b_eq, bounds)``.

        GE rows are negated into <= form.  Matrices are CSR; either may be
        ``None`` when there are no rows of that kind.

        The export is cached incrementally: appending rows between calls
        only processes the new rows (dirty tracking by row count), which
        is what makes lazy row generation cheap.  ``cache=False`` discards
        the cache and rebuilds from scratch (used by tests to validate
        the incremental path).
        """
        if not cache:
            self._split_cache = None
        st = self._split_cache
        if st is None:
            st = _empty_split_cache()
            if cache:
                self._split_cache = st
        self._advance_split_cache(st)

        n = self.num_variables
        if st["mats"] is None or st["mats_n"] != n:
            a_ub = a_eq = None
            if len(st["ub_rhs"]):
                a_ub = sparse.csr_matrix(
                    (st["ub_data"], st["ub_cols"], st["ub_ptr"]),
                    shape=(len(st["ub_rhs"]), n),
                )
            if len(st["eq_rhs"]):
                a_eq = sparse.csr_matrix(
                    (st["eq_data"], st["eq_cols"], st["eq_ptr"]),
                    shape=(len(st["eq_rhs"]), n),
                )
            st["mats"] = (a_ub, a_eq)
            st["mats_n"] = n
        a_ub, a_eq = st["mats"]
        b_ub = st["ub_rhs"] if a_ub is not None else None
        b_eq = st["eq_rhs"] if a_eq is not None else None
        bounds = [
            (lo, None if math.isinf(hi) else hi)
            for lo, hi in zip(self._lb, self._ub)
        ]
        return self.costs, a_ub, b_ub, a_eq, b_eq, bounds
