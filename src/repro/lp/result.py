"""Solver-independent result and status types."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np


class LpStatus(Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


class InfeasibleError(RuntimeError):
    """Raised when a model required to be feasible is not.

    For LUBT this is meaningful, not exceptional bookkeeping: the paper
    (Section 9) notes that an infeasible EBF certifies that *no* LUBT
    exists for the given topology and bounds.
    """


class UnboundedError(RuntimeError):
    """Raised when the LP is unbounded (cannot happen for well-formed EBF,
    whose objective is a non-negative sum)."""


@dataclass(frozen=True, slots=True)
class LpResult:
    """Outcome of one LP solve.

    ``duals`` (when the backend provides them) are shadow prices per
    model row, oriented as d(objective)/d(rhs) for the row as written —
    e.g. a positive dual on a ``>=`` row means tightening it (raising
    the rhs) raises the minimum cost.
    """

    status: LpStatus
    x: np.ndarray | None
    objective: float | None
    iterations: int
    backend: str
    duals: np.ndarray | None = None

    @property
    def is_optimal(self) -> bool:
        return self.status is LpStatus.OPTIMAL

    def require_optimal(self) -> "LpResult":
        """Return self or raise the matching error for a failed solve."""
        if self.status is LpStatus.OPTIMAL:
            return self
        if self.status is LpStatus.INFEASIBLE:
            raise InfeasibleError(f"LP infeasible (backend={self.backend})")
        if self.status is LpStatus.UNBOUNDED:
            raise UnboundedError(f"LP unbounded (backend={self.backend})")
        raise RuntimeError(f"LP solve failed (backend={self.backend})")
