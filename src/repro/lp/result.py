"""Solver-independent result and status types."""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from enum import Enum

import numpy as np


class LpStatus(Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


class InfeasibleError(RuntimeError):
    """Raised when a model required to be feasible is not.

    For LUBT this is meaningful, not exceptional bookkeeping: the paper
    (Section 9) notes that an infeasible EBF certifies that *no* LUBT
    exists for the given topology and bounds.

    ``diagnosis`` is populated (with a
    :class:`repro.resilience.InfeasibilityDiagnosis`) when the raise site
    ran the elastic re-solve, e.g. ``solve_lubt(on_infeasible="diagnose")``.
    """

    diagnosis: object | None = None


class UnboundedError(RuntimeError):
    """Raised when the LP is unbounded (cannot happen for well-formed EBF,
    whose objective is a non-negative sum)."""


class BackendCapabilityError(ValueError):
    """Raised when a backend cannot represent the given model at all
    (e.g. the dense simplex needs finite lower bounds to shift to
    standard form).

    Subclasses :class:`ValueError` so pre-existing callers that caught
    the untyped error keep working; the ``"auto"`` dispatch and the
    resilient fallback chain catch this type to route the model to a
    capable backend instead of crashing.
    """


@dataclass(frozen=True, slots=True)
class LpResult:
    """Outcome of one LP solve.

    ``duals`` (when the backend provides them) are shadow prices per
    model row, oriented as d(objective)/d(rhs) for the row as written —
    e.g. a positive dual on a ``>=`` row means tightening it (raising
    the rhs) raises the minimum cost.

    ``message`` carries the backend's own termination text (HiGHS status
    message, simplex limit note) so non-optimal outcomes stay explicable
    downstream.

    ``provenance`` is optional backend-specific counters describing *how*
    the answer was computed — the tree backend records
    ``dual_iterations`` / ``dp_passes`` / ``restricted_master_rounds``
    here, which :class:`~repro.ebf.SolveStats` aggregates and
    :meth:`~repro.resilience.SolveReport.summary` renders.
    """

    status: LpStatus
    x: np.ndarray | None
    objective: float | None
    iterations: int
    backend: str
    duals: np.ndarray | None = None
    message: str | None = None
    provenance: Mapping[str, int] | None = None

    @property
    def is_optimal(self) -> bool:
        return self.status is LpStatus.OPTIMAL

    def require_optimal(self) -> "LpResult":
        """Return self or raise the matching error for a failed solve."""
        if self.status is LpStatus.OPTIMAL:
            return self
        detail = f": {self.message}" if self.message else ""
        if self.status is LpStatus.INFEASIBLE:
            raise InfeasibleError(
                f"LP infeasible (backend={self.backend}){detail}"
            )
        if self.status is LpStatus.UNBOUNDED:
            raise UnboundedError(
                f"LP unbounded (backend={self.backend}){detail}"
            )
        raise RuntimeError(f"LP solve failed (backend={self.backend}){detail}")
