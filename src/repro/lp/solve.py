"""Backend dispatch for LP solving."""

from __future__ import annotations

import numpy as np

from repro.lp.model import LinearProgram
from repro.lp.result import BackendCapabilityError, LpResult

#: Above this many rows the dense tableau simplex becomes wasteful and we
#: route "auto" to scipy/HiGHS instead.
_SIMPLEX_ROW_LIMIT = 400


def preferred_backend(lp: LinearProgram, projected_rows: int | None = None) -> str:
    """The backend ``"auto"`` would pick for ``lp``.

    Size decides first; models the tableau simplex cannot represent
    (non-finite lower bounds) go to scipy regardless.  ``projected_rows``
    lets a caller that *knows* the model is about to grow (lazy row
    generation) resolve the choice against the anticipated size instead
    of the current one, so the whole cutting-plane loop sticks to one
    backend rather than paying a dense-tableau solve on the small first
    round and switching afterwards.
    """
    rows = lp.num_constraints
    if projected_rows is not None:
        rows = max(rows, projected_rows)
    if rows > _SIMPLEX_ROW_LIMIT:
        return "scipy"
    if not np.all(np.isfinite(lp.lower_bounds)):
        return "scipy"
    return "simplex"


def solve_lp(lp: LinearProgram, backend: str = "auto") -> LpResult:
    """Solve ``lp`` with the requested backend.

    ``backend`` is one of ``"auto"`` (size-based choice), ``"simplex"``
    (the from-scratch solver), ``"scipy"`` (HiGHS), or ``"tree"`` (the
    structure-aware node-potential solver for models stamped by
    ``repro.ebf.build_ebf_lp`` — see :mod:`repro.lp.treesolve`).  The
    ``"auto"`` path never crashes on a capability gap: models the simplex
    cannot represent are routed (or re-routed, should the pre-check ever
    miss one) to scipy.  An explicit ``"simplex"`` or ``"tree"`` request
    on a model that backend cannot represent raises
    :class:`BackendCapabilityError`.
    """
    from repro.lp.scipy_backend import solve_scipy
    from repro.lp.simplex import solve_simplex

    if backend == "auto":
        if preferred_backend(lp) == "scipy":
            return solve_scipy(lp)
        try:
            return solve_simplex(lp)
        except BackendCapabilityError:
            return solve_scipy(lp)
    if backend == "simplex":
        return solve_simplex(lp)
    if backend == "scipy":
        return solve_scipy(lp)
    if backend == "tree":
        from repro.lp.treesolve import solve_tree

        return solve_tree(lp)
    raise ValueError(f"unknown LP backend {backend!r}")
