"""Backend dispatch for LP solving."""

from __future__ import annotations

from repro.lp.model import LinearProgram
from repro.lp.result import LpResult

#: Above this many rows the dense tableau simplex becomes wasteful and we
#: route "auto" to scipy/HiGHS instead.
_SIMPLEX_ROW_LIMIT = 400


def solve_lp(lp: LinearProgram, backend: str = "auto") -> LpResult:
    """Solve ``lp`` with the requested backend.

    ``backend`` is one of ``"auto"`` (size-based choice), ``"simplex"``
    (the from-scratch solver), or ``"scipy"`` (HiGHS).
    """
    from repro.lp.scipy_backend import solve_scipy
    from repro.lp.simplex import solve_simplex

    if backend == "auto":
        backend = (
            "simplex" if lp.num_constraints <= _SIMPLEX_ROW_LIMIT else "scipy"
        )
    if backend == "simplex":
        return solve_simplex(lp)
    if backend == "scipy":
        return solve_scipy(lp)
    raise ValueError(f"unknown LP backend {backend!r}")
