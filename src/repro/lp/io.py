"""CPLEX-LP-format export.

Writes a :class:`repro.lp.LinearProgram` as an industry-standard ``.lp``
file so an EBF instance can be handed to any external solver (CPLEX,
Gurobi, glpsol, HiGHS CLI, or the paper's LOQO) unchanged.  The format
written is the common subset every reader accepts::

    Minimize
     obj: 1 e1 + 1 e2 + ...
    Subject To
     steiner1,2: 1 e1 + 1 e2 >= 12
     delay1.lo: ...
    Bounds
     e3 = 0
     0 <= e1 <= 40
    End
"""

from __future__ import annotations

import math
from pathlib import Path

from repro.lp.model import LinearProgram, Sense

_SENSE_TEXT = {Sense.LE: "<=", Sense.GE: ">=", Sense.EQ: "="}


def lp_to_string(lp: LinearProgram, name: str = "ebf") -> str:
    """Render the model in CPLEX LP format."""
    lines: list[str] = [f"\\ {name}: exported by repro.lp"]
    lines.append("Minimize" if lp.minimize else "Maximize")
    lines.append(" obj: " + _linear_expr(
        [(j, c) for j, c in enumerate(lp.costs) if c != 0.0], lp
    ))

    lines.append("Subject To")
    for i in range(lp.num_constraints):
        coeffs, sense, rhs = lp.row(i)
        row_name = _sanitize(lp.row_name(i) or f"c{i}")
        lines.append(
            f" {row_name}: {_linear_expr(list(coeffs), lp)} "
            f"{_SENSE_TEXT[sense]} {_fmt(rhs)}"
        )

    lines.append("Bounds")
    lb, ub = lp.lower_bounds, lp.upper_bounds
    for j in range(lp.num_variables):
        var = _sanitize(lp.variable_name(j))
        lo, hi = lb[j], ub[j]
        if lo == hi:
            lines.append(f" {var} = {_fmt(lo)}")
        elif math.isinf(hi):
            if lo != 0.0:
                lines.append(f" {var} >= {_fmt(lo)}")
            # default bound 0 <= x: nothing to write
        else:
            lines.append(f" {_fmt(lo)} <= {var} <= {_fmt(hi)}")
    lines.append("End")
    return "\n".join(lines) + "\n"


def write_lp_file(path: str | Path, lp: LinearProgram, name: str = "ebf") -> None:
    Path(path).write_text(lp_to_string(lp, name))


def _linear_expr(coeffs: list[tuple[int, float]], lp: LinearProgram) -> str:
    if not coeffs:
        return "0 " + _sanitize(lp.variable_name(0)) if lp.num_variables else "0"
    parts: list[str] = []
    for k, (j, a) in enumerate(coeffs):
        var = _sanitize(lp.variable_name(j))
        sign = "-" if a < 0 else ("+" if k > 0 else "")
        mag = abs(a)
        parts.append(f"{sign} {_fmt(mag)} {var}" if k > 0 or sign else f"{_fmt(mag)} {var}")
    return " ".join(parts).strip()


def _fmt(v: float) -> str:
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def _sanitize(name: str) -> str:
    """LP-format identifiers: no spaces/commas; keep them readable."""
    out = "".join(ch if ch.isalnum() or ch in "_.[]" else "_" for ch in name)
    if not out or out[0].isdigit() or out[0] == ".":
        out = "n" + out
    return out
