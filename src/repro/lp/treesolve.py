"""Tree-structured LUBT backend: node potentials + telescoped min-chains.

The EBF LP is generic-looking (delay range rows, C(m,2) Steiner rows) but
every row is a path sum over *one fixed topology*.  This backend exploits
that structure instead of pivoting a generic basis:

**Node potentials.**  Reparametrize from edge lengths ``e_v`` to node
delays ``d_v`` (``d_0 = 0``, ``e_v = d_v - d_parent(v)``).  Edge
non-negativity becomes one 2-nnz monotonicity row per edge; each sink's
delay *range row* becomes a plain variable bound ``lo_k <= d_k <= hi_k``
(rows disappear into the bound vector).

**Min-chain collapse.**  The Steiner family — for every sink pair
``(i, j)`` with LCA ``k``: ``(d_i - d_k) + (d_j - d_k) >= dist(i, j)``
where ``dist`` is the Chebyshev distance of the rotated coordinates
``(u, v) = (x + y, x - y)`` — collapses exactly to ``O(n)`` rows.  Per
sink-bearing node ``k`` introduce four auxiliary variables bounded above
by subtree minima,

    A_k <= min over sinks i under k of (d_i - su_i)
    B_k <= min (d_i + su_i),  C_k <= min (d_i - sv_i),  D_k <= min (d_i + sv_i)

expressed as telescoped 2-nnz chain rows (``A_k <= A_c`` per sink-bearing
child ``c``; ``A_k <= d_k - su_k`` when ``k`` itself is a sink), plus two
3-nnz geometry rows at every node that is the LCA of some pair:

    A_k + B_k >= 2 d_k        C_k + D_k >= 2 d_k

Both directions of the equivalence are exact: the maximal feasible value
of ``A_k`` *is* the subtree minimum, so the geometry rows hold iff every
pair under ``k`` satisfies its Steiner row (``max(|du|, |dv|)`` splits
into the two one-sided combinations); conversely pair rows at higher
ancestors are implied by monotonicity (``d_ancestor <= d_k``).  The
collapsed model has ``O(n)`` rows and ``O(n)`` nonzeros regardless of the
pair count, and one HiGHS solve on it replaces the whole lazy cutting
plane loop — at 1024 sinks that is ~28x faster than the generic path
(see docs/PERFORMANCE.md).

The backend consumes a :class:`~repro.lp.LinearProgram` like any other,
but needs the tree facts the flat rows no longer expose.
:func:`repro.ebf.build_ebf_lp` stamps them on the model as a
:class:`TreeLpMeta`; any LP without the stamp — or with rows appended
outside the tree-aware builders (watermarked by ``covered_rows``) — is
declined with :class:`BackendCapabilityError`, which the ``"auto"``
dispatch, the resilient cascade, and the race path all treat as a clean
fall-through to a generic backend.  Elastic infeasibility-diagnosis LPs
carry no stamp, so infeasible instances route through
``diagnose_infeasibility`` exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.lp.model import _RANGE_COLLAPSE_RTOL, LinearProgram
from repro.lp.result import BackendCapabilityError, LpResult, LpStatus

#: Mirror of ``add_delay_rows``: a sink window inverted by more than this
#: produces an infeasibility certificate (the generic builder emits a
#: ``delay{i}.impossible`` row; we return INFEASIBLE directly).
_IMPOSSIBLE_TOL = 1e-12

_STATUS_MAP = {
    0: LpStatus.OPTIMAL,
    1: LpStatus.ERROR,  # iteration limit
    2: LpStatus.INFEASIBLE,
    3: LpStatus.UNBOUNDED,
    4: LpStatus.ERROR,
}


@dataclass
class TreeLpMeta:
    """Tree facts of an EBF model, stamped by ``build_ebf_lp``.

    All fields are plain arrays indexed by node id (entry 0 is the root;
    sinks are ids ``1..num_sinks``), so the solver needs no topology
    object.  ``covered_rows`` is a watermark: the number of LP rows
    produced by the tree-aware builders (``add_delay_rows`` /
    ``add_steiner_rows`` keep it current).  If the model has grown past
    the watermark, someone appended rows the tree formulation does not
    imply, and :func:`solve_tree` declines the model.
    """

    #: ``parents[v]`` is the parent node id of ``v``; ``parents[0] == 0``.
    parents: np.ndarray
    num_sinks: int
    #: Rotated sink coordinates ``u = x + y``, ``v = x - y`` by node id.
    su: np.ndarray
    sv: np.ndarray
    #: Effective delay window per node id (meaningful at sink ids), after
    #: the fixed-source ``max(lo, manhattan)`` strengthening.
    lower: np.ndarray
    upper: np.ndarray
    zero_edges: tuple[int, ...] = ()
    #: Per-edge objective weights by node id (entry 0 ignored), or None.
    weights: np.ndarray | None = None
    covered_rows: int = 0


def _provenance(
    dual_iterations: int, dp_passes: int, rounds: int
) -> Mapping[str, int]:
    """Tree-backend provenance counters.

    ``dual_iterations``
        simplex iterations HiGHS (dual simplex) spent on the collapsed
        node-potential master.
    ``dp_passes``
        O(n) walks over the topology: BFS ordering, bottom-up sink
        accounting, row assembly, and edge-length recovery.
    ``restricted_master_rounds``
        master LP solves — 1 per call here; the lazy loop in
        ``solve_lubt`` sums across rounds.
    """
    return {
        "dual_iterations": dual_iterations,
        "dp_passes": dp_passes,
        "restricted_master_rounds": rounds,
    }


def _infeasible(message: str, dp_passes: int) -> LpResult:
    return LpResult(
        LpStatus.INFEASIBLE,
        None,
        None,
        0,
        "tree",
        message=message,
        provenance=_provenance(0, dp_passes, 0),
    )


def _bfs_order(parents: np.ndarray) -> np.ndarray:
    """Root-first traversal order from a parents array (children of a
    node appear in increasing id order)."""
    n = parents.shape[0]
    counts = np.bincount(parents[1:], minlength=n)
    cptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=cptr[1:])
    kids = np.argsort(parents[1:], kind="stable").astype(np.int64) + 1
    order = np.empty(n, dtype=np.int64)
    order[0] = 0
    head, tail = 0, 1
    while head < tail:
        v = int(order[head])
        head += 1
        a, b = int(cptr[v]), int(cptr[v + 1])
        if b > a:
            order[tail : tail + b - a] = kids[a:b]
            tail += b - a
    if tail != n:
        raise BackendCapabilityError(
            "tree metadata parents array is not a rooted tree"
        )
    return order


def solve_tree(lp: LinearProgram) -> LpResult:
    """Solve a tree-stamped EBF model via the collapsed node-potential LP.

    Raises :class:`BackendCapabilityError` for models without (current)
    tree metadata; returns an :class:`LpResult` in the *original* edge
    variable space, with :attr:`LpResult.provenance` carrying the tree
    counters (``dual_iterations`` / ``dp_passes`` /
    ``restricted_master_rounds``).  Row duals are not produced (the
    collapsed model's rows do not map 1:1 onto the flat model's).
    """
    meta = lp.tree_meta
    if meta is None:
        raise BackendCapabilityError(
            "tree backend needs tree metadata (models built by "
            "repro.ebf.build_ebf_lp); this model carries none"
        )
    if meta.covered_rows != lp.num_constraints:
        raise BackendCapabilityError(
            f"{lp.num_constraints - meta.covered_rows} row(s) appended "
            "outside the tree-aware builders; the tree backend cannot "
            "prove they are implied — use a generic backend"
        )
    parents = np.asarray(meta.parents, dtype=np.int64)
    n = int(parents.shape[0])
    m = int(meta.num_sinks)
    if n < 2 or lp.num_variables != n - 1:
        raise BackendCapabilityError(
            "model variable count does not match the tree's edge count"
        )

    dp_passes = 0

    # ---- effective sink delay windows (mirror of add_delay_rows) ------
    lo = np.asarray(meta.lower, dtype=np.float64)[1 : m + 1].copy()
    hi = np.asarray(meta.upper, dtype=np.float64)[1 : m + 1].copy()
    impossible = lo > hi + _IMPOSSIBLE_TOL
    if bool(np.any(impossible)):
        k = int(np.argmax(impossible)) + 1
        return _infeasible(
            f"delay window for sink {k} is empty "
            f"([{lo[k - 1]:g}, {hi[k - 1]:g}])",
            dp_passes,
        )
    noisy = lo > hi
    if bool(np.any(noisy)):
        # Same float-noise collapse add_range_constraint applies (BD006).
        mag = np.maximum(1.0, np.maximum(np.abs(lo), np.abs(hi)))
        mid = 0.5 * (lo + hi)
        collapse = noisy & (lo - hi <= _RANGE_COLLAPSE_RTOL * mag)
        lo = np.where(collapse, mid, lo)
        hi = np.where(collapse, mid, hi)

    # ---- d-space variable bounds --------------------------------------
    # Sinks are node ids 1..m, i.e. the first m columns of d.  Path sums
    # of non-negative edges are non-negative, so lo floors at 0 exactly
    # as the flat model implies.
    lb = np.zeros(n - 1)
    ub = np.full(n - 1, np.inf)
    lb[:m] = np.maximum(lo, 0.0)
    ub[:m] = hi

    zero_edges = tuple(int(v) for v in meta.zero_edges)
    for v in zero_edges:
        if int(parents[v]) == 0:
            # e_v pinned to zero on a root edge: d_v = d_0 = 0.
            ub[v - 1] = min(ub[v - 1], 0.0)
    if bool(np.any(lb > ub)):
        j = int(np.argmax(lb > ub)) + 1
        return _infeasible(
            f"node {j}: pinned/strengthened bounds force an empty delay "
            f"window [{lb[j - 1]:g}, {ub[j - 1]:g}]",
            dp_passes,
        )

    # ---- tree walks: order, sink accounting ---------------------------
    order = _bfs_order(parents)
    dp_passes += 1
    nsink = np.zeros(n, dtype=np.int64)
    nsink[1 : m + 1] = 1
    for idx in range(n - 1, 0, -1):
        v = int(order[idx])
        nsink[parents[v]] += nsink[v]
    dp_passes += 1
    has = nsink > 0

    # ---- auxiliary min-chain variables --------------------------------
    auxpos = np.full(n, -1, dtype=np.int64)
    num_aux = 0
    if m >= 2:
        bearing = np.flatnonzero(has)
        auxpos[bearing] = (n - 1) + 4 * np.arange(bearing.size, dtype=np.int64)
        num_aux = 4 * int(bearing.size)
    nvar = n - 1 + num_aux

    # ---- objective: c[d_v] = w_v - sum of children weights ------------
    if meta.weights is None:
        w_edge = np.ones(n)
    else:
        w_edge = np.asarray(meta.weights, dtype=np.float64)
    child_wsum = np.zeros(n)
    np.add.at(child_wsum, parents[1:], w_edge[1:])
    c = np.zeros(nvar)
    c[: n - 1] = w_edge[1:] - child_wsum[1:]

    # ---- rows (all <=), assembled as one COO batch --------------------
    blk_i: list[np.ndarray] = []
    blk_j: list[np.ndarray] = []
    blk_v: list[np.ndarray] = []
    blk_b: list[np.ndarray] = []
    nrows = 0

    def _pairs_block(
        left: np.ndarray, right: np.ndarray, rhs: np.ndarray
    ) -> None:
        """Rows ``x[left] - x[right] <= rhs``, one per entry."""
        nonlocal nrows
        k = int(rhs.size)
        if k == 0:
            return
        cols = np.empty(2 * k, dtype=np.int64)
        cols[0::2] = left
        cols[1::2] = right
        blk_i.append(np.repeat(np.arange(nrows, nrows + k, dtype=np.int64), 2))
        blk_j.append(cols)
        blk_v.append(np.tile(np.array([1.0, -1.0]), k))
        blk_b.append(rhs)
        nrows += k

    # Monotonicity d_parent <= d_v (root-adjacent edges are covered by
    # the lb >= 0 variable bounds).
    mono = np.flatnonzero(parents[1:] != 0).astype(np.int64) + 1
    _pairs_block(parents[mono] - 1, mono - 1, np.zeros(mono.size))

    # Pinned tie edges: d_v == d_parent (the reverse inequality).
    zero_interior = np.array(
        [v for v in zero_edges if int(parents[v]) != 0], dtype=np.int64
    )
    _pairs_block(
        zero_interior - 1,
        parents[zero_interior] - 1,
        np.zeros(zero_interior.size),
    )

    if m >= 2:
        # Chain rows: aux[k] <= aux[c] for every sink-bearing child c
        # (a bearing node's parent is bearing by construction), 4 copies.
        bc = np.flatnonzero(has)
        bc = bc[bc != 0]
        ap4 = (auxpos[parents[bc]][:, None] + np.arange(4)).ravel()
        av4 = (auxpos[bc][:, None] + np.arange(4)).ravel()
        _pairs_block(ap4, av4, np.zeros(4 * bc.size))

        # Self rows at sinks: A_k <= d_k - su_k, B_k <= d_k + su_k,
        # C_k <= d_k - sv_k, D_k <= d_k + sv_k.
        s = np.arange(1, m + 1, dtype=np.int64)
        su = np.asarray(meta.su, dtype=np.float64)[1 : m + 1]
        sv = np.asarray(meta.sv, dtype=np.float64)[1 : m + 1]
        a4 = (auxpos[s][:, None] + np.arange(4)).ravel()
        d4 = np.repeat(s - 1, 4)
        rhs4 = np.stack([-su, su, -sv, sv], axis=1).ravel()
        _pairs_block(a4, d4, rhs4)

        # Geometry rows at every LCA node: 2 d_k - A_k - B_k <= 0 and
        # 2 d_k - C_k - D_k <= 0 (the d term vanishes at the root).
        is_sink = np.zeros(n, dtype=bool)
        is_sink[1 : m + 1] = True
        cnt = np.bincount(parents[bc], minlength=n)
        geo = (cnt >= 2) | (is_sink & (cnt >= 1))
        g = np.flatnonzero(geo & (np.arange(n) != 0)).astype(np.int64)
        if g.size:
            k = int(g.size)
            rows = np.repeat(np.arange(nrows, nrows + 2 * k, dtype=np.int64), 3)
            cols = np.empty(6 * k, dtype=np.int64)
            vals = np.tile(np.array([2.0, -1.0, -1.0]), 2 * k)
            cols[0::6] = g - 1
            cols[1::6] = auxpos[g]
            cols[2::6] = auxpos[g] + 1
            cols[3::6] = g - 1
            cols[4::6] = auxpos[g] + 2
            cols[5::6] = auxpos[g] + 3
            blk_i.append(rows)
            blk_j.append(cols)
            blk_v.append(vals)
            blk_b.append(np.zeros(2 * k))
            nrows += 2 * k
        if bool(geo[0]):
            a0 = int(auxpos[0])
            blk_i.append(
                np.repeat(np.arange(nrows, nrows + 2, dtype=np.int64), 2)
            )
            blk_j.append(np.array([a0, a0 + 1, a0 + 2, a0 + 3], dtype=np.int64))
            blk_v.append(np.full(4, -1.0))
            blk_b.append(np.zeros(2))
            nrows += 2
    dp_passes += 1

    a_ub = None
    b_ub = None
    if nrows:
        a_ub = sparse.csr_matrix(
            (
                np.concatenate(blk_v),
                (np.concatenate(blk_i), np.concatenate(blk_j)),
            ),
            shape=(nrows, nvar),
        )
        b_ub = np.concatenate(blk_b)

    var_bounds = np.column_stack(
        [
            np.concatenate([lb, np.full(num_aux, -np.inf)]),
            np.concatenate([ub, np.full(num_aux, np.inf)]),
        ]
    )
    sign = 1.0 if lp.minimize else -1.0
    res = linprog(
        sign * c,
        A_ub=a_ub,
        b_ub=b_ub,
        bounds=var_bounds,
        method="highs",
    )
    iterations = int(getattr(res, "nit", 0) or 0)
    message = str(getattr(res, "message", "") or "").strip() or None
    status = _STATUS_MAP.get(int(res.status), LpStatus.ERROR)
    if status is not LpStatus.OPTIMAL or res.x is None:
        return LpResult(
            status,
            None,
            None,
            iterations,
            "tree",
            message=message,
            provenance=_provenance(iterations, dp_passes, 1),
        )

    # ---- recover edge lengths in the flat model's variable space ------
    d = np.concatenate([[0.0], np.asarray(res.x, dtype=np.float64)[: n - 1]])
    e = d - d[parents]
    e[0] = 0.0
    np.maximum(e, 0.0, out=e)
    x = np.minimum(np.maximum(e[1:], lp.lower_bounds), lp.upper_bounds)
    dp_passes += 1
    return LpResult(
        LpStatus.OPTIMAL,
        x,
        lp.objective_value(x),
        iterations,
        "tree",
        duals=None,
        message=message,
        provenance=_provenance(iterations, dp_passes, 1),
    )
