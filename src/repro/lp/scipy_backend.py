"""scipy (HiGHS) backend for paper-scale LPs."""

from __future__ import annotations

from typing import Any

import numpy as np
from scipy.optimize import linprog

from repro.lp.model import LinearProgram, Sense
from repro.lp.result import LpResult, LpStatus

_STATUS_MAP = {
    0: LpStatus.OPTIMAL,
    1: LpStatus.ERROR,  # iteration limit
    2: LpStatus.INFEASIBLE,
    3: LpStatus.UNBOUNDED,
    4: LpStatus.ERROR,
}


def solve_scipy(lp: LinearProgram) -> LpResult:
    """Solve with ``scipy.optimize.linprog(method='highs')``."""
    c, a_ub, b_ub, a_eq, b_eq, bounds = lp.to_arrays()
    sign = 1.0 if lp.minimize else -1.0
    res = linprog(
        sign * c,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    status = _STATUS_MAP.get(res.status, LpStatus.ERROR)
    iterations = int(getattr(res, "nit", 0) or 0)
    message = str(getattr(res, "message", "") or "").strip() or None
    if status is not LpStatus.OPTIMAL or res.x is None:
        return LpResult(
            status, None, None, iterations, "scipy-highs", message=message
        )
    duals = _model_row_duals(lp, res, sign)
    return LpResult(
        LpStatus.OPTIMAL,
        res.x,
        lp.objective_value(res.x),
        iterations,
        "scipy-highs",
        duals,
        message=message,
    )


def _model_row_duals(lp: LinearProgram, res: Any, sign: float) -> np.ndarray | None:
    """Map HiGHS marginals back to model rows in their original
    orientation (d objective / d rhs of the row as written)."""
    ineq = getattr(res, "ineqlin", None)
    eq = getattr(res, "eqlin", None)
    try:
        ineq_marg = None if ineq is None else np.asarray(ineq.marginals)
        eq_marg = None if eq is None else np.asarray(eq.marginals)
    except AttributeError:
        return None
    duals = np.zeros(lp.num_constraints)
    ub_pos = 0
    eq_pos = 0
    for i in range(lp.num_constraints):
        sense = lp.row_sense(i)
        if sense is Sense.EQ:
            if eq_marg is None:
                return None
            duals[i] = sign * eq_marg[eq_pos]
            eq_pos += 1
        else:
            if ineq_marg is None:
                return None
            m = sign * ineq_marg[ub_pos]
            # GE rows were negated into <= form; d obj/d b flips sign.
            duals[i] = -m if sense is Sense.GE else m
            ub_pos += 1
    return duals
