"""Runtime concurrency sanitizer: lock-order recording + loop-stall watch.

The static CC rules (:mod:`repro.analysis.rules_cc`) reason lexically and
per-file; this module is their runtime complement, switched on by
``lubt chaos --sanitize`` so the existing chaos soak doubles as a
race/deadlock sanitizer run:

:class:`LockSanitizer`
    An opt-in instrumented-lock harness.  Inside its
    :meth:`~LockSanitizer.instrument` window, ``threading.Lock`` /
    ``threading.RLock`` construct :class:`SanitizedLock` wrappers labeled
    by creation site.  Every acquisition records *intended* ordering
    edges (held-site → wanted-site) into a global directed graph; an
    acquisition that would close a cycle is a potential deadlock and is
    recorded as a :class:`LockOrderViolation` (or raised as
    :class:`LockOrderError` with ``fail_fast=True``) **even when the
    interleaving happens not to deadlock in this run** — which is what
    makes a passing chaos soak meaningful evidence.

:class:`StallMonitor`
    An event-loop stall detector: a task that sleeps a short interval
    and measures scheduling drift.  Drift beyond the threshold means
    *something blocked the loop* — exactly the defect class CC001 exists
    to prevent — and is recorded with its magnitude.  The solve server
    starts one when constructed with ``stall_threshold=...`` and folds
    its counters into ``stats`` replies.

Both tools record by default rather than raise: the chaos harness turns
their findings into report invariants, keeping detection (here) separate
from gating (``ChaosReport.ok``).
"""

from __future__ import annotations

import asyncio
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator


def _creation_site(skip_files: tuple[str, ...]) -> str:
    """``file.py:lineno`` of the nearest caller frame outside this
    module (and outside ``threading``) — the lock's *identity* for
    ordering purposes, so every ``LruCache`` instance shares one node."""
    import sys

    frame = sys._getframe(1)
    while frame is not None:
        fname = frame.f_code.co_filename
        if not fname.endswith(skip_files):
            return f"{Path(fname).name}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


@dataclass(frozen=True)
class LockOrderViolation:
    """One potential deadlock: acquiring ``wanted`` while holding
    ``held`` closes a cycle through the recorded ordering graph."""

    held: str
    wanted: str
    cycle: tuple[str, ...]
    thread: str

    def render(self) -> str:
        path = " -> ".join(self.cycle)
        return (
            f"lock-order cycle on thread {self.thread!r}: acquiring "
            f"{self.wanted} while holding {self.held} closes {path}"
        )


class LockOrderError(RuntimeError):
    """Raised by a ``fail_fast`` sanitizer at the acquisition that would
    close a lock-ordering cycle."""

    def __init__(self, violation: LockOrderViolation) -> None:
        super().__init__(violation.render())
        self.violation = violation


class SanitizedLock:
    """A ``threading.Lock``/``RLock`` wrapper that reports acquisition
    order to a :class:`LockSanitizer`.  Context-manager and
    acquire/release compatible, including the private hooks
    ``threading.Condition`` expects of an RLock."""

    def __init__(
        self, inner, sanitizer: "LockSanitizer", label: str
    ) -> None:
        self._inner = inner
        self._sanitizer = sanitizer
        self._label = label

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._sanitizer._note_intent(self._label)
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._sanitizer._note_acquired(self._label)
        return got

    def release(self) -> None:
        self._inner.release()
        self._sanitizer._note_released(self._label)

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def _at_fork_reinit(self) -> None:
        # CPython reinitializes every registered lock in a forked child;
        # the wrapper must forward or pool workers die on first fork.
        self._inner._at_fork_reinit()

    # threading.Condition duck-typing for RLock-backed conditions.
    def _acquire_restore(self, state) -> None:
        if hasattr(self._inner, "_acquire_restore"):
            self._inner._acquire_restore(state)
        else:
            self._inner.acquire()

    def _release_save(self):
        if hasattr(self._inner, "_release_save"):
            return self._inner._release_save()
        self._inner.release()
        return None

    def _is_owned(self) -> bool:
        if hasattr(self._inner, "_is_owned"):
            return self._inner._is_owned()
        # Heuristic used by CPython for plain locks in Condition.
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def __repr__(self) -> str:
        return f"<SanitizedLock {self._label} {self._inner!r}>"


class LockSanitizer:
    """Records lock-acquisition order across all threads and detects
    ordering cycles (potential deadlocks).  See the module docstring."""

    def __init__(self, fail_fast: bool = False) -> None:
        self.fail_fast = fail_fast
        self.violations: list[LockOrderViolation] = []
        #: site -> sites acquired while it was held (ordering edges).
        self._edges: dict[str, set[str]] = {}
        self._tls = threading.local()
        # Captured before any instrument() window, so the sanitizer's own
        # guard is always a real (un-instrumented) RLock.
        self._guard = threading.RLock()
        self.locks_created = 0
        self.acquisitions = 0

    # -- bookkeeping (called from SanitizedLock) -----------------------
    def _held(self) -> list[str]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _note_intent(self, label: str) -> None:
        held = self._held()
        if not held or held[-1] == label:
            return
        with self._guard:
            self.acquisitions += 1
            for h in held:
                if h == label:
                    continue  # re-entrant same-site hold
                cycle = self._path(label, h)
                if cycle is not None:
                    violation = LockOrderViolation(
                        held=h,
                        wanted=label,
                        cycle=(*cycle, label),
                        thread=threading.current_thread().name,
                    )
                    self.violations.append(violation)
                    if self.fail_fast:
                        raise LockOrderError(violation)
                else:
                    self._edges.setdefault(h, set()).add(label)

    def _note_acquired(self, label: str) -> None:
        self._held().append(label)

    def _note_released(self, label: str) -> None:
        held = self._held()
        for i in range(len(held) - 1, -1, -1):
            if held[i] == label:
                del held[i]
                break

    def _path(self, src: str, dst: str) -> tuple[str, ...] | None:
        """Shortest recorded ordering path ``src -> ... -> dst`` (BFS);
        its existence means adding ``dst -> src`` closes a cycle.
        Caller holds ``_guard``."""
        if src == dst:
            return (src,)
        frontier = [(src,)]
        seen = {src}
        while frontier:
            nxt: list[tuple[str, ...]] = []
            for path in frontier:
                for succ in sorted(self._edges.get(path[-1], ())):
                    if succ == dst:
                        return (*path, succ)
                    if succ not in seen:
                        seen.add(succ)
                        nxt.append((*path, succ))
            frontier = nxt
        return None

    # -- instrumentation window ----------------------------------------
    @contextmanager
    def instrument(self) -> Iterator["LockSanitizer"]:
        """Patch ``threading.Lock``/``RLock`` so locks *created* inside
        this window are sanitized for their whole lifetime.  The window
        should wrap construction/startup of the system under test; the
        patch is global, so nest-free, short windows are best."""
        real_lock, real_rlock = threading.Lock, threading.RLock
        skip = (__file__, threading.__file__)

        def make_lock() -> SanitizedLock:
            self.locks_created += 1
            return SanitizedLock(real_lock(), self, _creation_site(skip))

        def make_rlock() -> SanitizedLock:
            self.locks_created += 1
            return SanitizedLock(real_rlock(), self, _creation_site(skip))

        threading.Lock, threading.RLock = make_lock, make_rlock
        try:
            yield self
        finally:
            threading.Lock, threading.RLock = real_lock, real_rlock

    # -- reporting ------------------------------------------------------
    def stats(self) -> dict:
        with self._guard:
            return {
                "locks_created": self.locks_created,
                "acquisitions": self.acquisitions,
                "violations": [v.render() for v in self.violations],
            }

    def assert_clean(self) -> None:
        with self._guard:
            if self.violations:
                raise LockOrderError(self.violations[0])


@dataclass
class StallMonitor:
    """Event-loop stall detector.

    ``start()`` schedules a task that repeatedly sleeps ``interval``
    seconds and compares wall drift against ``threshold``; any sleep that
    resumes ``threshold`` or more seconds late means the loop was blocked
    that long (a CC001-class defect at runtime).  Stalls are recorded,
    not raised — gate on :attr:`stalls` / :attr:`max_drift`.
    """

    threshold: float = 0.25
    interval: float = 0.05
    clock: Callable[[], float] = time.monotonic
    stalls: list[float] = field(default_factory=list)
    max_drift: float = 0.0
    _task: "asyncio.Task | None" = None

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="lubt-stall-monitor"
            )

    async def _run(self) -> None:
        while True:
            before = self.clock()
            await asyncio.sleep(self.interval)
            drift = (self.clock() - before) - self.interval
            self.max_drift = max(self.max_drift, drift)
            if drift >= self.threshold:
                self.stalls.append(drift)

    async def stop(self) -> None:
        task, self._task = self._task, None
        if task is None:
            return
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:  # noqa: CC006 — own task's teardown
            pass

    def stats(self) -> dict:
        return {
            "threshold": self.threshold,
            "stalls": len(self.stalls),
            "max_drift": self.max_drift,
        }
