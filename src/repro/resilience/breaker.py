"""Per-backend circuit breakers for the resilient solve pipeline.

A backend that keeps failing (crashing, timing out, returning garbage)
should stop being *tried*: every attempt against it costs a full
``lp_timeout`` of wall clock, and under load that latency multiplies
across every queued request.  A :class:`CircuitBreaker` watches one
backend's consecutive failures and trips **open** after
``failure_threshold`` of them; while open, :func:`~repro.resilience.
solve_lp_resilient` skips the backend outright (recording a
``skipped`` :class:`~repro.resilience.SolveAttempt` so the report says
why).  After ``recovery_time`` seconds the breaker lets exactly one
**half-open probe** through: a success closes the circuit, a failure
re-opens it for another recovery window.

Design notes:

* *Definitive* answers (optimal / infeasible / unbounded) count as
  successes — they prove the backend works; the model's feasibility is
  not the backend's fault.  Failures are exceptions, timeouts, ``ERROR``
  statuses, and invalid "optimal" solutions.
* The clock is injectable (``clock=``) so recovery windows are testable
  without sleeping.
* A :class:`BreakerRegistry` holds one breaker per backend name behind
  one lock — the same registry object can be shared by every solve in a
  server process, which is what turns "this backend failed for client A"
  into "client B never pays its timeout".
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict

#: Breaker states (string constants, stable for stats payloads).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Consecutive failures that trip a breaker open.
DEFAULT_FAILURE_THRESHOLD = 3
#: Seconds an open breaker waits before allowing a half-open probe.
DEFAULT_RECOVERY_TIME = 30.0


class CircuitBreaker:
    """Failure tracker for one backend (not thread-safe on its own; the
    :class:`BreakerRegistry` serializes access)."""

    __slots__ = (
        "name",
        "failure_threshold",
        "recovery_time",
        "_clock",
        "state",
        "consecutive_failures",
        "opened_at",
        "opens",
        "probes",
        "skips",
    )

    def __init__(
        self,
        name: str,
        *,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        recovery_time: float = DEFAULT_RECOVERY_TIME,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if recovery_time < 0:
            raise ValueError(
                f"recovery_time must be >= 0, got {recovery_time}"
            )
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self._clock = clock
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        #: Times this breaker tripped open (cumulative, for stats).
        self.opens = 0
        #: Half-open probes allowed through.
        self.probes = 0
        #: Attempts refused while open.
        self.skips = 0

    def allow(self) -> bool:
        """May the backend be tried right now?

        CLOSED always allows.  OPEN allows once the recovery window has
        elapsed — transitioning to HALF_OPEN and admitting exactly one
        probe; further calls while the probe is outstanding are refused.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            assert self.opened_at is not None
            if self._clock() - self.opened_at >= self.recovery_time:
                self.state = HALF_OPEN
                self.probes += 1
                return True
            self.skips += 1
            return False
        # HALF_OPEN: one probe is already in flight; hold the line until
        # its verdict arrives.
        self.skips += 1
        return False

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.state = CLOSED
        self.opened_at = None

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if (
            self.state == HALF_OPEN
            or self.consecutive_failures >= self.failure_threshold
        ):
            # A failed probe re-opens immediately; a closed breaker trips
            # once the consecutive-failure threshold is met.
            if self.state != OPEN:
                self.opens += 1
            self.state = OPEN
            self.opened_at = self._clock()

    def snapshot(self) -> dict:
        """JSON-ready state record for stats/telemetry."""
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "opens": self.opens,
            "probes": self.probes,
            "skips": self.skips,
        }


class BreakerRegistry:
    """One :class:`CircuitBreaker` per backend name, behind one lock.

    Breakers are created lazily on first :meth:`allow`/:meth:`record`,
    so :meth:`snapshot` only lists backends that were actually consulted.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        recovery_time: float = DEFAULT_RECOVERY_TIME,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self._clock = clock
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def _get(self, name: str) -> CircuitBreaker:
        # Helper-under-lock: every caller below holds self._lock, which
        # the per-file CC002 inference cannot see across methods.
        br = self._breakers.get(name)
        if br is None:
            br = CircuitBreaker(
                name,
                failure_threshold=self.failure_threshold,
                recovery_time=self.recovery_time,
                clock=self._clock,
            )
            self._breakers[name] = br  # noqa: CC002 — callers hold _lock
        return br

    def allow(self, name: str) -> bool:
        with self._lock:
            return self._get(name).allow()

    def record(self, name: str, ok: bool) -> None:
        with self._lock:
            br = self._get(name)
            if ok:
                br.record_success()
            else:
                br.record_failure()

    def state(self, name: str) -> str:
        with self._lock:
            br = self._breakers.get(name)
            return br.state if br is not None else CLOSED

    def states(self) -> dict[str, str]:
        """``{backend: state}`` for every consulted backend."""
        with self._lock:
            return {n: b.state for n, b in self._breakers.items()}

    def snapshot(self) -> dict[str, dict]:
        """Full JSON-ready per-backend records (the server ``stats`` op)."""
        with self._lock:
            return {n: b.snapshot() for n, b in self._breakers.items()}

    def reset(self) -> None:
        """Forget all breaker state (tests and operator intervention)."""
        with self._lock:
            self._breakers.clear()


_default_registry: BreakerRegistry | None = None
_default_lock = threading.Lock()


def default_registry() -> BreakerRegistry:
    """The process-wide registry.

    Pool workers are resident processes that outlive single requests, so
    a module-level registry gives each worker cross-request protection
    even though the parent cannot hand its own (unpicklable) registry
    across the pipe.
    """
    global _default_registry
    with _default_lock:
        if _default_registry is None:
            _default_registry = BreakerRegistry()
        return _default_registry
