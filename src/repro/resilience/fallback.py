"""Backend fallback chain: cascade, per-attempt timeouts, rescale retry.

One solver hiccup must not kill a routing run.  :func:`solve_lp_resilient`
tries a configurable cascade of LP backends; each attempt is bounded by a
wall-clock timeout, validated (an "optimal" result with NaN entries or an
infeasible ``x`` counts as a failure, not a success), and recorded in a
:class:`~repro.resilience.SolveReport`.  Numerical failures earn one
same-backend retry on a rescaled copy of the model before falling through
to the next backend.

Timeouts are thread-based: a timed-out backend is abandoned, not killed
(the stray thread finishes in the background and its result is dropped).
Process-level isolation is future work — see ROADMAP.md.
"""

from __future__ import annotations

import concurrent.futures
import math
import time
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.lp.model import LinearProgram
from repro.lp.result import BackendCapabilityError, LpResult, LpStatus
from repro.lp.solve import preferred_backend
from repro.resilience.breaker import BreakerRegistry
from repro.resilience.errors import AllBackendsFailedError
from repro.resilience.report import AttemptOutcome, SolveAttempt, SolveReport

Backend = Callable[[LinearProgram], LpResult]

#: Default cascade order; :func:`backend_chain` rotates the preferred
#: backend to the front per model.  The ``tree`` backend rides last: it
#: declines non-tree-stamped models instantly with
#: :class:`BackendCapabilityError` (a clean fall-through that costs no
#: timeout and never counts against its circuit breaker), and gives
#: EBF-built models a structure-aware lane in the cascade and the race.
DEFAULT_CHAIN = ("simplex", "scipy", "tree")

_STATUS_TO_OUTCOME = {
    LpStatus.OPTIMAL: AttemptOutcome.OPTIMAL,
    LpStatus.INFEASIBLE: AttemptOutcome.INFEASIBLE,
    LpStatus.UNBOUNDED: AttemptOutcome.UNBOUNDED,
    LpStatus.ERROR: AttemptOutcome.ERROR,
}


def default_solvers() -> dict[str, Backend]:
    """Name -> callable map of the real backends."""
    from repro.lp.scipy_backend import solve_scipy
    from repro.lp.simplex import solve_simplex
    from repro.lp.treesolve import solve_tree

    return {"simplex": solve_simplex, "scipy": solve_scipy, "tree": solve_tree}


def backend_chain(lp: LinearProgram, backend: str = "auto") -> tuple[str, ...]:
    """Cascade order for ``lp``: the requested (or, for ``"auto"``, the
    size/capability-preferred) backend first, every other default backend
    after it."""
    first = preferred_backend(lp) if backend == "auto" else backend
    return (first, *(b for b in DEFAULT_CHAIN if b != first))


def rescale_lp(lp: LinearProgram) -> tuple[LinearProgram, float]:
    """Copy ``lp`` with rhs and variable bounds divided by the model's
    magnitude ``s`` (so numbers are O(1)); returns ``(scaled, s)`` with
    ``x_original = s * x_scaled``.

    Costs are left untouched — scaling every column by the same factor
    preserves the argmin, and callers recompute the objective on the
    unscaled solution.
    """
    mags = [abs(lp.row(i)[2]) for i in range(lp.num_constraints)]
    mags += [abs(float(v)) for v in lp.lower_bounds if math.isfinite(v)]
    mags += [abs(float(v)) for v in lp.upper_bounds if math.isfinite(v)]
    s = max(mags, default=0.0)
    if not math.isfinite(s) or s <= 0.0:
        s = 1.0
    scaled = LinearProgram(minimize=lp.minimize)
    lb, ub, costs = lp.lower_bounds, lp.upper_bounds, lp.costs
    for j in range(lp.num_variables):
        scaled.add_variable(
            lp.variable_name(j),
            cost=float(costs[j]),
            lb=float(lb[j]) / s,
            ub=float(ub[j]) / s,
        )
    for i in range(lp.num_constraints):
        coeffs, sense, rhs = lp.row(i)
        scaled.add_constraint(coeffs, sense, rhs / s, name=lp.row_name(i))
    return scaled, s


def _unscale_result(raw: LpResult, s: float, lp: LinearProgram) -> LpResult:
    """Map a result on the rescaled model back to original units.

    Duals are dropped rather than risk a unit mix-up; resilient rescale
    retries are a salvage path, not the dual-reading path.
    """
    if raw.status is not LpStatus.OPTIMAL or raw.x is None:
        return LpResult(
            raw.status, None, None, raw.iterations, raw.backend,
            message=raw.message,
        )
    x = np.asarray(raw.x, dtype=float) * s
    return LpResult(
        LpStatus.OPTIMAL,
        x,
        lp.objective_value(x),
        raw.iterations,
        raw.backend,
        duals=None,
        message=raw.message,
    )


def _breaker_skip(report: SolveReport, name: str) -> None:
    report.attempts.append(SolveAttempt(
        name, AttemptOutcome.SKIPPED, 0.0,
        error="circuit breaker open — backend not attempted",
    ))


def _breaker_record(
    breakers: BreakerRegistry | None, name: str, outcome: str
) -> None:
    """Feed one attempt's verdict to the backend's breaker.

    Definitive answers close/heal; pipeline failures count against the
    backend; CANCELLED/SKIPPED attempts never ran and count neither way.
    Capability errors are handled by the caller (they are permanent facts
    about model shape, not backend health — see ``solve_lp_resilient``).
    """
    if breakers is None:
        return
    if outcome in AttemptOutcome.TERMINAL:
        breakers.record(name, True)
    elif outcome in AttemptOutcome.BREAKER_FAILURES:
        breakers.record(name, False)


def _race_backends(
    lp: LinearProgram,
    chain: Sequence[str],
    solver_map: Mapping[str, Backend],
    timeout: float | None,
    feas_tol: float,
    report: SolveReport,
    breakers: BreakerRegistry | None = None,
) -> LpResult | None:
    """Run every chain backend on ``lp`` concurrently; first definitive
    (optimal / infeasible / unbounded, post-validation) answer wins.

    Losers are cancelled: like the fallback timeouts, cancellation is
    thread-based — a running backend is abandoned and its eventual
    result dropped, not killed.  Every backend becomes a
    :class:`SolveAttempt`: the winner with its outcome, a loser with
    its own failure outcome if it finished first, ``CANCELLED`` if it
    was still running (or queued) when the winner crossed the line, or
    ``TIMEOUT`` if the shared deadline expired with no winner.  Returns
    the winning result, or ``None`` when no backend was definitive.

    With ``breakers``, open-circuited backends are excluded from the
    race up front (recorded as ``SKIPPED``), and every finished or
    deadline-expired racer feeds its verdict back; a race with every
    lane open-circuited returns ``None`` without spawning a thread.
    """
    if breakers is not None:
        racers = []
        for name in chain:
            if breakers.allow(name):
                racers.append(name)
            else:
                _breaker_skip(report, name)
        chain = tuple(racers)
        if not chain:
            return None
    order = {name: pos for pos, name in enumerate(chain)}
    start = time.perf_counter()
    deadline = None if timeout is None else start + timeout
    executor = concurrent.futures.ThreadPoolExecutor(max_workers=len(chain))
    winner: LpResult | None = None
    try:
        futures = {
            executor.submit(solver_map[name], lp): name for name in chain
        }
        pending = set(futures)
        while pending and winner is None:
            wait_for = None
            if deadline is not None:
                wait_for = max(0.0, deadline - time.perf_counter())
            done, pending = concurrent.futures.wait(
                pending,
                timeout=wait_for,
                return_when=concurrent.futures.FIRST_COMPLETED,
            )
            if not done:
                break  # shared deadline expired
            elapsed = time.perf_counter() - start
            # Completion batches are unordered sets; settle ties by chain
            # position so the report (and a photo-finish winner) is
            # deterministic given the same completion batch.
            for fut in sorted(done, key=lambda f: order[futures[f]]):
                name = futures[fut]
                try:
                    raw = fut.result()
                except Exception as exc:  # resilience boundary
                    report.attempts.append(SolveAttempt(
                        name, AttemptOutcome.EXCEPTION, elapsed,
                        error=f"{type(exc).__name__}: {exc}",
                    ))
                    if not isinstance(exc, BackendCapabilityError):
                        _breaker_record(
                            breakers, name, AttemptOutcome.EXCEPTION
                        )
                    continue
                outcome = _validated_outcome(lp, raw, feas_tol)
                report.attempts.append(SolveAttempt(
                    name, outcome, elapsed,
                    error=raw.message
                    if outcome is not AttemptOutcome.OPTIMAL
                    else None,
                    iterations=raw.iterations,
                ))
                _breaker_record(breakers, name, outcome)
                if winner is None and outcome in AttemptOutcome.TERMINAL:
                    winner = raw
        elapsed = time.perf_counter() - start
        for fut in sorted(pending, key=lambda f: order[futures[f]]):
            fut.cancel()
            name = futures[fut]
            if winner is not None:
                report.attempts.append(SolveAttempt(
                    name, AttemptOutcome.CANCELLED, elapsed,
                    error="lost the race — cancelled",
                ))
            else:
                report.attempts.append(SolveAttempt(
                    name, AttemptOutcome.TIMEOUT, elapsed,
                    error=f"exceeded {timeout:g}s wall clock",
                ))
                _breaker_record(breakers, name, AttemptOutcome.TIMEOUT)
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
    return winner


def _call_with_timeout(fn: Backend, lp: LinearProgram, timeout: float | None):
    if timeout is None:
        return fn(lp)
    executor = concurrent.futures.ThreadPoolExecutor(max_workers=1)
    try:
        return executor.submit(fn, lp).result(timeout=timeout)
    finally:
        executor.shutdown(wait=False, cancel_futures=True)


def _validated_outcome(
    lp: LinearProgram, result: LpResult, feas_tol: float
) -> str:
    """Classify a backend's return, distrusting "optimal" claims: the
    solution must be finite and actually feasible for the model."""
    outcome = _STATUS_TO_OUTCOME.get(result.status, AttemptOutcome.ERROR)
    if outcome is not AttemptOutcome.OPTIMAL:
        return outcome
    x = result.x
    if (
        x is None
        or len(x) != lp.num_variables
        or not np.all(np.isfinite(x))
        or result.objective is None
        or not math.isfinite(result.objective)
    ):
        return AttemptOutcome.INVALID
    if not lp.is_feasible(np.asarray(x, dtype=float), tol=feas_tol):
        return AttemptOutcome.INVALID
    return AttemptOutcome.OPTIMAL


def solve_lp_resilient(
    lp: LinearProgram,
    backends: Sequence[str] | None = None,
    *,
    solvers: Mapping[str, Backend] | None = None,
    timeout: float | None = None,
    rescale_retry: bool | str = True,
    confirm_infeasible: bool = False,
    raise_on_failure: bool = True,
    feasibility_tol: float = 1e-6,
    race: str | None = None,
    breakers: BreakerRegistry | None = None,
) -> SolveReport:
    """Solve ``lp`` through a backend cascade; never die on one backend.

    Parameters
    ----------
    backends:
        Cascade order by name; default :func:`backend_chain` (preferred
        backend first).
    solvers:
        Overrides/extensions of :func:`default_solvers` — this is the
        seam the fault-injection harness uses.
    timeout:
        Per-attempt wall-clock limit in seconds (``None`` = unbounded).
    rescale_retry:
        On a numerical failure (``ERROR`` status, invalid "optimal"
        solution, or a backend exception other than
        :class:`BackendCapabilityError`), retry the same backend once on
        a unit-magnitude rescaled copy before falling through.
        ``"auto"`` consults the LP scaling advisor
        (:func:`repro.check.scaling_advice`, the LP015/LP016 statistics)
        on the first numerical failure and retries only when the model
        is actually badly scaled — a numerical failure on a well-scaled
        model falls through to the next backend immediately instead of
        paying for a rescaled attempt that cannot help.
    confirm_infeasible:
        Treat an INFEASIBLE verdict from a non-final backend as suspect
        and seek a second opinion; a later OPTIMAL overrides it.
    raise_on_failure:
        Raise :class:`AllBackendsFailedError` (carrying the report) when
        no backend produced a definitive result; otherwise return the
        report with ``result=None``.
    race:
        ``None``/``"off"`` (default) runs the cascade sequentially.
        ``"auto"`` races every chain backend *concurrently* on the same
        LP and takes the first definitive (optimal/infeasible/unbounded)
        validated answer, cancelling the losers — latency becomes the
        *minimum* over backends instead of a sum over failures.  The
        report records every backend, cancelled losers included.  Race
        mode trades the sequential path's salvage machinery (rescale
        retry, infeasibility second opinions) for latency; with a
        single-backend chain it falls back to sequential.
    breakers:
        Optional :class:`~repro.resilience.breaker.BreakerRegistry`.
        When given, an open-circuited backend is skipped outright (a
        ``SKIPPED`` attempt in the report — no timeout paid), every real
        attempt feeds its verdict back to the backend's breaker, and the
        registry's post-solve states are stamped on
        ``report.breaker_states``.  :class:`BackendCapabilityError`
        attempts are *not* counted against a breaker: a capability gap
        is a permanent fact about the model's shape, not backend health.

    Returns the :class:`SolveReport`; ``report.result`` is the terminal
    :class:`LpResult`.  Feasibility validation uses ``feasibility_tol``
    scaled by the model's rhs magnitude.
    """
    if race not in (None, "off", "auto"):
        raise ValueError(f"unknown race mode {race!r}")
    if rescale_retry not in (True, False, "auto"):
        raise ValueError(f"unknown rescale_retry mode {rescale_retry!r}")

    # "auto" decides from the scaling advisor, lazily (first numerical
    # failure) and once — the statistics are a property of the model.
    _rescale_wanted: bool | None = (
        None if rescale_retry == "auto" else bool(rescale_retry)
    )

    def _want_rescale() -> bool:
        nonlocal _rescale_wanted
        if _rescale_wanted is None:
            from repro.check.scaling import scaling_advice

            _rescale_wanted = scaling_advice(lp).rescale_recommended
        return _rescale_wanted
    solver_map = dict(default_solvers())
    if solvers:
        solver_map.update(solvers)
    chain = tuple(backends) if backends is not None else backend_chain(lp)
    unknown = [b for b in chain if b not in solver_map]
    if unknown:
        raise ValueError(f"unknown LP backends in chain: {unknown}")

    rhs_mag = max(
        (abs(lp.row(i)[2]) for i in range(lp.num_constraints)), default=0.0
    )
    feas_tol = feasibility_tol * (1.0 + rhs_mag)

    if race == "auto" and len(chain) >= 2:
        report = SolveReport()
        winner = _race_backends(
            lp, chain, solver_map, timeout, feas_tol, report, breakers
        )
        if breakers is not None:
            report.breaker_states = breakers.states()
        if winner is not None:
            report.result = winner
            return report
        if raise_on_failure:
            raise AllBackendsFailedError(report)
        return report

    report = SolveReport()
    scaled_pair: tuple[LinearProgram, float] | None = None
    pending_infeasible: LpResult | None = None

    for pos, name in enumerate(chain):
        if breakers is not None and not breakers.allow(name):
            _breaker_skip(report, name)
            continue
        rescaled = False
        while True:
            if rescaled:
                if scaled_pair is None:
                    scaled_pair = rescale_lp(lp)
                model, s = scaled_pair
            else:
                model, s = lp, 1.0
            start = time.perf_counter()
            try:
                raw = _call_with_timeout(solver_map[name], model, timeout)
            except concurrent.futures.TimeoutError:
                report.attempts.append(SolveAttempt(
                    name, AttemptOutcome.TIMEOUT,
                    time.perf_counter() - start, rescaled,
                    error=f"exceeded {timeout:g}s wall clock",
                ))
                _breaker_record(breakers, name, AttemptOutcome.TIMEOUT)
                break  # more time, not rescaling, is what a timeout needs
            except BackendCapabilityError as exc:
                report.attempts.append(SolveAttempt(
                    name, AttemptOutcome.EXCEPTION,
                    time.perf_counter() - start, rescaled, error=str(exc),
                ))
                break  # capability gaps are permanent for this backend
            except Exception as exc:  # resilience boundary
                report.attempts.append(SolveAttempt(
                    name, AttemptOutcome.EXCEPTION,
                    time.perf_counter() - start, rescaled,
                    error=f"{type(exc).__name__}: {exc}",
                ))
                _breaker_record(breakers, name, AttemptOutcome.EXCEPTION)
                if not rescaled and _want_rescale():
                    rescaled = True
                    continue
                break
            elapsed = time.perf_counter() - start
            result = _unscale_result(raw, s, lp) if rescaled else raw
            outcome = _validated_outcome(lp, result, feas_tol)
            report.attempts.append(SolveAttempt(
                name, outcome, elapsed, rescaled,
                error=result.message
                if outcome not in (AttemptOutcome.OPTIMAL,)
                else None,
                iterations=result.iterations,
            ))
            _breaker_record(breakers, name, outcome)
            if outcome in AttemptOutcome.TERMINAL:
                if (
                    outcome is AttemptOutcome.INFEASIBLE
                    and confirm_infeasible
                    and pos < len(chain) - 1
                ):
                    if pending_infeasible is None:
                        pending_infeasible = result
                    break  # seek a second opinion
                report.result = result
                if breakers is not None:
                    report.breaker_states = breakers.states()
                return report
            if (
                outcome in AttemptOutcome.NUMERICAL
                and not rescaled
                and _want_rescale()
            ):
                rescaled = True
                continue
            break

    if breakers is not None:
        report.breaker_states = breakers.states()
    if pending_infeasible is not None:
        # Only one backend could weigh in; its verdict stands.
        report.result = pending_infeasible
        return report
    if raise_on_failure:
        raise AllBackendsFailedError(report)
    return report
