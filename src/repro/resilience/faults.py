"""Deterministic fault injection for the solve pipeline (test-only).

Production retry/fallback logic that is never exercised is broken logic
waiting to be discovered.  This module wraps any LP backend callable so
CI can make the first backend raise, hang, return NaN, or lie about its
status — deterministically, with no randomness and no monkeypatching —
and assert that :func:`~repro.resilience.solve_lp_resilient` still
produces the right answer via the fallback chain.

Usage::

    from repro.resilience import faults, solve_lp_resilient

    solvers = faults.faulty_solvers({
        "simplex": [faults.ExceptionFault("disk on fire")],
    })
    report = solve_lp_resilient(lp, ("simplex", "scipy"), solvers=solvers)
    assert report.result.is_optimal           # scipy saved the run
    assert report.attempts[0].outcome == "exception"

Fault schedules are positional: call ``k`` of the wrapped backend
consumes ``faults[k]``; ``None`` entries and calls past the end of the
schedule pass through to the real backend.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.lp.model import LinearProgram
from repro.lp.result import LpResult, LpStatus


@dataclass(frozen=True)
class ExceptionFault:
    """The backend raises instead of returning."""

    message: str = "injected backend exception"
    exc_type: type = RuntimeError


@dataclass(frozen=True)
class TimeoutFault:
    """The backend stalls for ``seconds`` before delegating; pair with a
    per-attempt ``timeout`` below ``seconds`` to exercise the timeout
    path."""

    seconds: float = 0.2


@dataclass(frozen=True)
class NanSolutionFault:
    """The backend claims OPTIMAL but hands back an all-NaN vector —
    the classic silent numerical blow-up."""


@dataclass(frozen=True)
class WrongStatusFault:
    """The backend returns ``status`` without solving anything."""

    status: LpStatus = LpStatus.ERROR
    message: str = "injected wrong status"


Fault = ExceptionFault | TimeoutFault | NanSolutionFault | WrongStatusFault


class FaultyBackend:
    """Wrap ``inner`` with a positional fault schedule.

    Keeps ``calls`` and ``injected`` counters so tests can assert how
    often the pipeline actually knocked on this backend's door.
    """

    def __init__(
        self,
        inner: Callable[[LinearProgram], LpResult],
        faults: Iterable[Fault | None],
        name: str = "faulty",
    ) -> None:
        self.inner = inner
        self.faults = tuple(faults)
        self.name = name
        self.calls = 0
        self.injected: list[Fault] = []

    def __call__(self, lp: LinearProgram) -> LpResult:
        k = self.calls
        self.calls += 1
        fault = self.faults[k] if k < len(self.faults) else None
        if fault is None:
            return self.inner(lp)
        self.injected.append(fault)
        if isinstance(fault, ExceptionFault):
            raise fault.exc_type(fault.message)
        if isinstance(fault, TimeoutFault):
            time.sleep(fault.seconds)
            return self.inner(lp)
        if isinstance(fault, NanSolutionFault):
            return LpResult(
                LpStatus.OPTIMAL,
                np.full(lp.num_variables, np.nan),
                float("nan"),
                0,
                self.name,
                message="injected NaN solution",
            )
        if isinstance(fault, WrongStatusFault):
            return LpResult(
                fault.status, None, None, 0, self.name, message=fault.message
            )
        raise TypeError(f"unknown fault {fault!r}")


# ----------------------------------------------------------------------
# instance breakers (for exercising the static verification layer)
# ----------------------------------------------------------------------
def inject_nan_coefficient(lp: LinearProgram, row: int = 0, slot: int = 0) -> None:
    """Overwrite one stored coefficient of ``row`` with NaN, in place.

    Reaches into the model's columnar buffers deliberately — the public
    API refuses to build NaN rows, which is exactly why the checker needs
    a way to see one (``LP001``).
    """
    a, b = lp._row_ptr[row], lp._row_ptr[row + 1]
    if a == b:
        raise ValueError(f"row {row} has no coefficients to poison")
    if not (0 <= slot < b - a):
        raise ValueError(f"row {row} has {b - a} coefficients, no slot {slot}")
    lp._row_data[a + slot] = float("nan")
    lp._split_cache = None
    lp._residual_cache = None


def invert_bounds(bounds, sink: int, gap: float = 1.0):
    """A copy of ``bounds`` with sink ``sink``'s window inverted
    (``l_i = u_i + gap``), bypassing the constructor's validation —
    the ``BD002`` breakage no public path can produce."""
    from repro.ebf.bounds import DelayBounds

    lo = np.array(bounds.lower, dtype=float, copy=True)
    hi = np.array(bounds.upper, dtype=float, copy=True)
    lo[sink - 1] = hi[sink - 1] + float(gap)
    return DelayBounds.unchecked(lo, hi)


def cyclic_parents(parents, at: int, to: int | None = None) -> list:
    """A copy of a parents array with node ``at`` reparented into its own
    subtree (default: onto itself's child chain → a cycle), producing the
    ``TP001``/``TP003`` breakage ``Topology.__init__`` rejects."""
    broken = list(parents)
    if not (1 <= at < len(broken)):
        raise ValueError(f"node {at} out of range")
    if to is None:
        # Smallest cycle: make `at`'s parent point back to `at` through
        # any node that currently has `at` as parent, else self-cycle.
        kids = [i for i, p in enumerate(broken) if p == at]
        to = kids[0] if kids else at
    broken[at] = to
    return broken


def faulty_solvers(
    faults_by_backend: Mapping[str, Sequence[Fault | None]],
    base: Mapping[str, Callable[[LinearProgram], LpResult]] | None = None,
) -> dict[str, Callable[[LinearProgram], LpResult]]:
    """Solver map for ``solve_lp_resilient(..., solvers=...)`` with fault
    schedules wrapped around the named backends."""
    from repro.resilience.fallback import default_solvers

    solvers = dict(base if base is not None else default_solvers())
    for name, faults in faults_by_backend.items():
        if name not in solvers:
            raise ValueError(f"unknown backend {name!r}")
        solvers[name] = FaultyBackend(solvers[name], faults, name=name)
    return solvers
