"""Chaos soak harness: a live solve server under seeded abuse.

Overload, crash, and recovery code that is only exercised by unit tests
tends to rot at the *seams* — the places where admission control meets
the pool, the pool meets the breaker registry, and all of them meet a
client that disconnects mid-request.  :func:`run_chaos` drives a real
:class:`~repro.server.ServerThread` with concurrent clients running a
seeded action mix:

* **solve** requests from a known instance family (answers are checked
  against ground truth computed up front, in-process);
* **malformed** JSON lines (must earn a typed ``bad-request`` error);
* **oversized** lines (typed ``oversized`` error, then disconnect);
* **mid-request disconnects** (half a request, then a closed socket);
* **ping**/**stats** probes;

while (optionally) a killer thread SIGKILLs pool workers mid-solve and
a :class:`~repro.resilience.faults.FaultyBackend` schedule forces the
primary LP backend to fail, exercising fallback and circuit breakers
server-side.

The pass/fail contract is chosen to be **deterministic for a fixed
seed** even though thread/socket timing is not: the harness asserts
*invariants* — zero wrong answers, zero hangs, protocol errors always
typed, counters consistent (``shed`` equals the busy replies clients
saw, ``solves <= requests``, cache within capacity) — never exact
traffic counts.  CI runs this as a bounded soak job (``lubt chaos``).
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs for one chaos run (defaults are CI-sized)."""

    seed: int = 1234
    #: Soak length in seconds (wall clock; the whole run is bounded by
    #: roughly this plus startup/teardown).
    duration: float = 15.0
    clients: int = 3
    #: Server worker processes; ``jobs>1`` enables worker killing.
    jobs: int = 2
    sinks: int = 7
    #: Distinct bound windows in the known-answer instance family.
    points: int = 4
    max_inflight: int | None = None
    queue_limit: int = 2
    #: Deliberately smaller than the instance-family key space (points x
    #: batch variants) so the LRU churns and *real* solves keep flowing
    #: through the pool for the whole soak instead of the first seconds.
    cache_size: int = 12
    solve_timeout: float | None = 60.0
    #: Small line limit so oversized probes are cheap to construct.
    max_line_bytes: int = 64 * 1024
    kill_workers: bool = True
    #: Consecutive injected failures of the primary backend per worker
    #: process (0 disables fault injection).
    fault_count: int = 8
    #: Client-side deadline (seconds) attached to a fraction of solves.
    deadline: float = 30.0
    #: Run under the runtime sanitizer harness (``lubt chaos
    #: --sanitize``): server/client locks are wrapped by a
    #: :class:`~repro.resilience.sanitize.LockSanitizer` (lock-order
    #: cycles become invariant violations) and the server runs an
    #: event-loop :class:`~repro.resilience.sanitize.StallMonitor`
    #: (stalls are reported in the summary, gated by the existing hang
    #: invariants).
    sanitize: bool = False
    #: Loop-stall threshold (seconds) when ``sanitize`` is on.
    stall_threshold: float = 0.5


@dataclass
class ChaosReport:
    """What happened, and whether the invariants held."""

    config: ChaosConfig
    elapsed: float = 0.0
    actions: dict = field(default_factory=dict)
    solves_checked: int = 0
    cache_hits: int = 0
    busy_observed: int = 0
    deadline_errors: int = 0
    solve_errors: int = 0
    #: Invariant violations (empty == pass).
    wrong_answers: list = field(default_factory=list)
    hangs: list = field(default_factory=list)
    inconsistencies: list = field(default_factory=list)
    protocol_failures: list = field(default_factory=list)
    #: Potential deadlocks the lock sanitizer recorded (``sanitize``
    #: runs only; empty == pass).
    lock_order_violations: list = field(default_factory=list)
    sanitizer_stats: dict = field(default_factory=dict)
    server_stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not (
            self.wrong_answers
            or self.hangs
            or self.inconsistencies
            or self.protocol_failures
            or self.lock_order_violations
        )

    def summary(self) -> str:
        lines = [
            f"chaos soak: seed={self.config.seed} "
            f"duration={self.elapsed:.1f}s clients={self.config.clients} "
            f"jobs={self.config.jobs}",
            f"  actions: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.actions.items())),
            f"  solves checked: {self.solves_checked} "
            f"(cache hits {self.cache_hits}), busy {self.busy_observed}, "
            f"deadline errors {self.deadline_errors}, "
            f"solve errors {self.solve_errors}",
        ]
        st = self.server_stats
        if st:
            lines.append(
                f"  server: requests={st.get('requests')} "
                f"solves={st.get('solves')} errors={st.get('errors')} "
                f"shed={st.get('shed')} "
                f"workers_replaced="
                f"{(st.get('pool') or {}).get('workers_replaced')}"
            )
            if st.get("breakers"):
                lines.append(
                    "  breakers: "
                    + ", ".join(
                        f"{n}={r['state']}(opens={r['opens']})"
                        for n, r in sorted(st["breakers"].items())
                    )
                )
        if self.sanitizer_stats:
            st = self.server_stats or {}
            stall = st.get("stall") or {}
            lines.append(
                f"  sanitizer: locks={self.sanitizer_stats['locks_created']} "
                f"acquisitions={self.sanitizer_stats['acquisitions']} "
                f"loop_stalls={stall.get('stalls', 'n/a')} "
                f"max_drift={stall.get('max_drift', 0.0):.3f}s"
            )
        for label, items in (
            ("WRONG ANSWERS", self.wrong_answers),
            ("HANGS", self.hangs),
            ("COUNTER INCONSISTENCIES", self.inconsistencies),
            ("PROTOCOL FAILURES", self.protocol_failures),
            ("LOCK ORDER VIOLATIONS", self.lock_order_violations),
        ):
            for item in items[:10]:
                lines.append(f"  {label}: {item}")
        lines.append(f"  verdict: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def _chaos_instances(config: ChaosConfig):
    """The known-answer family: one topology, ``points`` bound windows,
    each solved serially up front for ground-truth canonical costs."""
    from repro import DelayBounds, Point, nearest_neighbor_topology
    from repro.ebf.bounds import radius_of
    from repro.ebf.solver import solve_lubt
    from repro.ebf.sweep import canonical_cost

    rng = np.random.default_rng(config.seed)
    pts = [
        Point(float(x), float(y))
        for x, y in rng.integers(0, 80, (config.sinks, 2))
    ]
    topo = nearest_neighbor_topology(pts, Point(40.0, 40.0))
    r = radius_of(topo)
    factors = np.linspace(0.75, 0.95, config.points)
    family = [
        DelayBounds.uniform(config.sinks, float(f) * r, 1.4 * r)
        for f in factors
    ]
    expected = [
        canonical_cost(solve_lubt(topo, b).cost) for b in family
    ]
    return topo, family, expected


def _raw_probe(host, port, payload: bytes, timeout: float = 20.0):
    """Send raw bytes on a fresh socket; return the first reply line
    (possibly empty on immediate disconnect)."""
    with socket.create_connection((host, port), timeout=timeout) as s:
        s.sendall(payload)
        with s.makefile("rb") as f:
            return f.readline()


class _ClientWorker(threading.Thread):
    """One chaos client: a seeded action loop against the live server."""

    def __init__(self, index, config, port, topo, family, expected, report,
                 lock, t_end):
        super().__init__(name=f"chaos-client-{index}", daemon=True)
        self.index = index
        self.config = config
        self.port = port
        self.topo = topo
        self.family = family
        self.expected = expected
        self.report = report
        self.lock = lock
        self.t_end = t_end
        self.rng = random.Random(config.seed * 1000 + index)

    def _count(self, action: str) -> None:
        with self.lock:
            self.report.actions[action] = (
                self.report.actions.get(action, 0) + 1
            )

    def _check_solve(self, client) -> None:
        from repro.server.client import ServerBusyError, ServerError

        i = self.rng.randrange(len(self.family))
        use_deadline = self.rng.random() < 0.25
        # Varying ``batch`` (constraint-generation batch size) changes
        # the instance key but provably not the LP optimum, so the soak
        # keeps *real* solves flowing through the pool instead of
        # degenerating into a pure cache-hit loop — while every answer
        # stays checkable against the same ground truth.
        batch = self.rng.choice((8, 16, 32, 48, 64, 96))
        # A slice of solves pins the structure-aware tree backend so the
        # soak exercises it server-side (distinct instance keys, same
        # ground-truth canonical cost — exact parity is the invariant).
        extra = (
            {"backend": "tree"} if self.rng.random() < 0.25 else {}
        )
        try:
            reply = client.solve(
                self.topo,
                self.family[i],
                deadline=self.config.deadline if use_deadline else None,
                resilient=True,
                batch=batch,
                **extra,
            )
        except ServerBusyError:
            with self.lock:
                self.report.busy_observed += 1
            return
        except ServerError as exc:
            with self.lock:
                if exc.code == "deadline-expired":
                    self.report.deadline_errors += 1
                elif exc.code in ("solve-error", None):
                    # Injected worker kills / forced backend failures
                    # surface here; they are chaos working as intended,
                    # not wrongness — wrongness is a *wrong answer*.
                    self.report.solve_errors += 1
                else:
                    self.report.protocol_failures.append(
                        f"solve error with unexpected code {exc.code!r}: "
                        f"{exc}"
                    )
            return
        result = reply["result"]
        got = result["canonical_cost"]
        want = self.expected[i]
        lo, hi = self.family[i].lower, self.family[i].upper
        delays = result["delays"]
        bad_delay = any(
            d < float(lo[k]) - 1e-5 or d > float(hi[k]) + 1e-5
            for k, d in enumerate(delays)
        )
        with self.lock:
            self.report.solves_checked += 1
            if reply.get("cache_hit"):
                self.report.cache_hits += 1
            if abs(got - want) > 1e-7 * max(1.0, abs(want)):
                self.report.wrong_answers.append(
                    f"point {i}: canonical cost {got!r} != expected "
                    f"{want!r}"
                )
            if bad_delay:
                self.report.wrong_answers.append(
                    f"point {i}: delays outside the requested bounds"
                )

    def _abuse(self, kind: str) -> None:
        host = "127.0.0.1"
        try:
            if kind == "malformed":
                line = _raw_probe(host, self.port, b"this is not json\n")
                reply = json.loads(line) if line.strip() else {}
                if reply.get("code") != "bad-request":
                    with self.lock:
                        self.report.protocol_failures.append(
                            f"malformed line answered {reply!r}, "
                            f"expected code 'bad-request'"
                        )
            elif kind == "oversized":
                pad = b"x" * (self.config.max_line_bytes + 1024)
                line = _raw_probe(
                    host, self.port, b'{"op":"ping","pad":"' + pad + b'"}\n'
                )
                reply = json.loads(line) if line.strip() else {}
                if reply.get("code") != "oversized":
                    with self.lock:
                        self.report.protocol_failures.append(
                            f"oversized line answered {reply!r}, "
                            f"expected code 'oversized'"
                        )
            else:  # disconnect mid-request
                with socket.create_connection(
                    (host, self.port), timeout=20.0
                ) as s:
                    s.sendall(b'{"op":"solve","instance":')  # no newline
        except (OSError, ValueError):
            # Sockets racing server shutdown/chaos are expected noise,
            # not an invariant violation (those are reply-shaped).
            with self.lock:
                self.report.actions["abuse_io_noise"] = (
                    self.report.actions.get("abuse_io_noise", 0) + 1
                )

    def run(self) -> None:
        from repro.server.client import ServerClient

        try:
            client = ServerClient(
                port=self.port,
                timeout=120.0,
                busy_retries=0,  # every shed must surface and be counted
                connect_retries=4,
                jitter_seed=self.config.seed + self.index,
            )
        except OSError:
            with self.lock:
                self.report.protocol_failures.append(
                    f"client {self.index} could not connect"
                )
            return
        try:
            while time.monotonic() < self.t_end:
                roll = self.rng.random()
                if roll < 0.62:
                    self._count("solve")
                    self._check_solve(client)
                elif roll < 0.72:
                    self._count("ping")
                    client.ping()
                elif roll < 0.80:
                    self._count("stats")
                    client.stats()
                elif roll < 0.88:
                    self._count("malformed")
                    self._abuse("malformed")
                elif roll < 0.94:
                    self._count("oversized")
                    self._abuse("oversized")
                else:
                    self._count("disconnect")
                    self._abuse("disconnect")
        except Exception as exc:  # a crashed client thread is a harness
            # failure worth reporting, not a silent exit.
            with self.lock:
                self.report.protocol_failures.append(
                    f"client {self.index} crashed: "
                    f"{type(exc).__name__}: {exc}"
                )
        finally:
            try:
                client.close()
            except OSError:
                pass


def _killer_loop(server, t_end, seed) -> None:
    """SIGKILL a random pool worker a few times over the run."""
    rng = random.Random(seed ^ 0xDEAD)
    while time.monotonic() < t_end:
        time.sleep(1.2)
        if time.monotonic() >= t_end:
            return
        pool = server.pool
        if pool is None:
            return
        procs = pool.worker_processes()
        if procs:
            rng.choice(procs).kill()


def run_chaos(config: ChaosConfig | None = None) -> ChaosReport:
    """Run one chaos soak; see the module docstring for the contract."""
    from repro.lp.simplex import solve_simplex
    from repro.resilience.faults import ExceptionFault, FaultyBackend
    from repro.server.client import ServerClient
    from repro.server.dispatch import ServerThread

    config = config or ChaosConfig()
    report = ChaosReport(config=config)
    topo, family, expected = _chaos_instances(config)

    sanitizer = None
    if config.sanitize:
        from repro.resilience.sanitize import LockSanitizer

        sanitizer = LockSanitizer()

    overrides = None
    if config.fault_count > 0:
        overrides = {
            "simplex": FaultyBackend(
                solve_simplex,
                [ExceptionFault("chaos: injected simplex failure")]
                * config.fault_count,
                name="simplex",
            )
        }

    t0 = time.monotonic()
    # The instrument window wraps construction only: ServerThread's
    # constructor blocks until the server (and, under jobs>1, its forked
    # pool) finished starting, so every lock in the server stack — and
    # the harness's own report lock — is born sanitized and stays
    # instrumented for the whole soak.
    from contextlib import nullcontext

    with sanitizer.instrument() if sanitizer else nullcontext():
        lock = threading.Lock()
        handle = ServerThread(
            jobs=config.jobs,
            cache_size=config.cache_size,
            max_inflight=config.max_inflight,
            queue_limit=config.queue_limit,
            solve_timeout=config.solve_timeout,
            max_line_bytes=config.max_line_bytes,
            solver_overrides=overrides,
            stall_threshold=(
                config.stall_threshold if config.sanitize else None
            ),
        )
    try:
        t_end = time.monotonic() + config.duration
        clients = [
            _ClientWorker(i, config, handle.port, topo, family, expected,
                          report, lock, t_end)
            for i in range(config.clients)
        ]
        for c in clients:
            c.start()
        killer = None
        if config.kill_workers and config.jobs > 1:
            killer = threading.Thread(
                target=_killer_loop,
                args=(handle.server, t_end, config.seed),
                name="chaos-killer",
                daemon=True,
            )
            killer.start()
        for c in clients:
            c.join(timeout=config.duration + 120.0)
            if c.is_alive():
                report.hangs.append(f"client {c.index} did not finish")
        if killer is not None:
            killer.join(timeout=30.0)

        # Post-storm verification: the server must still answer every
        # known point correctly (this also drains any breaker damage
        # through fallback paths).  busy_retries=0 + a manual retry loop
        # keeps the shed/busy ledger exact: every server-side shed is a
        # client-observed ServerBusyError, counted once.
        try:
            from repro.server.client import ServerBusyError

            with ServerClient(
                port=handle.port, timeout=120.0, busy_retries=0,
                jitter_seed=config.seed,
            ) as c:
                for i, b in enumerate(family):
                    for _attempt in range(20):
                        try:
                            reply = c.solve(topo, b, resilient=True)
                        except ServerBusyError as exc:
                            report.busy_observed += 1
                            time.sleep(max(0.05, exc.retry_after))
                            continue
                        break
                    else:
                        report.hangs.append(
                            f"post-storm point {i}: still shed after 20 "
                            f"retries"
                        )
                        continue
                    got = reply["result"]["canonical_cost"]
                    if abs(got - expected[i]) > 1e-7 * max(
                        1.0, abs(expected[i])
                    ):
                        report.wrong_answers.append(
                            f"post-storm point {i}: {got!r} != "
                            f"{expected[i]!r}"
                        )
                report.server_stats = c.stats()
        except Exception as exc:  # a dead server after the storm is
            # exactly what this harness exists to catch.
            report.hangs.append(
                f"post-storm verification failed: "
                f"{type(exc).__name__}: {exc}"
            )
    finally:
        try:
            handle.stop(timeout=60.0)
        except RuntimeError as exc:
            report.hangs.append(str(exc))

    if sanitizer is not None:
        report.sanitizer_stats = sanitizer.stats()
        report.lock_order_violations = [
            v.render() for v in sanitizer.violations
        ]

    # Counter consistency (invariants, not exact traffic counts).
    st = report.server_stats
    if st:
        if st["shed"] != report.busy_observed:
            report.inconsistencies.append(
                f"server shed {st['shed']} != busy replies observed "
                f"{report.busy_observed}"
            )
        if st["solves"] > st["requests"]:
            report.inconsistencies.append(
                f"solves {st['solves']} > requests {st['requests']}"
            )
        cache = st["cache"]
        if cache["size"] > cache["capacity"]:
            report.inconsistencies.append(
                f"cache size {cache['size']} > capacity "
                f"{cache['capacity']}"
            )
        for name, rec in (st.get("breakers") or {}).items():
            if rec["state"] not in ("closed", "open", "half-open"):
                report.inconsistencies.append(
                    f"breaker {name} in unknown state {rec['state']!r}"
                )
    report.elapsed = time.monotonic() - t0
    return report
