"""Elastic re-solve of an infeasible EBF: *which* sink bounds conflict?

Per Section 9 of the paper, an infeasible EBF certifies that no LUBT
exists for the topology and bounds — but a bare "infeasible" leaves the
user guessing which of the ``l_i``/``u_i`` windows to move.  This module
answers that with the classic elastic-programming trick: re-solve the
LP with a non-negative slack on every delay row

    sum path(s_0, s_i)  + s_l_i  >=  l_i
    sum path(s_0, s_i)  - s_u_i  <=  u_i

minimizing total slack.  The optimum is the minimal total bound
relaxation that restores feasibility; per-sink slacks name the
conflicting sinks and how far each bound must move.

With a fixed source, the geometric floor ``path >= dist(s_0, s_i)``
stays a *hard* row: no bound relaxation can route a wire shorter than
the Manhattan distance, so keeping it inelastic makes the relaxed
bounds embeddable (Theorem 4.1 carries over) instead of merely
LP-feasible.

Steiner rows are generated lazily (Section 4.6 style) exactly as in the
primal solve, so the diagnosis scales to the same instances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.ebf.bounds import DelayBounds
from repro.ebf.constraints import (
    all_sink_pairs,
    seed_constraint_pairs,
    steiner_violations,
)
from repro.ebf.formulation import add_steiner_rows, edge_var
from repro.geometry import manhattan
from repro.lp import LinearProgram, Sense, solve_lp

_SLACK_TOL = 1e-7
_VIOLATION_TOL = 1e-6


@dataclass(frozen=True)
class SinkRelaxation:
    """Minimal bound movement for one sink.

    ``lower_relax`` is how far ``l_i`` must *drop*, ``upper_relax`` how
    far ``u_i`` must *rise*; zero means that bound is not in conflict.
    """

    sink: int
    lower: float
    upper: float
    lower_relax: float
    upper_relax: float

    @property
    def conflicting(self) -> bool:
        return self.lower_relax > 0.0 or self.upper_relax > 0.0

    @property
    def relaxed_lower(self) -> float:
        return max(0.0, self.lower - self.lower_relax)

    @property
    def relaxed_upper(self) -> float:
        return self.upper + self.upper_relax

    def describe(self) -> str:
        parts = []
        if self.lower_relax > 0.0:
            parts.append(
                f"l={self.lower:g} must drop by {self.lower_relax:g}"
            )
        if self.upper_relax > 0.0:
            parts.append(
                f"u={self.upper:g} must rise by {self.upper_relax:g}"
            )
        return f"sink {self.sink}: " + (", ".join(parts) or "no conflict")


@dataclass(frozen=True)
class InfeasibilityDiagnosis:
    """Why the EBF was infeasible, and the nearest feasible bound set.

    ``relaxations`` covers every sink (most with zero relaxation);
    ``relaxed_bounds`` is a valid :class:`DelayBounds` under which the
    instance is feasible *and embeddable* — re-solving with it is the
    graceful-degradation path.
    """

    relaxations: tuple[SinkRelaxation, ...]
    total_slack: float
    relaxed_bounds: DelayBounds

    @property
    def conflicting(self) -> tuple[SinkRelaxation, ...]:
        return tuple(r for r in self.relaxations if r.conflicting)

    @property
    def conflicting_sinks(self) -> tuple[int, ...]:
        return tuple(r.sink for r in self.conflicting)

    def summary(self) -> str:
        conf = self.conflicting
        if not conf:
            return "no conflicting sink bounds found (instance feasible?)"
        lines = [
            f"{len(conf)} conflicting sink bound(s), "
            f"total relaxation {self.total_slack:g}:"
        ]
        lines += ["  " + r.describe() for r in conf]
        return "\n".join(lines)


def build_elastic_lp(
    topo,
    bounds: DelayBounds,
    *,
    pairs=None,
    zero_edges=(),
) -> tuple[LinearProgram, dict[int, tuple[int | None, int | None]]]:
    """The EBF with per-sink slack on the delay rows, min-total-slack
    objective.  Returns ``(lp, slack_cols)`` with ``slack_cols[i] =
    (lower_slack_col, upper_slack_col)`` (``None`` where a bound needs
    no slack: ``l_i = 0`` or ``u_i = inf``).

    Always feasible: edge lengths can stretch to any Steiner/geometric
    floor, the upper slacks are unbounded, and each lower slack is capped
    at ``l_i`` (so relaxed lower bounds never go negative).
    """
    if bounds.num_sinks != topo.num_sinks:
        raise ValueError("bounds/sink count mismatch")
    lp = LinearProgram()
    for i in range(1, topo.num_nodes):
        lp.add_variable(f"e{i}")  # cost 0: the objective is slack only
    for i in zero_edges:
        lp.fix_variable(edge_var(i), 0.0)

    src = topo.source_location
    slack_cols: dict[int, tuple[int | None, int | None]] = {}
    for i in topo.sink_ids():
        lo, hi = bounds.window(i)
        coeffs = {edge_var(k): 1.0 for k in topo.path_to_root(i)}
        if src is not None:
            lp.add_constraint(
                coeffs,
                Sense.GE,
                manhattan(src, topo.sink_location(i)),
                name=f"delay{i}.geom",
            )
        s_lo = s_hi = None
        if lo > 0.0:
            s_lo = lp.add_variable(f"slack_l{i}", cost=1.0, ub=lo)
            lp.add_constraint(
                {**coeffs, s_lo: 1.0}, Sense.GE, lo, name=f"delay{i}.lo"
            )
        if math.isfinite(hi):
            s_hi = lp.add_variable(f"slack_u{i}", cost=1.0)
            lp.add_constraint(
                {**coeffs, s_hi: -1.0}, Sense.LE, hi, name=f"delay{i}.hi"
            )
        slack_cols[i] = (s_lo, s_hi)

    add_steiner_rows(lp, topo, pairs)
    return lp, slack_cols


def diagnose_infeasibility(
    topo,
    bounds: DelayBounds,
    *,
    zero_edges=(),
    backend: str = "auto",
    mode: str = "lazy",
    batch: int = 4000,
    max_rounds: int = 60,
    slack_tol: float = _SLACK_TOL,
    resilient: bool = False,
    timeout: float | None = None,
) -> InfeasibilityDiagnosis:
    """Solve the elastic EBF and report the minimal per-sink relaxation.

    ``mode``/``batch``/``max_rounds`` mirror :func:`repro.ebf.solve_lubt`
    (lazy Steiner row generation by default).  With ``resilient=True``
    the elastic LP itself goes through the backend fallback chain.
    """
    if mode not in ("lazy", "full"):
        raise ValueError(f"unknown mode {mode!r}")
    pairs = (
        list(all_sink_pairs(topo))
        if mode == "full"
        else list(seed_constraint_pairs(topo))
    )
    lp, slack_cols = build_elastic_lp(
        topo, bounds, pairs=pairs, zero_edges=zero_edges
    )
    # The elastic LP's slack columns fall outside the tree-structured
    # family, so the structure-aware backend does not apply here; a
    # tree-backend caller still gets an identical diagnosis via the
    # generic path.
    if backend == "tree":
        backend = "auto"

    def _solve(model):
        if resilient:
            from repro.resilience.fallback import solve_lp_resilient

            return solve_lp_resilient(model, timeout=timeout).result
        return solve_lp(model, backend)

    n_edges = topo.num_nodes - 1
    result = None
    for _ in range(max_rounds):
        result = _solve(lp).require_optimal()
        e = np.zeros(topo.num_nodes)
        e[1:] = np.maximum(result.x[:n_edges], 0.0)
        violated = steiner_violations(topo, e, _VIOLATION_TOL, limit=batch)
        if not violated:
            break
        add_steiner_rows(lp, topo, [(i, j) for i, j, _ in violated])
    else:
        raise RuntimeError(
            f"elastic row generation did not converge in {max_rounds} rounds"
        )

    scale = 1.0
    finite_hi = bounds.upper[np.isfinite(bounds.upper)]
    if finite_hi.size:
        scale = max(scale, float(np.abs(finite_hi).max()))
    scale = max(scale, float(np.abs(bounds.lower).max(initial=0.0)))
    threshold = slack_tol * scale
    pad = threshold  # cushion so the relaxed re-solve isn't borderline

    x = result.x
    new_lo = bounds.lower.copy()
    new_hi = bounds.upper.copy()
    relaxations = []
    total = 0.0
    for i in topo.sink_ids():
        lo, hi = bounds.window(i)
        s_lo_col, s_hi_col = slack_cols[i]
        sl = float(x[s_lo_col]) if s_lo_col is not None else 0.0
        su = float(x[s_hi_col]) if s_hi_col is not None else 0.0
        sl = sl if sl > threshold else 0.0
        su = su if su > threshold else 0.0
        total += sl + su
        relaxations.append(SinkRelaxation(i, lo, hi, sl, su))
        if sl > 0.0:
            new_lo[i - 1] = max(0.0, lo - sl - pad)
        if su > 0.0:
            new_hi[i - 1] = hi + su + pad
    return InfeasibilityDiagnosis(
        tuple(relaxations), total, DelayBounds(new_lo, new_hi)
    )
