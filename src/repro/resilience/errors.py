"""Exception types for the resilient solve pipeline."""

from __future__ import annotations


class ResilienceError(RuntimeError):
    """Base class for pipeline-level (not model-level) failures."""


class AllBackendsFailedError(ResilienceError):
    """Every backend in the fallback chain failed to produce a definitive
    result.  ``report`` holds the full :class:`~repro.resilience.SolveReport`
    so callers can see exactly what was tried."""

    def __init__(self, report):
        self.report = report
        super().__init__(
            "all LP backends failed:\n" + report.summary()
        )
