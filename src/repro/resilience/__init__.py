"""Resilient solve pipeline: fallback chain, elastic diagnosis, faults.

Production routing runs sit inside larger timing-closure loops that must
degrade gracefully, not die on the first solver hiccup.  This package
hardens the LP -> embed pipeline in three layers:

* :func:`solve_lp_resilient` — a configurable backend cascade
  (simplex -> scipy/HiGHS by default) with per-attempt wall-clock
  timeouts, retry-on-numerical-error with input rescaling, result
  validation (NaN / infeasible "optimal" answers are rejected), and a
  structured :class:`SolveReport` of every attempt;
* :func:`diagnose_infeasibility` — when the EBF is infeasible, an
  elastic re-solve names the conflicting sink bounds and the minimal
  relaxation per bound (:class:`InfeasibilityDiagnosis`), and hands back
  relaxed-but-embeddable bounds for graceful degradation;
* :mod:`repro.resilience.faults` — deterministic fault injection
  wrappers (exceptions, stalls, NaN solutions, wrong statuses) so the
  fallback and retry logic is exercisable in CI, not just in outages;
* :mod:`repro.resilience.breaker` — per-backend circuit breakers
  (closed / open / half-open) that stop paying timeouts for a backend
  that keeps failing, shared by ``solve_lp_resilient`` and the server;
* :mod:`repro.resilience.chaos` — a seeded chaos soak harness
  (:func:`run_chaos`) that abuses a live solve server with overload,
  worker kills, injected backend faults, and protocol garbage while
  asserting zero wrong answers, no hangs, and consistent counters.

Entry points upstack: ``solve_lubt(..., resilient=True,
on_infeasible="diagnose"|"relax")`` and the ``lubt solve --resilient
--diagnose`` CLI flags.  See docs/ROBUSTNESS.md.
"""

from repro.lp.result import BackendCapabilityError
from repro.resilience.breaker import (
    BreakerRegistry,
    CircuitBreaker,
    default_registry,
)
from repro.resilience.errors import AllBackendsFailedError, ResilienceError
from repro.resilience.report import AttemptOutcome, SolveAttempt, SolveReport
from repro.resilience.fallback import (
    DEFAULT_CHAIN,
    backend_chain,
    default_solvers,
    rescale_lp,
    solve_lp_resilient,
)
from repro.resilience.elastic import (
    InfeasibilityDiagnosis,
    SinkRelaxation,
    build_elastic_lp,
    diagnose_infeasibility,
)
from repro.resilience import faults
from repro.resilience.chaos import ChaosConfig, ChaosReport, run_chaos
from repro.resilience.sanitize import (
    LockOrderError,
    LockOrderViolation,
    LockSanitizer,
    StallMonitor,
)

__all__ = [
    "AllBackendsFailedError",
    "AttemptOutcome",
    "BackendCapabilityError",
    "BreakerRegistry",
    "ChaosConfig",
    "ChaosReport",
    "CircuitBreaker",
    "DEFAULT_CHAIN",
    "InfeasibilityDiagnosis",
    "LockOrderError",
    "LockOrderViolation",
    "LockSanitizer",
    "ResilienceError",
    "SinkRelaxation",
    "SolveAttempt",
    "SolveReport",
    "StallMonitor",
    "backend_chain",
    "build_elastic_lp",
    "default_registry",
    "default_solvers",
    "diagnose_infeasibility",
    "faults",
    "rescale_lp",
    "run_chaos",
    "solve_lp_resilient",
]
