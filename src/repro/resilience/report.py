"""Structured records of what the resilient solve pipeline actually did.

Every backend invocation — including ones that crashed, timed out, or
returned garbage — becomes one :class:`SolveAttempt`; the whole cascade
becomes a :class:`SolveReport`.  These are plain data so they can be
logged, asserted on in CI, or rendered in the CLI without re-running
anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lp.result import LpResult


class AttemptOutcome:
    """String constants for :attr:`SolveAttempt.outcome`.

    The first three mirror terminal :class:`~repro.lp.LpStatus` values;
    the rest are pipeline-level failure modes the raw backends cannot
    express.
    """

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"  # backend returned LpStatus.ERROR
    EXCEPTION = "exception"  # backend raised
    TIMEOUT = "timeout"  # per-attempt wall clock exceeded
    INVALID = "invalid-solution"  # "optimal" with NaN/infeasible x
    CANCELLED = "cancelled"  # lost a backend race; result discarded
    SKIPPED = "skipped"  # circuit breaker open; backend never invoked

    #: Outcomes that settle the model's fate — no further attempts needed.
    TERMINAL = frozenset({OPTIMAL, INFEASIBLE, UNBOUNDED})
    #: Outcomes worth a same-backend retry after rescaling (numerics).
    NUMERICAL = frozenset({ERROR, INVALID})
    #: Outcomes a circuit breaker counts against the backend.  Definitive
    #: answers prove the backend works (the model's feasibility is not its
    #: fault); CANCELLED/SKIPPED attempts never ran, so they count neither
    #: way.
    BREAKER_FAILURES = frozenset({ERROR, EXCEPTION, TIMEOUT, INVALID})


@dataclass(frozen=True)
class SolveAttempt:
    """One backend invocation inside a resilient solve."""

    backend: str
    outcome: str
    wall_seconds: float
    rescaled: bool = False
    error: str | None = None
    iterations: int = 0

    @property
    def ok(self) -> bool:
        return self.outcome in AttemptOutcome.TERMINAL

    def describe(self) -> str:
        tag = f"{self.backend}{' (rescaled)' if self.rescaled else ''}"
        note = f" — {self.error}" if self.error else ""
        return f"{tag}: {self.outcome} in {self.wall_seconds:.3f}s{note}"


@dataclass
class SolveReport:
    """The full history of one resilient LP solve.

    ``result`` is the terminal :class:`LpResult` (optimal, infeasible, or
    unbounded — all three are definitive answers about the model), or
    ``None`` when every backend in the chain failed.

    The provenance trio (``instance_key``, ``cache_hit``, ``warm_rows``)
    is stamped by the :mod:`repro.server` dispatch layer so streamed
    telemetry says not just *how* an answer was computed but *where it
    came from*: a cache-served report has ``cache_hit=True`` (and no
    fresh attempts), and ``warm_rows`` counts Steiner rows re-seeded
    from the cross-request warm store before the first LP solve.

    ``breaker_states`` records the per-backend circuit-breaker state
    (``closed`` / ``open`` / ``half-open``) *after* this solve, when a
    :class:`~repro.resilience.breaker.BreakerRegistry` was consulted —
    an ``open`` entry explains any ``skipped`` attempts above it.
    """

    attempts: list[SolveAttempt] = field(default_factory=list)
    result: LpResult | None = None
    #: Canonical instance key of the request this solve answered.
    instance_key: str | None = None
    #: Answer served verbatim from the result cache (no LP ran).
    cache_hit: bool = False
    #: Steiner rows seeded from a cross-request WarmStart carry-over.
    warm_rows: int = 0
    #: Circuit-breaker state per backend after this solve (when a
    #: registry was consulted; empty otherwise).
    breaker_states: dict = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        """True when the chain reached a definitive result."""
        return self.result is not None

    @property
    def num_attempts(self) -> int:
        return len(self.attempts)

    @property
    def backends_tried(self) -> tuple[str, ...]:
        seen: list[str] = []
        for a in self.attempts:
            if a.backend not in seen:
                seen.append(a.backend)
        return tuple(seen)

    @property
    def fallbacks_used(self) -> int:
        """Attempts beyond the first (retries and backend switches)."""
        return max(0, len(self.attempts) - 1)

    def summary(self) -> str:
        lines = [a.describe() for a in self.attempts]
        if self.cache_hit:
            lines.append("=> served from result cache (no LP attempted)")
        elif self.result is None:
            lines.append("=> all backends failed")
        else:
            lines.append(
                f"=> {self.result.status.value} via {self.result.backend}"
            )
            prov = getattr(self.result, "provenance", None)
            if prov:
                lines.append(
                    "   "
                    + ", ".join(f"{k}={prov[k]}" for k in sorted(prov))
                )
        if self.warm_rows:
            lines.append(f"   warm-seeded {self.warm_rows} Steiner rows")
        if self.instance_key:
            lines.append(f"   instance {self.instance_key[:16]}…")
        if self.breaker_states:
            lines.append(
                "   breakers: "
                + ", ".join(
                    f"{name}={state}"
                    for name, state in sorted(self.breaker_states.items())
                )
            )
        return "\n".join(lines)
