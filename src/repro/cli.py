"""``lubt`` command-line interface.

Subcommands map one-to-one onto the experiment drivers:

    lubt solve  --bench prim1 --lower 0.9 --upper 1.1 [--sinks 64]
                [--resilient] [--race] [--lp-timeout S] [--diagnose]
    lubt table1 --bench prim1 [--sinks 64] [--jobs N]
    lubt table2 --bench prim2 --skew 0.5 [--sinks 64] [--jobs N]
    lubt table3 --bench r1 [--sinks 64] [--jobs N]
    lubt fig8   --bench prim2 [--sinks 64] [--plot] [--jobs N]
    lubt cts    --placement FILE [--nets N] [--jobs N] [--topology auto]
                [--journal PATH] [--resume] | --synth NETSxSINKS [--seed S]
    lubt serve  [--port 9155] [--jobs N] [--cache-size 256]
    lubt request --port 9155 --bench prim1 [--op solve|sweep|stats|...]
    lubt chaos  [--seed 1234] [--duration 15] [--clients 3] [--jobs 2]
    lubt benchmarks

``--sinks`` runs the benchmark's scaled view (first N sinks); omit it for
the full paper-scale net.  ``--jobs N`` solves the independent rows of a
table across N worker processes (see :mod:`repro.perf`); the rendered
output is identical to the serial run.  ``table2``/``table3``/``fig8``
accept ``--journal PATH`` (crash-safe per-solve JSONL journal) and
``--resume`` (replay a killed run's completed solves and finish the
rest; the rendered table is byte-identical to an uninterrupted run).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import Table
from repro.data import benchmark_names, load_benchmark
from repro.ebf import DelayBounds
from repro.experiments import (
    render_table1,
    render_table2,
    render_table3,
    render_fig8,
    run_fig8,
    run_table1,
    run_table2,
    run_table3,
)
from repro.geometry import manhattan_radius_from
from repro.topology import nearest_neighbor_topology


def _bench_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--bench",
        default="prim1",
        choices=benchmark_names(),
        help="benchmark surrogate to use",
    )
    parser.add_argument(
        "--sinks",
        type=int,
        default=None,
        help="use only the first N sinks (default: full size)",
    )


def _jobs_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="solve independent rows across N worker processes "
        "(default: 1, serial; output is identical either way)",
    )


def _journal_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="append each completed solve to a crash-safe JSONL journal; "
        "a killed run restarted with --resume replays completed work",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue an existing --journal instead of refusing to "
        "overwrite it",
    )


def _open_journal(args):
    """``--journal/--resume`` -> an open SolveJournal (or None).

    A fresh run refuses a non-empty existing journal unless ``--resume``
    is given: silently mixing two different runs' records in one file is
    exactly the corruption the journal exists to prevent.
    """
    if args.journal is None:
        if args.resume:
            raise SystemExit("--resume requires --journal PATH")
        return None
    from pathlib import Path

    from repro.perf import SolveJournal

    path = Path(args.journal)
    if path.exists() and path.stat().st_size > 0 and not args.resume:
        raise SystemExit(
            f"journal {path} already exists; pass --resume to continue "
            f"it, or delete it to start fresh"
        )
    return SolveJournal(path)


def _close_journal(journal) -> None:
    if journal is not None:
        print(
            f"journal: {journal.replayed} solve(s) replayed, "
            f"{journal.appended} appended ({journal.path})"
        )
        journal.close()


def _load(args) -> object:
    bench = load_benchmark(args.bench)
    if args.sinks is not None:
        bench = bench.scaled(args.sinks)
    return bench


def _cmd_solve(args) -> int:
    from repro.embedding import solve_and_embed
    from repro.resilience import AllBackendsFailedError

    source, sinks, name = _load_instance_sinks(args)
    topo = nearest_neighbor_topology(sinks, source)
    radius = manhattan_radius_from(source, sinks)
    bounds = DelayBounds.uniform(
        len(sinks), args.lower * radius, args.upper * radius
    )
    on_infeasible = "relax" if args.diagnose else "raise"
    try:
        sol, tree = solve_and_embed(
            topo,
            bounds,
            check_bounds=False,
            resilient=args.resilient,
            lp_timeout=args.lp_timeout,
            on_infeasible=on_infeasible,
            race="auto" if args.race else None,
            backend=args.backend,
        )
    except AllBackendsFailedError as exc:
        print("solve failed — every LP backend was exhausted:", file=sys.stderr)
        print(exc.report.summary(), file=sys.stderr)
        return 2
    if sol.diagnosis is not None:
        _print_diagnosis(sol.diagnosis, radius)
    t = Table(["metric", "value"], title=f"LUBT on {name}")
    t.add_row("sinks", len(sinks))
    t.add_row("radius", radius)
    t.add_row("bounds (normalized)", f"[{args.lower}, {args.upper}]")
    if sol.diagnosis is not None:
        t.add_row("bounds relaxed", "yes (see diagnosis above)")
    t.add_row("tree cost", sol.cost)
    t.add_row("shortest delay", sol.shortest_delay / radius)
    t.add_row("longest delay", sol.longest_delay / radius)
    t.add_row("skew", sol.skew / radius)
    t.add_row("LP rounds", sol.stats.rounds)
    t.add_row("Steiner rows used", sol.stats.steiner_rows)
    t.add_row("of possible", sol.stats.total_pairs)
    t.add_row("backend", sol.stats.backend)
    if sol.stats.restricted_master_rounds:
        t.add_row("dual iterations", sol.stats.dual_iterations)
        t.add_row("DP passes", sol.stats.dp_passes)
        t.add_row("master rounds", sol.stats.restricted_master_rounds)
    t.add_row("LP seconds", f"{sol.stats.lp_seconds:.4f}")
    t.add_row("embed seconds", f"{sol.stats.embed_seconds:.4f}")
    if args.resilient or args.race:
        t.add_row("LP fallbacks", sol.stats.lp_fallbacks)
    if args.race:
        from collections import Counter

        wins = Counter(
            r.result.backend
            for r in sol.solve_reports
            if r.result is not None
        )
        cancelled = sum(
            1
            for r in sol.solve_reports
            for a in r.attempts
            if a.outcome == "cancelled"
        )
        t.add_row(
            "race winners",
            ", ".join(f"{b} x{n}" for b, n in sorted(wins.items()))
            + f" ({cancelled} cancelled)",
        )
    print(t)
    if sol.diagnosis is not None:
        # Graceful degradation must end in a routable tree, not just an
        # LP answer; the embedded relaxed tree proves it.
        print(
            f"embedded relaxed tree: {len(tree.placements)} nodes, "
            f"drawn wirelength {tree.drawn_wirelength:,.1f}"
        )
    return 0


def _print_diagnosis(diag, radius: float) -> None:
    t = Table(
        ["sink", "lower/r", "upper/r", "lower -", "upper +"],
        title="infeasibility diagnosis (minimal bound relaxation)",
    )
    for r in diag.conflicting:
        t.add_row(
            f"s{r.sink}",
            r.lower / radius,
            r.upper / radius,
            r.lower_relax / radius,
            r.upper_relax / radius,
        )
    print("bounds are infeasible — no LUBT exists (Section 9 certificate)")
    print(t)
    print(
        f"total relaxation {diag.total_slack / radius:.4f} x radius across "
        f"{len(diag.conflicting)} sink(s); re-solving with relaxed bounds"
    )


def _load_instance_sinks(args) -> tuple[object, list, str]:
    """Shared ``--bench``/``--file`` instance loading for solve/check."""
    if getattr(args, "file", None):
        from repro.data import load_sinks_file
        from repro.geometry import Point, bounding_box

        source, sinks, _ = load_sinks_file(args.file)
        if source is None:
            xmin, ymin, xmax, ymax = bounding_box(sinks)
            source = Point((xmin + xmax) / 2, (ymin + ymax) / 2)
        return source, sinks, args.file
    bench = _load(args)
    return bench.source, list(bench.sinks), bench.name


def _check_one(topo, bounds, *, with_lp: bool = True):
    """Run the staged static check: topology + bounds first, then —
    errors or not — attempt the LP build so LP-level findings (and any
    BD006 collapse emitted during assembly) land in the same report."""
    from repro.check import CheckResult, check_instance, collect
    from repro.ebf.formulation import build_ebf_lp

    result = check_instance(topo, bounds)
    build_error = None
    if with_lp:
        lp = None
        with collect() as emitted:
            try:
                lp = build_ebf_lp(topo, bounds)
            except Exception as exc:  # noqa: BLE001 — reporting boundary:
                # the instance is arbitrary and possibly broken by design
                build_error = f"{type(exc).__name__}: {exc}"
        diags = list(result.diagnostics) + emitted
        if lp is not None:
            diags += check_instance(lp=lp).diagnostics
        result = CheckResult(tuple(diags))
    return result, build_error


def _cmd_check(args) -> int:
    import json as _json

    source, sinks, name = _load_instance_sinks(args)
    radius = manhattan_radius_from(source, sinks)
    topo = nearest_neighbor_topology(sinks, source)
    # Deliberately *unchecked*: `lubt check` must be able to represent
    # the broken window it is asked to diagnose.
    lower = [args.lower * radius] * len(sinks)
    upper = [args.upper * radius] * len(sinks)
    bounds = DelayBounds.unchecked(lower, upper)

    if args.suite == "table1":
        payload, failed = _check_table1_suite(args, name)
    else:
        result, build_error = _check_one(topo, bounds)
        payload = {
            "instance": name,
            "sinks": len(sinks),
            **result.to_json_dict(),
        }
        if build_error is not None:
            payload["build_error"] = build_error
        failed = not result.ok or build_error is not None
        if not args.json:
            print(f"checking {name} ({len(sinks)} sinks)")
            print(result.summary())
            if build_error is not None:
                print(f"LP build failed: {build_error}")
    if args.json:
        print(_json.dumps(payload, indent=2, sort_keys=True))
    if args.fail_on_warning and not failed:
        failed = payload["counts"]["warning"] > 0 if "counts" in payload else any(
            row["counts"]["warning"] for row in payload.get("rows", ())
        )
    return 1 if failed else 0


def _check_table1_suite(args, name: str) -> tuple[dict, bool]:
    """Statically verify every (topology, bounds) pair Table 1 would
    solve: baseline topology + realized-delay windows per skew bound."""
    from repro.baselines import bounded_skew_tree
    from repro.experiments.table1 import PAPER_SKEW_BOUNDS
    import math

    bench = _load(args)
    sinks = list(bench.sinks)
    radius = manhattan_radius_from(bench.source, sinks)
    rows = []
    failed = False
    counts = {"error": 0, "warning": 0, "info": 0}
    for skew in PAPER_SKEW_BOUNDS:
        bound_abs = skew * radius if math.isfinite(skew) else math.inf
        base = bounded_skew_tree(sinks, bound_abs, bench.source, verify=False)
        bounds = DelayBounds.uniform(
            bench.num_sinks, base.shortest_delay, base.longest_delay
        )
        result, build_error = _check_one(base.topology, bounds)
        row = {
            "skew_bound": skew if math.isfinite(skew) else "inf",
            **result.to_json_dict(),
        }
        if build_error is not None:
            row["build_error"] = build_error
        rows.append(row)
        for k in counts:
            counts[k] += row["counts"][k]
        failed = failed or not result.ok or build_error is not None
        if not args.json:
            print(f"skew bound {skew:g}: {result.summary().splitlines()[-1]}")
    return {"instance": name, "suite": "table1", "counts": counts,
            "ok": not failed, "rows": rows}, failed


def _cmd_table1(args) -> int:
    print(render_table1(run_table1(_load(args), jobs=args.jobs)))
    return 0


def _cmd_table2(args) -> int:
    journal = _open_journal(args)
    try:
        rows = run_table2(
            _load(args), args.skew, jobs=args.jobs, journal=journal
        )
    finally:
        _close_journal(journal)
    print(render_table2(rows))
    return 0


def _cmd_table3(args) -> int:
    journal = _open_journal(args)
    try:
        rows = run_table3(_load(args), jobs=args.jobs, journal=journal)
    finally:
        _close_journal(journal)
    print(render_table3(rows))
    return 0


def _cmd_fig8(args) -> int:
    journal = _open_journal(args)
    try:
        points = run_fig8(_load(args), jobs=args.jobs, journal=journal)
    finally:
        _close_journal(journal)
    print(render_fig8(points))
    if args.plot:
        from repro.experiments.fig8 import ascii_plot

        print()
        print(ascii_plot(points))
    return 0


def _parse_synth_spec(spec: str) -> tuple[int, int]:
    """``"256x8"`` -> ``(256, 8)`` (nets x sinks-per-net)."""
    nets, sep, sinks = spec.lower().partition("x")
    if not sep:
        raise SystemExit(
            f"bad --synth spec {spec!r} (expected NETSxSINKS, e.g. 256x8)"
        )
    try:
        return int(nets), int(sinks)
    except ValueError:
        raise SystemExit(
            f"bad --synth spec {spec!r} (expected NETSxSINKS, e.g. 256x8)"
        ) from None


def _cmd_cts(args) -> int:
    from repro.data import parse_placement_map, synth_placement
    from repro.perf import run_cts

    if (args.placement is None) == (args.synth is None):
        raise SystemExit("pass exactly one of --placement FILE / --synth NxM")
    if args.placement is not None:
        placement = parse_placement_map(args.placement)
        label = args.placement
    else:
        n, m = _parse_synth_spec(args.synth)
        placement = synth_placement(nets=n, sinks_per_net=m, seed=args.seed)
        label = f"synth {n}x{m} (seed {args.seed})"
    journal = _open_journal(args)
    progress = None
    if args.progress:
        done = [0]

        def progress(r) -> None:
            done[0] += 1
            print(
                f"  [{done[0]}] {r.name}: "
                + (f"cost {r.cost:,.1f}" if r.ok else f"FAILED ({r.error})"),
                flush=True,
            )

    try:
        report = run_cts(
            placement,
            jobs=args.jobs,
            timeout=args.timeout,
            journal=journal,
            topology=args.topology,
            lower=args.lower,
            upper=args.upper,
            nets=args.nets,
            on_net=progress,
        )
    finally:
        _close_journal(journal)
    print(f"placement: {label}")
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_chaos(args) -> int:
    from repro.resilience.chaos import ChaosConfig, run_chaos

    config = ChaosConfig(
        seed=args.seed,
        duration=args.duration,
        clients=args.clients,
        jobs=args.jobs,
        sinks=args.sinks,
        points=args.points,
        max_inflight=args.max_inflight,
        queue_limit=args.queue_limit,
        kill_workers=not args.no_kill,
        sanitize=args.sanitize,
        stall_threshold=args.stall_threshold,
    )
    report = run_chaos(config)
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_sensitivity(args) -> int:
    from repro.analysis import delay_sensitivities

    bench = _load(args)
    sinks = list(bench.sinks)
    topo = nearest_neighbor_topology(sinks, bench.source)
    radius = manhattan_radius_from(bench.source, sinks)
    bounds = DelayBounds.uniform(
        bench.num_sinks, args.lower * radius, args.upper * radius
    )
    sol, sens = delay_sensitivities(topo, bounds, check_bounds=False)
    t = Table(
        ["sink", "delay/r", "binding", "d cost/d l", "d cost/d u"],
        title=f"delay-bound shadow prices on {bench.name} "
        f"(cost {sol.cost:,.1f})",
    )
    for s in sorted(sens, key=lambda s: -(abs(s.lower_price) + abs(s.upper_price))):
        binding = (
            "lower" if s.lower_binding else "upper" if s.upper_binding else "-"
        )
        t.add_row(f"s{s.sink}", s.delay / radius, binding, s.lower_price, s.upper_price)
    print(t)
    return 0


def _cmd_zeroskew(args) -> int:
    from repro.ebf import solve_zero_skew

    bench = _load(args)
    sinks = list(bench.sinks)
    topo = nearest_neighbor_topology(sinks, bench.source)
    radius = manhattan_radius_from(bench.source, sinks)
    sol = solve_zero_skew(topo)
    t = Table(["metric", "value"], title=f"zero-skew tree on {bench.name}")
    t.add_row("sinks", bench.num_sinks)
    t.add_row("tree cost", sol.cost)
    t.add_row("common delay", sol.delay)
    t.add_row("delay / radius", sol.delay / radius)
    print(t)
    return 0


def _cmd_svg(args) -> int:
    from repro.analysis import save_svg
    from repro.embedding import solve_and_embed

    bench = _load(args)
    sinks = list(bench.sinks)
    topo = nearest_neighbor_topology(sinks, bench.source)
    radius = manhattan_radius_from(bench.source, sinks)
    bounds = DelayBounds.uniform(
        bench.num_sinks, args.lower * radius, args.upper * radius
    )
    sol, tree = solve_and_embed(topo, bounds, check_bounds=False)
    save_svg(args.output, tree, label_sinks=bench.num_sinks <= 40)
    print(
        f"wrote {args.output} (cost {sol.cost:,.1f}, "
        f"skew {sol.skew / radius:.3f} x radius)"
    )
    return 0


def _cmd_serve(args) -> int:
    from repro.server import SolveServer

    server = SolveServer(
        args.host,
        args.port,
        jobs=args.jobs,
        cache_size=args.cache_size,
        solve_timeout=args.solve_timeout,
    )

    async def _amain() -> None:
        await server.start()
        mode = (
            f"{args.jobs} resident workers" if args.jobs > 1
            else "inline solves"
        )
        print(
            f"lubt solve server listening on {server.host}:{server.port} "
            f"({mode}, cache {args.cache_size})",
            flush=True,
        )
        await server.serve_until_shutdown()

    import asyncio

    try:
        asyncio.run(_amain())
    except KeyboardInterrupt:
        pass
    return 0


def _parse_windows(spec: str) -> list[tuple[float, float]]:
    """``"0.5:1.2,0.7:1.2"`` -> ``[(0.5, 1.2), (0.7, 1.2)]``."""
    windows = []
    for part in spec.split(","):
        lo, _, hi = part.partition(":")
        if not _:
            raise ValueError(f"bad window {part!r} (expected LOWER:UPPER)")
        windows.append((float(lo), float(hi)))
    return windows


def _cmd_request(args) -> int:
    import json as _json

    from repro.server import ServerClient, ServerError

    with ServerClient(args.host, args.port, timeout=args.timeout) as client:
        if args.op in ("ping", "stats", "shutdown"):
            reply = getattr(client, args.op)()
            print(_json.dumps(reply, indent=2, sort_keys=True))
            return 0

        source, sinks, name = _load_instance_sinks(args)
        topo = nearest_neighbor_topology(sinks, source)
        radius = manhattan_radius_from(source, sinks)
        try:
            if args.op == "sweep":
                blist = [
                    DelayBounds.uniform(
                        len(sinks), lo * radius, hi * radius
                    )
                    for lo, hi in _parse_windows(args.windows)
                ]
                points, done = client.sweep(topo, blist)
                t = Table(
                    ["window", "cost", "cache", "warm rows"],
                    title=f"server sweep of {name}",
                )
                for (lo, hi), p in zip(_parse_windows(args.windows), points):
                    if not p.get("ok", False):
                        t.add_row(f"[{lo}, {hi}]", f"error: {p['error']}", "", "")
                        continue
                    t.add_row(
                        f"[{lo}, {hi}]",
                        p["result"]["cost"],
                        "hit" if p["cache_hit"] else "miss",
                        p["warm_rows"],
                    )
                print(t)
                print(
                    f"{done['points']} points, {done['cache_hits']} cache "
                    f"hits, {done['warm_rows_total']} warm rows total"
                )
                return 1 if done["errors"] else 0
            reply = client.solve(
                topo,
                DelayBounds.uniform(
                    len(sinks), args.lower * radius, args.upper * radius
                ),
            )
        except ServerError as exc:
            print(f"server refused the request: {exc}", file=sys.stderr)
            return 2
    res = reply["result"]
    t = Table(["metric", "value"], title=f"served LUBT on {name}")
    t.add_row("sinks", len(sinks))
    t.add_row("tree cost", res["cost"])
    t.add_row("skew", res["skew"] / radius)
    t.add_row("backend", res["stats"]["backend"])
    t.add_row("served from cache", "yes" if reply["cache_hit"] else "no")
    t.add_row("warm-seeded rows", reply["warm_rows"])
    t.add_row("instance key", reply["instance_key"][:16] + "…")
    print(t)
    return 0


def _cmd_benchmarks(_args) -> int:
    t = Table(["name", "sinks", "description"], title="benchmark surrogates")
    for name in benchmark_names():
        b = load_benchmark(name)
        t.add_row(b.name, b.num_sinks, b.description)
    print(t)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lubt",
        description="LUBT (bounded-delay routing trees via LP) experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("solve", help="solve one LUBT instance")
    _bench_arg(p)
    p.add_argument("--lower", type=float, default=0.8, help="lower bound / radius")
    p.add_argument("--upper", type=float, default=1.2, help="upper bound / radius")
    p.add_argument(
        "--file",
        default=None,
        help="load sinks from a pin-list/CSV file instead of a surrogate",
    )
    p.add_argument(
        "--backend",
        choices=("auto", "simplex", "scipy", "tree"),
        default="auto",
        help="LP backend: 'tree' uses the structure-aware collapsed "
        "solve (fastest at 1k+ sinks); 'auto' picks a generic backend "
        "by size",
    )
    p.add_argument(
        "--resilient",
        action="store_true",
        help="solve LPs through the backend fallback chain "
        "(simplex -> scipy -> tree, with retries)",
    )
    p.add_argument(
        "--race",
        action="store_true",
        help="race the LP backends concurrently and take the first "
        "definitive answer (losers are cancelled and recorded)",
    )
    p.add_argument(
        "--lp-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-attempt LP wall-clock limit (resilient mode)",
    )
    p.add_argument(
        "--diagnose",
        action="store_true",
        help="on infeasible bounds, print the elastic infeasibility "
        "diagnosis and solve under the minimal relaxation",
    )
    p.set_defaults(func=_cmd_solve)

    p = sub.add_parser(
        "check",
        help="statically verify an instance before solving "
        "(typed LP/TP/BD diagnostics; exit 1 on errors)",
    )
    _bench_arg(p)
    p.add_argument("--lower", type=float, default=0.8, help="lower bound / radius")
    p.add_argument("--upper", type=float, default=1.2, help="upper bound / radius")
    p.add_argument(
        "--file",
        default=None,
        help="check sinks from a pin-list/CSV file instead of a surrogate",
    )
    p.add_argument(
        "--suite",
        choices=("none", "table1"),
        default="none",
        help="check every (topology, bounds) pair an experiment suite "
        "would solve instead of a single instance",
    )
    p.add_argument(
        "--json", action="store_true", help="machine-readable report on stdout"
    )
    p.add_argument(
        "--fail-on-warning",
        action="store_true",
        help="exit nonzero on warnings too (default: errors only)",
    )
    p.set_defaults(func=_cmd_check)

    p = sub.add_parser("table1", help="reproduce Table 1 for one benchmark")
    _bench_arg(p)
    _jobs_arg(p)
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("table2", help="reproduce Table 2 for one benchmark")
    _bench_arg(p)
    _jobs_arg(p)
    _journal_args(p)
    p.add_argument("--skew", type=float, default=0.5, help="skew bound / radius")
    p.set_defaults(func=_cmd_table2)

    p = sub.add_parser("table3", help="reproduce Table 3 for one benchmark")
    _bench_arg(p)
    _jobs_arg(p)
    _journal_args(p)
    p.set_defaults(func=_cmd_table3)

    p = sub.add_parser("fig8", help="reproduce the Figure 8 tradeoff sweep")
    _bench_arg(p)
    _jobs_arg(p)
    _journal_args(p)
    p.add_argument("--plot", action="store_true", help="also print an ASCII plot")
    p.set_defaults(func=_cmd_fig8)

    p = sub.add_parser(
        "cts",
        help="chip-scale clock-tree flow: solve every clock net of a "
        "placement as one batch on the resident scheduler",
    )
    p.add_argument(
        "--placement",
        default=None,
        metavar="FILE",
        help="placement.map file (cells + I/O ports; clock nets are "
        "grouped from the mapped register names)",
    )
    p.add_argument(
        "--synth",
        default=None,
        metavar="NxM",
        help="generate a seeded synthetic placement with N clock nets "
        "of M sinks each instead of reading a file (e.g. 1024x8)",
    )
    p.add_argument(
        "--seed", type=int, default=0, help="seed for --synth (default 0)"
    )
    p.add_argument(
        "--nets",
        type=int,
        default=None,
        metavar="N",
        help="solve only the first N clock nets (default: all)",
    )
    _jobs_arg(p)
    _journal_args(p)
    p.add_argument(
        "--topology",
        choices=("auto", "nn", "bipartition", "htree"),
        default="auto",
        help="per-net topology builder; 'auto' picks by sink count "
        "(nn <=32, bipartition <=256, htree beyond)",
    )
    p.add_argument("--lower", type=float, default=0.8, help="lower bound / radius")
    p.add_argument("--upper", type=float, default=1.2, help="upper bound / radius")
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-net kill-on-timeout (scoped to the offending net; "
        "chunk survivors are resubmitted)",
    )
    p.add_argument(
        "--progress",
        action="store_true",
        help="print each net as it completes (completion order)",
    )
    p.set_defaults(func=_cmd_cts)

    p = sub.add_parser(
        "chaos",
        help="seeded chaos soak: abuse a live solve server with "
        "overload, worker kills, backend faults, and protocol garbage; "
        "exit 0 iff zero wrong answers, no hangs, consistent counters",
    )
    p.add_argument("--seed", type=int, default=1234)
    p.add_argument(
        "--duration", type=float, default=15.0,
        help="soak length in seconds (total run is bounded by roughly "
        "this plus startup/teardown)",
    )
    p.add_argument("--clients", type=int, default=3, metavar="N")
    p.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="server worker processes (>1 enables worker killing)",
    )
    p.add_argument("--sinks", type=int, default=7, metavar="N")
    p.add_argument(
        "--points", type=int, default=4, metavar="N",
        help="known-answer bound windows in the instance family",
    )
    p.add_argument(
        "--max-inflight", type=int, default=1, metavar="N",
        help="admission-control concurrency (small values force sheds)",
    )
    p.add_argument("--queue-limit", type=int, default=1, metavar="N")
    p.add_argument(
        "--no-kill", action="store_true",
        help="do not SIGKILL pool workers during the soak",
    )
    p.add_argument(
        "--sanitize", action="store_true",
        help="run under the runtime sanitizer harness: instrumented "
        "locks (lock-order cycles fail the run) plus an event-loop "
        "stall detector in the server",
    )
    p.add_argument(
        "--stall-threshold", type=float, default=0.5, metavar="SEC",
        help="loop-stall report threshold with --sanitize (seconds)",
    )
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "sensitivity", help="per-sink delay-bound shadow prices (LP duals)"
    )
    _bench_arg(p)
    p.add_argument("--lower", type=float, default=0.9, help="lower bound / radius")
    p.add_argument("--upper", type=float, default=1.1, help="upper bound / radius")
    p.set_defaults(func=_cmd_sensitivity)

    p = sub.add_parser("zeroskew", help="exact zero-skew tree (Sec. 4.6)")
    _bench_arg(p)
    p.set_defaults(func=_cmd_zeroskew)

    p = sub.add_parser("svg", help="solve and export the tree as SVG")
    _bench_arg(p)
    p.add_argument("--lower", type=float, default=0.8)
    p.add_argument("--upper", type=float, default=1.2)
    p.add_argument("--output", default="lubt_tree.svg")
    p.set_defaults(func=_cmd_svg)

    p = sub.add_parser(
        "serve",
        help="run a resident solve server (JSON-lines protocol; "
        "instance cache + cross-request warm starts)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=9155,
        help="listening port (0 picks a free one; printed at startup)",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="resident solve workers (1 = solve inline in the server)",
    )
    p.add_argument(
        "--cache-size",
        type=int,
        default=256,
        metavar="N",
        help="result-cache capacity in instances (0 disables caching)",
    )
    p.add_argument(
        "--solve-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="hard per-request wall-clock limit (worker-pool mode)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "request", help="send one request to a running solve server"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=9155)
    p.add_argument(
        "--timeout", type=float, default=300.0, help="socket timeout (s)"
    )
    p.add_argument(
        "--op",
        choices=("solve", "sweep", "ping", "stats", "shutdown"),
        default="solve",
    )
    _bench_arg(p)
    p.add_argument("--lower", type=float, default=0.8, help="lower bound / radius")
    p.add_argument("--upper", type=float, default=1.2, help="upper bound / radius")
    p.add_argument(
        "--file",
        default=None,
        help="load sinks from a pin-list/CSV file instead of a surrogate",
    )
    p.add_argument(
        "--windows",
        default="0.5:1.2,0.7:1.2,0.9:1.2",
        help="sweep windows as LOWER:UPPER[,LOWER:UPPER...] (x radius)",
    )
    p.set_defaults(func=_cmd_request)

    p = sub.add_parser("benchmarks", help="list benchmark surrogates")
    p.set_defaults(func=_cmd_benchmarks)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
