"""Readers for common clock-net benchmark file formats.

The original ``prim1/prim2`` (MCNC) and ``r1-r5`` (Tsay) coordinate files
are not redistributable, but they circulate in a handful of simple text
shapes.  These loaders accept the common ones, so anyone holding the real
files can reproduce the paper's tables on them directly:

* **pin list** — one pin per line, ``x y`` or ``name x y`` or
  ``x y load_cap``; lines starting with ``#`` are comments;
* an optional ``source x y`` (or ``src``/``root``) line anywhere marks
  the clock source; otherwise the first pin is taken as the source when
  ``first_is_source=True``;
* **CSV** — header ``x,y[,cap][,kind]`` with ``kind`` in
  ``{source, sink}``.

Loaders return ``(source | None, sinks, sink_caps)`` ready for the
topology generators.  ``sink_caps`` is keyed by **0-based index into the
returned ``sinks`` list** — ``caps.get(i)`` lines up with
``enumerate(sinks)``.  :class:`repro.delay.ElmoreParameters` keys loads
by 1-based sink *node id* instead; use :func:`caps_by_node_id` to
convert.

A cap attached to a pin that ends up as the *source* (the promoted first
pin under ``first_is_source=True``) is a :class:`FormatError`: the
source has no sink load, and silently dropping data a file spells out is
worse than refusing it.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.geometry import Point

_SOURCE_TOKENS = {"source", "src", "root"}


class FormatError(ValueError):
    """Raised when a benchmark file cannot be parsed."""


def load_pin_list(
    path: str | Path, first_is_source: bool = False
) -> tuple[Point | None, list[Point], dict[int, float]]:
    """Parse the whitespace pin-list format (see module docstring)."""
    source: Point | None = None
    sinks: list[Point] = []
    caps: dict[int, float] = {}

    for lineno, raw in enumerate(Path(path).read_text().splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        if tokens[0].lower() in _SOURCE_TOKENS:
            if len(tokens) != 3:
                raise FormatError(f"{path}:{lineno}: source needs 'source x y'")
            if source is not None:
                raise FormatError(f"{path}:{lineno}: duplicate source line")
            source = Point(_num(tokens[1], path, lineno), _num(tokens[2], path, lineno))
            continue
        # Strip a leading non-numeric name token.
        if not _is_number(tokens[0]):
            tokens = tokens[1:]
        if len(tokens) not in (2, 3):
            raise FormatError(
                f"{path}:{lineno}: expected 'x y' or 'x y cap', got {raw!r}"
            )
        p = Point(_num(tokens[0], path, lineno), _num(tokens[1], path, lineno))
        sinks.append(p)
        if len(tokens) == 3:
            # Key by the pin's 0-based position in `sinks` (pre-append
            # length), matching enumerate(sinks) on the returned list.
            caps[len(sinks) - 1] = _num(tokens[2], path, lineno)

    if not sinks:
        raise FormatError(f"{path}: no pins found")
    if source is None and first_is_source:
        source = sinks.pop(0)
        if 0 in caps:
            raise FormatError(
                f"{path}: first pin is promoted to the source "
                f"(first_is_source=True) but carries a load cap "
                f"{caps[0]:g} — a source has no sink load; drop the cap "
                f"or use an explicit 'source x y' line"
            )
        caps = {i - 1: c for i, c in caps.items()}
    return source, sinks, caps


def load_csv(
    path: str | Path,
) -> tuple[Point | None, list[Point], dict[int, float]]:
    """Parse the CSV format with an ``x,y[,cap][,kind]`` header."""
    source: Point | None = None
    sinks: list[Point] = []
    caps: dict[int, float] = {}
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None or not {"x", "y"} <= {
            f.strip().lower() for f in reader.fieldnames
        }:
            raise FormatError(f"{path}: CSV needs at least 'x,y' columns")
        for lineno, row in enumerate(reader, 2):
            row = {k.strip().lower(): (v or "").strip() for k, v in row.items()}
            p = Point(_num(row["x"], path, lineno), _num(row["y"], path, lineno))
            kind = row.get("kind", "sink").lower() or "sink"
            if kind in _SOURCE_TOKENS:
                if source is not None:
                    raise FormatError(f"{path}:{lineno}: duplicate source row")
                if row.get("cap"):
                    raise FormatError(
                        f"{path}:{lineno}: source row carries a load cap "
                        f"{row['cap']!r} — a source has no sink load"
                    )
                source = p
                continue
            if kind != "sink":
                raise FormatError(f"{path}:{lineno}: unknown kind {kind!r}")
            sinks.append(p)
            if row.get("cap"):
                caps[len(sinks) - 1] = _num(row["cap"], path, lineno)
    if not sinks:
        raise FormatError(f"{path}: no sink rows")
    return source, sinks, caps


def load_sinks_file(
    path: str | Path, first_is_source: bool = False
) -> tuple[Point | None, list[Point], dict[int, float]]:
    """Auto-detect the file format by extension (.csv vs pin list)."""
    if str(path).lower().endswith(".csv"):
        return load_csv(path)
    return load_pin_list(path, first_is_source=first_is_source)


def caps_by_node_id(caps: dict[int, float]) -> dict[int, float]:
    """Reindex loader caps (0-based sink-list index) to 1-based sink node
    ids, the convention :class:`repro.delay.ElmoreParameters` uses."""
    return {i + 1: c for i, c in caps.items()}


def _is_number(token: str) -> bool:
    try:
        float(token)
        return True
    except ValueError:
        return False


def _num(token: str, path, lineno: int) -> float:
    try:
        return float(token)
    except ValueError:
        raise FormatError(f"{path}:{lineno}: not a number: {token!r}") from None
