"""The four benchmark surrogates used by the paper's tables.

Sink counts follow the originals: MCNC ``prim1`` (269 sinks) and ``prim2``
(603), Tsay ``r1`` (267) and ``r3`` (862).  ``prim*`` use clustered
placements on a ~7000x7000 die (standard-cell style); ``r*`` use uniform
placements on a much larger die (the Tsay nets are chip-scale clock
nets).  Each benchmark also ships a deterministic ``scaled(m)`` view so
quick test runs can use the same distribution at a fraction of the size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.generators import clustered_sinks, uniform_sinks
from repro.geometry import Point


@dataclass(frozen=True)
class Benchmark:
    """A named sink placement with a source location."""

    name: str
    sinks: tuple[Point, ...]
    source: Point
    paper_sink_count: int
    description: str

    @property
    def num_sinks(self) -> int:
        return len(self.sinks)

    def scaled(self, count: int) -> "Benchmark":
        """The first ``count`` sinks — same spatial process, smaller net."""
        if not (1 <= count <= len(self.sinks)):
            raise ValueError(f"count must be in [1, {len(self.sinks)}]")
        return Benchmark(
            f"{self.name}[{count}]",
            self.sinks[:count],
            self.source,
            self.paper_sink_count,
            self.description,
        )


def _make(name, count, seed, kind, width, height, description) -> Benchmark:
    if kind == "clustered":
        pts = clustered_sinks(count, seed, clusters=8, width=width, height=height)
    else:
        pts = uniform_sinks(count, seed, width=width, height=height)
    return Benchmark(
        name, tuple(pts), Point(width / 2.0, height / 2.0), count, description
    )


#: Deterministic surrogates (seed fixed per benchmark).
BENCHMARKS: dict[str, Benchmark] = {
    b.name: b
    for b in (
        _make(
            "prim1", 269, 19960101, "clustered", 7000.0, 7000.0,
            "surrogate for MCNC primary1 clock net (269 sinks)",
        ),
        _make(
            "prim2", 603, 19960102, "clustered", 10000.0, 10000.0,
            "surrogate for MCNC primary2 clock net (603 sinks)",
        ),
        _make(
            "r1", 267, 19960103, "uniform", 100_000.0, 100_000.0,
            "surrogate for Tsay r1 clock net (267 sinks)",
        ),
        _make(
            "r2", 598, 19960105, "uniform", 100_000.0, 100_000.0,
            "surrogate for Tsay r2 clock net (598 sinks)",
        ),
        _make(
            "r3", 862, 19960104, "uniform", 100_000.0, 100_000.0,
            "surrogate for Tsay r3 clock net (862 sinks)",
        ),
        _make(
            "r4", 1903, 19960106, "uniform", 100_000.0, 100_000.0,
            "surrogate for Tsay r4 clock net (1903 sinks)",
        ),
        _make(
            "r5", 3101, 19960107, "uniform", 100_000.0, 100_000.0,
            "surrogate for Tsay r5 clock net (3101 sinks)",
        ),
    )
}

#: The four benchmarks the paper's tables actually use.
PAPER_BENCHMARKS = ("prim1", "prim2", "r1", "r3")


def benchmark_names() -> list[str]:
    return list(BENCHMARKS)


def load_benchmark(name: str) -> Benchmark:
    """Look up a benchmark surrogate by paper name (``prim1`` etc.)."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {', '.join(BENCHMARKS)}"
        ) from None
