"""Seeded synthetic sink-placement generators."""

from __future__ import annotations

import numpy as np

from repro.geometry import Point


def uniform_sinks(
    count: int, seed: int, width: float = 10_000.0, height: float = 10_000.0
) -> list[Point]:
    """``count`` sinks uniform over a ``width x height`` die."""
    if count < 1:
        raise ValueError("count must be positive")
    rng = np.random.default_rng(seed)
    xs = rng.uniform(0.0, width, count)
    ys = rng.uniform(0.0, height, count)
    return [Point(float(x), float(y)) for x, y in zip(xs, ys)]


def clustered_sinks(
    count: int,
    seed: int,
    clusters: int = 6,
    width: float = 10_000.0,
    height: float = 10_000.0,
    spread: float = 0.08,
) -> list[Point]:
    """Sinks in Gaussian clusters — closer to real macro-block pin maps
    than a uniform sprinkle.  ``spread`` is the cluster sigma as a
    fraction of the die dimension; points are clamped to the die.
    """
    if count < 1 or clusters < 1:
        raise ValueError("count and clusters must be positive")
    rng = np.random.default_rng(seed)
    centers = rng.uniform([0.15 * width, 0.15 * height],
                          [0.85 * width, 0.85 * height], (clusters, 2))
    assignment = rng.integers(0, clusters, count)
    pts = centers[assignment] + rng.normal(
        0.0, [spread * width, spread * height], (count, 2)
    )
    pts[:, 0] = np.clip(pts[:, 0], 0.0, width)
    pts[:, 1] = np.clip(pts[:, 1], 0.0, height)
    return [Point(float(x), float(y)) for x, y in pts]


def grid_sinks(
    rows: int, cols: int, pitch: float = 100.0, jitter: float = 0.0, seed: int = 0
) -> list[Point]:
    """A regular ``rows x cols`` grid (optionally jittered) — handy for
    tests and examples where symmetric structure aids reasoning."""
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be positive")
    rng = np.random.default_rng(seed)
    out = []
    for r in range(rows):
        for c in range(cols):
            dx = dy = 0.0
            if jitter > 0:
                dx, dy = rng.uniform(-jitter, jitter, 2)
            out.append(Point(c * pitch + dx, r * pitch + dy))
    return out
