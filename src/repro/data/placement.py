"""``placement.map`` reader: whole-design placements and clock nets.

The chip-scale CTS flow starts from a *placement* — every cell of a
design with its type and die coordinates — rather than a single net's
sink list.  This module parses the ``placement.map`` idiom used by
structured-ASIC flows (one line per fabric cell, ``->`` mapping it to
the logical cell it implements), extracts the clocked cells, groups
them into per-driver clock nets, and claims unused buffer cells as net
drivers — turning one file into the thousands of independent LUBT
instances that :mod:`repro.perf.cts` pushes through the batch
scheduler.

File format (``#`` starts a comment anywhere)::

    grid 40 40                              # optional fabric grid dims
    clk 0.0 7000.0                          # I/O port: name x y
    cell_0_0 DFFQX1 120.0 340.0 -> core0.alu.r0_reg
    cell_0_1 BUFX4  180.0 340.0 -> UNUSED   # unused fabric resource

* a **fabric cell** line is ``name type x y -> mapped``; ``UNUSED``
  marks a free resource (CTS may claim it as a clock buffer);
* an **I/O port** line is ``name x y``;
* an optional ``grid W H`` line records the fabric grid dimensions.

Anything else is a typed :class:`~repro.data.FormatError` naming the
line — a placement is machine-written, so a malformed line means the
wrong file (or a truncated copy), not a style variant worth guessing
about.

Clocked cells are recognized by type prefix (``DFF``/``SDFF``/
``LATCH``); their net is the first hierarchical component of the mapped
name (``core0.alu.r0_reg`` → net ``core0``), the idiom being that one
clock buffer drives each hierarchical block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.data.formats import FormatError
from repro.geometry import Point

#: Mapped-cell marker for a free fabric resource.
UNUSED = "UNUSED"

#: Cell-type prefixes treated as clock sinks.
_SINK_PREFIXES = ("DFF", "SDFF", "LATCH")

#: Cell-type prefixes claimable as clock-net drivers.
_BUFFER_PREFIXES = ("BUF", "INV", "CLKBUF")


@dataclass(frozen=True)
class PlacedCell:
    """One fabric cell: where it is and what it implements."""

    name: str
    cell_type: str
    x: float
    y: float
    mapped: str

    @property
    def is_unused(self) -> bool:
        return self.mapped == UNUSED

    @property
    def is_sink(self) -> bool:
        """A used clocked cell — a clock sink."""
        return not self.is_unused and self.cell_type.upper().startswith(
            _SINK_PREFIXES
        )

    @property
    def is_free_buffer(self) -> bool:
        """An unused buffer/inverter — claimable as a clock-net driver."""
        return self.is_unused and self.cell_type.upper().startswith(
            _BUFFER_PREFIXES
        )

    @property
    def location(self) -> Point:
        return Point(self.x, self.y)


@dataclass(frozen=True)
class ClockNet:
    """One clock net: a driver location and the sinks it must reach."""

    name: str
    source: Point
    sinks: tuple[Point, ...]
    #: Fabric-cell name of the claimed driver (None = synthetic tap at
    #: the sink centroid, when the placement had no free buffer left).
    driver: str | None = None

    @property
    def num_sinks(self) -> int:
        return len(self.sinks)


@dataclass(frozen=True)
class Placement:
    """A parsed ``placement.map``: cells, I/O ports, optional grid dims."""

    cells: tuple[PlacedCell, ...]
    io_ports: dict[str, Point] = field(default_factory=dict)
    grid: tuple[int, int] | None = None

    @property
    def num_cells(self) -> int:
        return len(self.cells)

    def sinks(self) -> list[PlacedCell]:
        """Used clocked cells, in file order."""
        return [c for c in self.cells if c.is_sink]

    def free_buffers(self) -> list[PlacedCell]:
        """Unused buffer/inverter cells, in file order."""
        return [c for c in self.cells if c.is_free_buffer]


def _num(token: str, path: object, lineno: int, what: str) -> float:
    try:
        value = float(token)
    except ValueError:
        raise FormatError(
            f"{path}:{lineno}: {what} {token!r} is not a number"
        ) from None
    if value != value or value in (float("inf"), float("-inf")):
        raise FormatError(
            f"{path}:{lineno}: {what} {token!r} is not finite"
        )
    return value


def parse_placement_map(path: str | Path) -> Placement:
    """Parse a ``placement.map`` file (see module docstring).

    Raises :class:`~repro.data.FormatError` on malformed cell lines,
    non-numeric/non-finite coordinates, duplicate cell or port names,
    duplicate ``grid`` lines, or a file with no cells at all.
    """
    cells: list[PlacedCell] = []
    names: set[str] = set()
    io_ports: dict[str, Point] = {}
    grid: tuple[int, int] | None = None

    for lineno, raw in enumerate(Path(path).read_text().splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if "->" in line:
            left, _, mapped = line.partition("->")
            mapped = mapped.strip()
            tokens = left.split()
            if len(tokens) != 4:
                raise FormatError(
                    f"{path}:{lineno}: fabric cell needs "
                    f"'name type x y -> mapped', got {raw!r}"
                )
            if not mapped or len(mapped.split()) != 1:
                raise FormatError(
                    f"{path}:{lineno}: mapped cell must be one token, "
                    f"got {mapped!r}"
                )
            name = tokens[0]
            if name in names:
                raise FormatError(
                    f"{path}:{lineno}: duplicate cell name {name!r}"
                )
            names.add(name)
            cells.append(
                PlacedCell(
                    name,
                    tokens[1],
                    _num(tokens[2], path, lineno, "x coordinate"),
                    _num(tokens[3], path, lineno, "y coordinate"),
                    mapped,
                )
            )
            continue
        tokens = line.split()
        if tokens[0] == "grid":
            if grid is not None:
                raise FormatError(f"{path}:{lineno}: duplicate grid line")
            if len(tokens) != 3:
                raise FormatError(
                    f"{path}:{lineno}: grid needs 'grid W H', got {raw!r}"
                )
            try:
                grid = (int(tokens[1]), int(tokens[2]))
            except ValueError:
                raise FormatError(
                    f"{path}:{lineno}: grid dims must be integers, "
                    f"got {raw!r}"
                ) from None
            if grid[0] < 1 or grid[1] < 1:
                raise FormatError(
                    f"{path}:{lineno}: grid dims must be positive, "
                    f"got {raw!r}"
                )
            continue
        if len(tokens) != 3:
            raise FormatError(
                f"{path}:{lineno}: expected a fabric cell "
                f"('name type x y -> mapped'), an I/O port ('name x y') "
                f"or a 'grid W H' line, got {raw!r}"
            )
        port = tokens[0]
        if port in io_ports:
            raise FormatError(
                f"{path}:{lineno}: duplicate I/O port {port!r}"
            )
        io_ports[port] = Point(
            _num(tokens[1], path, lineno, "x coordinate"),
            _num(tokens[2], path, lineno, "y coordinate"),
        )

    if not cells:
        raise FormatError(f"{path}: no fabric cells found")
    return Placement(tuple(cells), io_ports, grid)


def save_placement_map(placement: Placement, path: str | Path) -> None:
    """Write ``placement`` back out in ``placement.map`` format.

    ``parse_placement_map(save_placement_map(p)) == p`` for every
    placement whose coordinates survive ``repr(float)`` round-tripping
    (all of them — Python reprs are shortest-exact).
    """
    lines: list[str] = []
    if placement.grid is not None:
        lines.append(f"grid {placement.grid[0]} {placement.grid[1]}")
    for name, p in placement.io_ports.items():
        lines.append(f"{name} {p.x!r} {p.y!r}")
    for c in placement.cells:
        lines.append(f"{c.name} {c.cell_type} {c.x!r} {c.y!r} -> {c.mapped}")
    Path(path).write_text("\n".join(lines) + "\n")


def _net_name(mapped: str) -> str:
    """Clock-net grouping key: the first hierarchical component."""
    return mapped.split(".", 1)[0] if "." in mapped else mapped


def extract_clock_nets(
    placement: Placement,
    *,
    max_sinks: int | None = None,
    claim_buffers: bool = True,
) -> list[ClockNet]:
    """Group the placement's clocked cells into per-driver clock nets.

    Sinks sharing a hierarchical prefix form one net, in first-seen
    file order.  ``max_sinks`` splits oversize groups into ``name#0``,
    ``name#1``, ... slices (file order within the group), bounding the
    size of any single LUBT solve.  With ``claim_buffers`` each net
    claims the free buffer cell nearest its sink centroid as driver
    (each buffer at most once, nets processed in order); nets left
    without a buffer get a synthetic tap at their centroid — mirroring
    the H-tree CTS idiom of claiming the nearest unused resource to the
    geometric center.

    Duplicate sink coordinates within a net are dropped (two flops in
    one grid slot cannot both anchor a Steiner constraint — TP007), and
    single-sink groups are kept (a one-sink net is still a solve).
    """
    groups: dict[str, list[PlacedCell]] = {}
    order: list[str] = []
    for cell in placement.cells:
        if not cell.is_sink:
            continue
        key = _net_name(cell.mapped)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(cell)

    split: list[tuple[str, list[PlacedCell]]] = []
    for key in order:
        members = groups[key]
        if max_sinks is not None and max_sinks >= 1 and (
            len(members) > max_sinks
        ):
            for k, a in enumerate(range(0, len(members), max_sinks)):
                split.append((f"{key}#{k}", members[a:a + max_sinks]))
        else:
            split.append((key, members))

    import numpy as np

    free = placement.free_buffers() if claim_buffers else []
    buf_x = np.array([b.x for b in free], dtype=float)
    buf_y = np.array([b.y for b in free], dtype=float)
    available = np.ones(len(free), dtype=bool)
    nets: list[ClockNet] = []
    for name, members in split:
        seen: set[tuple[float, float]] = set()
        sinks: list[Point] = []
        for cell in members:
            xy = (cell.x, cell.y)
            if xy in seen:
                continue
            seen.add(xy)
            sinks.append(cell.location)
        cx = sum(p.x for p in sinks) / len(sinks)
        cy = sum(p.y for p in sinks) / len(sinks)
        driver: str | None = None
        source = Point(cx, cy)
        if available.any():
            dist = np.abs(buf_x - cx) + np.abs(buf_y - cy)
            dist[~available] = np.inf
            pick = int(np.argmin(dist))
            available[pick] = False
            driver = free[pick].name
            source = free[pick].location
        nets.append(ClockNet(name, source, tuple(sinks), driver))
    return nets


def synth_placement(
    nets: int,
    sinks_per_net: int,
    seed: int,
    *,
    width: float = 14_000.0,
    height: float = 14_000.0,
    buffer_ratio: float = 0.25,
) -> Placement:
    """Seeded synthetic placement: ``nets`` clustered clock groups.

    Each net's flops land in their own rectangular block of a
    near-square block grid (hierarchical blocks are spatially local,
    like a placed design), with one free buffer per ``1/buffer_ratio``
    nets scattered over the die for the driver-claiming path.
    Deterministic in ``(nets, sinks_per_net, seed)``; the result always
    parses back equal through
    :func:`save_placement_map`/:func:`parse_placement_map` and every
    extracted net solves cleanly (coordinates are snapped to a grid and
    deduplicated per block).
    """
    import numpy as np

    if nets < 1 or sinks_per_net < 1:
        raise ValueError("nets and sinks_per_net must be >= 1")
    rng = np.random.default_rng(seed)
    cols = int(np.ceil(np.sqrt(nets)))
    rows = int(np.ceil(nets / cols))
    bw, bh = width / cols, height / rows

    cells: list[PlacedCell] = []
    for k in range(nets):
        bx, by = (k % cols) * bw, (k // cols) * bh
        # Rejection-free dedup: sample on a per-block integer grid with
        # more slots than flops, then place each chosen slot once.
        slots = max(4 * sinks_per_net, 16)
        side = int(np.ceil(np.sqrt(slots)))
        chosen = rng.choice(side * side, size=sinks_per_net, replace=False)
        for j, slot in enumerate(sorted(int(s) for s in chosen)):
            sx = bx + (slot % side + 0.5) * bw / side
            sy = by + (slot // side + 0.5) * bh / side
            cells.append(
                PlacedCell(
                    f"cell_{k}_{j}",
                    "DFFQX1",
                    round(float(sx), 3),
                    round(float(sy), 3),
                    f"net{k:04d}.r{j}_reg",
                )
            )
    n_buffers = max(1, int(nets * buffer_ratio))
    for b in range(n_buffers):
        cells.append(
            PlacedCell(
                f"buf_{b}",
                "BUFX4",
                round(float(rng.uniform(0, width)), 3),
                round(float(rng.uniform(0, height)), 3),
                UNUSED,
            )
        )
    io_ports = {"clk": Point(0.0, round(height / 2, 3))}
    return Placement(tuple(cells), io_ports, (cols, rows))
