"""Whole-instance (topology + delay bounds) JSON round-trip.

A *solve instance* is everything one :func:`repro.ebf.solve_lubt` call
needs: the topology (embedded as a ``lubt-tree-v1`` document, see
:mod:`repro.topology.serialize`) plus the per-sink delay window and any
solve options a client wants to pin.  This is the wire format of the
:mod:`repro.server` protocol and a handy on-disk shape for regression
corpora.  Schema::

    {
      "format": "lubt-instance-v1",
      "tree": { ... lubt-tree-v1 ... },
      "lower": [l_1, ..., l_m],
      "upper": [u_1, ..., u_m],       # "inf" encodes an unbounded sink
      "options": { ... }              # optional, plain JSON
    }

Infinite bounds are encoded as the strings ``"inf"`` / ``"-inf"`` so the
documents stay valid strict JSON (Python's ``json`` would otherwise emit
the non-standard ``Infinity`` literal).
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

from repro.ebf.bounds import DelayBounds
from repro.topology.serialize import topology_from_dict, topology_to_dict
from repro.topology.tree import Topology

INSTANCE_FORMAT = "lubt-instance-v1"


def _enc_num(v: float) -> float | str:
    v = float(v)
    if math.isinf(v):
        return "inf" if v > 0 else "-inf"
    if math.isnan(v):
        return "nan"
    return v


def _dec_num(v: Any) -> float:
    return float(v)


def instance_to_dict(
    topo: Topology,
    bounds: DelayBounds,
    options: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Serialize one solve instance (strict-JSON-safe)."""
    if len(bounds.lower) != topo.num_sinks:
        raise ValueError(
            f"bounds cover {len(bounds.lower)} sinks but the topology "
            f"has {topo.num_sinks}"
        )
    out: dict[str, Any] = {
        "format": INSTANCE_FORMAT,
        "tree": topology_to_dict(topo),
        "lower": [_enc_num(v) for v in bounds.lower],
        "upper": [_enc_num(v) for v in bounds.upper],
    }
    if options:
        out["options"] = dict(options)
    return out


def instance_from_dict(
    data: dict[str, Any],
) -> tuple[Topology, DelayBounds, dict[str, Any]]:
    """Inverse of :func:`instance_to_dict`.

    Returns ``(topology, bounds, options)``; bounds are validated against
    Definition 2.1 (raises :class:`repro.ebf.BoundsError` on an inverted
    or negative window — a server must not solve garbage silently).
    """
    if data.get("format") != INSTANCE_FORMAT:
        raise ValueError(f"not a {INSTANCE_FORMAT} document")
    topo, _, _ = topology_from_dict(data["tree"])
    lower = [_dec_num(v) for v in data["lower"]]
    upper = [_dec_num(v) for v in data["upper"]]
    if len(lower) != topo.num_sinks or len(upper) != topo.num_sinks:
        raise ValueError(
            f"bounds arrays must have one entry per sink "
            f"({topo.num_sinks}), got {len(lower)}/{len(upper)}"
        )
    bounds = DelayBounds(lower, upper)
    options = dict(data.get("options") or {})
    return topo, bounds, options


def save_instance(
    path: str | Path,
    topo: Topology,
    bounds: DelayBounds,
    options: dict[str, Any] | None = None,
) -> None:
    """Write one instance JSON file."""
    doc = instance_to_dict(topo, bounds, options)
    Path(path).write_text(json.dumps(doc, indent=1))


def load_instance(
    path: str | Path,
) -> tuple[Topology, DelayBounds, dict[str, Any]]:
    """Read an instance JSON file."""
    return instance_from_dict(json.loads(Path(path).read_text()))
