"""Benchmark sink placements.

The paper evaluates on MCNC ``prim1``/``prim2`` [2] and Tsay ``r1``/``r3``
[4].  Those exact coordinate files are not redistributable, so this
package provides seeded synthetic surrogates with the same sink counts and
comparable die geometry (see DESIGN.md's substitution table).  Every
generator is deterministic in its seed, so experiment tables are exactly
reproducible run to run.
"""

from repro.data.generators import uniform_sinks, clustered_sinks, grid_sinks
from repro.data.suites import (
    Benchmark,
    BENCHMARKS,
    load_benchmark,
    benchmark_names,
)
from repro.data.formats import (
    FormatError,
    caps_by_node_id,
    load_pin_list,
    load_csv,
    load_sinks_file,
)
from repro.data.instance_json import (
    INSTANCE_FORMAT,
    instance_from_dict,
    instance_to_dict,
    load_instance,
    save_instance,
)
from repro.data.placement import (
    ClockNet,
    PlacedCell,
    Placement,
    extract_clock_nets,
    parse_placement_map,
    save_placement_map,
    synth_placement,
)
from repro.data.synth import SYNTH_TIERS, synth_instance

__all__ = [
    "SYNTH_TIERS",
    "synth_instance",
    "ClockNet",
    "PlacedCell",
    "Placement",
    "extract_clock_nets",
    "parse_placement_map",
    "save_placement_map",
    "synth_placement",
    "uniform_sinks",
    "clustered_sinks",
    "grid_sinks",
    "Benchmark",
    "BENCHMARKS",
    "load_benchmark",
    "benchmark_names",
    "FormatError",
    "caps_by_node_id",
    "load_pin_list",
    "load_csv",
    "load_sinks_file",
    "INSTANCE_FORMAT",
    "instance_from_dict",
    "instance_to_dict",
    "load_instance",
    "save_instance",
]
