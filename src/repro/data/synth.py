"""Seeded large-scale synthetic instances (1k-10k sinks).

The paper's suites top out at 603 sinks (``r1``); the tree-structured LP
backend (:mod:`repro.lp.treesolve`) is built for instances an order of
magnitude beyond that.  This module produces seeded, fully reproducible
*solve-ready* instances — ``(Topology, DelayBounds)`` pairs rather than
bare sink lists — at those scales, used by the scaling benchmarks and
the tree-backend parity tests.

Every instance passes :func:`repro.check.check_instance` with zero
errors: sinks are deduplicated post-generation (duplicate coordinates
degenerate the Steiner constraint, TP007) and the delay windows are
normalized to the built topology's radius, which keeps them above the
Manhattan floor (BD005).
"""

from __future__ import annotations

from repro.data.generators import clustered_sinks, uniform_sinks
from repro.ebf.bounds import DelayBounds
from repro.geometry import Point
from repro.topology import Topology, nearest_neighbor_topology

#: Sink counts the scaling benchmarks and docs refer to by name.
SYNTH_TIERS: tuple[int, ...] = (1024, 4096, 10240)

#: Die geometry for synthetic tiers — prim2-like aspect, scaled up so
#: average sink spacing stays comparable to the paper's suites.
_WIDTH = 14_000.0
_HEIGHT = 14_000.0


def synth_instance(
    num_sinks: int,
    seed: int,
    *,
    kind: str = "uniform",
    lower: float = 0.8,
    upper: float = 1.2,
    topology: str = "nn",
) -> tuple[Topology, DelayBounds]:
    """Build a seeded ``num_sinks``-sink instance with normalized bounds.

    ``kind`` selects the placement model (``"uniform"`` or
    ``"clustered"``); ``lower``/``upper`` are delay windows as multiples
    of the topology radius (Tables 1-3 convention).  ``topology`` picks
    the builder (any :data:`repro.topology.TOPOLOGY_KINDS` name) — the
    default nearest-neighbor merge is O(m^2), so 10k-sink instances want
    ``"htree"``, whose O(m log m) build keeps construction off the
    critical path.  Deterministic in ``(num_sinks, seed, kind,
    topology)``.
    """
    if num_sinks < 2:
        raise ValueError("synth instances need at least 2 sinks")
    if kind == "uniform":
        make = uniform_sinks
    elif kind == "clustered":
        make = clustered_sinks
    else:
        raise ValueError(f"unknown placement kind {kind!r}")

    # Over-generate, then dedupe exact coordinate collisions (TP007) and
    # trim back to the requested count.  Seeded generators make this
    # deterministic; collisions are rare at these die sizes, so one
    # over-draw suffices.
    raw = make(num_sinks + 64, seed, width=_WIDTH, height=_HEIGHT)
    seen: set[tuple[float, float]] = set()
    sinks = []
    for p in raw:
        key = (p.x, p.y)
        if key in seen:
            continue
        seen.add(key)
        sinks.append(p)
        if len(sinks) == num_sinks:
            break
    if len(sinks) < num_sinks:
        raise ValueError(
            f"could not draw {num_sinks} distinct sinks (seed {seed})"
        )

    source = Point(_WIDTH / 2.0, _HEIGHT / 2.0)
    if topology == "nn":
        topo = nearest_neighbor_topology(sinks, source)
    else:
        from repro.topology import build_net_topology

        topo = build_net_topology(sinks, source, kind=topology)
    bounds = DelayBounds.normalized(topo, lower, upper)
    return topo, bounds
