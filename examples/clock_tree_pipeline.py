"""Per-stage delay windows for a pipelined design (paper Section 1).

The paper's motivating example: in an L-stage pipeline whose stages have
different combinational delays, the clock arrival windows at each stage's
flip-flops may differ — and exploiting that slack shrinks the clock tree.
This example builds a 3-stage pipeline floorplan, gives each stage its
own [lower, upper] window via ``DelayBounds.per_sink``, and compares the
tree cost against forcing one uniform (tightest) window on every sink.

Run:  python examples/clock_tree_pipeline.py
"""

from repro import DelayBounds, Point, nearest_neighbor_topology, solve_lubt
from repro.ebf.bounds import radius_of


def main() -> None:
    # Three pipeline stages, left to right across the die; four FFs each.
    stage_columns = {0: 100.0, 1: 500.0, 2: 900.0}
    sinks: list[Point] = []
    stage_of: list[int] = []
    for stage, x in stage_columns.items():
        for k in range(4):
            sinks.append(Point(x + 30 * (k % 2), 150.0 + 220.0 * k))
            stage_of.append(stage)

    source = Point(500.0, 500.0)
    topo = nearest_neighbor_topology(sinks, source)
    r = radius_of(topo)

    # Stage slacks (from the imagined timing analysis): stage 0 feeds a
    # long combinational path (tight window); stage 2 a short one (loose).
    windows = {
        0: (0.95 * r, 1.05 * r),
        1: (0.85 * r, 1.15 * r),
        2: (0.70 * r, 1.30 * r),
    }
    per_sink = DelayBounds.per_sink([windows[s] for s in stage_of])
    uniform = DelayBounds.uniform(len(sinks), *windows[0])

    tailored = solve_lubt(topo, per_sink)
    forced = solve_lubt(topo, uniform)

    print("pipeline clock tree with per-stage delay windows")
    print(f"  radius: {r:g}")
    for stage, (lo, hi) in windows.items():
        print(f"  stage {stage}: window [{lo / r:.2f}, {hi / r:.2f}] x radius")
    print(f"\ntree cost, per-stage windows : {tailored.cost:,.1f}")
    print(f"tree cost, uniform tightest  : {forced.cost:,.1f}")
    saving = 1 - tailored.cost / forced.cost
    print(f"saving from exploiting stage slack: {100 * saving:.1f}%")

    print("\nper-stage arrival times (radius units):")
    for stage in stage_columns:
        ds = [
            tailored.delays[i] / r
            for i in range(len(sinks))
            if stage_of[i] == stage
        ]
        print(f"  stage {stage}: {[round(d, 3) for d in ds]}")


if __name__ == "__main__":
    main()
