"""Which sink's delay window actually costs wire? (LP duality)

EBF is an exact linear program, so every delay bound has a *shadow
price*: the marginal wirelength of tightening it.  This example solves a
clock net with a tolerable-skew window, then ranks sinks by how much
their hold (lower) bound is paying in detour wire — exactly the
information a designer needs to decide where relaxing a constraint (or
placing a delay buffer) buys the most.

Run:  python examples/bound_sensitivity.py
"""

from repro import DelayBounds, Point, nearest_neighbor_topology
from repro.analysis import Table, delay_sensitivities
from repro.data import clustered_sinks
from repro.ebf.bounds import radius_of


def main() -> None:
    sinks = clustered_sinks(20, seed=5, width=1500, height=1500)
    source = Point(750.0, 750.0)
    topo = nearest_neighbor_topology(sinks, source)
    r = radius_of(topo)
    bounds = DelayBounds.uniform(20, 0.92 * r, 1.1 * r)

    sol, sens = delay_sensitivities(topo, bounds, check_bounds=False)
    print(f"tree cost {sol.cost:,.1f} at window [0.92, 1.10] x radius\n")

    table = Table(
        ["sink", "delay/r", "at bound", "d cost / d l", "d cost / d u"],
        title="per-sink delay window shadow prices",
    )
    ranked = sorted(sens, key=lambda s: -abs(s.lower_price))
    for s in ranked:
        at = (
            "lower" if s.lower_binding else "upper" if s.upper_binding else "-"
        )
        table.add_row(
            f"s{s.sink}", s.delay / r, at, s.lower_price, s.upper_price
        )
    print(table)

    paying = [s for s in ranked if s.lower_binding]
    total = sum(s.lower_price for s in paying)
    print(f"\n{len(paying)} sinks sit on the hold bound; relaxing it by one")
    print(f"unit of delay would save about {total:.2f} units of wire")
    print("(first-order, exact by LP duality).")


if __name__ == "__main__":
    main()
