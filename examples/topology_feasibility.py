"""Topology determines LUBT feasibility (Section 3, Figure 1).

Same source and sinks, same bounds, three topologies: a chain where an
interior sink forces a long path (no LUBT exists), and two sink-leaf
alternatives that always admit one (Lemma 3.1).  Also demonstrates the
paper's Section 9 remark: EBF infeasibility is itself the certificate
that no LUBT exists.

Run:  python examples/topology_feasibility.py
"""

from repro import (
    DelayBounds,
    InfeasibleError,
    Point,
    chain_topology,
    nearest_neighbor_topology,
    solve_lubt,
    star_topology,
)


def main() -> None:
    source = Point(0.0, 0.0)
    sinks = [Point(4.0, 0.0), Point(0.0, 4.0)]
    bounds = DelayBounds.uniform(2, 0.0, 6.0)
    print("source (0,0); sinks (4,0), (0,4); bounds [0, 6] on every delay\n")

    # (a) chain: source -> s1 -> s2.  delay(s2) >= 4 + 8 = 12 > 6 always,
    # even though s2 itself is only 4 away from the source.
    chain = chain_topology(sinks, source)
    print("(a) chain topology source->s1->s2:")
    try:
        solve_lubt(chain, bounds, check_bounds=False)
        print("    unexpectedly feasible!")
    except InfeasibleError:
        print("    EBF infeasible -> no LUBT exists for this topology")

    # (b) star: both sinks directly under the source.
    star = star_topology(sinks, source)
    sol_b = solve_lubt(star, bounds, check_bounds=False)
    print(f"(b) star topology: feasible, cost {sol_b.cost:g}, "
          f"delays {list(sol_b.delays)}")

    # (c) merge topology with a Steiner point.
    merged = nearest_neighbor_topology(sinks, source)
    sol_c = solve_lubt(merged, bounds, check_bounds=False)
    print(f"(c) Steiner-merge topology: feasible, cost {sol_c.cost:g}, "
          f"delays {list(sol_c.delays)}")

    print("\nEvery sink is a leaf in (b) and (c), so Lemma 3.1 guarantees")
    print("a LUBT for ANY valid bounds; the chain in (a) does not enjoy")
    print("that guarantee and indeed has none for these bounds.")


if __name__ == "__main__":
    main()
