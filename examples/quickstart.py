"""Quickstart: solve one LUBT instance end to end.

Builds a small clock net, generates a topology, solves the EBF linear
program for minimum wirelength under delay bounds, embeds the tree in the
Manhattan plane, and prints everything a designer would look at.

Run:  python examples/quickstart.py
"""

from repro import (
    DelayBounds,
    Point,
    embed_tree,
    nearest_neighbor_topology,
    solve_lubt,
)
from repro.ebf.bounds import radius_of


def main() -> None:
    # A 6-sink net with the clock source at the die center.
    sinks = [
        Point(10, 10),
        Point(90, 15),
        Point(85, 80),
        Point(20, 85),
        Point(50, 95),
        Point(60, 5),
    ]
    source = Point(50, 50)

    # 1. Topology: bottom-up nearest-neighbor merge (all sinks are
    #    leaves, so a solution exists for any valid bounds — Lemma 3.1).
    topo = nearest_neighbor_topology(sinks, source)
    radius = radius_of(topo)
    print(f"topology: {topo}")
    print(f"radius (source to farthest sink): {radius:g}")

    # 2. Bounds: every sink's delay within [0.9, 1.2] x radius.
    bounds = DelayBounds.normalized(topo, 0.9, 1.2)

    # 3. Solve the Edge-Based Formulation LP.
    sol = solve_lubt(topo, bounds)
    print(f"\nminimum tree cost: {sol.cost:g}")
    print(f"sink delays (radius units): "
          f"{[round(d / radius, 3) for d in sol.delays]}")
    print(f"skew: {sol.skew / radius:.3f} x radius")
    print(f"LP stats: {sol.stats.steiner_rows} Steiner rows used of "
          f"{sol.stats.total_pairs} possible, "
          f"{sol.stats.rounds} lazy round(s), backend {sol.stats.backend}")

    # 4. Embed: recover Steiner point coordinates (Theorem 4.1
    #    guarantees this always succeeds for an EBF solution).
    tree = embed_tree(topo, sol.edge_lengths)
    print("\nplacements:")
    for node in range(topo.num_nodes):
        kind = topo.kind(node).value
        print(f"  {kind:8s} s_{node}: {tree.placements[node]}")
    print(f"drawn wirelength: {tree.drawn_wirelength:g}  "
          f"(detour/elongation: {tree.elongation:g})")

    # 5. Eyeball it.
    from repro.analysis import render_tree

    print("\n" + render_tree(tree, width=64, height=20))


if __name__ == "__main__":
    main()
