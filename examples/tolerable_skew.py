"""Tolerable-skew clock routing (Section 6) — the cost of tight skew.

A system usually works with some non-zero skew ``d``; insisting on zero
skew wastes wire.  This example sweeps the tolerable skew from 0 to one
radius, solving LUBT with the Section 6 window ``[u - d, u]``, and prints
the resulting cost curve next to the bounded-skew heuristic baseline.

Run:  python examples/tolerable_skew.py
"""

from repro import (
    DelayBounds,
    Point,
    bounded_skew_tree,
    nearest_neighbor_topology,
    solve_lubt,
)
from repro.analysis import Table
from repro.data import clustered_sinks
from repro.ebf.bounds import radius_of


def main() -> None:
    sinks = clustered_sinks(32, seed=7, width=2000, height=2000)
    source = Point(1000.0, 1000.0)
    topo = nearest_neighbor_topology(sinks, source)
    r = radius_of(topo)
    u = 1.25 * r  # common upper bound on every arrival

    table = Table(
        ["skew budget d", "LUBT cost", "LUBT skew", "baseline cost"],
        title="tolerable skew vs tree cost (bounds in radius units)",
    )
    previous = None
    for d in (0.0, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0):
        bounds = DelayBounds.tolerable_skew(32, upper=u, skew=d * r)
        sol = solve_lubt(topo, bounds)
        base = bounded_skew_tree(sinks, d * r, source, verify=False)
        table.add_row(d, sol.cost, sol.skew / r, base.cost)
        if previous is not None:
            assert sol.cost <= previous + 1e-6  # looser skew never costs more
        previous = sol.cost
    print(table)
    print("\nLooser tolerable skew monotonically reduces wire; the LP is")
    print("optimal per topology, so it lower-bounds the heuristic baseline")
    print("whenever both face the same windows.")


if __name__ == "__main__":
    main()
