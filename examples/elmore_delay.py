"""EBF under the Elmore delay model (Section 7).

The Steiner constraints stay linear; the delay constraints become
quadratic, so the problem is a (convex, when l = 0) NLP solved with
SLSQP.  This example sizes a small buffer-driven clock net twice — once
with the linear model, once with Elmore — and shows how the Elmore
solution spends extra wire where downstream capacitance is heavy.

Run:  python examples/elmore_delay.py
"""

import numpy as np

from repro import (
    DelayBounds,
    ElmoreParameters,
    Point,
    nearest_neighbor_topology,
    sink_delays_elmore,
    solve_lubt,
    solve_lubt_elmore,
)


def main() -> None:
    # A small net: distances in mm-scale units, loads in pF-scale units.
    sinks = [
        Point(2.0, 1.0),
        Point(9.0, 2.0),
        Point(8.0, 8.0),
        Point(1.0, 7.0),
        Point(5.0, 9.5),
    ]
    source = Point(5.0, 5.0)
    topo = nearest_neighbor_topology(sinks, source)
    params = ElmoreParameters(
        wire_resistance=0.5,  # ohm per unit
        wire_capacitance=0.2,  # fF per unit
        sink_caps={1: 0.5, 2: 2.0, 3: 0.5, 4: 0.5, 5: 4.0},  # uneven loads
    )

    # Reference: linear-delay LUBT, then its Elmore delays.
    linear = solve_lubt(topo, DelayBounds.unbounded(5))
    d_linear = sink_delays_elmore(topo, linear.edge_lengths, params)
    print("linear-model minimum tree evaluated under Elmore:")
    print(f"  cost {linear.cost:.2f}, Elmore delays "
          f"{np.round(d_linear, 2)}")

    # Elmore-aware: bound every Elmore delay by 1.15x the worst above.
    u = float(d_linear.max()) * 1.15
    elmore = solve_lubt_elmore(
        topo, DelayBounds.uniform(5, 0.0, u), params
    )
    print(f"\nElmore-delay EBF with u = {u:.2f} (convex case, l = 0):")
    print(f"  cost {elmore.cost:.2f}, Elmore delays "
          f"{np.round(elmore.delays, 2)}")
    print(f"  converged: {elmore.converged} after {elmore.iterations} "
          f"SLSQP iterations")
    assert np.all(elmore.delays <= u + 1e-6)

    # A bounded window (non-convex; solved heuristically, Section 7).
    lo = float(d_linear.max()) * 1.02
    hi = float(d_linear.max()) * 1.6
    windowed = solve_lubt_elmore(
        topo, DelayBounds.uniform(5, lo, hi), params
    )
    print(f"\nbounded Elmore window [{lo:.2f}, {hi:.2f}] "
          "(non-convex, heuristic):")
    print(f"  cost {windowed.cost:.2f}, Elmore delays "
          f"{np.round(windowed.delays, 2)}, skew {windowed.skew:.2f}")

    # Reference: Tsay's exact zero skew [4] under the same parasitics.
    from repro.baselines import elmore_zero_skew_tree

    tz = elmore_zero_skew_tree(sinks, params, source, topology=topo)
    print(f"\nTsay exact zero-skew reference: cost {tz.cost:.2f}, "
          f"common delay {tz.longest_delay:.2f}, skew {tz.skew:.2e}")


if __name__ == "__main__":
    main()
