"""The whole library in one flow, the way a physical-design script
would use it.

1. load a net from a pin-list file (written here for self-containment);
2. generate a bounds-guided topology (Section 9 future work);
3. solve the LUBT LP for a tolerable-skew window (Section 6);
4. read the delay-bound shadow prices (LP duality) to find which hold
   constraints are paying wire;
5. account clock power vs the buffer-insertion alternative (Section 1);
6. embed and export SVG + JSON artifacts.

Run:  python examples/full_flow.py
"""

import tempfile
from pathlib import Path

from repro import DelayBounds, solve_and_embed
from repro.analysis import (
    PowerParameters,
    buffers_for_hold,
    delay_sensitivities,
    save_svg,
    tree_power,
)
from repro.data import clustered_sinks, load_sinks_file
from repro.ebf.bounds import radius_of
from repro.ebf.solver import solve_lubt
from repro.topology import bounds_guided_topology, save_tree


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="lubt_flow_"))

    # --- 1. a net on disk -------------------------------------------------
    net_file = workdir / "clock_net.pins"
    sinks_gen = clustered_sinks(40, seed=13, width=3000, height=3000)
    net_file.write_text(
        "source 1500 1500\n"
        + "\n".join(f"{p.x:.1f} {p.y:.1f}" for p in sinks_gen)
    )
    source, sinks, _ = load_sinks_file(net_file)
    print(f"loaded {len(sinks)} sinks from {net_file.name}")

    # --- 2. topology guided by the requested window -----------------------
    probe = bounds_guided_topology(
        sinks, DelayBounds.uniform(len(sinks), 0.0, 1e12), source
    )
    r = radius_of(probe)
    bounds = DelayBounds.tolerable_skew(
        len(sinks), upper=1.15 * r, skew=0.15 * r
    )
    topo = bounds_guided_topology(sinks, bounds, source)

    # --- 3. the LP ---------------------------------------------------------
    sol, tree = solve_and_embed(topo, bounds, check_bounds=False)
    print(f"tree cost {sol.cost:,.1f}; skew {sol.skew / r:.3f} x radius; "
          f"{sol.stats.steiner_rows}/{sol.stats.total_pairs} Steiner rows, "
          f"{sol.stats.rounds} lazy rounds")

    # --- 4. who pays for the hold bound? -----------------------------------
    _, sens = delay_sensitivities(topo, bounds, check_bounds=False)
    binding = [s for s in sens if s.lower_binding]
    total_price = sum(s.lower_price for s in binding)
    print(f"{len(binding)} sinks sit on the hold bound; marginal cost "
          f"{total_price:.2f} wire per unit of hold margin")

    # --- 5. power: elongation vs buffers ------------------------------------
    power = PowerParameters(buffer_input_cap=50.0, buffer_delay=r / 20)
    relaxed = solve_lubt(
        topo,
        DelayBounds.uniform(len(sinks), 0.0, 1.15 * r),
        check_bounds=False,
    )
    n_buf = buffers_for_hold(relaxed.delays, bounds.lower[0], power)
    buffered = tree_power(topo, relaxed.edge_lengths, power, buffers=n_buf,
                          strategy="buffers")
    elongated = tree_power(topo, sol.edge_lengths, power)
    print(f"clock power: elongation {elongated.power:,.0f} vs "
          f"buffers {buffered.power:,.0f} ({n_buf} buffers)")

    # --- 6. artifacts --------------------------------------------------------
    svg_path = workdir / "clock_tree.svg"
    json_path = workdir / "clock_tree.json"
    save_svg(svg_path, tree, size=640, label_sinks=False)
    save_tree(json_path, topo, sol.edge_lengths, tree.placements)
    print(f"artifacts: {svg_path}\n           {json_path}")


if __name__ == "__main__":
    main()
