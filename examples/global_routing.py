"""Global routing with short-path fixing by wire elongation (Section 1).

Upper-bounded delay routing is the classic global routing problem
(``l = 0``).  The paper's second motivation: when a path violates a
*short-path* (hold) constraint, the usual fix is inserting delay buffers;
LUBT instead **elongates wires** until the path is slow enough — cheaper
in area and power.  This example routes a net with an upper bound, finds
sinks that arrive too early for a hold constraint, and re-solves with the
lower bound raised to the hold requirement.

Run:  python examples/global_routing.py
"""

import numpy as np

from repro import DelayBounds, Point, nearest_neighbor_topology, solve_lubt
from repro.data import uniform_sinks
from repro.ebf.bounds import radius_of


def main() -> None:
    sinks = uniform_sinks(24, seed=42, width=1000, height=1000)
    source = Point(500.0, 500.0)
    topo = nearest_neighbor_topology(sinks, source)
    r = radius_of(topo)

    # Phase 1: plain global routing — longest path within 1.1 x radius.
    setup_only = solve_lubt(topo, DelayBounds.uniform(24, 0.0, 1.1 * r))
    print("phase 1: upper-bounded global routing (l = 0)")
    print(f"  tree cost: {setup_only.cost:,.1f}")
    print(f"  arrival window: [{setup_only.shortest_delay / r:.3f}, "
          f"{setup_only.longest_delay / r:.3f}] x radius")

    # Phase 2: a hold analysis says nothing may arrive before 0.6 x radius.
    hold = 0.6 * r
    early = np.flatnonzero(setup_only.delays < hold)
    print(f"\nhold requirement: arrivals >= {hold / r:.2f} x radius")
    print(f"  short-path violations: {len(early)} sinks "
          f"{[int(i) + 1 for i in early[:8]]}"
          f"{'...' if len(early) > 8 else ''}")

    # Fix by raising the lower bound — wire elongation, no buffers.
    fixed = solve_lubt(topo, DelayBounds.uniform(24, hold, 1.1 * r))
    print("\nphase 2: re-solved with the hold bound as l")
    print(f"  tree cost: {fixed.cost:,.1f} "
          f"(+{fixed.cost - setup_only.cost:,.1f} wire instead of buffers)")
    print(f"  arrival window: [{fixed.shortest_delay / r:.3f}, "
          f"{fixed.longest_delay / r:.3f}] x radius")
    assert fixed.shortest_delay >= hold - 1e-6

    # Phase 3: the paper's power argument, quantified.  Compare the
    # elongated tree against the conventional fix: keep the phase-1 tree
    # and insert delay buffers on every early path.
    from repro.analysis import (
        PowerParameters,
        buffers_for_hold,
        tree_power,
    )

    params = PowerParameters(
        wire_cap_per_unit=1.0, buffer_input_cap=60.0, buffer_delay=40.0,
        buffer_area=25.0,
    )
    n_buf = buffers_for_hold(setup_only.delays, hold, params)
    buffered = tree_power(
        topo, setup_only.edge_lengths, params,
        buffers=n_buf, strategy="delay buffers",
    )
    elongated = tree_power(
        topo, fixed.edge_lengths, params, strategy="wire elongation",
    )
    print("\nphase 3: power comparison (Section 1's motivation)")
    for rep in (buffered, elongated):
        print(f"  {rep.strategy:16s} wire {rep.wirelength:8.1f}  "
              f"buffers {rep.buffers:2d}  switched C {rep.switched_capacitance:8.1f}  "
              f"power {rep.power:8.1f}  area +{rep.area_overhead:.0f}")
    if elongated.power < buffered.power:
        save = 1 - elongated.power / buffered.power
        print(f"  -> elongation saves {100 * save:.1f}% clock power here")


if __name__ == "__main__":
    main()
