"""Route a benchmark surrogate and export the tree as SVG + ASCII.

Builds the prim1 surrogate (scaled to 64 sinks for speed), solves a
tolerable-skew LUBT, and writes ``lubt_prim1.svg`` next to this script —
open it in any browser.  Dashed wires are *elongated* (their electrical
length exceeds the drawn span: the serpentine detours the paper trades
against delay buffers).

Run:  python examples/visualize_benchmark.py
"""

from pathlib import Path

from repro import DelayBounds, nearest_neighbor_topology, solve_and_embed
from repro.analysis import render_tree, save_svg
from repro.data import load_benchmark
from repro.ebf.bounds import radius_of


def main() -> None:
    bench = load_benchmark("prim1").scaled(64)
    topo = nearest_neighbor_topology(list(bench.sinks), bench.source)
    r = radius_of(topo)
    bounds = DelayBounds.tolerable_skew(
        bench.num_sinks, upper=1.1 * r, skew=0.2 * r
    )

    sol, tree = solve_and_embed(topo, bounds)
    print(f"{bench.name}: {bench.num_sinks} sinks, radius {r:,.0f}")
    print(f"tree cost {sol.cost:,.1f}, skew {sol.skew / r:.3f} x radius, "
          f"elongation {tree.elongation:,.1f}")

    out = Path(__file__).parent / "lubt_prim1.svg"
    save_svg(out, tree, size=720, label_sinks=False)
    print(f"wrote {out}")

    print("\nterminal preview:")
    print(render_tree(tree, width=70, height=24))


if __name__ == "__main__":
    main()
