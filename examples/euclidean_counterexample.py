"""Why EBF needs the Manhattan metric (Section 4.7, Figure 4).

Three sinks at the corners of a unit equilateral triangle.  The edge
lengths e1 = e2 = e3 = 1/2 satisfy every Steiner constraint
(e_i + e_j >= 1), yet in the *Euclidean* metric no root location is
within 1/2 of all three sinks: the three disks intersect pairwise but
share no common point — the Helly property fails for disks (footnote 3).
In the *Manhattan* metric the same construction always works, because
L1 balls are boxes in rotated coordinates and boxes satisfy Helly.

Run:  python examples/euclidean_counterexample.py
"""

import math

from repro.geometry import (
    Disk,
    Point,
    TRR,
    disks_have_common_point,
    helly_intersection,
    manhattan,
    pairwise_disks_intersect,
)


def main() -> None:
    sinks = [
        Point(0.0, 0.0),
        Point(1.0, 0.0),
        Point(0.5, math.sqrt(3.0) / 2.0),
    ]
    print("sinks on a unit equilateral triangle:")
    for i, s in enumerate(sinks, 1):
        print(f"  s{i} = {s}")

    print("\nEuclidean: edge lengths 1/2 satisfy the Steiner constraints,")
    disks = [Disk(s, 0.5) for s in sinks]
    print(f"  disks intersect pairwise:  {pairwise_disks_intersect(disks)}")
    print(f"  common root location:      {disks_have_common_point(disks)}")
    print(f"  (circumradius 1/sqrt(3) = {1 / math.sqrt(3):.4f} > 0.5,")
    print("   so the constraint-satisfying lengths are NOT embeddable)")

    print("\nManhattan: repeat with L1 balls of half the L1 diameter,")
    d = max(manhattan(a, b) for a in sinks for b in sinks)
    balls = [TRR.square(s, d / 2.0) for s in sinks]
    common = helly_intersection(balls)
    print(f"  pairwise L1 distances max: {d:g}, ball radius: {d / 2:g}")
    print(f"  common intersection empty: {common.is_empty()}")
    print(f"  a feasible root location:  {common.center()}")
    print("\nThis is exactly why the paper restricts EBF to the Manhattan")
    print("plane: Lemma 10.1 (Helly for TRRs) is what makes Theorem 4.1's")
    print("embedding guarantee true.")


if __name__ == "__main__":
    main()
