#!/usr/bin/env python3
"""Project-specific AST lint for the LUBT reproduction.

Generic linters can't see these invariants; this tool enforces them in
CI (``python tools/lint_repro.py src/``):

``RL001`` **float-equality** — no bare ``==``/``!=`` against float
    literals in ``geometry/``, ``embedding/`` and ``ebf/``.  Geometric
    predicates must use epsilon compares (``math.isclose`` or an explicit
    tolerance); exact float equality there is almost always a latent bug.

``RL002`` **set-iteration** — no ``for`` / comprehension iteration over a
    bare ``set(...)``, ``frozenset(...)``, set literal, or set
    comprehension in ``lp/`` and ``ebf/`` (the LP row-assembly and lazy
    loop paths).  Iteration order of a set depends on hash seeding and
    insertion history; in row assembly it silently changes row order and
    with it the degenerate-optimum vertex a backend returns.  Wrap in
    ``sorted(...)`` instead.

``RL003`` **cache-mutation** — no mutation of the memoized ``Topology``
    caches outside ``topology/tree.py``: no attribute stores on
    ``_sinks_under`` / ``_sink_uv`` / ``_incidence`` / ``_lift``, and no
    mutating method calls (``append``/``sort``/...) or subscript stores
    on the values returned by ``sinks_under()`` / ``sink_uv()`` /
    ``root_path_incidence()``.  Those tables are shared and never
    invalidated — treat them as frozen.

``RL004`` **broad-except** — no ``except Exception:`` / bare ``except:``
    / ``except BaseException:`` outside ``resilience/``.  Resilience owns
    the catch-everything boundary; elsewhere, name the exception.
    Suppress a deliberate boundary with ``# noqa: BLE001``.

``RL005`` **set-rebuild-in-comprehension** — no ``set(...)`` constructed
    inside a comprehension's ``if`` clause (it is rebuilt once per
    element; hoist it).

``RL006`` **per-node-TRR-in-loop** — no ``TRR(...)`` / ``TRR.from_point``
    / ``TRR.square`` construction inside a loop (``for`` / ``while`` /
    comprehension) in ``embedding/``.  Per-node TRR objects in the
    postorder/preorder passes are exactly what the array kernel
    (``embedding/kernel.py``) replaced; new embedding code should work on
    the ``(u_lo, u_hi, v_lo, v_hi)`` bound arrays and only materialise
    TRRs at the view boundary.  The view layer and the scalar reference
    paths carry ``# noqa: RL006`` escapes.

Suppression: a ``# noqa: RLxxx`` (or ``# noqa: BLE001`` for RL004)
comment on the offending line disables that finding.  Exit status is 1
when any finding survives.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path

#: Scope (path substrings, POSIX-style) per rule; None = everywhere.
RULE_SCOPE: dict[str, tuple[str, ...] | None] = {
    "RL001": ("/geometry/", "/embedding/", "/ebf/"),
    "RL002": ("/lp/", "/ebf/"),
    "RL003": None,
    "RL004": None,
    "RL005": None,
    "RL006": ("/embedding/",),
}

#: Memoized Topology cache internals and their public accessors.
CACHE_ATTRS = {"_sinks_under", "_sink_uv", "_incidence", "_lift"}
CACHE_ACCESSORS = {"sinks_under", "sink_uv", "root_path_incidence"}
MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "pop", "clear", "sort",
    "reverse", "setdefault", "update",
}

#: Files exempt from a rule entirely (the cache owner may touch its caches;
#: resilience owns the broad-except boundary).
RULE_EXEMPT_FILES: dict[str, tuple[str, ...]] = {
    "RL003": ("/topology/tree.py",),
    "RL004": ("/resilience/",),
}

_NOQA = re.compile(r"#\s*noqa\s*:\s*([A-Z0-9, ]+)", re.IGNORECASE)


@dataclass(frozen=True)
class Finding:
    path: Path
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _noqa_codes(source_lines: list[str], lineno: int) -> set[str]:
    if not (1 <= lineno <= len(source_lines)):
        return set()
    m = _NOQA.search(source_lines[lineno - 1])
    if not m:
        return set()
    return {c.strip().upper() for c in m.group(1).split(",")}


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra on set expressions is still a set
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _is_trr_construction(node: ast.Call) -> bool:
    """``TRR(...)`` or a ``TRR.<classmethod>(...)`` such as ``from_point``
    / ``square`` — the per-node object builds the array kernel replaced."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "TRR"
    if isinstance(func, ast.Attribute):
        return isinstance(func.value, ast.Name) and func.value.id == "TRR"
    return False


def _mentions_cache_accessor(node: ast.AST) -> bool:
    """Does the expression chain contain a call to a memoized accessor?"""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr in CACHE_ACCESSORS
        ):
            return True
    return False


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: Path, rel: str, lines: list[str]) -> None:
        self.path = path
        self.rel = rel
        self.lines = lines
        self.findings: list[Finding] = []
        self._loop_depth = 0

    # -- plumbing ------------------------------------------------------
    def _in_scope(self, rule: str) -> bool:
        for frag in RULE_EXEMPT_FILES.get(rule, ()):
            if frag in self.rel:
                return False
        scope = RULE_SCOPE[rule]
        return scope is None or any(frag in self.rel for frag in scope)

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        if not self._in_scope(rule):
            return
        noqa = _noqa_codes(self.lines, node.lineno)
        if rule in noqa or (rule == "RL004" and "BLE001" in noqa):
            return
        self.findings.append(
            Finding(self.path, node.lineno, node.col_offset, rule, message)
        )

    # -- RL001: float equality ----------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.Eq, ast.NotEq)) and (
                _is_float_literal(left) or _is_float_literal(right)
            ):
                self._report(
                    "RL001",
                    node,
                    "float equality compare; use an epsilon "
                    "(math.isclose or explicit tolerance)",
                )
        self.generic_visit(node)

    # -- RL002: set iteration -----------------------------------------
    def _check_iter(self, iter_node: ast.AST, where: ast.AST) -> None:
        if _is_set_expr(iter_node):
            self._report(
                "RL002",
                where,
                "iteration over a bare set (hash-order nondeterminism); "
                "wrap in sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter, node)
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_While(self, node: ast.While) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter, node)
            # RL005: set built in a comprehension condition
            for cond in gen.ifs:
                for sub in ast.walk(cond):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Name)
                        and sub.func.id in ("set", "frozenset")
                    ):
                        self._report(
                            "RL005",
                            sub,
                            "set constructed inside a comprehension "
                            "condition (rebuilt per element); hoist it",
                        )
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    # -- RL003: memoized-cache mutation -------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_cache_store(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_cache_store(node.target)
        self.generic_visit(node)

    def _check_cache_store(self, target: ast.AST) -> None:
        if isinstance(target, ast.Attribute) and target.attr in CACHE_ATTRS:
            self._report(
                "RL003",
                target,
                f"store to memoized Topology cache {target.attr!r} "
                "outside topology/tree.py",
            )
        if isinstance(target, ast.Subscript) and _mentions_cache_accessor(
            target.value
        ):
            self._report(
                "RL003",
                target,
                "subscript store into a memoized Topology table "
                "(treat accessor results as read-only)",
            )

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATING_METHODS
            and _mentions_cache_accessor(node.func.value)
        ):
            self._report(
                "RL003",
                node,
                f".{node.func.attr}() on a memoized Topology table "
                "(treat accessor results as read-only)",
            )
        # RL006: per-node TRR construction inside a loop
        if self._loop_depth > 0 and _is_trr_construction(node):
            self._report(
                "RL006",
                node,
                "per-node TRR construction inside a loop; use the array "
                "kernel's (u_lo, u_hi, v_lo, v_hi) bound vectors "
                "(embedding/kernel.py) and materialise TRRs only at the "
                "view boundary",
            )
        self.generic_visit(node)

    # -- RL004: broad except ------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        broad = node.type is None or (
            isinstance(node.type, ast.Name)
            and node.type.id in ("Exception", "BaseException")
        )
        if broad:
            what = "bare except" if node.type is None else (
                f"except {node.type.id}"  # type: ignore[union-attr]
            )
            self._report(
                "RL004",
                node,
                f"{what} outside resilience/; name the exception or "
                "mark the boundary with `# noqa: BLE001`",
            )
        self.generic_visit(node)


def lint_file(path: Path, root: Path) -> list[Finding]:
    rel = "/" + path.resolve().relative_to(root.resolve()).as_posix()
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(path, exc.lineno or 0, exc.offset or 0, "RL000",
                    f"syntax error: {exc.msg}")
        ]
    visitor = _Visitor(path, rel, source.splitlines())
    visitor.visit(tree)
    return visitor.findings


def lint_paths(paths: list[Path]) -> list[Finding]:
    findings: list[Finding] = []
    for given in paths:
        root = given if given.is_dir() else given.parent
        files = sorted(given.rglob("*.py")) if given.is_dir() else [given]
        for f in files:
            findings.extend(lint_file(f, root))
    return findings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="LUBT project lint (see module docstring for rules)"
    )
    parser.add_argument("paths", nargs="+", type=Path)
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        print(__doc__)
        return 0
    findings = lint_paths(args.paths)
    for f in findings:
        print(f.render())
    if findings:
        print(f"lint_repro: {len(findings)} finding(s)")
        return 1
    print("lint_repro: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
