#!/usr/bin/env python3
"""Project-specific AST lint for the LUBT reproduction — compat shim.

The lint grew into the ``repro.analysis`` package (PR 9): a typed rule
registry, ``# noqa`` suppression with unused-suppression detection
(RL900), a concurrency rule family (CC001+) for the service layer,
JSON/SARIF output and a diff-aware CI mode.  Prefer::

    PYTHONPATH=src python -m repro.analysis src/
    PYTHONPATH=src python -m repro.analysis --list-rules

This script remains as a drop-in shim running exactly the legacy RL
surface (RL001–RL006, no suppression audit) with the legacy output
format.  Rule semantics live in ``repro.analysis.rules_rl``:

``RL001`` **float-equality** — no bare ``==``/``!=`` against float
    literals in ``geometry/``, ``embedding/`` and ``ebf/``.
``RL002`` **set-iteration** — no iteration over a bare set in ``lp/``
    and ``ebf/``; wrap in ``sorted(...)``.
``RL003`` **cache-mutation** — no mutation of the memoized ``Topology``
    caches outside ``topology/tree.py``.
``RL004`` **broad-except** — no ``except Exception:`` / bare ``except:``
    outside ``resilience/``; suppress a deliberate boundary with
    ``# noqa: BLE001``.
``RL005`` **set-rebuild-in-comprehension** — no ``set(...)`` constructed
    inside a comprehension's ``if`` clause.
``RL006`` **per-node-TRR-in-loop** — no ``TRR(...)`` construction inside
    a loop in ``embedding/``; use the array kernel's bound vectors.

Suppression: a ``# noqa: RLxxx`` (or ``# noqa: BLE001`` for RL004)
comment on the offending line disables that finding.  Exit status is 1
when any finding survives.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.engine import Finding, analyze_file, analyze_paths, load_rules

__all__ = ["Finding", "lint_file", "lint_paths", "main"]

load_rules()

#: Legacy mode: RL determinism rules only, no RL900 suppression audit —
#: the full surface (CC family, audit, SARIF, diff) is `repro.analysis`.
_LEGACY = dict(families=("RL",), audit=False, ignore=("RL900",))


def lint_file(path: Path, root: Path) -> list[Finding]:
    return analyze_file(path, root, **_LEGACY)


def lint_paths(paths: list[Path]) -> list[Finding]:
    return analyze_paths(paths, **_LEGACY)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="LUBT project lint (see module docstring for rules)"
    )
    parser.add_argument("paths", nargs="+", type=Path)
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        print(__doc__)
        return 0
    findings = lint_paths(args.paths)
    for f in findings:
        print(f.render())
    if findings:
        print(f"lint_repro: {len(findings)} finding(s)")
        return 1
    print("lint_repro: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
