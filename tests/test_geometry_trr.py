"""Unit and property tests for the TRR algebra (Section 5 + Appendix)."""

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, TRR, helly_intersection, manhattan

coords = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False)
radii = st.floats(min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


@st.composite
def trrs(draw):
    """Non-empty TRRs built from a point bbox plus an expansion."""
    pts = draw(st.lists(points, min_size=1, max_size=4))
    r = draw(radii)
    return TRR.from_points(pts).expanded(r)


class TestConstruction:
    def test_point_trr_is_point(self):
        t = TRR.from_point(Point(1, 2))
        assert t.is_point()
        assert not t.is_empty()
        assert t.center() == Point(1, 2)

    def test_square_trr(self):
        t = TRR.square(Point(0, 0), 2.0)
        assert t.radius == pytest.approx(2.0)
        assert t.contains(Point(2, 0))
        assert t.contains(Point(1, 1))
        assert not t.contains(Point(2, 1))

    def test_square_negative_radius_raises(self):
        with pytest.raises(ValueError):
            TRR.square(Point(0, 0), -1.0)

    def test_empty(self):
        assert TRR.empty().is_empty()
        assert TRR.from_points([]).is_empty()
        assert not TRR.empty().contains(Point(0, 0))

    def test_center_of_empty_raises(self):
        with pytest.raises(ValueError):
            TRR.empty().center()

    def test_segment_detection(self):
        # Two points on a Manhattan circle arc: same u, different v.
        a = Point(0, 0)
        b = Point(-1, 1)
        assert a.u == b.u
        t = TRR.from_points([a, b])
        assert t.is_segment()
        assert t.width == 0.0
        assert t.length == pytest.approx(2.0)

    def test_corners_count(self):
        t = TRR.square(Point(0, 0), 1.0)
        cs = t.corners()
        assert len(cs) == 4
        for c in cs:
            assert manhattan(Point(0, 0), c) == pytest.approx(1.0)


class TestExpansion:
    def test_expand_point_is_l1_ball(self):
        t = TRR.from_point(Point(0, 0)).expanded(3.0)
        assert t.contains(Point(3, 0))
        assert t.contains(Point(0, -3))
        assert t.contains(Point(1.5, 1.5))
        assert not t.contains(Point(2, 2))

    def test_expand_negative_raises(self):
        with pytest.raises(ValueError):
            TRR.from_point(Point(0, 0)).expanded(-0.5)

    def test_expand_empty_stays_empty(self):
        assert TRR.empty().expanded(5.0).is_empty()

    @given(points, radii, points)
    def test_expansion_is_exact_minkowski(self, c, r, q):
        """q is within distance r of {c} iff manhattan(c,q) <= r."""
        t = TRR.from_point(c).expanded(r)
        inside = manhattan(c, q) <= r + 1e-6
        assert t.contains(q, tol=1e-6) == inside or math.isclose(
            manhattan(c, q), r, rel_tol=1e-7, abs_tol=1e-6
        )

    @given(trrs(), radii, radii)
    def test_expansion_composes(self, t, r1, r2):
        a = t.expanded(r1).expanded(r2)
        b = t.expanded(r1 + r2)
        assert math.isclose(a.ulo, b.ulo, rel_tol=1e-9, abs_tol=1e-6)
        assert math.isclose(a.uhi, b.uhi, rel_tol=1e-9, abs_tol=1e-6)
        assert math.isclose(a.vlo, b.vlo, rel_tol=1e-9, abs_tol=1e-6)
        assert math.isclose(a.vhi, b.vhi, rel_tol=1e-9, abs_tol=1e-6)


class TestIntersection:
    def test_disjoint(self):
        a = TRR.square(Point(0, 0), 1.0)
        b = TRR.square(Point(10, 0), 1.0)
        assert a.intersect(b).is_empty()

    def test_nested(self):
        a = TRR.square(Point(0, 0), 5.0)
        b = TRR.square(Point(0, 0), 1.0)
        assert a.intersect(b) == b
        assert a.contains_trr(b)
        assert not b.contains_trr(a)

    def test_intersection_commutative(self):
        a = TRR.square(Point(0, 0), 3.0)
        b = TRR.square(Point(2, 2), 3.0)
        assert a.intersect(b) == b.intersect(a)

    @given(trrs(), trrs(), points)
    def test_intersection_membership(self, a, b, q):
        i = a.intersect(b)
        if a.contains(q, tol=0.0) and b.contains(q, tol=0.0):
            assert i.contains(q, tol=1e-9)
        if not i.is_empty() and i.contains(q, tol=0.0):
            assert a.contains(q, tol=1e-9) and b.contains(q, tol=1e-9)

    def test_touching_trrs_intersect_in_point_or_segment(self):
        a = TRR.square(Point(0, 0), 1.0)
        b = TRR.square(Point(2, 0), 1.0)
        i = a.intersect(b)
        assert not i.is_empty()
        assert i.is_point() or i.is_segment()
        assert i.contains(Point(1, 0))


class TestDistance:
    def test_distance_zero_when_intersecting(self):
        a = TRR.square(Point(0, 0), 2.0)
        b = TRR.square(Point(1, 0), 2.0)
        assert a.distance_to(b) == 0.0

    def test_distance_between_points(self):
        a = TRR.from_point(Point(0, 0))
        b = TRR.from_point(Point(3, 4))
        assert a.distance_to(b) == pytest.approx(7.0)

    def test_distance_empty_raises(self):
        with pytest.raises(ValueError):
            TRR.empty().distance_to(TRR.from_point(Point(0, 0)))

    @given(trrs(), trrs())
    def test_distance_symmetric(self, a, b):
        assert math.isclose(
            a.distance_to(b), b.distance_to(a), rel_tol=1e-9, abs_tol=1e-9
        )

    @given(trrs(), trrs())
    def test_expanding_by_distance_makes_them_touch(self, a, b):
        """dist(A,B)=d  =>  TRR(A,d) intersects B (Appendix geometry)."""
        d = a.distance_to(b)
        assert not a.expanded(d + 1e-6).intersect(b).is_empty()
        if d > 1e-6:
            assert a.expanded(d * 0.5).intersect(b).is_empty()

    @given(trrs(), points)
    def test_closest_point_is_a_minimizer(self, t, p):
        c = t.closest_point_to(p)
        assert t.contains(c, tol=1e-6)
        d = manhattan(c, p)
        assert math.isclose(d, t.distance_to_point(p), rel_tol=1e-9, abs_tol=1e-6)
        for s in t.sample_points(3):
            assert d <= manhattan(s, p) + 1e-6


class TestHelly:
    """Lemma 10.1 — the property that makes Theorem 4.1 true."""

    @given(st.lists(trrs(), min_size=1, max_size=6))
    @settings(max_examples=200)
    def test_pairwise_implies_common(self, regions):
        pairwise_ok = all(
            not a.intersect(b).is_empty()
            for a, b in itertools.combinations(regions, 2)
        )
        common = helly_intersection(regions)
        if pairwise_ok:
            assert not common.is_empty()
        if not common.is_empty():
            # Common point lies in every region.
            c = common.center()
            assert all(r.contains(c, tol=1e-6) for r in regions)

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            helly_intersection([])

    def test_three_squares_classic(self):
        """Three L1 balls pairwise touching share a point (unlike disks)."""
        a = TRR.square(Point(0, 0), 1.0)
        b = TRR.square(Point(2, 0), 1.0)
        c = TRR.square(Point(1, 1), 1.0)
        assert not a.intersect(b).is_empty()
        assert not b.intersect(c).is_empty()
        assert not a.intersect(c).is_empty()
        assert not helly_intersection([a, b, c]).is_empty()


class TestSamplePoints:
    def test_samples_inside(self):
        t = TRR.square(Point(3, 3), 2.0)
        for p in t.sample_points(4):
            assert t.contains(p, tol=1e-9)

    def test_samples_of_empty(self):
        assert TRR.empty().sample_points() == []

    def test_single_sample_is_center(self):
        t = TRR.square(Point(1, 1), 1.0)
        [c] = t.sample_points(per_axis=1)
        assert c == t.center()
