"""Circuit breakers: state machine, registry, and solve integration."""

import numpy as np
import pytest

from repro.ebf import DelayBounds, solve_lubt
from repro.ebf.bounds import radius_of
from repro.geometry import Point
from repro.lp.simplex import solve_simplex
from repro.resilience import (
    AttemptOutcome,
    BreakerRegistry,
    CircuitBreaker,
    default_registry,
    solve_lp_resilient,
)
from repro.resilience.faults import ExceptionFault, FaultyBackend
from repro.resilience.fallback import backend_chain
from repro.topology import nearest_neighbor_topology


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def small_instance(sinks=8, seed=5):
    rng = np.random.default_rng(seed)
    pts = [Point(float(x), float(y)) for x, y in rng.integers(0, 60, (sinks, 2))]
    topo = nearest_neighbor_topology(pts, Point(30.0, 30.0))
    r = radius_of(topo)
    return topo, DelayBounds.uniform(sinks, 0.8 * r, 1.3 * r)


class TestCircuitBreaker:
    """The closed -> open -> half-open -> closed state machine, driven
    by a fake clock so every transition is deterministic."""

    def test_starts_closed_and_allows(self):
        b = CircuitBreaker("x", clock=FakeClock())
        assert b.state == "closed"
        assert b.allow()

    def test_opens_after_threshold_consecutive_failures(self):
        b = CircuitBreaker("x", failure_threshold=3, clock=FakeClock())
        b.record_failure()
        b.record_failure()
        assert b.state == "closed" and b.allow()
        b.record_failure()
        assert b.state == "open"
        assert not b.allow()

    def test_success_resets_the_streak(self):
        b = CircuitBreaker("x", failure_threshold=3, clock=FakeClock())
        b.record_failure()
        b.record_failure()
        b.record_success()
        b.record_failure()
        b.record_failure()
        assert b.state == "closed"  # streak restarted after the success

    def test_half_open_after_recovery_allows_one_probe(self):
        clock = FakeClock()
        b = CircuitBreaker(
            "x", failure_threshold=1, recovery_time=10.0, clock=clock
        )
        b.record_failure()
        assert not b.allow()
        clock.advance(10.5)
        assert b.allow()  # the single half-open probe
        assert b.state == "half-open"
        assert not b.allow()  # second caller inside the window is refused

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        b = CircuitBreaker(
            "x", failure_threshold=1, recovery_time=10.0, clock=clock
        )
        b.record_failure()
        clock.advance(11.0)
        assert b.allow()
        b.record_failure()
        assert b.state == "open"
        assert not b.allow()
        assert b.snapshot()["opens"] == 2

    def test_successful_probe_closes(self):
        clock = FakeClock()
        b = CircuitBreaker(
            "x", failure_threshold=1, recovery_time=10.0, clock=clock
        )
        b.record_failure()
        clock.advance(11.0)
        assert b.allow()
        b.record_success()
        assert b.state == "closed"
        assert b.allow()

    def test_snapshot_counts(self):
        clock = FakeClock()
        b = CircuitBreaker(
            "x", failure_threshold=1, recovery_time=5.0, clock=clock
        )
        b.record_failure()
        b.allow()  # refused -> skip
        clock.advance(6.0)
        b.allow()  # probe
        snap = b.snapshot()
        assert snap["state"] == "half-open"
        assert snap["opens"] == 1
        assert snap["probes"] == 1
        assert snap["skips"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("x", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("x", recovery_time=-1.0)


class TestBreakerRegistry:
    def test_lazy_per_name_breakers(self):
        reg = BreakerRegistry(failure_threshold=2, clock=FakeClock())
        assert reg.allow("a") and reg.allow("b")
        reg.record("a", False)
        reg.record("a", False)
        assert not reg.allow("a")
        assert reg.allow("b")  # independent breaker
        assert reg.states() == {"a": "open", "b": "closed"}

    def test_reset(self):
        reg = BreakerRegistry(failure_threshold=1, clock=FakeClock())
        reg.record("a", False)
        assert not reg.allow("a")
        reg.reset()
        assert reg.allow("a")

    def test_default_registry_is_a_singleton(self):
        assert default_registry() is default_registry()


def _lp():
    """min x  s.t.  x >= 2  -> optimum 2."""
    from repro.lp.model import LinearProgram, Sense

    lp = LinearProgram()
    x = lp.add_variable("x", cost=1.0)
    lp.add_constraint({x: 1.0}, Sense.GE, 2.0)
    return lp


class TestSolveIntegration:
    """Breakers consulted by the resilient cascade: skip-open backends,
    record outcomes, surface state in the SolveReport."""

    def test_open_breaker_is_skipped_without_paying_the_failure(self):
        clock = FakeClock()
        reg = BreakerRegistry(failure_threshold=2, clock=clock)
        faulty = FaultyBackend(solve_simplex, [ExceptionFault()] * 4,
                               name="simplex")
        solvers = {"simplex": faulty}
        lp = _lp()
        chain = backend_chain(lp)

        # Two failing solves open the simplex breaker...
        for _ in range(2):
            report = solve_lp_resilient(
                lp, chain, solvers=solvers, breakers=reg
            )
            assert report.result.is_optimal  # scipy fallback answered
        assert reg.states()["simplex"] == "open"
        calls_when_opened = faulty.calls

        # ...after which simplex is not even attempted.
        report = solve_lp_resilient(
            lp, chain, solvers=solvers, breakers=reg
        )
        assert report.result.is_optimal
        assert faulty.calls == calls_when_opened
        skipped = [a for a in report.attempts
                   if a.outcome == AttemptOutcome.SKIPPED]
        assert [a.backend for a in skipped] == ["simplex"]
        assert report.breaker_states["simplex"] == "open"

    def test_recovered_backend_closes_via_probe(self):
        clock = FakeClock()
        reg = BreakerRegistry(
            failure_threshold=1, recovery_time=10.0, clock=clock
        )
        # Two faults: the attempt AND its rescale retry must fail, or
        # the retry's success resets the streak before the breaker opens.
        faulty = FaultyBackend(solve_simplex, [ExceptionFault()] * 2,
                               name="simplex")
        solvers = {"simplex": faulty}
        lp = _lp()
        chain = backend_chain(lp)

        solve_lp_resilient(lp, chain, solvers=solvers, breakers=reg)
        assert reg.states()["simplex"] == "open"
        clock.advance(11.0)  # schedule exhausted: the probe will succeed
        report = solve_lp_resilient(
            lp, chain, solvers=solvers, breakers=reg
        )
        assert report.result.is_optimal
        assert report.attempts[0].backend == "simplex"
        assert reg.states()["simplex"] == "closed"

    def test_race_path_filters_open_backends(self):
        reg = BreakerRegistry(failure_threshold=1, clock=FakeClock())
        reg.record("simplex", False)
        lp = _lp()
        report = solve_lp_resilient(
            lp, backend_chain(lp), race="auto", breakers=reg
        )
        assert report.result.is_optimal
        assert report.result.backend != "simplex"
        skipped = {a.backend for a in report.attempts
                   if a.outcome == AttemptOutcome.SKIPPED}
        assert "simplex" in skipped

    def test_solve_lubt_stamps_breaker_states(self):
        topo, bounds = small_instance()
        reg = BreakerRegistry(failure_threshold=2, clock=FakeClock())
        sol = solve_lubt(topo, bounds, resilient=True, breakers=reg)
        assert sol.solve_reports
        for report in sol.solve_reports:
            assert report.breaker_states.get("simplex") == "closed"

    def test_faulty_backend_opens_breaker_visible_in_report(self):
        topo, bounds = small_instance()
        reg = BreakerRegistry(failure_threshold=3, clock=FakeClock())
        solvers = {
            "simplex": FaultyBackend(
                solve_simplex, [ExceptionFault()] * 50, name="simplex"
            )
        }
        sol = solve_lubt(
            topo, bounds, resilient=True, breakers=reg, solvers=solvers
        )
        states = [r.breaker_states.get("simplex")
                  for r in sol.solve_reports]
        assert states[-1] == "open"
        assert reg.snapshot()["simplex"]["opens"] >= 1
        # Any further solve through the same registry skips the dead
        # backend outright instead of paying its failure again.
        lp = _lp()
        report = solve_lp_resilient(
            lp, backend_chain(lp), solvers=solvers, breakers=reg
        )
        assert report.result.is_optimal
        assert report.attempts[0].backend == "simplex"
        assert report.attempts[0].outcome == AttemptOutcome.SKIPPED
        assert reg.snapshot()["simplex"]["skips"] >= 1
