"""The analyzer engine: registry, suppression, audit, output, diff mode.

Behavioral contract of :mod:`repro.analysis.engine` — rule bookkeeping,
``# noqa`` handling (including the BLE001 alias and the RL900 stale-
suppression audit), JSON/SARIF rendering, diff-aware filtering, and the
CLI's exit codes.
"""

import json
import subprocess
from pathlib import Path

import pytest

from repro.analysis import engine
from repro.analysis.engine import (
    Finding,
    Rule,
    analyze_file,
    analyze_paths,
    changed_lines_vs,
    load_rules,
    render_json,
    render_sarif,
)

ASYNC_SLEEPER = (
    "import time\n\nasync def f():\n    time.sleep(1)\n"
)


def write(tmp_path: Path, name: str, source: str) -> Path:
    p = tmp_path / name
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(source)
    return p


class TestRegistry:
    def test_load_rules_registers_both_families(self):
        rules = load_rules()
        for code in ("RL001", "RL004", "RL900", "CC001", "CC006"):
            assert code in rules
        assert all(isinstance(r, Rule) for r in rules.values())

    def test_duplicate_code_rejected(self):
        load_rules()
        clone = Rule(code="CC001", name="imposter", summary="nope")
        with pytest.raises(ValueError, match="duplicate"):
            engine.register(clone)

    def test_reregistering_same_object_is_idempotent(self):
        load_rules()
        rule = engine.RULES["CC001"]
        assert engine.register(rule) is rule

    def test_every_rule_has_summary_and_valid_severity(self):
        for rule in load_rules().values():
            assert rule.summary
            assert rule.severity in ("error", "warning")


class TestFinding:
    def test_render_and_dict_shape(self):
        load_rules()
        f = Finding(Path("a.py"), 3, 7, "CC001", "boom")
        assert f.render() == "a.py:3:7: CC001 boom"
        d = f.to_dict()
        assert d["rule"] == "CC001" and d["line"] == 3 and d["col"] == 7
        assert d["severity"] == engine.RULES["CC001"].severity

    def test_unknown_rule_defaults_to_error_severity(self):
        assert Finding(Path("a.py"), 1, 0, "ZZ999", "x").severity == "error"


class TestSuppression:
    def test_noqa_suppresses_the_named_code(self, tmp_path):
        src = ASYNC_SLEEPER.replace(
            "time.sleep(1)", "time.sleep(1)  # noqa: CC001"
        )
        p = write(tmp_path, "m.py", src)
        assert analyze_file(p, tmp_path) == []

    def test_noqa_for_other_code_does_not_suppress(self, tmp_path):
        src = ASYNC_SLEEPER.replace(
            "time.sleep(1)", "time.sleep(1)  # noqa: CC005"
        )
        p = write(tmp_path, "m.py", src)
        rules = [f.rule for f in analyze_file(p, tmp_path)]
        assert "CC001" in rules
        assert "RL900" in rules  # and the useless escape is itself flagged

    def test_ble001_alias_suppresses_rl004(self, tmp_path):
        src = (
            "def f():\n"
            "    try:\n"
            "        pass\n"
            "    except Exception:  # noqa: BLE001\n"
            "        pass\n"
        )
        p = write(tmp_path, "m.py", src)
        assert analyze_file(p, tmp_path) == []

    def test_used_alias_is_not_audited_stale(self, tmp_path):
        # The alias counts as *used*, so RL900 must stay quiet about it.
        src = (
            "def f():\n"
            "    try:\n"
            "        pass\n"
            "    except Exception:  # noqa: BLE001\n"
            "        pass\n"
        )
        p = write(tmp_path, "m.py", src)
        assert all(f.rule != "RL900" for f in analyze_file(p, tmp_path))


class TestAudit:
    def test_stale_noqa_flagged(self, tmp_path):
        p = write(tmp_path, "m.py", "x = 1  # noqa: CC001\n")
        findings = analyze_file(p, tmp_path)
        assert [f.rule for f in findings] == ["RL900"]
        assert "CC001" in findings[0].message

    def test_rl900_itself_suppressible(self, tmp_path):
        p = write(tmp_path, "m.py", "x = 1  # noqa: CC001, RL900\n")
        assert analyze_file(p, tmp_path) == []

    def test_foreign_tool_codes_ignored(self, tmp_path):
        # ruff/flake8 codes outside the auditable set are not our business.
        p = write(tmp_path, "m.py", "import os  # noqa: F401\n")
        assert analyze_file(p, tmp_path) == []

    def test_no_audit_flag_disables_rl900(self, tmp_path):
        p = write(tmp_path, "m.py", "x = 1  # noqa: CC001\n")
        assert analyze_file(p, tmp_path, audit=False) == []


class TestSelection:
    def test_select_narrows_to_named_codes(self, tmp_path):
        p = write(tmp_path, "m.py", ASYNC_SLEEPER)
        assert analyze_file(p, tmp_path, select=["CC005"]) == []
        assert [f.rule for f in analyze_file(p, tmp_path, select=["CC001"])] \
            == ["CC001"]

    def test_ignore_drops_named_codes(self, tmp_path):
        p = write(tmp_path, "m.py", ASYNC_SLEEPER)
        assert analyze_file(p, tmp_path, ignore=["CC001"]) == []

    def test_families_filter(self, tmp_path):
        p = write(tmp_path, "m.py", ASYNC_SLEEPER)
        assert analyze_file(p, tmp_path, families=("RL",)) == []

    def test_syntax_error_reports_rl000(self, tmp_path):
        p = write(tmp_path, "m.py", "def broken(:\n")
        findings = analyze_file(p, tmp_path)
        assert [f.rule for f in findings] == ["RL000"]


class TestRendering:
    def _findings(self, tmp_path):
        p = write(tmp_path, "m.py", ASYNC_SLEEPER)
        return analyze_file(p, tmp_path)

    def test_json_shape(self, tmp_path):
        doc = json.loads(render_json(self._findings(tmp_path)))
        assert doc["tool"] == "repro.analysis"
        assert doc["count"] == 1
        assert doc["findings"][0]["rule"] == "CC001"

    def test_sarif_shape(self, tmp_path):
        doc = json.loads(render_sarif(self._findings(tmp_path)))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro.analysis"
        assert [r["id"] for r in run["tool"]["driver"]["rules"]] == ["CC001"]
        result = run["results"][0]
        assert result["ruleId"] == "CC001"
        assert result["level"] == "error"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 4
        assert region["startColumn"] >= 1

    def test_sarif_empty_run_is_valid(self):
        doc = json.loads(render_sarif([]))
        assert doc["runs"][0]["results"] == []


class TestDiffAware:
    def test_changed_mapping_filters_files_and_lines(self, tmp_path):
        flagged = write(tmp_path, "a.py", ASYNC_SLEEPER)
        write(tmp_path, "b.py", ASYNC_SLEEPER)
        # Only a.py is "changed", and only its finding line counts.
        changed = {flagged.resolve(): {4}}
        findings = analyze_paths([tmp_path], changed=changed)
        assert [(f.path.name, f.rule) for f in findings] == [("a.py", "CC001")]
        # Changed lines that miss the finding filter it out.
        assert analyze_paths(
            [tmp_path], changed={flagged.resolve(): {1}}
        ) == []

    def test_none_line_set_means_whole_file(self, tmp_path):
        flagged = write(tmp_path, "a.py", ASYNC_SLEEPER)
        findings = analyze_paths(
            [tmp_path], changed={flagged.resolve(): None}
        )
        assert [f.rule for f in findings] == ["CC001"]

    def test_changed_lines_vs_parses_real_diff(self, tmp_path):
        git = ["git", "-C", str(tmp_path), "-c", "user.email=t@t",
               "-c", "user.name=t"]
        subprocess.run(["git", "init", "-q", str(tmp_path)], check=True)
        target = write(tmp_path, "mod.py", "x = 1\ny = 2\n")
        subprocess.run([*git, "add", "."], check=True)
        subprocess.run([*git, "commit", "-qm", "seed"], check=True)
        target.write_text("x = 1\ny = 3\nz = 4\n")
        changed = changed_lines_vs("HEAD", repo_root=tmp_path)
        assert changed == {target.resolve(): {2, 3}}


class TestCli:
    def test_clean_file_exits_0(self, tmp_path, capsys):
        p = write(tmp_path, "m.py", "x = 1\n")
        assert engine.main([str(p)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_1_with_render(self, tmp_path, capsys):
        p = write(tmp_path, "m.py", ASYNC_SLEEPER)
        assert engine.main([str(p)]) == 1
        out = capsys.readouterr().out
        assert "CC001" in out and "1 finding(s)" in out

    def test_json_flag(self, tmp_path, capsys):
        p = write(tmp_path, "m.py", ASYNC_SLEEPER)
        assert engine.main([str(p), "--json"]) == 1
        assert json.loads(capsys.readouterr().out)["count"] == 1

    def test_sarif_flag(self, tmp_path, capsys):
        p = write(tmp_path, "m.py", ASYNC_SLEEPER)
        assert engine.main([str(p), "--sarif"]) == 1
        assert json.loads(capsys.readouterr().out)["version"] == "2.1.0"

    def test_list_rules(self, capsys):
        assert engine.main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "CC001" in out and "RL900" in out

    def test_explain_known_and_unknown(self, capsys):
        assert engine.main(["--explain", "cc001"]) == 0
        assert "CC001" in capsys.readouterr().out
        assert engine.main(["--explain", "ZZ999"]) == 2

    def test_ignore_flag(self, tmp_path, capsys):
        p = write(tmp_path, "m.py", ASYNC_SLEEPER)
        assert engine.main([str(p), "--ignore", "CC001"]) == 0
        capsys.readouterr()

    def test_bad_diff_ref_exits_2(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)  # not a git repo
        p = write(tmp_path, "m.py", "x = 1\n")
        assert engine.main([str(p), "--diff", "HEAD"]) == 2
        assert "cannot diff" in capsys.readouterr().err
