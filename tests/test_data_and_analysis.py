"""Tests for benchmark surrogates, metrics, and table rendering."""

import numpy as np
import pytest

from repro.analysis import (
    Table,
    measure_baseline,
    measure_solution,
    normalize_to_radius,
    validate_lubt_solution,
)
from repro.baselines import bounded_skew_tree
from repro.data import (
    BENCHMARKS,
    benchmark_names,
    clustered_sinks,
    grid_sinks,
    load_benchmark,
    uniform_sinks,
)
from repro.ebf import DelayBounds, solve_lubt
from repro.ebf.bounds import radius_of
from repro.geometry import manhattan
from repro.topology import nearest_neighbor_topology


class TestGenerators:
    def test_uniform_deterministic(self):
        a = uniform_sinks(20, seed=7)
        b = uniform_sinks(20, seed=7)
        assert a == b
        assert uniform_sinks(20, seed=8) != a

    def test_uniform_within_die(self):
        pts = uniform_sinks(100, seed=1, width=50, height=30)
        assert all(0 <= p.x <= 50 and 0 <= p.y <= 30 for p in pts)

    def test_uniform_bad_count(self):
        with pytest.raises(ValueError):
            uniform_sinks(0, seed=1)

    def test_clustered_within_die(self):
        pts = clustered_sinks(200, seed=2, width=100, height=100)
        assert len(pts) == 200
        assert all(0 <= p.x <= 100 and 0 <= p.y <= 100 for p in pts)

    def test_clustered_is_clustered(self):
        """Clustered placements have smaller mean nearest-neighbor
        distance than uniform ones of the same size/die."""
        def mean_nn(pts):
            return np.mean(
                [
                    min(manhattan(p, q) for q in pts if q is not p)
                    for p in pts
                ]
            )

        uni = uniform_sinks(150, seed=3, width=1000, height=1000)
        clu = clustered_sinks(150, seed=3, width=1000, height=1000)
        assert mean_nn(clu) < mean_nn(uni)

    def test_grid(self):
        pts = grid_sinks(3, 4, pitch=10)
        assert len(pts) == 12
        assert pts[0].x == 0 and pts[-1].x == 30

    def test_grid_jitter_deterministic(self):
        a = grid_sinks(2, 2, jitter=1.0, seed=5)
        b = grid_sinks(2, 2, jitter=1.0, seed=5)
        assert a == b


class TestSuites:
    def test_paper_sink_counts(self):
        assert load_benchmark("prim1").num_sinks == 269
        assert load_benchmark("prim2").num_sinks == 603
        assert load_benchmark("r1").num_sinks == 267
        assert load_benchmark("r3").num_sinks == 862

    def test_full_tsay_suite_counts(self):
        assert load_benchmark("r2").num_sinks == 598
        assert load_benchmark("r4").num_sinks == 1903
        assert load_benchmark("r5").num_sinks == 3101

    def test_names(self):
        from repro.data.suites import PAPER_BENCHMARKS

        assert set(PAPER_BENCHMARKS) <= set(benchmark_names())
        assert set(benchmark_names()) == {
            "prim1", "prim2", "r1", "r2", "r3", "r4", "r5"
        }

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            load_benchmark("primary9")

    def test_scaled_view(self):
        b = load_benchmark("prim1").scaled(32)
        assert b.num_sinks == 32
        assert b.sinks == load_benchmark("prim1").sinks[:32]
        assert b.source == load_benchmark("prim1").source
        with pytest.raises(ValueError):
            b.scaled(0)

    def test_deterministic_across_loads(self):
        assert load_benchmark("r1").sinks == BENCHMARKS["r1"].sinks


class TestMetrics:
    def test_solution_metrics(self):
        bench = load_benchmark("prim1").scaled(12)
        topo = nearest_neighbor_topology(list(bench.sinks), bench.source)
        r = radius_of(topo)
        sol = solve_lubt(topo, DelayBounds.uniform(12, 0.0, 2 * r))
        m = measure_solution(sol)
        assert m.cost == pytest.approx(sol.cost)
        assert m.radius == pytest.approx(r)
        assert m.longest_normalized <= 2.0 + 1e-9
        assert m.skew == pytest.approx(m.longest_delay - m.shortest_delay)

    def test_baseline_metrics(self):
        bench = load_benchmark("r1").scaled(10)
        tree = bounded_skew_tree(list(bench.sinks), 0.0, bench.source)
        m = measure_baseline(tree)
        assert m.skew == pytest.approx(0.0, abs=1e-9)
        assert m.cost == pytest.approx(tree.cost)

    def test_normalize(self):
        bench = load_benchmark("prim2").scaled(8)
        topo = nearest_neighbor_topology(list(bench.sinks), bench.source)
        r = radius_of(topo)
        assert normalize_to_radius(topo, r) == pytest.approx(1.0)

    def test_validate_lubt_solution(self):
        bench = load_benchmark("r3").scaled(10)
        topo = nearest_neighbor_topology(list(bench.sinks), bench.source)
        r = radius_of(topo)
        sol = solve_lubt(topo, DelayBounds.uniform(10, 0.5 * r, 1.5 * r))
        validate_lubt_solution(sol)  # should not raise


class TestTableRenderer:
    def test_render_aligned(self):
        t = Table(["bench", "cost"], title="demo")
        t.add_row("prim1", 1234.5)
        t.add_row("r1", 8.25)
        text = t.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "bench" in lines[1] and "cost" in lines[1]
        assert len({len(line) for line in lines[2:]}) == 1  # aligned

    def test_float_formats(self):
        t = Table(["v"])
        t.add_row(float("inf"))
        t.add_row(float("nan"))
        t.add_row(0.123456)
        t.add_row(123456.789)
        body = t.render()
        assert "inf" in body and "nan" in body
        assert "0.123" in body and "123456.8" in body

    def test_row_width_mismatch(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table([])
