"""Golden-diagnostic tests for the static verification layer
(:mod:`repro.check`), driven by :mod:`repro.resilience.faults` instance
breakers, plus the solver wiring (``validate="strict"|"warn"|"off"``)."""

import math
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DelayBounds, Point, nearest_neighbor_topology, solve_lubt
from repro.check import (
    CODES,
    DiagnosticWarning,
    InstanceCheckError,
    Severity,
    check_instance,
    collect,
)
from repro.data.generators import clustered_sinks, uniform_sinks
from repro.ebf.formulation import build_ebf_lp
from repro.lp import LinearProgram, Sense
from repro.resilience import faults
from repro.topology import Topology


def small_instance(m=6, seed=7):
    sinks = uniform_sinks(m, seed, width=100.0, height=100.0)
    topo = nearest_neighbor_topology(sinks, source=Point(50.0, 50.0))
    bounds = DelayBounds.normalized(topo, 0.9, 1.4)
    return topo, bounds


class TestGoldenDiagnostics:
    """Each deliberately broken instance reports its stable code."""

    def test_nan_injection_reports_lp001(self):
        topo, bounds = small_instance()
        lp = build_ebf_lp(topo, bounds)
        faults.inject_nan_coefficient(lp, row=0)
        codes = check_instance(lp=lp).codes()
        assert "LP001" in codes

    def test_inverted_bounds_report_bd002(self):
        topo, bounds = small_instance()
        broken = faults.invert_bounds(bounds, sink=3)
        result = check_instance(topo, broken)
        bd2 = [d for d in result.diagnostics if d.code == "BD002"]
        assert len(bd2) == 1 and bd2[0].locus == "sink 3"
        assert not result.ok

    def test_topology_cycle_reports_tp001_and_tp003(self):
        topo, _ = small_instance()
        parents = list(topo._parents)
        # Reparent a branching Steiner node onto its own child: a real
        # multi-node cycle, stranding every sink beneath it.
        at = next(iter(topo.steiner_ids()))
        broken = faults.cyclic_parents(parents, at=at)
        result = check_instance(parents=broken, num_sinks=topo.num_sinks)
        assert "TP001" in result.codes()
        assert "TP003" in result.codes()
        assert not result.ok

    def test_self_parent_reports_tp004(self):
        topo, _ = small_instance()
        broken = faults.cyclic_parents(list(topo._parents), at=1)
        result = check_instance(parents=broken, num_sinks=topo.num_sinks)
        assert "TP004" in result.codes()  # leaf sink: falls back to self-cycle
        assert not result.ok

    def test_nan_sink_location_reports_tp008(self):
        sinks = [Point(0.0, 0.0), Point(float("nan"), 5.0), Point(9.0, 1.0)]
        topo = Topology([None, 0, 0, 0], 3, sinks, Point(5.0, 5.0))
        assert "TP008" in check_instance(topo).codes()

    def test_duplicate_sink_location_reports_tp007(self):
        sinks = [Point(1.0, 2.0), Point(1.0, 2.0), Point(9.0, 1.0)]
        topo = Topology([None, 0, 0, 0], 3, sinks, Point(5.0, 5.0))
        result = check_instance(topo)
        assert "TP007" in result.codes()
        assert result.ok  # a warning, not an error

    def test_dangling_and_passthrough_steiner(self):
        # node 4: Steiner leaf; node 5: pass-through Steiner over sink 3.
        sinks = [Point(0.0, 0.0), Point(10.0, 0.0), Point(5.0, 8.0)]
        topo = Topology([None, 0, 0, 5, 0, 0], 3, sinks, Point(5.0, 5.0))
        codes = check_instance(topo).codes()
        assert "TP005" in codes and "TP006" in codes

    def test_bounds_below_floor_reports_bd005(self):
        topo, _ = small_instance()
        tight = DelayBounds.uniform(topo.num_sinks, 0.0, 1e-6)
        result = check_instance(topo, tight)
        assert "BD005" in result.codes()
        # mirrored solver knob: floor off -> no BD005
        relaxed = check_instance(topo, tight, geometric_floor=False)
        assert "BD005" not in relaxed.codes()

    def test_bound_count_mismatch_reports_bd004(self):
        topo, _ = small_instance(m=5)
        bad = DelayBounds.uniform(3, 10.0, 20.0)
        assert "BD004" in check_instance(topo, bad).codes()

    def test_nan_bound_reports_bd001(self):
        topo, _ = small_instance()
        nanb = DelayBounds.unchecked(
            np.full(topo.num_sinks, float("nan")),
            np.full(topo.num_sinks, 100.0),
        )
        assert "BD001" in check_instance(topo, nanb).codes()

    def test_negative_lower_reports_bd003(self):
        topo, _ = small_instance()
        neg = DelayBounds.unchecked(
            np.full(topo.num_sinks, -1.0), np.full(topo.num_sinks, 1e9)
        )
        assert "BD003" in check_instance(topo, neg).codes()

    def test_zero_width_window_reports_bd007_info(self):
        topo, _ = small_instance()
        z = DelayBounds.zero_skew(topo.num_sinks, 500.0)
        result = check_instance(topo, z, geometric_floor=False)
        assert "BD007" in result.codes()
        assert all(d.severity is Severity.INFO
                   for d in result.diagnostics if d.code == "BD007")


class TestLpChecks:
    def test_duplicate_row_lp010(self):
        lp = LinearProgram()
        j = lp.add_variable()
        lp.add_constraint({j: 1.0}, Sense.GE, 2.0, name="a")
        lp.add_constraint({j: 1.0}, Sense.GE, 2.0, name="b")
        assert "LP010" in check_instance(lp=lp).codes()

    def test_dominated_ge_row_lp012(self):
        lp = LinearProgram()
        j = lp.add_variable()
        lp.add_constraint({j: 1.0}, Sense.GE, 5.0, name="binding")
        lp.add_constraint({j: 1.0}, Sense.GE, 2.0, name="dominated")
        result = check_instance(lp=lp)
        doms = [d for d in result.diagnostics if d.code == "LP012"]
        assert len(doms) == 1 and "dominated" in doms[0].locus
        assert result.ok  # dominated rows are warnings

    def test_empty_rows_lp005_lp011(self):
        lp = LinearProgram()
        lp.add_variable()
        lp.add_constraint({}, Sense.GE, 1.0, name="impossible")
        lp.add_constraint({}, Sense.LE, 1.0, name="trivial")
        codes = check_instance(lp=lp).codes()
        assert "LP005" in codes and "LP011" in codes

    def test_nonfinite_cost_and_rhs(self):
        lp = LinearProgram()
        j = lp.add_variable(cost=float("inf"))
        lp.add_constraint({j: 1.0}, Sense.LE, float("nan"))
        codes = check_instance(lp=lp).codes()
        assert "LP002" in codes and "LP003" in codes

    def test_clean_ebf_lp_has_no_findings(self):
        topo, bounds = small_instance()
        lp = build_ebf_lp(topo, bounds)
        result = check_instance(topo, bounds, lp)
        # The only finding on a clean EBF build is the advisory LP013
        # note that the model is tree-solvable.
        assert set(result.codes()) == {"LP013"}
        assert all(d.severity is Severity.INFO for d in result.diagnostics)

    def test_tree_meta_watermark_visibility(self):
        topo, bounds = small_instance()
        lp = build_ebf_lp(topo, bounds)
        assert "LP013" in check_instance(lp=lp).codes()
        # Appending a row outside add_steiner_rows strands the watermark:
        # the checker flips from advisory LP013 to warning LP014.
        lp.add_constraint({0: 1.0}, Sense.LE, 1e9, name="foreign")
        codes = check_instance(lp=lp).codes()
        assert "LP014" in codes and "LP013" not in codes


class TestSolverWiring:
    def test_strict_raises_before_solving(self):
        topo, bounds = small_instance()
        broken = faults.invert_bounds(bounds, sink=2)
        with pytest.raises(InstanceCheckError) as err:
            solve_lubt(topo, broken, validate="strict", check_bounds=False)
        assert any(d.code == "BD002" for d in err.value.result.errors)

    def test_warn_mode_warns_and_still_raises_downstream(self):
        topo, bounds = small_instance()
        broken = faults.invert_bounds(bounds, sink=2)
        with pytest.warns(DiagnosticWarning, match="BD002"):
            with pytest.raises(Exception):
                solve_lubt(topo, broken, check_bounds=False)

    def test_off_mode_skips_precheck(self):
        topo, bounds = small_instance()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DiagnosticWarning)
            sol = solve_lubt(topo, bounds, validate="off")
        assert math.isfinite(sol.cost)

    def test_strict_solves_clean_instance(self):
        topo, bounds = small_instance()
        sol = solve_lubt(topo, bounds, validate="strict")
        ref = solve_lubt(topo, bounds)
        assert sol.cost == pytest.approx(ref.cost)

    def test_unknown_validate_rejected(self):
        topo, bounds = small_instance()
        with pytest.raises(ValueError):
            solve_lubt(topo, bounds, validate="loud")


class TestDiagnosticPlumbing:
    def test_every_code_has_severity_slug_and_hint(self):
        for code, (sev, slug, hint) in CODES.items():
            assert isinstance(sev, Severity)
            assert slug and hint
            assert code[:2] in ("LP", "TP", "BD")

    def test_collect_captures_bd006_from_range_collapse(self):
        lp = LinearProgram()
        j = lp.add_variable()
        with collect() as emitted:
            lp.add_range_constraint({j: 1.0}, 43.0, 42.99999999999999)
        assert [d.code for d in emitted] == ["BD006"]

    def test_unknown_code_rejected(self):
        from repro.check import Diagnostic

        with pytest.raises(ValueError):
            Diagnostic("XX999", "nope")


@settings(max_examples=20, deadline=None)
@given(
    m=st.integers(min_value=2, max_value=24),
    seed=st.integers(min_value=0, max_value=2**20),
    kind=st.sampled_from(["uniform", "clustered"]),
)
def test_generator_instances_check_clean(m, seed, kind):
    """Property: every generator-produced valid suite instance passes the
    static checker with zero errors (warnings allowed)."""
    make = uniform_sinks if kind == "uniform" else clustered_sinks
    sinks = make(m, seed, width=1000.0, height=800.0)
    topo = nearest_neighbor_topology(sinks, source=Point(500.0, 400.0))
    bounds = DelayBounds.normalized(topo, 0.8, 1.3)
    lp = build_ebf_lp(topo, bounds)
    result = check_instance(topo, bounds, lp)
    assert result.ok, result.summary()
