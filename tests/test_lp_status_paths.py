"""Non-optimal LP status paths across both backends.

Satellite coverage for the resilience PR: infeasible / unbounded / error
statuses must be classified identically by the simplex and scipy
backends, ``require_optimal`` must raise the matching typed error with
the backend's message threaded through, and the ``"auto"`` dispatch must
never crash on a capability gap.
"""

import numpy as np
import pytest

from repro.lp import (
    BackendCapabilityError,
    InfeasibleError,
    LinearProgram,
    LpResult,
    LpStatus,
    Sense,
    UnboundedError,
    preferred_backend,
    solve_lp,
)
from repro.lp.scipy_backend import solve_scipy
from repro.lp.simplex import solve_simplex

BACKENDS = ["simplex", "scipy"]


def infeasible_lp() -> LinearProgram:
    """x >= 2 and x <= 1 cannot both hold."""
    lp = LinearProgram()
    x = lp.add_variable("x", cost=1.0)
    lp.add_constraint({x: 1.0}, Sense.GE, 2.0)
    lp.add_constraint({x: 1.0}, Sense.LE, 1.0)
    return lp


def unbounded_lp() -> LinearProgram:
    """max x with x >= 0 only — unbounded above."""
    lp = LinearProgram(minimize=False)
    x = lp.add_variable("x", cost=1.0)
    lp.add_constraint({x: 1.0}, Sense.GE, 0.0)
    return lp


def free_variable_lp() -> LinearProgram:
    """min x, x >= -3, with a free (lb = -inf) variable."""
    lp = LinearProgram()
    x = lp.add_variable("x", cost=1.0, lb=-np.inf)
    lp.add_constraint({x: 1.0}, Sense.GE, -3.0)
    return lp


class TestInfeasibleStatus:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_status_and_typed_error(self, backend):
        res = solve_lp(infeasible_lp(), backend)
        assert res.status is LpStatus.INFEASIBLE
        assert res.x is None and res.objective is None
        with pytest.raises(InfeasibleError, match="backend="):
            res.require_optimal()

    def test_scipy_message_threaded(self):
        res = solve_scipy(infeasible_lp())
        assert res.status is LpStatus.INFEASIBLE
        assert res.message  # HiGHS explains itself
        with pytest.raises(InfeasibleError, match="backend=scipy-highs"):
            res.require_optimal()

    def test_simplex_message_threaded(self):
        res = solve_simplex(infeasible_lp())
        assert res.status is LpStatus.INFEASIBLE
        assert res.message and "phase 1" in res.message


class TestUnboundedStatus:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_status_and_typed_error(self, backend):
        res = solve_lp(unbounded_lp(), backend)
        assert res.status is LpStatus.UNBOUNDED
        with pytest.raises(UnboundedError):
            res.require_optimal()


class TestErrorStatus:
    def test_simplex_iteration_limit_message(self):
        lp = LinearProgram()
        xs = [lp.add_variable(cost=1.0) for _ in range(6)]
        for k in range(6):
            lp.add_constraint(
                {xs[k]: 1.0, xs[(k + 1) % 6]: 0.5}, Sense.GE, float(k + 1)
            )
        res = solve_simplex(lp, max_iterations=1)
        if res.status is LpStatus.ERROR:
            assert res.message and "iteration limit" in res.message
            with pytest.raises(RuntimeError, match="iteration limit"):
                res.require_optimal()

    def test_error_status_raises_runtimeerror(self):
        res = LpResult(LpStatus.ERROR, None, None, 0, "stub", message="boom")
        with pytest.raises(RuntimeError, match="boom"):
            res.require_optimal()
        # the two specific failures must NOT be raised for ERROR
        with pytest.raises(RuntimeError) as exc_info:
            res.require_optimal()
        assert not isinstance(
            exc_info.value, (InfeasibleError, UnboundedError)
        )


class TestCapabilityGaps:
    def test_explicit_simplex_raises_typed(self):
        with pytest.raises(BackendCapabilityError, match="finite lower"):
            solve_lp(free_variable_lp(), "simplex")

    def test_auto_falls_back_to_scipy(self):
        res = solve_lp(free_variable_lp(), "auto")
        assert res.status is LpStatus.OPTIMAL
        assert res.backend == "scipy-highs"
        assert res.objective == pytest.approx(-3.0)

    def test_preferred_backend_detects_free_variables(self):
        assert preferred_backend(free_variable_lp()) == "scipy"
        assert preferred_backend(infeasible_lp()) == "simplex"

    def test_capability_error_is_valueerror(self):
        # pre-existing callers caught ValueError; the typed error must
        # remain catchable the old way
        assert issubclass(BackendCapabilityError, ValueError)


class TestRequireOptimalPassthrough:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_optimal_returns_self(self, backend):
        lp = LinearProgram()
        x = lp.add_variable("x", cost=1.0)
        lp.add_constraint({x: 1.0}, Sense.GE, 4.0)
        res = solve_lp(lp, backend)
        assert res.require_optimal() is res
        assert res.objective == pytest.approx(4.0)
