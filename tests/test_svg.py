"""Tests for the SVG tree exporter."""

import pytest

from repro.analysis import save_svg, tree_to_svg
from repro.ebf import DelayBounds
from repro.embedding import solve_and_embed
from repro.geometry import Point
from repro.topology import nearest_neighbor_topology


@pytest.fixture
def tree():
    sinks = [Point(0, 0), Point(100, 0), Point(100, 80), Point(0, 80)]
    topo = nearest_neighbor_topology(sinks, Point(50, 40))
    _, t = solve_and_embed(topo, DelayBounds.normalized(topo, 0.0, 2.0))
    return t


@pytest.fixture
def elongated_tree():
    sinks = [Point(0, 0), Point(10, 0)]
    topo = nearest_neighbor_topology(sinks)
    _, t = solve_and_embed(
        topo, DelayBounds.uniform(2, 8.0, 9.0), check_bounds=False
    )
    return t


class TestSvg:
    def test_wellformed_document(self, tree):
        svg = tree_to_svg(tree)
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        import xml.etree.ElementTree as ET

        ET.fromstring(svg)  # parses as XML

    def test_markers_present(self, tree):
        svg = tree_to_svg(tree)
        assert 'class="source"' in svg
        assert svg.count('class="sink"') == 4
        assert "cost=" in svg

    def test_labels_toggle(self, tree):
        with_labels = tree_to_svg(tree, label_sinks=True)
        without = tree_to_svg(tree, label_sinks=False)
        assert ">s1<" in with_labels
        assert ">s1<" not in without

    def test_elongated_edges_dashed(self, elongated_tree):
        svg = tree_to_svg(elongated_tree)
        assert 'class="elong"' in svg

    def test_no_false_elongation(self, tree):
        # Unbounded solve: edges are tight, nothing dashed... unless some
        # zero-length overlaps; allow zero or more but require wires.
        svg = tree_to_svg(tree)
        assert 'class="wire"' in svg

    def test_size_validation(self, tree):
        with pytest.raises(ValueError):
            tree_to_svg(tree, size=10)

    def test_save(self, tree, tmp_path):
        path = tmp_path / "tree.svg"
        save_svg(path, tree, size=320)
        assert path.read_text().startswith("<svg")
