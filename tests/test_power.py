"""Tests for the clock-power accounting model."""

import numpy as np
import pytest

from repro.analysis import (
    PowerParameters,
    buffers_for_hold,
    tree_power,
)
from repro.ebf import DelayBounds, solve_lubt
from repro.ebf.bounds import radius_of
from repro.geometry import Point
from repro.topology import nearest_neighbor_topology


def topo8(seed=1):
    rng = np.random.default_rng(seed)
    pts = [Point(float(x), float(y)) for x, y in rng.integers(0, 60, (8, 2))]
    return nearest_neighbor_topology(pts, Point(30.0, 30.0))


class TestPowerParameters:
    def test_positive_required(self):
        with pytest.raises(ValueError):
            PowerParameters(frequency=0.0)
        with pytest.raises(ValueError):
            PowerParameters(buffer_delay=-1.0)

    def test_dynamic_power_formula(self):
        p = PowerParameters(frequency=2.0, vdd=1.5, activity=0.5)
        assert p.dynamic_power(10.0) == pytest.approx(0.5 * 2.0 * 1.5**2 * 10.0)


class TestTreePower:
    def test_wire_cap_accounting(self):
        topo = topo8()
        e = np.ones(topo.num_nodes)
        e[0] = 0.0
        p = PowerParameters(wire_cap_per_unit=2.0)
        rep = tree_power(topo, e, p, sink_load_cap=0.5)
        expected_cap = 2.0 * topo.num_edges + 0.5 * topo.num_sinks
        assert rep.switched_capacitance == pytest.approx(expected_cap)
        assert rep.power == pytest.approx(p.dynamic_power(expected_cap))
        assert rep.buffers == 0
        assert rep.area_overhead == 0.0

    def test_buffer_cap_and_area(self):
        topo = topo8()
        e = np.zeros(topo.num_nodes)
        p = PowerParameters(buffer_input_cap=7.0, buffer_area=3.0)
        rep = tree_power(topo, e, p, buffers=4, strategy="delay buffers")
        assert rep.switched_capacitance == pytest.approx(28.0)
        assert rep.area_overhead == pytest.approx(12.0)
        assert rep.strategy == "delay buffers"


class TestBuffersForHold:
    def test_counts_ceil_per_sink(self):
        p = PowerParameters(buffer_delay=10.0)
        delays = np.array([5.0, 19.0, 30.0, 31.0])
        # hold = 30: shortfalls 25, 11, 0, 0 -> ceil 3 + 2 = 5
        assert buffers_for_hold(delays, 30.0, p) == 5

    def test_no_violations_no_buffers(self):
        p = PowerParameters()
        assert buffers_for_hold(np.array([10.0, 20.0]), 5.0, p) == 0

    def test_elongation_beats_buffers_scenario(self):
        """The paper's argument holds in the model whenever the added
        detour wire's capacitance is below the buffers' input caps."""
        topo = topo8(3)
        r = radius_of(topo)
        p = PowerParameters(
            wire_cap_per_unit=1.0, buffer_input_cap=80.0, buffer_delay=r / 10
        )
        base = solve_lubt(topo, DelayBounds.uniform(8, 0.0, 1.2 * r))
        hold = 0.8 * r
        fixed = solve_lubt(topo, DelayBounds.uniform(8, hold, 1.2 * r))
        n_buf = buffers_for_hold(base.delays, hold, p)
        assert n_buf > 0  # the scenario actually has violations
        buffered = tree_power(topo, base.edge_lengths, p, buffers=n_buf)
        elongated = tree_power(topo, fixed.edge_lengths, p)
        assert elongated.power < buffered.power
