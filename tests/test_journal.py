"""Crash-safe solve journal: load semantics, resume counters, and the
kill-resume equivalence guarantee (SIGKILL mid-batch, resume, identical
output)."""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data import load_benchmark
from repro.ebf import DelayBounds
from repro.experiments import render_table3, run_table3
from repro.geometry import manhattan_radius_from
from repro.perf import (
    JournalError,
    SolveJournal,
    SolveTask,
    solution_from_record,
    solution_to_record,
    solve_many,
    solve_sweep_sharded,
)
from repro.topology import nearest_neighbor_topology


def tasks_for(size=8, windows=((0.8, 1.3), (0.9, 1.2), (0.85, 1.25))):
    bench = load_benchmark("prim1").scaled(size)
    sinks = list(bench.sinks)
    topo = nearest_neighbor_topology(sinks, bench.source)
    radius = manhattan_radius_from(bench.source, sinks)
    return [
        SolveTask(topo, DelayBounds.uniform(size, lo * radius, hi * radius))
        for lo, hi in windows
    ]


class TestRecordRoundTrip:
    def test_solution_survives_the_record(self):
        task = tasks_for()[0]
        out = solve_many([task])[0]
        sol = out.unwrap()
        rec = solution_to_record(sol)
        back = solution_from_record(rec, task.topo, task.bounds)
        assert back.cost == sol.cost
        assert list(back.edge_lengths) == list(sol.edge_lengths)
        assert list(back.delays) == list(sol.delays)
        assert back.stats.backend == sol.stats.backend
        assert back.stats.rounds == sol.stats.rounds

    def test_record_is_strict_json(self):
        task = tasks_for()[0]
        sol = solve_many([task])[0].unwrap()
        text = json.dumps(solution_to_record(sol), allow_nan=False)
        assert json.loads(text)


class TestJournalFile:
    def test_append_then_load(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SolveJournal(path) as j:
            j.append("a" * 64, {"cost": 1.0})
            j.append("b" * 64, {"cost": 2.0})
        j2 = SolveJournal(path)
        done = j2.load()
        assert set(done) == {"a" * 64, "b" * 64}
        assert done["b" * 64]["cost"] == 2.0

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SolveJournal(path) as j:
            j.append("a" * 64, {"cost": 1.0})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"v":1,"key":"' + "b" * 64 + '","resu')  # torn write
        done = SolveJournal(path).load()
        assert set(done) == {"a" * 64}  # the torn tail is dropped

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            "not json at all\n"
            + json.dumps({"v": 1, "key": "a" * 64, "result": {}})
            + "\n"
        )
        with pytest.raises(JournalError):
            SolveJournal(path).load()

    def test_missing_file_is_empty(self, tmp_path):
        j = SolveJournal(tmp_path / "absent.jsonl")
        assert j.load() == {}


class TestSolveManyResume:
    def test_second_run_replays_everything(self, tmp_path):
        tasks = tasks_for()
        path = tmp_path / "j.jsonl"
        with SolveJournal(path) as j:
            first = solve_many(tasks, journal=j)
            assert j.appended == len(tasks) and j.replayed == 0
        with SolveJournal(path) as j:
            second = solve_many(tasks, journal=j)
            assert j.replayed == len(tasks) and j.appended == 0
        for a, b in zip(first, second):
            sa, sb = a.unwrap(), b.unwrap()
            assert sa.cost == sb.cost
            assert list(sa.edge_lengths) == list(sb.edge_lengths)
            assert list(sa.delays) == list(sb.delays)

    def test_partial_journal_only_solves_the_rest(self, tmp_path):
        tasks = tasks_for()
        path = tmp_path / "j.jsonl"
        with SolveJournal(path) as j:
            solve_many(tasks[:1], journal=j)
        with SolveJournal(path) as j:
            outs = solve_many(tasks, journal=j)
            assert j.replayed == 1 and j.appended == len(tasks) - 1
        baseline = solve_many(tasks)
        for a, b in zip(outs, baseline):
            assert a.unwrap().cost == b.unwrap().cost

    def test_sweep_sharded_resume_matches_cold(self, tmp_path):
        task = tasks_for()[0]
        radius = max(task.bounds.upper)
        bounds_list = [
            DelayBounds.uniform(
                len(task.bounds.lower), f * radius / 1.3, radius
            )
            for f in (0.80, 0.85, 0.90, 0.95)
        ]
        cold = solve_sweep_sharded(task.topo, bounds_list, warm=False)
        path = tmp_path / "sweep.jsonl"
        with SolveJournal(path) as j:
            solve_sweep_sharded(
                task.topo, bounds_list[:2], warm=False, journal=j
            )
        with SolveJournal(path) as j:
            resumed = solve_sweep_sharded(
                task.topo, bounds_list, warm=False, journal=j
            )
            assert j.replayed == 2 and j.appended == 2
        from repro.ebf import canonical_cost

        assert [canonical_cost(s.cost) for s in resumed] == [
            canonical_cost(s.cost) for s in cold
        ]


KILL_SCRIPT = textwrap.dedent(
    """
    import sys
    sys.path.insert(0, {src!r})
    from repro.data import load_benchmark
    from repro.experiments import run_table3
    from repro.perf import SolveJournal
    import repro.perf.journal as journal_mod

    # After N appends, die the hard way mid-batch (no atexit, no flush
    # of anything beyond what append() already fsynced).
    N = int(sys.argv[2])
    bench = load_benchmark("r1").scaled(16)
    with SolveJournal(sys.argv[1]) as j:
        original = j.append
        def append_then_maybe_die(key, result):
            original(key, result)
            if j.appended >= N:
                import os, signal
                os.kill(os.getpid(), signal.SIGKILL)
        j.append = append_then_maybe_die
        run_table3(bench, jobs=1, journal=j)
    """
)


class TestKillResumeEquivalence:
    """The ISSUE acceptance criterion: SIGKILL a journaled run mid-batch,
    resume it, and get byte-identical tables with no completed solve
    re-run."""

    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        src = str(Path(__file__).resolve().parents[1] / "src")
        path = tmp_path / "kill.jsonl"
        script = KILL_SCRIPT.format(src=src)
        proc = subprocess.run(
            [sys.executable, "-c", script, str(path), "3"],
            capture_output=True,
            timeout=600,
        )
        assert proc.returncode == -signal.SIGKILL
        # The journal survived the kill with exactly the fsynced records.
        survivors = SolveJournal(path).load()
        assert len(survivors) == 3

        bench = load_benchmark("r1").scaled(16)
        with SolveJournal(path) as j:
            rows = run_table3(bench, jobs=1, journal=j)
            # No completed solve was re-run...
            assert j.replayed == 3
        # ...and the rendered table is byte-identical to an uninterrupted
        # run.
        assert render_table3(rows) == render_table3(
            run_table3(bench, jobs=1)
        )
