"""Crash-safe solve journal: load semantics, resume counters, and the
kill-resume equivalence guarantee (SIGKILL mid-batch, resume, identical
output)."""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data import load_benchmark
from repro.ebf import DelayBounds
from repro.experiments import render_table3, run_table3
from repro.geometry import manhattan_radius_from
from repro.perf import (
    JournalError,
    SolveJournal,
    SolveTask,
    solution_from_record,
    solution_to_record,
    solve_many,
    solve_sweep_sharded,
)
from repro.topology import nearest_neighbor_topology


def tasks_for(size=8, windows=((0.8, 1.3), (0.9, 1.2), (0.85, 1.25))):
    bench = load_benchmark("prim1").scaled(size)
    sinks = list(bench.sinks)
    topo = nearest_neighbor_topology(sinks, bench.source)
    radius = manhattan_radius_from(bench.source, sinks)
    return [
        SolveTask(topo, DelayBounds.uniform(size, lo * radius, hi * radius))
        for lo, hi in windows
    ]


class TestRecordRoundTrip:
    def test_solution_survives_the_record(self):
        task = tasks_for()[0]
        out = solve_many([task])[0]
        sol = out.unwrap()
        rec = solution_to_record(sol)
        back = solution_from_record(rec, task.topo, task.bounds)
        assert back.cost == sol.cost
        assert list(back.edge_lengths) == list(sol.edge_lengths)
        assert list(back.delays) == list(sol.delays)
        assert back.stats.backend == sol.stats.backend
        assert back.stats.rounds == sol.stats.rounds

    def test_record_is_strict_json(self):
        task = tasks_for()[0]
        sol = solve_many([task])[0].unwrap()
        text = json.dumps(solution_to_record(sol), allow_nan=False)
        assert json.loads(text)


class TestJournalFile:
    def test_append_then_load(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SolveJournal(path) as j:
            j.append("a" * 64, {"cost": 1.0})
            j.append("b" * 64, {"cost": 2.0})
        j2 = SolveJournal(path)
        done = j2.load()
        assert set(done) == {"a" * 64, "b" * 64}
        assert done["b" * 64]["cost"] == 2.0

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SolveJournal(path) as j:
            j.append("a" * 64, {"cost": 1.0})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"v":1,"key":"' + "b" * 64 + '","resu')  # torn write
        done = SolveJournal(path).load()
        assert set(done) == {"a" * 64}  # the torn tail is dropped

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            "not json at all\n"
            + json.dumps({"v": 1, "key": "a" * 64, "result": {}})
            + "\n"
        )
        with pytest.raises(JournalError):
            SolveJournal(path).load()

    def test_missing_file_is_empty(self, tmp_path):
        j = SolveJournal(tmp_path / "absent.jsonl")
        assert j.load() == {}


class TestSolveManyResume:
    def test_second_run_replays_everything(self, tmp_path):
        tasks = tasks_for()
        path = tmp_path / "j.jsonl"
        with SolveJournal(path) as j:
            first = solve_many(tasks, journal=j)
            assert j.appended == len(tasks) and j.replayed == 0
        with SolveJournal(path) as j:
            second = solve_many(tasks, journal=j)
            assert j.replayed == len(tasks) and j.appended == 0
        for a, b in zip(first, second):
            sa, sb = a.unwrap(), b.unwrap()
            assert sa.cost == sb.cost
            assert list(sa.edge_lengths) == list(sb.edge_lengths)
            assert list(sa.delays) == list(sb.delays)

    def test_partial_journal_only_solves_the_rest(self, tmp_path):
        tasks = tasks_for()
        path = tmp_path / "j.jsonl"
        with SolveJournal(path) as j:
            solve_many(tasks[:1], journal=j)
        with SolveJournal(path) as j:
            outs = solve_many(tasks, journal=j)
            assert j.replayed == 1 and j.appended == len(tasks) - 1
        baseline = solve_many(tasks)
        for a, b in zip(outs, baseline):
            assert a.unwrap().cost == b.unwrap().cost

    def test_sweep_sharded_resume_matches_cold(self, tmp_path):
        task = tasks_for()[0]
        radius = max(task.bounds.upper)
        bounds_list = [
            DelayBounds.uniform(
                len(task.bounds.lower), f * radius / 1.3, radius
            )
            for f in (0.80, 0.85, 0.90, 0.95)
        ]
        cold = solve_sweep_sharded(task.topo, bounds_list, warm=False)
        path = tmp_path / "sweep.jsonl"
        with SolveJournal(path) as j:
            solve_sweep_sharded(
                task.topo, bounds_list[:2], warm=False, journal=j
            )
        with SolveJournal(path) as j:
            resumed = solve_sweep_sharded(
                task.topo, bounds_list, warm=False, journal=j
            )
            assert j.replayed == 2 and j.appended == 2
        from repro.ebf import canonical_cost

        assert [canonical_cost(s.cost) for s in resumed] == [
            canonical_cost(s.cost) for s in cold
        ]


class TestPerCompletionAppends:
    """Journal appends are per *completion*, not per wave: every
    ``on_result`` callback observes its own solve already fsynced."""

    def test_appends_track_completions_one_to_one(self, tmp_path):
        tasks = tasks_for(
            size=10,
            windows=(
                (0.8, 1.3), (0.9, 1.2), (0.85, 1.25),
                (0.7, 1.4), (0.75, 1.35), (0.95, 1.15),
            ),
        )
        appended_at_callback = []
        with SolveJournal(tmp_path / "j.jsonl") as j:
            solve_many(
                tasks,
                jobs=2,
                journal=j,
                on_result=lambda o: appended_at_callback.append(j.appended),
            )
        # With the old wave barrier the journal lagged completions by up
        # to ``jobs``; per-completion appends mean the k-th completion
        # sees exactly k records durable.
        assert appended_at_callback == list(range(1, len(tasks) + 1))

    def test_straggler_cannot_hold_back_finished_solves(self, tmp_path):
        # One deliberately larger net among quick ones: the small nets'
        # records must be in the journal before the straggler completes.
        straggler = tasks_for(size=26, windows=((0.8, 1.3),))
        quick = tasks_for(size=8, windows=((0.8, 1.3), (0.9, 1.2)))
        tasks = straggler + quick
        seen = {}
        with SolveJournal(tmp_path / "j.jsonl") as j:
            solve_many(
                tasks,
                jobs=2,
                journal=j,
                on_result=lambda o: seen.setdefault(o.index, j.appended),
            )
            assert j.appended == 3
        # Whenever the straggler landed, every earlier completion was
        # already journaled (its recorded appended count says so).
        order = sorted(seen, key=seen.get)
        for rank, i in enumerate(order):
            assert seen[i] == rank + 1


KILL_MANY_SCRIPT = textwrap.dedent(
    """
    import sys
    sys.path.insert(0, {src!r})
    sys.path.insert(0, {tests!r})
    from test_journal import tasks_for, EIGHT_WINDOWS
    from repro.perf import SolveJournal, solve_many

    # Die the hard way right after the N-th per-completion fsync lands,
    # mid-batch on a jobs=2 pooled run.
    N = int(sys.argv[2])
    with SolveJournal(sys.argv[1]) as j:
        original = j.append
        def append_then_maybe_die(key, result):
            original(key, result)
            if j.appended >= N:
                import os, signal
                os.kill(os.getpid(), signal.SIGKILL)
        j.append = append_then_maybe_die
        solve_many(tasks_for(size=10, windows=EIGHT_WINDOWS), jobs=2,
                   journal=j)
    """
)

#: Eight distinct windows so the killed jobs=2 batch has plenty of
#: not-yet-journaled work left at solve #3.
EIGHT_WINDOWS = (
    (0.80, 1.30), (0.90, 1.20), (0.85, 1.25), (0.70, 1.40),
    (0.75, 1.35), (0.95, 1.15), (0.65, 1.45), (0.60, 1.50),
)


class TestKillResumeSolveGranularity:
    """SIGKILL a jobs=2 pooled batch after exactly N per-completion
    appends: the resume must replay exactly those N solves — per-*solve*
    granularity, not the old per-wave one."""

    def test_resume_replays_exactly_the_fsynced_solves(self, tmp_path):
        src = str(Path(__file__).resolve().parents[1] / "src")
        tests = str(Path(__file__).resolve().parent)
        path = tmp_path / "kill_many.jsonl"
        script = KILL_MANY_SCRIPT.format(src=src, tests=tests)
        proc = subprocess.run(
            [sys.executable, "-c", script, str(path), "3"],
            capture_output=True,
            timeout=600,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()
        assert len(SolveJournal(path).load()) == 3

        tasks = tasks_for(size=10, windows=EIGHT_WINDOWS)
        with SolveJournal(path) as j:
            resumed = solve_many(tasks, jobs=2, journal=j)
            # Exactly the three fsynced solves replay; the other five
            # run fresh.  A wave barrier would have journaled 2 or 4.
            assert j.replayed == 3 and j.appended == 5
        baseline = solve_many(tasks)
        for a, b in zip(resumed, baseline):
            sa, sb = a.unwrap(), b.unwrap()
            assert sa.cost == sb.cost
            assert list(sa.edge_lengths) == list(sb.edge_lengths)


KILL_SCRIPT = textwrap.dedent(
    """
    import sys
    sys.path.insert(0, {src!r})
    from repro.data import load_benchmark
    from repro.experiments import run_table3
    from repro.perf import SolveJournal
    import repro.perf.journal as journal_mod

    # After N appends, die the hard way mid-batch (no atexit, no flush
    # of anything beyond what append() already fsynced).
    N = int(sys.argv[2])
    bench = load_benchmark("r1").scaled(16)
    with SolveJournal(sys.argv[1]) as j:
        original = j.append
        def append_then_maybe_die(key, result):
            original(key, result)
            if j.appended >= N:
                import os, signal
                os.kill(os.getpid(), signal.SIGKILL)
        j.append = append_then_maybe_die
        run_table3(bench, jobs=1, journal=j)
    """
)


class TestKillResumeEquivalence:
    """The ISSUE acceptance criterion: SIGKILL a journaled run mid-batch,
    resume it, and get byte-identical tables with no completed solve
    re-run."""

    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        src = str(Path(__file__).resolve().parents[1] / "src")
        path = tmp_path / "kill.jsonl"
        script = KILL_SCRIPT.format(src=src)
        proc = subprocess.run(
            [sys.executable, "-c", script, str(path), "3"],
            capture_output=True,
            timeout=600,
        )
        assert proc.returncode == -signal.SIGKILL
        # The journal survived the kill with exactly the fsynced records.
        survivors = SolveJournal(path).load()
        assert len(survivors) == 3

        bench = load_benchmark("r1").scaled(16)
        with SolveJournal(path) as j:
            rows = run_table3(bench, jobs=1, journal=j)
            # No completed solve was re-run...
            assert j.replayed == 3
        # ...and the rendered table is byte-identical to an uninterrupted
        # run.
        assert render_table3(rows) == render_table3(
            run_table3(bench, jobs=1)
        )
