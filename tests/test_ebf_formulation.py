"""Direct tests of the EBF LP assembly (Section 4.3)."""

import math

import numpy as np
import pytest

from repro.ebf import DelayBounds, build_ebf_lp
from repro.ebf.formulation import edge_var, expand_edge_vector
from repro.geometry import Point, manhattan
from repro.lp import Sense, solve_lp
from repro.topology import Topology, nearest_neighbor_topology


@pytest.fixture
def fig3():
    parents = [None, 6, 8, 7, 7, 6, 0, 8, 0]
    sinks = [Point(0, 0), Point(4, 0), Point(8, 2), Point(8, 0), Point(2, 3)]
    return Topology(parents, 5, sinks)


class TestEdgeVar:
    def test_mapping(self):
        assert edge_var(1) == 0
        assert edge_var(8) == 7

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            edge_var(0)


class TestExpandEdgeVector:
    def test_shape_and_clamping(self, fig3):
        x = np.array([1.0, -1e-12, 2.0, 0.0, 0.5, 3.0, 0.0, 1.5])
        e = expand_edge_vector(fig3, x)
        assert e.shape == (9,)
        assert e[0] == 0.0
        assert e[1] == 1.0
        assert e[2] == 0.0  # tiny negative LP noise clamped


class TestDelayRows:
    def test_range_rows_per_sink(self, fig3):
        lp = build_ebf_lp(fig3, DelayBounds.uniform(5, 4.0, 6.0), pairs=[])
        assert lp.num_constraints == 10  # 2 per sink, no Steiner rows
        names = {lp.row_name(i) for i in range(10)}
        assert "delay1.lo" in names and "delay5.hi" in names

    def test_infinite_upper_drops_hi_row(self, fig3):
        lp = build_ebf_lp(fig3, DelayBounds.unbounded(5), pairs=[])
        senses = [lp.row_sense(i) for i in range(lp.num_constraints)]
        assert all(s is Sense.GE for s in senses)

    def test_equality_row_for_zero_skew(self, fig3):
        lp = build_ebf_lp(fig3, DelayBounds.zero_skew(5, 7.0), pairs=[])
        assert lp.num_constraints == 5
        assert all(
            lp.row_sense(i) is Sense.EQ for i in range(lp.num_constraints)
        )

    def test_fixed_source_strengthening(self):
        """With a fixed source, each sink's lower bound is raised to its
        geometric distance from the source."""
        src = Point(0.0, 0.0)
        sinks = [Point(3.0, 4.0), Point(10.0, 0.0)]
        topo = nearest_neighbor_topology(sinks, src)
        lp = build_ebf_lp(topo, DelayBounds.uniform(2, 0.0, 50.0), pairs=[])
        # Find delay1.lo and delay2.lo rhs values.
        rhs = {}
        for i in range(lp.num_constraints):
            name = lp.row_name(i)
            if name.endswith(".lo"):
                _, _, r = lp.row(i)
                rhs[name] = r
        assert rhs["delay1.lo"] == pytest.approx(manhattan(src, sinks[0]))
        assert rhs["delay2.lo"] == pytest.approx(manhattan(src, sinks[1]))

    def test_impossible_window_yields_infeasible_row(self):
        """u below the geometric distance must make the LP infeasible,
        not silently wrong (the `.impossible` guard row)."""
        src = Point(0.0, 0.0)
        topo = nearest_neighbor_topology([Point(10.0, 0.0)], src)
        lp = build_ebf_lp(topo, DelayBounds.uniform(1, 0.0, 5.0), pairs=[])
        res = solve_lp(lp, "scipy")
        assert not res.is_optimal


class TestObjective:
    def test_unit_costs_by_default(self, fig3):
        lp = build_ebf_lp(fig3, DelayBounds.uniform(5, 4, 6))
        assert np.all(lp.costs == 1.0)

    def test_weighted_costs(self, fig3):
        w = np.arange(9, dtype=float)
        lp = build_ebf_lp(fig3, DelayBounds.uniform(5, 4, 6), weights=w)
        assert lp.costs[edge_var(3)] == 3.0

    def test_weight_length_checked(self, fig3):
        with pytest.raises(ValueError):
            build_ebf_lp(
                fig3, DelayBounds.uniform(5, 4, 6), weights=np.ones(4)
            )

    def test_negative_weight_rejected(self, fig3):
        w = np.ones(9)
        w[2] = -0.5
        with pytest.raises(ValueError):
            build_ebf_lp(fig3, DelayBounds.uniform(5, 4, 6), weights=w)

    def test_bounds_count_checked(self, fig3):
        with pytest.raises(ValueError):
            build_ebf_lp(fig3, DelayBounds.uniform(4, 4, 6))
