"""End-to-end integration at realistic scale.

The whole pipeline — surrogate benchmark, topology, lazy LP, embedding,
full validation — on a mid-size net by default and the full paper-scale
nets when ``FULL=1`` is set.  Also pins determinism: two runs of the
identical instance must produce bit-identical costs.
"""

import os

import numpy as np
import pytest

from repro.analysis import validate_lubt_solution
from repro.baselines import bounded_skew_tree
from repro.data import load_benchmark
from repro.ebf import DelayBounds, solve_lubt, solve_zero_skew
from repro.ebf.bounds import radius_of
from repro.embedding import embed_tree
from repro.topology import nearest_neighbor_topology

FULL = os.environ.get("FULL", "") == "1"
SIZE = None if FULL else 96


def load(name):
    bench = load_benchmark(name)
    return bench if SIZE is None else bench.scaled(SIZE)


@pytest.mark.parametrize("name", ["prim1", "r1"])
class TestFullPipeline:
    def test_solve_embed_validate(self, name):
        bench = load(name)
        topo = nearest_neighbor_topology(list(bench.sinks), bench.source)
        r = radius_of(topo)
        bounds = DelayBounds.uniform(bench.num_sinks, 0.8 * r, 1.2 * r)
        sol = solve_lubt(topo, bounds, check_bounds=False)
        validate_lubt_solution(sol)
        tree = embed_tree(topo, sol.edge_lengths)
        assert tree.cost == pytest.approx(sol.cost)
        # Lazy reduction must actually reduce at this size.
        assert sol.stats.steiner_rows < sol.stats.total_pairs

    def test_determinism(self, name):
        bench = load(name)
        topo = nearest_neighbor_topology(list(bench.sinks), bench.source)
        r = radius_of(topo)
        bounds = DelayBounds.uniform(bench.num_sinks, 0.8 * r, 1.2 * r)
        a = solve_lubt(topo, bounds, check_bounds=False)
        b = solve_lubt(topo, bounds, check_bounds=False)
        assert a.cost == b.cost  # bit-identical, not approx
        assert np.array_equal(a.edge_lengths, b.edge_lengths)

    def test_baseline_protocol_consistency(self, name):
        bench = load(name)
        r_abs = radius_of(
            nearest_neighbor_topology(list(bench.sinks), bench.source)
        )
        base = bounded_skew_tree(
            list(bench.sinks), 0.5 * r_abs, bench.source, verify=False
        )
        sol = solve_lubt(
            base.topology,
            DelayBounds.uniform(
                bench.num_sinks, base.shortest_delay, base.longest_delay
            ),
            check_bounds=False,
        )
        assert sol.cost <= base.cost + 1e-6 * base.cost

    def test_zero_skew_scales(self, name):
        bench = load(name)
        topo = nearest_neighbor_topology(list(bench.sinks), bench.source)
        zst = solve_zero_skew(topo)
        tree = embed_tree(topo, zst.edge_lengths)
        d = tree.sink_delays()
        assert float(d.max() - d.min()) <= 1e-6 * zst.delay


class TestLargestNet:
    """The r5 surrogate (3101 sinks, ~4.8M potential Steiner rows) —
    scaled down by default, the real thing under FULL=1."""

    def test_r5_solves(self):
        bench = load_benchmark("r5")
        if not FULL:
            bench = bench.scaled(384)
        topo = nearest_neighbor_topology(list(bench.sinks), bench.source)
        r = radius_of(topo)
        sol = solve_lubt(
            topo,
            DelayBounds.uniform(bench.num_sinks, 0.8 * r, 1.2 * r),
            check_bounds=False,
        )
        assert sol.stats.steiner_rows < 0.25 * sol.stats.total_pairs
        embed_tree(topo, sol.edge_lengths)
