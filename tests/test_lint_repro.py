"""Tests for the project AST lint (``tools/lint_repro.py``).

The tool lives outside ``src/`` so it is loaded by file path."""

import importlib.util
import sys
import textwrap
from pathlib import Path

import pytest

_TOOL = Path(__file__).resolve().parent.parent / "tools" / "lint_repro.py"
_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

spec = importlib.util.spec_from_file_location("lint_repro", _TOOL)
lint_repro = importlib.util.module_from_spec(spec)
sys.modules["lint_repro"] = lint_repro  # dataclasses needs the registration
spec.loader.exec_module(lint_repro)


def run_lint(tmp_path, rel, code):
    """Write ``code`` at ``rel`` under a fake tree and lint it."""
    path = tmp_path / rel.lstrip("/")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(code))
    return lint_repro.lint_paths([tmp_path])


def rules_of(findings):
    return [f.rule for f in findings]


class TestRL001FloatEquality:
    def test_fires_in_geometry(self, tmp_path):
        findings = run_lint(tmp_path, "repro/geometry/foo.py", """\
            def f(x):
                return x == 0.5
        """)
        assert rules_of(findings) == ["RL001"]

    def test_silent_outside_scope(self, tmp_path):
        findings = run_lint(tmp_path, "repro/data/foo.py", """\
            def f(x):
                return x == 0.5
        """)
        assert findings == []

    def test_int_equality_allowed(self, tmp_path):
        findings = run_lint(tmp_path, "repro/geometry/foo.py", """\
            def f(x):
                return x == 3
        """)
        assert findings == []

    def test_negative_float_literal(self, tmp_path):
        findings = run_lint(tmp_path, "repro/ebf/foo.py", """\
            def f(x):
                return x != -1.0
        """)
        assert rules_of(findings) == ["RL001"]


class TestRL002SetIteration:
    def test_for_over_set_call(self, tmp_path):
        findings = run_lint(tmp_path, "repro/lp/foo.py", """\
            def f(xs):
                for x in set(xs):
                    print(x)
        """)
        assert rules_of(findings) == ["RL002"]

    def test_comprehension_over_set_literal(self, tmp_path):
        findings = run_lint(tmp_path, "repro/ebf/foo.py", """\
            def f():
                return [x for x in {1, 2, 3}]
        """)
        assert rules_of(findings) == ["RL002"]

    def test_sorted_set_allowed(self, tmp_path):
        findings = run_lint(tmp_path, "repro/lp/foo.py", """\
            def f(xs):
                for x in sorted(set(xs)):
                    print(x)
        """)
        assert findings == []

    def test_set_algebra_flagged(self, tmp_path):
        findings = run_lint(tmp_path, "repro/lp/foo.py", """\
            def f(a, b):
                for x in set(a) - set(b):
                    print(x)
        """)
        assert rules_of(findings) == ["RL002"]

    def test_out_of_scope_module_silent(self, tmp_path):
        findings = run_lint(tmp_path, "repro/perf/foo.py", """\
            def f(xs):
                for x in set(xs):
                    print(x)
        """)
        assert findings == []


class TestRL003CacheMutation:
    def test_attribute_store(self, tmp_path):
        findings = run_lint(tmp_path, "repro/ebf/foo.py", """\
            def f(topo):
                topo._sinks_under = {}
        """)
        assert rules_of(findings) == ["RL003"]

    def test_subscript_store_into_accessor(self, tmp_path):
        findings = run_lint(tmp_path, "repro/embedding/foo.py", """\
            def f(topo):
                topo.sinks_under()[3] = ()
        """)
        assert rules_of(findings) == ["RL003"]

    def test_mutating_method_on_accessor(self, tmp_path):
        findings = run_lint(tmp_path, "repro/ebf/foo.py", """\
            def f(topo):
                topo.root_path_incidence(1).append(2)
        """)
        assert rules_of(findings) == ["RL003"]

    def test_owner_file_exempt(self, tmp_path):
        findings = run_lint(tmp_path, "repro/topology/tree.py", """\
            def f(self):
                self._sinks_under = {}
        """)
        assert findings == []

    def test_reading_accessor_allowed(self, tmp_path):
        findings = run_lint(tmp_path, "repro/ebf/foo.py", """\
            def f(topo):
                return len(topo.sinks_under())
        """)
        assert findings == []


class TestRL004BroadExcept:
    @pytest.mark.parametrize("clause", ["except Exception:", "except:",
                                        "except BaseException:"])
    def test_fires(self, tmp_path, clause):
        findings = run_lint(tmp_path, "repro/lp/foo.py", f"""\
            def f():
                try:
                    pass
                {clause}
                    pass
        """)
        assert rules_of(findings) == ["RL004"]

    def test_resilience_exempt(self, tmp_path):
        findings = run_lint(tmp_path, "repro/resilience/foo.py", """\
            def f():
                try:
                    pass
                except Exception:
                    pass
        """)
        assert findings == []

    def test_noqa_ble001_suppresses(self, tmp_path):
        findings = run_lint(tmp_path, "repro/lp/foo.py", """\
            def f():
                try:
                    pass
                except Exception:  # noqa: BLE001 — boundary
                    pass
        """)
        assert findings == []

    def test_named_exception_allowed(self, tmp_path):
        findings = run_lint(tmp_path, "repro/lp/foo.py", """\
            def f():
                try:
                    pass
                except ValueError:
                    pass
        """)
        assert findings == []


class TestRL005SetRebuildInComprehension:
    def test_fires(self, tmp_path):
        findings = run_lint(tmp_path, "repro/data/foo.py", """\
            def f(xs, ys):
                return [x for x in xs if x in set(ys)]
        """)
        assert rules_of(findings) == ["RL005"]

    def test_hoisted_allowed(self, tmp_path):
        findings = run_lint(tmp_path, "repro/data/foo.py", """\
            def f(xs, ys):
                ok = set(ys)
                return [x for x in xs if x in ok]
        """)
        assert findings == []


class TestSuppressionAndPlumbing:
    def test_noqa_rule_code_suppresses(self, tmp_path):
        findings = run_lint(tmp_path, "repro/lp/foo.py", """\
            def f(xs):
                for x in set(xs):  # noqa: RL002 — order-insensitive fold
                    print(x)
        """)
        assert findings == []

    def test_noqa_wrong_code_does_not_suppress(self, tmp_path):
        findings = run_lint(tmp_path, "repro/lp/foo.py", """\
            def f(xs):
                for x in set(xs):  # noqa: RL001
                    print(x)
        """)
        assert rules_of(findings) == ["RL002"]

    def test_syntax_error_reported_as_rl000(self, tmp_path):
        findings = run_lint(tmp_path, "repro/lp/foo.py", "def f(:\n")
        assert rules_of(findings) == ["RL000"]

    def test_main_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "lp" / "foo.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("for x in set([1]):\n    pass\n")
        assert lint_repro.main([str(tmp_path)]) == 1
        assert "RL002" in capsys.readouterr().out
        bad.write_text("for x in sorted([1]):\n    pass\n")
        assert lint_repro.main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out


def test_shipped_source_tree_lints_clean():
    """The enforced guarantee: ``src/repro`` has zero findings."""
    findings = lint_repro.lint_paths([_SRC])
    assert findings == [], "\n".join(f.render() for f in findings)
