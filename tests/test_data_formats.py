"""Tests for the benchmark file-format loaders.

The load-cap convention is pinned here: ``caps`` is keyed by 0-based
index into the returned ``sinks`` list, so ``caps.get(i)`` over
``enumerate(sinks)`` attributes every cap to the right pin — including
sink 0's (the original keying was 1-based and silently skipped it).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    FormatError,
    caps_by_node_id,
    load_csv,
    load_pin_list,
    load_sinks_file,
)
from repro.geometry import Point


class TestPinList:
    def test_basic(self, tmp_path):
        f = tmp_path / "net.pins"
        f.write_text(
            "# a tiny net\n"
            "source 10 20\n"
            "0 0\n"
            "5 5  # inline comment\n"
            "p3 9 1\n"
        )
        source, sinks, caps = load_pin_list(f)
        assert source == Point(10, 20)
        assert sinks == [Point(0, 0), Point(5, 5), Point(9, 1)]
        assert caps == {}

    def test_with_caps(self, tmp_path):
        f = tmp_path / "net.pins"
        f.write_text("1 2 0.5\n3 4 1.5\n")
        source, sinks, caps = load_pin_list(f)
        assert source is None
        assert caps == {0: 0.5, 1: 1.5}

    def test_first_sink_cap_is_applied(self, tmp_path):
        """Regression: the original 1-based keying lost sink 0's cap and
        shifted every other cap onto the wrong pin."""
        f = tmp_path / "net.pins"
        f.write_text("source 9 9\n0 0 2.5\n5 5\n7 7 4.5\n")
        _, sinks, caps = load_pin_list(f)
        by_pin = {i: caps.get(i) for i, _ in enumerate(sinks)}
        assert by_pin == {0: 2.5, 1: None, 2: 4.5}

    def test_first_is_source(self, tmp_path):
        f = tmp_path / "net.pins"
        f.write_text("100 100\n0 0\n9 9\n")
        source, sinks, _ = load_pin_list(f, first_is_source=True)
        assert source == Point(100, 100)
        assert len(sinks) == 2

    def test_first_is_source_reindexes_caps(self, tmp_path):
        f = tmp_path / "net.pins"
        f.write_text("100 100\n0 0 2.0\n9 9 3.0\n")
        _, sinks, caps = load_pin_list(f, first_is_source=True)
        assert sinks == [Point(0, 0), Point(9, 9)]
        assert caps == {0: 2.0, 1: 3.0}

    def test_promoted_source_cap_is_an_error(self, tmp_path):
        """A cap on the pin promoted to the source must not vanish."""
        f = tmp_path / "net.pins"
        f.write_text("100 100 7.5\n0 0\n9 9\n")
        with pytest.raises(FormatError, match="promoted to the source"):
            load_pin_list(f, first_is_source=True)
        # The same file is fine when the first pin stays a sink.
        _, sinks, caps = load_pin_list(f)
        assert caps == {0: 7.5}

    def test_source_line_wins_over_first_is_source(self, tmp_path):
        """An explicit `source` line takes precedence: no pin is popped
        and no cap reshift happens."""
        f = tmp_path / "net.pins"
        f.write_text("source 1 1\n2 2 0.25\n3 3\n")
        source, sinks, caps = load_pin_list(f, first_is_source=True)
        assert source == Point(1, 1)
        assert sinks == [Point(2, 2), Point(3, 3)]
        assert caps == {0: 0.25}

    def test_name_tokens_stripped(self, tmp_path):
        f = tmp_path / "net.pins"
        f.write_text("p0 1 2\npin_1 3 4 0.5\n5 6\n")
        _, sinks, caps = load_pin_list(f)
        assert sinks == [Point(1, 2), Point(3, 4), Point(5, 6)]
        assert caps == {1: 0.5}

    def test_caps_by_node_id(self, tmp_path):
        f = tmp_path / "net.pins"
        f.write_text("source 9 9\n0 0 2.5\n5 5\n7 7 4.5\n")
        _, _, caps = load_pin_list(f)
        assert caps_by_node_id(caps) == {1: 2.5, 3: 4.5}

    def test_duplicate_source_rejected(self, tmp_path):
        f = tmp_path / "bad.pins"
        f.write_text("source 0 0\nsource 1 1\n2 2\n")
        with pytest.raises(FormatError, match="duplicate source"):
            load_pin_list(f)

    def test_garbage_rejected_with_location(self, tmp_path):
        f = tmp_path / "bad.pins"
        f.write_text("1 2\nx y z w\n")
        with pytest.raises(FormatError, match="bad.pins:2"):
            load_pin_list(f)

    def test_empty_rejected(self, tmp_path):
        f = tmp_path / "empty.pins"
        f.write_text("# nothing\n")
        with pytest.raises(FormatError, match="no pins"):
            load_pin_list(f)


class TestCsv:
    def test_basic(self, tmp_path):
        f = tmp_path / "net.csv"
        f.write_text(
            "x,y,cap,kind\n"
            "10,20,,source\n"
            "0,0,0.4,sink\n"
            "5,5,,\n"
        )
        source, sinks, caps = load_csv(f)
        assert source == Point(10, 20)
        assert sinks == [Point(0, 0), Point(5, 5)]
        assert caps == {0: 0.4}

    def test_source_row_cap_rejected(self, tmp_path):
        f = tmp_path / "bad.csv"
        f.write_text("x,y,cap,kind\n10,20,1.5,source\n0,0,,sink\n")
        with pytest.raises(FormatError, match="source row carries"):
            load_csv(f)

    def test_kind_tokens(self, tmp_path):
        """All source spellings work; caps land on 0-based sink indices
        regardless of where the source row sits."""
        for token in ("source", "src", "root", "SOURCE"):
            f = tmp_path / f"net_{token}.csv"
            f.write_text(
                f"x,y,cap,kind\n0,0,0.1,sink\n10,20,,{token}\n5,5,0.2,sink\n"
            )
            source, sinks, caps = load_csv(f)
            assert source == Point(10, 20)
            assert caps == {0: 0.1, 1: 0.2}

    def test_minimal_header(self, tmp_path):
        f = tmp_path / "net.csv"
        f.write_text("x,y\n1,2\n3,4\n")
        source, sinks, caps = load_csv(f)
        assert source is None
        assert len(sinks) == 2

    def test_missing_columns(self, tmp_path):
        f = tmp_path / "bad.csv"
        f.write_text("a,b\n1,2\n")
        with pytest.raises(FormatError, match="'x,y'"):
            load_csv(f)

    def test_unknown_kind(self, tmp_path):
        f = tmp_path / "bad.csv"
        f.write_text("x,y,kind\n1,2,gate\n")
        with pytest.raises(FormatError, match="unknown kind"):
            load_csv(f)


class TestAutodetect:
    def test_csv_extension(self, tmp_path):
        f = tmp_path / "n.csv"
        f.write_text("x,y\n1,1\n")
        _, sinks, _ = load_sinks_file(f)
        assert sinks == [Point(1, 1)]

    def test_pinlist_extension(self, tmp_path):
        f = tmp_path / "n.pins"
        f.write_text("1 1\n")
        _, sinks, _ = load_sinks_file(f)
        assert sinks == [Point(1, 1)]


coords = st.integers(-500, 500)
cap_values = st.floats(0.01, 10.0, allow_nan=False, allow_infinity=False)
pins = st.lists(
    st.tuples(coords, coords, st.none() | cap_values), min_size=1, max_size=12
)


class TestRoundTripProperties:
    """Property tests: a written file reloads to exactly what was written,
    with caps attributed to the same 0-based pin in both formats."""

    @staticmethod
    def _expected(pin_rows):
        sinks = [Point(float(x), float(y)) for x, y, _ in pin_rows]
        caps = {
            i: float(c) for i, (_, _, c) in enumerate(pin_rows) if c is not None
        }
        return sinks, caps

    @given(pins)
    @settings(max_examples=40, deadline=None)
    def test_pin_list_round_trip(self, tmp_path_factory, pin_rows):
        f = tmp_path_factory.mktemp("fmt") / "net.pins"
        f.write_text(
            "source 0 1\n"
            + "\n".join(
                f"{x} {y}" + (f" {float(c)!r}" if c is not None else "")
                for x, y, c in pin_rows
            )
        )
        source, sinks, caps = load_pin_list(f)
        want_sinks, want_caps = self._expected(pin_rows)
        assert source == Point(0, 1)
        assert sinks == want_sinks
        assert caps == want_caps

    @given(pins)
    @settings(max_examples=40, deadline=None)
    def test_csv_matches_pin_list(self, tmp_path_factory, pin_rows):
        """The same net spelled in both formats loads identically."""
        d = tmp_path_factory.mktemp("fmt")
        body = [
            (f"{x} {y}" + (f" {float(c)!r}" if c is not None else ""))
            for x, y, c in pin_rows
        ]
        (d / "net.pins").write_text("\n".join(body))
        (d / "net.csv").write_text(
            "x,y,cap\n"
            + "\n".join(
                f"{x},{y}," + (f"{float(c)!r}" if c is not None else "")
                for x, y, c in pin_rows
            )
        )
        assert load_sinks_file(d / "net.pins") == load_sinks_file(d / "net.csv")


class TestEndToEnd:
    def test_loaded_net_solves(self, tmp_path):
        """A file round-trips into the normal solve pipeline."""
        f = tmp_path / "net.pins"
        f.write_text(
            "source 50 50\n"
            + "\n".join(f"{x} {y}" for x, y in [(0, 0), (100, 0), (100, 100), (0, 100)])
        )
        from repro import DelayBounds, nearest_neighbor_topology, solve_lubt
        from repro.ebf.bounds import radius_of

        source, sinks, _ = load_sinks_file(f)
        topo = nearest_neighbor_topology(sinks, source)
        r = radius_of(topo)
        sol = solve_lubt(topo, DelayBounds.uniform(4, 0.0, 1.5 * r))
        assert sol.cost > 0
