"""Tests for the benchmark file-format loaders."""

import pytest

from repro.data import (
    FormatError,
    load_csv,
    load_pin_list,
    load_sinks_file,
)
from repro.geometry import Point


class TestPinList:
    def test_basic(self, tmp_path):
        f = tmp_path / "net.pins"
        f.write_text(
            "# a tiny net\n"
            "source 10 20\n"
            "0 0\n"
            "5 5  # inline comment\n"
            "p3 9 1\n"
        )
        source, sinks, caps = load_pin_list(f)
        assert source == Point(10, 20)
        assert sinks == [Point(0, 0), Point(5, 5), Point(9, 1)]
        assert caps == {}

    def test_with_caps(self, tmp_path):
        f = tmp_path / "net.pins"
        f.write_text("1 2 0.5\n3 4 1.5\n")
        source, sinks, caps = load_pin_list(f)
        assert source is None
        assert caps == {1: 0.5, 2: 1.5}

    def test_first_is_source(self, tmp_path):
        f = tmp_path / "net.pins"
        f.write_text("100 100\n0 0\n9 9\n")
        source, sinks, _ = load_pin_list(f, first_is_source=True)
        assert source == Point(100, 100)
        assert len(sinks) == 2

    def test_first_is_source_reindexes_caps(self, tmp_path):
        f = tmp_path / "net.pins"
        f.write_text("100 100\n0 0 2.0\n9 9 3.0\n")
        _, sinks, caps = load_pin_list(f, first_is_source=True)
        assert caps == {1: 2.0, 2: 3.0}

    def test_duplicate_source_rejected(self, tmp_path):
        f = tmp_path / "bad.pins"
        f.write_text("source 0 0\nsource 1 1\n2 2\n")
        with pytest.raises(FormatError, match="duplicate source"):
            load_pin_list(f)

    def test_garbage_rejected_with_location(self, tmp_path):
        f = tmp_path / "bad.pins"
        f.write_text("1 2\nx y z w\n")
        with pytest.raises(FormatError, match="bad.pins:2"):
            load_pin_list(f)

    def test_empty_rejected(self, tmp_path):
        f = tmp_path / "empty.pins"
        f.write_text("# nothing\n")
        with pytest.raises(FormatError, match="no pins"):
            load_pin_list(f)


class TestCsv:
    def test_basic(self, tmp_path):
        f = tmp_path / "net.csv"
        f.write_text(
            "x,y,cap,kind\n"
            "10,20,,source\n"
            "0,0,0.4,sink\n"
            "5,5,,\n"
        )
        source, sinks, caps = load_csv(f)
        assert source == Point(10, 20)
        assert sinks == [Point(0, 0), Point(5, 5)]
        assert caps == {1: 0.4}

    def test_minimal_header(self, tmp_path):
        f = tmp_path / "net.csv"
        f.write_text("x,y\n1,2\n3,4\n")
        source, sinks, caps = load_csv(f)
        assert source is None
        assert len(sinks) == 2

    def test_missing_columns(self, tmp_path):
        f = tmp_path / "bad.csv"
        f.write_text("a,b\n1,2\n")
        with pytest.raises(FormatError, match="'x,y'"):
            load_csv(f)

    def test_unknown_kind(self, tmp_path):
        f = tmp_path / "bad.csv"
        f.write_text("x,y,kind\n1,2,gate\n")
        with pytest.raises(FormatError, match="unknown kind"):
            load_csv(f)


class TestAutodetect:
    def test_csv_extension(self, tmp_path):
        f = tmp_path / "n.csv"
        f.write_text("x,y\n1,1\n")
        _, sinks, _ = load_sinks_file(f)
        assert sinks == [Point(1, 1)]

    def test_pinlist_extension(self, tmp_path):
        f = tmp_path / "n.pins"
        f.write_text("1 1\n")
        _, sinks, _ = load_sinks_file(f)
        assert sinks == [Point(1, 1)]


class TestEndToEnd:
    def test_loaded_net_solves(self, tmp_path):
        """A file round-trips into the normal solve pipeline."""
        f = tmp_path / "net.pins"
        f.write_text(
            "source 50 50\n"
            + "\n".join(f"{x} {y}" for x, y in [(0, 0), (100, 0), (100, 100), (0, 100)])
        )
        from repro import DelayBounds, nearest_neighbor_topology, solve_lubt
        from repro.ebf.bounds import radius_of

        source, sinks, _ = load_sinks_file(f)
        topo = nearest_neighbor_topology(sinks, source)
        r = radius_of(topo)
        sol = solve_lubt(topo, DelayBounds.uniform(4, 0.0, 1.5 * r))
        assert sol.cost > 0
