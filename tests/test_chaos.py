"""Chaos soak harness: a short bounded run must hold every invariant."""

from repro.resilience import ChaosConfig, run_chaos


class TestChaosSoak:
    def test_bounded_soak_passes(self):
        report = run_chaos(
            ChaosConfig(
                seed=1234,
                duration=8.0,
                clients=2,
                jobs=2,
                sinks=6,
                points=2,
                max_inflight=1,
                queue_limit=1,
            )
        )
        assert report.ok, report.summary()
        # The soak actually exercised the interesting paths, not just
        # cache hits: real solves, typed sheds, protocol abuse answered.
        assert report.solves_checked > 0
        assert report.server_stats["solves"] > 0
        assert report.server_stats["shed"] == report.busy_observed
        assert report.actions.get("malformed", 0) > 0
        assert report.actions.get("oversized", 0) > 0
        assert report.actions.get("disconnect", 0) > 0
        # Fault injection opened the primary backend's breaker in at
        # least one worker (visible through server stats).
        breakers = report.server_stats["breakers"]
        assert breakers.get("simplex", {}).get("opens", 0) >= 1
        assert "PASS" in report.summary()

    def test_inline_mode_without_kills(self):
        report = run_chaos(
            ChaosConfig(
                seed=7,
                duration=4.0,
                clients=2,
                jobs=1,
                sinks=6,
                points=2,
                kill_workers=False,
                fault_count=0,
            )
        )
        assert report.ok, report.summary()
        assert report.solves_checked > 0
