"""Elastic infeasibility diagnosis and graceful degradation.

Acceptance criterion of the resilience PR: an infeasible LUBT instance
(``u_i < dist(root, s_i)``) diagnosed elastically must name the
conflicting sink bounds and the minimal relaxation amounts, and the
relaxed re-solve must yield a valid embedded tree.
"""

import numpy as np
import pytest

from repro import (
    DelayBounds,
    InfeasibleError,
    Point,
    chain_topology,
    embed_tree,
    nearest_neighbor_topology,
    solve_and_embed,
    solve_lubt,
)
from repro.ebf.bounds import radius_of
from repro.geometry import manhattan
from repro.resilience import (
    InfeasibilityDiagnosis,
    build_elastic_lp,
    diagnose_infeasibility,
)


def instance(n=8, seed=0, span=50):
    rng = np.random.default_rng(seed)
    pts = [
        Point(float(x), float(y)) for x, y in rng.integers(0, span, (n, 2))
    ]
    return nearest_neighbor_topology(pts, Point(span / 2.0, span / 2.0))


class TestDiagnosis:
    def test_upper_below_distance_named_with_amounts(self):
        """u_i < dist(root, s_i): the unreachable sinks are named and the
        relaxation amount is exactly dist - u (the geometric gap)."""
        topo = instance()
        r = radius_of(topo)
        u = 0.6 * r
        bounds = DelayBounds.uniform(topo.num_sinks, 0.0, u)
        diag = diagnose_infeasibility(topo, bounds)
        assert isinstance(diag, InfeasibilityDiagnosis)

        src = topo.source_location
        unreachable = {
            i: manhattan(src, topo.sink_location(i)) - u
            for i in topo.sink_ids()
            if manhattan(src, topo.sink_location(i)) > u + 1e-9
        }
        assert unreachable, "test instance must have unreachable sinks"
        assert set(diag.conflicting_sinks) == set(unreachable)
        for rel in diag.conflicting:
            assert rel.upper_relax == pytest.approx(
                unreachable[rel.sink], abs=1e-6
            )
            assert rel.lower_relax == 0.0
        assert diag.total_slack == pytest.approx(
            sum(unreachable.values()), abs=1e-5
        )
        assert "must rise" in diag.summary()

    def test_relaxed_resolve_embeds(self):
        topo = instance()
        r = radius_of(topo)
        bounds = DelayBounds.uniform(topo.num_sinks, 0.0, 0.6 * r)
        diag = diagnose_infeasibility(topo, bounds)
        sol = solve_lubt(topo, diag.relaxed_bounds, check_bounds=False)
        tree = embed_tree(topo, sol.edge_lengths)
        assert diag.relaxed_bounds.satisfied_by(sol.delays)
        assert tree.cost == pytest.approx(sol.cost)

    def test_feasible_instance_reports_no_conflicts(self):
        topo = instance()
        r = radius_of(topo)
        bounds = DelayBounds.uniform(topo.num_sinks, 0.9 * r, 1.2 * r)
        diag = diagnose_infeasibility(topo, bounds)
        assert diag.conflicting == ()
        assert diag.total_slack == 0.0
        assert "no conflicting" in diag.summary()

    def test_lower_upper_cross_conflict_on_chain(self):
        """Nested paths force a genuine l-vs-u conflict: the shallow
        sink's lower bound exceeds the deep sink's upper bound, and the
        deep path contains the shallow one."""
        pts = [Point(10.0, 0.0), Point(20.0, 0.0), Point(30.0, 0.0)]
        topo = chain_topology(pts, source=Point(0.0, 0.0))
        # sink 1 wants delay >= 100; sink 3 (whose path includes sink 1's)
        # wants delay <= 40.  Impossible: path(s3) >= path(s1).
        bounds = DelayBounds.per_sink([(100.0, 200.0), (0.0, 200.0), (0.0, 40.0)])
        with pytest.raises(InfeasibleError):
            solve_lubt(topo, bounds, check_bounds=False)
        diag = diagnose_infeasibility(topo, bounds)
        assert diag.conflicting
        assert diag.total_slack > 0.0
        sol = solve_lubt(topo, diag.relaxed_bounds, check_bounds=False)
        assert diag.relaxed_bounds.satisfied_by(sol.delays)

    def test_elastic_lp_always_feasible(self):
        topo = instance(n=6, seed=3)
        r = radius_of(topo)
        # wildly impossible bounds in both directions
        bounds = DelayBounds.per_sink(
            [(3.0 * r, 3.1 * r)] * 3 + [(0.0, 0.05 * r)] * 3
        )
        lp, slack_cols = build_elastic_lp(topo, bounds)
        from repro.lp import solve_lp

        res = solve_lp(lp).require_optimal()
        assert res.is_optimal
        assert len(slack_cols) == topo.num_sinks

    def test_resilient_diagnosis_path(self):
        topo = instance(n=6, seed=5)
        r = radius_of(topo)
        bounds = DelayBounds.uniform(topo.num_sinks, 0.0, 0.5 * r)
        diag = diagnose_infeasibility(topo, bounds, resilient=True)
        assert diag.conflicting


class TestSolveLubtIntegration:
    def _infeasible(self, n=8, seed=1):
        topo = instance(n=n, seed=seed)
        r = radius_of(topo)
        return topo, DelayBounds.uniform(n, 0.0, 0.55 * r)

    def test_on_infeasible_raise_is_default(self):
        topo, bounds = self._infeasible()
        with pytest.raises(InfeasibleError) as exc_info:
            solve_lubt(topo, bounds, check_bounds=False)
        assert exc_info.value.diagnosis is None

    def test_on_infeasible_diagnose_attaches(self):
        topo, bounds = self._infeasible()
        with pytest.raises(InfeasibleError) as exc_info:
            solve_lubt(
                topo, bounds, check_bounds=False, on_infeasible="diagnose"
            )
        diag = exc_info.value.diagnosis
        assert isinstance(diag, InfeasibilityDiagnosis)
        assert diag.conflicting_sinks
        assert "must rise" in str(exc_info.value)

    def test_on_infeasible_relax_returns_solution(self):
        topo, bounds = self._infeasible()
        sol = solve_lubt(topo, bounds, check_bounds=False, on_infeasible="relax")
        assert sol.diagnosis is not None
        assert sol.bounds is sol.diagnosis.relaxed_bounds
        assert sol.diagnosis.relaxed_bounds.satisfied_by(sol.delays)
        tree = embed_tree(topo, sol.edge_lengths)
        assert tree.cost == pytest.approx(sol.cost)

    def test_on_infeasible_relax_with_eq3_check_enabled(self):
        """check_bounds=True normally raises BoundsError before any LP;
        the relax path must catch that too and still degrade."""
        topo, bounds = self._infeasible()
        sol = solve_lubt(topo, bounds, check_bounds=True, on_infeasible="relax")
        assert sol.diagnosis is not None

    def test_feasible_instance_ignores_on_infeasible(self):
        topo = instance()
        r = radius_of(topo)
        bounds = DelayBounds.uniform(topo.num_sinks, 0.8 * r, 1.3 * r)
        sol = solve_lubt(topo, bounds, on_infeasible="relax")
        assert sol.diagnosis is None
        baseline = solve_lubt(topo, bounds)
        assert sol.cost == pytest.approx(baseline.cost)

    def test_unknown_on_infeasible_rejected(self):
        topo, bounds = self._infeasible()
        with pytest.raises(ValueError, match="on_infeasible"):
            solve_lubt(topo, bounds, on_infeasible="shrug")

    def test_solve_and_embed_relax_acceptance(self):
        """The PR's acceptance flow: infeasible instance, elastic
        diagnosis, valid embedded tree under relaxed bounds."""
        topo, bounds = self._infeasible()
        sol, tree = solve_and_embed(
            topo, bounds, check_bounds=False,
            resilient=True, on_infeasible="relax",
        )
        assert sol.diagnosis.conflicting_sinks
        assert sol.diagnosis.relaxed_bounds.satisfied_by(tree.sink_delays())
        assert len(tree.placements) == topo.num_nodes


class TestCli:
    def test_diagnose_flag_prints_and_degrades(self, capsys):
        from repro.cli import main

        rc = main([
            "solve", "--bench", "prim1", "--sinks", "12",
            "--lower", "0.0", "--upper", "0.55", "--diagnose",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "infeasibility diagnosis" in out
        assert "bounds relaxed" in out
        assert "embedded relaxed tree" in out

    def test_resilient_flag_reports_fallbacks(self, capsys):
        from repro.cli import main

        rc = main([
            "solve", "--bench", "prim1", "--sinks", "10", "--resilient",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "LP fallbacks" in out
