"""Tests for serpentine realization of elongated wires."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedding import polyline_length, serpentine_route
from repro.geometry import Point, manhattan

coords = st.floats(min_value=-100, max_value=100, allow_nan=False)
points = st.builds(Point, coords, coords)


class TestBasicRoutes:
    def test_tight_edge_is_l_route(self):
        route = serpentine_route(Point(0, 0), Point(10, 4), 14.0)
        assert route[0] == Point(0, 0)
        assert route[-1] == Point(10, 4)
        assert len(route) == 3  # a, bend, b
        assert polyline_length(route) == pytest.approx(14.0)

    def test_straight_edge(self):
        route = serpentine_route(Point(0, 0), Point(10, 0), 10.0)
        assert route == [Point(0, 0), Point(10, 0)]

    def test_single_bump(self):
        route = serpentine_route(Point(0, 0), Point(10, 0), 16.0)
        assert polyline_length(route) == pytest.approx(16.0)
        assert route[0] == Point(0, 0)
        assert route[-1] == Point(10, 0)

    def test_amplitude_cap_multiplies_zags(self):
        long_zag = serpentine_route(Point(0, 0), Point(10, 0), 30.0)
        short_zags = serpentine_route(
            Point(0, 0), Point(10, 0), 30.0, max_amplitude=2.0
        )
        assert polyline_length(short_zags) == pytest.approx(30.0)
        assert len(short_zags) > len(long_zag)
        # Amplitude respected: no point strays more than 2 from the axis.
        assert max(abs(p.y) for p in short_zags) <= 2.0 + 1e-9

    def test_coincident_endpoints_loop(self):
        route = serpentine_route(Point(5, 5), Point(5, 5), 8.0)
        assert polyline_length(route) == pytest.approx(8.0)
        assert route[0] == route[-1] == Point(5, 5)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            serpentine_route(Point(0, 0), Point(10, 0), 5.0)

    def test_tiny_lp_noise_absorbed(self):
        route = serpentine_route(Point(0, 0), Point(10, 0), 10.0 - 1e-8)
        assert polyline_length(route) == pytest.approx(10.0)


class TestProperties:
    @given(points, points, st.floats(0, 200), st.floats(0.5, 20))
    @settings(max_examples=150, deadline=None)
    def test_exact_length_and_endpoints(self, a, b, extra, amp):
        length = manhattan(a, b) + extra
        route = serpentine_route(a, b, length, max_amplitude=amp)
        assert manhattan(route[0], a) <= 1e-9
        assert manhattan(route[-1], b) <= 1e-9
        assert polyline_length(route) == pytest.approx(length, abs=1e-6)

    @given(points, points, st.floats(0, 200))
    @settings(max_examples=100, deadline=None)
    def test_segments_axis_aligned(self, a, b, extra):
        route = serpentine_route(a, b, manhattan(a, b) + extra)
        for p, q in zip(route, route[1:]):
            assert abs(p.x - q.x) <= 1e-9 or abs(p.y - q.y) <= 1e-9

    @given(points, points)
    @settings(max_examples=60, deadline=None)
    def test_no_zero_segments(self, a, b):
        route = serpentine_route(a, b, manhattan(a, b) + 7.0)
        for p, q in zip(route, route[1:]):
            assert manhattan(p, q) > 1e-10


class TestEmbeddedTreeIntegration:
    def test_elongated_tree_realizes_exact_cost(self):
        """Serpentine geometry over every edge reproduces the LP cost."""
        from repro.ebf import DelayBounds
        from repro.embedding import solve_and_embed
        from repro.topology import nearest_neighbor_topology

        sinks = [Point(0, 0), Point(10, 0)]
        topo = nearest_neighbor_topology(sinks)
        sol, tree = solve_and_embed(
            topo, DelayBounds.uniform(2, 8.0, 9.0), check_bounds=False
        )
        total = 0.0
        for node in range(1, topo.num_nodes):
            route = serpentine_route(
                tree.placements[topo.parent(node)],
                tree.placements[node],
                float(sol.edge_lengths[node]),
            )
            total += polyline_length(route)
        assert total == pytest.approx(sol.cost)

    def test_svg_uses_serpentines(self):
        from repro.analysis import tree_to_svg
        from repro.ebf import DelayBounds
        from repro.embedding import solve_and_embed
        from repro.topology import nearest_neighbor_topology

        sinks = [Point(0, 0), Point(10, 0)]
        topo = nearest_neighbor_topology(sinks)
        _, tree = solve_and_embed(
            topo, DelayBounds.uniform(2, 8.0, 9.0), check_bounds=False
        )
        svg = tree_to_svg(tree)
        # Elongated edges now render as multi-vertex paths.
        elong_paths = [
            part for part in svg.split("<path") if 'class="elong"' in part
        ]
        assert elong_paths
        assert any(p.count(" L ") >= 3 for p in elong_paths)
