"""The CTS workload layer: H-tree topologies at any depth, per-net
builder dispatch, and the multi-net driver's serial/parallel identity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import check_instance
from repro.data import synth_placement
from repro.ebf import DelayBounds
from repro.geometry import Point, manhattan_radius_from
from repro.perf import SolveJournal, WorkerPool, cts_tasks, run_cts
from repro.topology import (
    AUTO_BIPARTITION_MAX_SINKS,
    AUTO_NN_MAX_SINKS,
    build_net_topology,
    htree_topology,
    all_sinks_are_leaves,
    validate_topology,
)

_coord = st.floats(
    min_value=0.0, max_value=10_000.0, allow_nan=False, allow_infinity=False
)
_sink_lists = st.lists(
    st.tuples(_coord, _coord), min_size=1, max_size=130
).map(lambda pts: [Point(x, y) for x, y in pts])


class TestHtreeTopology:
    @given(sinks=_sink_lists)
    @settings(max_examples=60, deadline=None)
    def test_any_depth_is_valid_full_binary_with_sink_leaves(self, sinks):
        topo = htree_topology(sinks, Point(5_000.0, 5_000.0))
        validate_topology(topo)
        assert all_sinks_are_leaves(topo)
        assert topo.num_sinks == len(sinks)

    @given(sinks=_sink_lists.filter(lambda s: len(s) >= 2))
    @settings(max_examples=30, deadline=None)
    def test_any_depth_passes_check_instance_clean(self, sinks):
        source = Point(5_000.0, 5_000.0)
        topo = htree_topology(sinks, source)
        radius = manhattan_radius_from(source, sinks)
        bounds = DelayBounds.uniform(len(sinks), 0.8 * radius, 1.2 * radius)
        report = check_instance(topo, bounds)
        assert report.ok, report.summary()

    def test_degenerate_geometry_still_terminates(self):
        # Coincident and collinear sinks defeat the geometric-center
        # cut; the median-split fallback must keep the recursion finite.
        for sinks in (
            [Point(5.0, 5.0)] * 33,
            [Point(float(i), 0.0) for i in range(64)],
            [Point(0.0, float(i % 2)) for i in range(50)],
        ):
            topo = htree_topology(sinks)
            validate_topology(topo)
            assert all_sinks_are_leaves(topo)

    def test_zero_sinks_rejected(self):
        with pytest.raises(ValueError):
            htree_topology([])


class TestBuildNetTopology:
    def test_auto_dispatch_by_sink_count(self):
        rng = np.random.default_rng(5)

        def sinks_of(m):
            return [Point(float(x), float(y))
                    for x, y in rng.uniform(0, 1000, (m, 2))]

        def same(a, b):
            return (
                [a.parent(k) for k in range(a.num_nodes)]
                == [b.parent(k) for k in range(b.num_nodes)]
                and a.num_sinks == b.num_sinks
            )

        small = sinks_of(AUTO_NN_MAX_SINKS)
        mid = sinks_of(AUTO_NN_MAX_SINKS + 1)
        big = sinks_of(AUTO_BIPARTITION_MAX_SINKS + 1)
        assert same(build_net_topology(small),
                    build_net_topology(small, kind="nn"))
        assert same(build_net_topology(mid),
                    build_net_topology(mid, kind="bipartition"))
        assert same(build_net_topology(big),
                    build_net_topology(big, kind="htree"))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown topology kind"):
            build_net_topology([Point(0, 0)], kind="fishbone")


class TestRunCts:
    @pytest.fixture(scope="class")
    def placement(self):
        return synth_placement(nets=10, sinks_per_net=6, seed=42)

    def test_serial_and_parallel_costs_bit_identical(self, placement):
        serial = run_cts(placement)
        parallel = run_cts(placement, jobs=2)
        assert serial.ok and parallel.ok
        assert serial.nets == parallel.nets == 10
        for a, b in zip(serial.results, parallel.results):
            assert a.name == b.name
            assert a.cost == b.cost  # bit-identical, not just close

    def test_every_topology_kind_solves_clean(self, placement):
        for kind in ("auto", "nn", "bipartition", "htree"):
            report = run_cts(placement, topology=kind)
            assert report.ok, (kind, report.summary())

    def test_nets_cap_takes_a_file_order_prefix(self, placement):
        report = run_cts(placement, nets=4)
        assert report.nets == 4
        full = run_cts(placement)
        assert [r.name for r in report.results] == [
            r.name for r in full.results[:4]
        ]

    def test_journal_resume_replays_everything(self, placement, tmp_path):
        path = tmp_path / "cts.jsonl"
        with SolveJournal(path) as j:
            first = run_cts(placement, jobs=2, journal=j)
        assert first.appended == 10 and first.replayed == 0
        with SolveJournal(path) as j:
            second = run_cts(placement, jobs=2, journal=j)
        assert second.replayed == 10 and second.appended == 0
        assert [r.cost for r in first.results] == [
            r.cost for r in second.results
        ]

    def test_on_net_fires_per_completion(self, placement):
        names = []
        report = run_cts(placement, jobs=2, on_net=lambda r: names.append(r.name))
        assert sorted(names) == sorted(r.name for r in report.results)

    def test_shared_pool_is_reused_across_runs(self, placement):
        with WorkerPool(2) as pool:
            run_cts(placement, jobs=2, pool=pool)
            report = run_cts(placement, jobs=2, pool=pool)
        assert report.scheduler["workers_replaced"] == 0
        # Second batch ran entirely on warm workers from the first.
        assert report.scheduler["pool_reuse"] >= 10

    def test_cts_tasks_windows_scale_with_net_radius(self, placement):
        pairs = cts_tasks(placement, lower=0.9, upper=1.1)
        for net, task in pairs:
            radius = manhattan_radius_from(net.source, list(net.sinks))
            assert task.bounds.lower[0] == pytest.approx(0.9 * radius)
            assert task.bounds.upper[0] == pytest.approx(1.1 * radius)

    def test_report_summary_mentions_throughput(self, placement):
        report = run_cts(placement)
        text = report.summary()
        assert "nets solved" in text and "nets/s" in text
