"""The backend fallback chain under injected faults.

Acceptance criterion of the resilience PR: with injected failures on the
first backend (exception, timeout, and NaN-solution faults),
``solve_lp_resilient`` still returns an optimal result via the fallback
backend, and the ``SolveReport`` records every attempt.
"""

import numpy as np
import pytest

from repro.lp import LinearProgram, LpStatus, Sense
from repro.resilience import (
    AllBackendsFailedError,
    AttemptOutcome,
    SolveReport,
    backend_chain,
    default_solvers,
    faults,
    rescale_lp,
    solve_lp_resilient,
)


def small_lp() -> LinearProgram:
    """min x + y  s.t.  x + y >= 2, y <= 5  -> optimum 2."""
    lp = LinearProgram()
    x = lp.add_variable("x", cost=1.0)
    y = lp.add_variable("y", cost=1.0, ub=5.0)
    lp.add_constraint({x: 1.0, y: 1.0}, Sense.GE, 2.0)
    return lp


def infeasible_lp() -> LinearProgram:
    lp = LinearProgram()
    x = lp.add_variable("x", cost=1.0)
    lp.add_constraint({x: 1.0}, Sense.GE, 2.0)
    lp.add_constraint({x: 1.0}, Sense.LE, 1.0)
    return lp


class TestHappyPath:
    def test_single_attempt_when_first_backend_works(self):
        report = solve_lp_resilient(small_lp())
        assert report.succeeded
        assert report.num_attempts == 1
        assert report.result.objective == pytest.approx(2.0)
        assert report.attempts[0].outcome == AttemptOutcome.OPTIMAL
        assert report.attempts[0].wall_seconds >= 0.0

    def test_infeasible_is_definitive_not_a_failure(self):
        report = solve_lp_resilient(infeasible_lp())
        assert report.succeeded
        assert report.result.status is LpStatus.INFEASIBLE
        assert report.num_attempts == 1

    def test_backend_chain_prefers_by_size_and_capability(self):
        assert backend_chain(small_lp()) == ("simplex", "scipy", "tree")
        assert backend_chain(small_lp(), "scipy") == (
            "scipy", "simplex", "tree"
        )
        assert backend_chain(small_lp(), "tree")[0] == "tree"
        free = LinearProgram()
        free.add_variable("x", cost=1.0, lb=-np.inf)
        assert backend_chain(free)[0] == "scipy"


class TestInjectedFaults:
    """One scenario per fault class; every attempt must be on the record."""

    def test_exception_fault_falls_through(self):
        solvers = faults.faulty_solvers(
            {"simplex": [faults.ExceptionFault("injected crash")]}
        )
        report = solve_lp_resilient(
            small_lp(), ("simplex", "scipy"),
            solvers=solvers, rescale_retry=False,
        )
        assert report.result.is_optimal
        assert report.result.objective == pytest.approx(2.0)
        assert report.result.backend == "scipy-highs"
        assert [a.outcome for a in report.attempts] == [
            AttemptOutcome.EXCEPTION, AttemptOutcome.OPTIMAL,
        ]
        assert "injected crash" in report.attempts[0].error

    def test_timeout_fault_falls_through(self):
        solvers = faults.faulty_solvers(
            {"simplex": [faults.TimeoutFault(seconds=1.0)]}
        )
        report = solve_lp_resilient(
            small_lp(), ("simplex", "scipy"), solvers=solvers, timeout=0.1
        )
        assert report.result.is_optimal
        assert report.result.backend == "scipy-highs"
        assert report.attempts[0].outcome == AttemptOutcome.TIMEOUT
        assert "wall clock" in report.attempts[0].error

    def test_nan_solution_fault_rejected_and_recovered(self):
        solvers = faults.faulty_solvers(
            {"simplex": [faults.NanSolutionFault()]}
        )
        report = solve_lp_resilient(
            small_lp(), ("simplex", "scipy"),
            solvers=solvers, rescale_retry=False,
        )
        assert report.result.is_optimal
        assert np.all(np.isfinite(report.result.x))
        assert report.attempts[0].outcome == AttemptOutcome.INVALID

    def test_wrong_status_fault_retried_then_recovered(self):
        solvers = faults.faulty_solvers(
            {"simplex": [
                faults.WrongStatusFault(LpStatus.ERROR),
                faults.WrongStatusFault(LpStatus.ERROR),
            ]}
        )
        report = solve_lp_resilient(
            small_lp(), ("simplex", "scipy"), solvers=solvers
        )
        assert report.result.is_optimal
        # error -> rescaled retry on simplex -> fallback to scipy
        assert [(a.outcome, a.rescaled) for a in report.attempts] == [
            (AttemptOutcome.ERROR, False),
            (AttemptOutcome.ERROR, True),
            (AttemptOutcome.OPTIMAL, False),
        ]
        assert report.fallbacks_used == 2

    def test_every_fault_class_at_once(self):
        """Acceptance scenario: first backend exhausts its whole fault
        repertoire across successive LPs; the chain never fails."""
        schedule = [
            faults.ExceptionFault(),
            faults.NanSolutionFault(),
            faults.WrongStatusFault(LpStatus.ERROR),
        ]
        wrapped = faults.FaultyBackend(
            default_solvers()["simplex"], schedule, name="simplex"
        )
        for _ in schedule:
            report = solve_lp_resilient(
                small_lp(), ("simplex", "scipy"),
                solvers={"simplex": wrapped}, rescale_retry=False,
            )
            assert report.result.is_optimal
            assert report.result.objective == pytest.approx(2.0)
        assert wrapped.calls == len(schedule)
        assert len(wrapped.injected) == len(schedule)


class TestTotalFailure:
    def test_all_backends_down_raises_with_report(self):
        solvers = faults.faulty_solvers({
            "simplex": [faults.ExceptionFault("s down")],
            "scipy": [faults.ExceptionFault("h down")],
        })
        with pytest.raises(AllBackendsFailedError) as exc_info:
            solve_lp_resilient(
                small_lp(), ("simplex", "scipy"),
                solvers=solvers, rescale_retry=False,
            )
        report = exc_info.value.report
        assert isinstance(report, SolveReport)
        assert not report.succeeded
        assert report.backends_tried == ("simplex", "scipy")
        assert "s down" in report.summary() and "h down" in report.summary()

    def test_raise_on_failure_false_returns_report(self):
        solvers = faults.faulty_solvers({
            "simplex": [faults.ExceptionFault()],
            "scipy": [faults.ExceptionFault()],
        })
        report = solve_lp_resilient(
            small_lp(), ("simplex", "scipy"), solvers=solvers,
            rescale_retry=False, raise_on_failure=False,
        )
        assert report.result is None
        assert report.num_attempts == 2

    def test_unknown_backend_name_rejected(self):
        with pytest.raises(ValueError, match="unknown LP backends"):
            solve_lp_resilient(small_lp(), ("loqo",))


class TestRescaling:
    def test_rescale_roundtrip_preserves_optimum(self):
        lp = LinearProgram()
        x = lp.add_variable("x", cost=1.0, ub=1e8)
        y = lp.add_variable("y", cost=2.0)
        lp.add_constraint({x: 1.0, y: 1.0}, Sense.GE, 3e7, name="big")
        scaled, s = rescale_lp(lp)
        assert s == pytest.approx(1e8)
        assert scaled.row(0)[2] == pytest.approx(0.3)
        from repro.lp import solve_lp

        res = solve_lp(scaled, "simplex").require_optimal()
        x_orig = np.asarray(res.x) * s
        assert lp.objective_value(x_orig) == pytest.approx(3e7)
        assert lp.is_feasible(x_orig, tol=1.0)

    def test_rescaled_attempt_flagged_in_report(self):
        solvers = faults.faulty_solvers(
            {"simplex": [faults.ExceptionFault("numeric blowup")]}
        )
        report = solve_lp_resilient(
            small_lp(), ("simplex",), solvers=solvers, rescale_retry=True
        )
        # first raw attempt raises; rescaled retry passes through and wins
        assert report.result.is_optimal
        assert [a.rescaled for a in report.attempts] == [False, True]
        assert report.result.objective == pytest.approx(2.0)


class TestConfirmInfeasible:
    def test_lying_infeasible_overridden_by_second_opinion(self):
        solvers = faults.faulty_solvers(
            {"simplex": [faults.WrongStatusFault(LpStatus.INFEASIBLE)]}
        )
        report = solve_lp_resilient(
            small_lp(), ("simplex", "scipy"),
            solvers=solvers, confirm_infeasible=True, rescale_retry=False,
        )
        assert report.result.is_optimal
        assert report.attempts[0].outcome == AttemptOutcome.INFEASIBLE

    def test_true_infeasible_confirmed(self):
        report = solve_lp_resilient(
            infeasible_lp(), ("simplex", "scipy"), confirm_infeasible=True
        )
        assert report.result.status is LpStatus.INFEASIBLE
        assert report.num_attempts == 2  # both backends weighed in


class TestLubtIntegration:
    def _instance(self):
        from repro import DelayBounds, Point, nearest_neighbor_topology
        from repro.ebf.bounds import radius_of

        rng = np.random.default_rng(7)
        pts = [
            Point(float(x), float(y)) for x, y in rng.integers(0, 60, (8, 2))
        ]
        topo = nearest_neighbor_topology(pts, Point(30.0, 30.0))
        r = radius_of(topo)
        return topo, DelayBounds.uniform(8, 0.8 * r, 1.3 * r)

    def test_solve_lubt_resilient_records_reports(self):
        from repro import solve_lubt

        topo, bounds = self._instance()
        sol = solve_lubt(topo, bounds, resilient=True)
        assert sol.solve_reports  # one report per LP solve
        assert all(r.succeeded for r in sol.solve_reports)
        assert sol.stats.lp_fallbacks == 0
        baseline = solve_lubt(topo, bounds)
        assert sol.cost == pytest.approx(baseline.cost)

    def test_solve_and_embed_passes_resilient_through(self):
        from repro import solve_and_embed

        topo, bounds = self._instance()
        sol, tree = solve_and_embed(topo, bounds, resilient=True)
        assert sol.solve_reports
        assert tree.cost == pytest.approx(sol.cost)
