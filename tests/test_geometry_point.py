"""Unit and property tests for repro.geometry.point."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import (
    Point,
    bounding_box,
    chebyshev,
    euclidean,
    manhattan,
    manhattan_diameter,
    manhattan_radius_from,
)

coords = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
points = st.builds(Point, coords, coords)


class TestPoint:
    def test_uv_roundtrip(self):
        p = Point(3.0, -2.5)
        q = Point.from_uv(p.u, p.v)
        assert q.x == pytest.approx(p.x)
        assert q.y == pytest.approx(p.y)

    def test_uv_definition(self):
        p = Point(1.0, 2.0)
        assert p.u == 3.0
        assert p.v == 1.0

    def test_translated(self):
        assert Point(1, 1).translated(2, -3) == Point(3, -2)

    def test_iter_unpacks(self):
        x, y = Point(4, 5)
        assert (x, y) == (4, 5)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Point(0, 0).x = 1  # type: ignore[misc]

    @given(points)
    def test_uv_roundtrip_property(self, p):
        q = Point.from_uv(p.u, p.v)
        assert math.isclose(q.x, p.x, abs_tol=1e-6)
        assert math.isclose(q.y, p.y, abs_tol=1e-6)


class TestMetrics:
    def test_manhattan_basic(self):
        assert manhattan(Point(0, 0), Point(3, 4)) == 7.0

    def test_euclidean_basic(self):
        assert euclidean(Point(0, 0), Point(3, 4)) == 5.0

    def test_chebyshev_basic(self):
        assert chebyshev(Point(0, 0), Point(3, 4)) == 4.0

    @given(points, points)
    def test_manhattan_is_chebyshev_in_rotated_frame(self, a, b):
        """The identity the whole TRR machinery depends on."""
        m = manhattan(a, b)
        c = max(abs(a.u - b.u), abs(a.v - b.v))
        assert math.isclose(m, c, rel_tol=1e-9, abs_tol=1e-6)

    @given(points, points)
    def test_manhattan_symmetry(self, a, b):
        assert manhattan(a, b) == manhattan(b, a)

    @given(points, points, points)
    def test_manhattan_triangle_inequality(self, a, b, c):
        assert manhattan(a, c) <= manhattan(a, b) + manhattan(b, c) + 1e-6

    @given(points, points)
    def test_metric_ordering(self, a, b):
        """L-inf <= L2 <= L1 always."""
        assert chebyshev(a, b) <= euclidean(a, b) + 1e-9
        assert euclidean(a, b) <= manhattan(a, b) + 1e-9


class TestAggregates:
    def test_bounding_box(self):
        box = bounding_box([Point(0, 1), Point(2, -1), Point(1, 3)])
        assert box == (0, -1, 2, 3)

    def test_bounding_box_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])

    def test_diameter_pairwise(self):
        pts = [Point(0, 0), Point(10, 0), Point(5, 5), Point(0, 9)]
        brute = max(
            manhattan(a, b) for a in pts for b in pts
        )
        assert manhattan_diameter(pts) == pytest.approx(brute)

    @given(st.lists(points, min_size=2, max_size=30))
    def test_diameter_matches_bruteforce(self, pts):
        brute = max(manhattan(a, b) for a in pts for b in pts)
        assert math.isclose(
            manhattan_diameter(pts), brute, rel_tol=1e-9, abs_tol=1e-6
        )

    def test_diameter_degenerate(self):
        assert manhattan_diameter([]) == 0.0
        assert manhattan_diameter([Point(1, 1)]) == 0.0

    def test_radius_from_source(self):
        r = manhattan_radius_from(Point(0, 0), [Point(1, 1), Point(-3, 2)])
        assert r == 5.0

    def test_radius_no_sinks(self):
        assert manhattan_radius_from(Point(0, 0), []) == 0.0
