"""Warm-started sweeps, canonical costs, sharding, and backend racing.

The sweep-engine contract: warm-starting only re-seeds *valid* Steiner
rows, so converged optima are unchanged — warm and cold sweeps must
report bit-identical :func:`canonical_cost` values — and racing backends
must return the same answer the sequential cascade would, recording
every contender (cancelled losers included).
"""

import math
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import load_benchmark
from repro.ebf import (
    DelayBounds,
    WarmStart,
    canonical_cost,
    solve_lubt,
    solve_sweep,
)
from repro.ebf.bounds import radius_of
from repro.geometry import Point, manhattan_radius_from
from repro.lp import LinearProgram, LpStatus, Sense
from repro.perf import solve_sweep_sharded, sweep_chunks
from repro.resilience import (
    AllBackendsFailedError,
    AttemptOutcome,
    default_solvers,
    solve_lp_resilient,
)
from repro.topology import nearest_neighbor_topology


def random_topo(m, seed):
    rng = np.random.default_rng(seed)
    pts = [Point(float(x), float(y)) for x, y in rng.integers(0, 80, (m, 2))]
    return nearest_neighbor_topology(pts)


def sweep_instance(size=24):
    """A small fig8-style sweep: one topology, 6 bound windows."""
    bench = load_benchmark("prim1").scaled(size)
    sinks = list(bench.sinks)
    topo = nearest_neighbor_topology(sinks, bench.source)
    radius = manhattan_radius_from(bench.source, sinks)
    grid = [(w, lo) for w in (0.2, 0.6) for lo in (1.0, 0.7, 0.4)]
    bounds_list = [
        DelayBounds.uniform(size, lo * radius, max(lo + w, 1.0) * radius)
        for w, lo in grid
    ]
    return topo, bounds_list


class TestCanonicalCost:
    def test_idempotent(self):
        rng = np.random.default_rng(7)
        for x in rng.uniform(-1e6, 1e6, 50):
            c = canonical_cost(float(x))
            assert canonical_cost(c) == c

    def test_cancels_degenerate_vertex_noise(self):
        """Last-ulp wiggle (the degenerate-optimum symptom) quantizes away."""
        x = 1234.5678901
        y = x * (1.0 + 2.0**-50)
        assert y != x
        assert canonical_cost(x) == canonical_cost(y)

    def test_preserves_real_differences(self):
        x = 1234.5678901
        assert canonical_cost(x) != canonical_cost(x * (1.0 + 1e-5))

    def test_scale_free(self):
        """Quantization acts on the mantissa only — exact across octaves."""
        x = 3.14159265358979
        assert canonical_cost(x * 2.0**40) == canonical_cost(x) * 2.0**40

    def test_passthrough_specials(self):
        assert canonical_cost(0.0) == 0.0
        assert canonical_cost(float("inf")) == float("inf")
        assert math.isnan(canonical_cost(float("nan")))
        assert canonical_cost(-2.5) == -canonical_cost(2.5)


class TestWarmStart:
    def test_absorb_and_replay(self):
        topo = random_topo(6, 1)
        ws = WarmStart()
        ws.absorb(topo, [(1, 2, 0), (3, 1, 0)])
        assert ws.pairs_for(topo) == [(1, 2, 0), (3, 1, 0)]
        assert ws.solves == 1

    def test_orientation_dedup(self):
        topo = random_topo(6, 2)
        ws = WarmStart()
        ws.absorb(topo, [(1, 2, 0)])
        ws.absorb(topo, [(2, 1, 0), (2, 3, 0)])
        assert ws.pairs_for(topo) == [(1, 2, 0), (2, 3, 0)]

    def test_rekey_on_new_topology_resets(self):
        a, b = random_topo(6, 3), random_topo(6, 4)
        ws = WarmStart()
        ws.absorb(a, [(1, 2, 0)])
        assert ws.pairs_for(a) == [(1, 2, 0)]
        assert ws.pairs_for(b) == []  # rows are meaningless across topologies
        assert ws.pairs_for(b) == []  # and stay reset, not flip-flopping

    def test_structurally_identical_topologies_share_rows(self):
        """Rekeying is by structural hash, not object identity: a fresh
        object describing the same tree keeps the carried rows (the
        cross-request reuse the solve server depends on)."""
        a, b = random_topo(6, 5), random_topo(6, 5)
        assert a is not b
        ws = WarmStart()
        ws.absorb(a, [(1, 2, 0)])
        assert ws.pairs_for(b) == [(1, 2, 0)]

    def test_seeded_carries_key_and_dedups(self):
        from repro.topology import topology_hash

        topo = random_topo(6, 6)
        ws = WarmStart.seeded(topology_hash(topo), [(1, 2, 0), (2, 1, 0)])
        assert ws.pairs_for(topo) == [(1, 2, 0)]
        # A wrong key resets on first use, as with any foreign topology.
        ws2 = WarmStart.seeded("not-a-real-hash", [(1, 2, 0)])
        assert ws2.pairs_for(topo) == []


class TestWarmSweep:
    def test_warm_equals_cold_canonically(self):
        topo, bounds_list = sweep_instance()
        cold = solve_sweep(topo, bounds_list, warm=False, check_bounds=False)
        warm = solve_sweep(topo, bounds_list, warm=True, check_bounds=False)
        assert [canonical_cost(s.cost) for s in warm] == [
            canonical_cost(s.cost) for s in cold
        ]
        # Cold solves never carry rows; warm solves do after the first.
        assert all(s.stats.warm_rows == 0 for s in cold)
        assert any(s.stats.warm_rows > 0 for s in warm[1:])
        # Re-seeding shrinks the lazy loop's total work.
        assert sum(s.stats.rounds for s in warm) <= sum(
            s.stats.rounds for s in cold
        )

    @given(st.integers(4, 10), st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_warm_equals_cold_on_random_instances(self, m, seed):
        topo = random_topo(m, seed)
        r = radius_of(topo)
        bounds_list = [
            DelayBounds.uniform(m, lo * r, max(1.0, lo + 0.3) * r)
            for lo in (1.0, 0.6, 0.2)
        ]
        cold = solve_sweep(topo, bounds_list, warm=False, check_bounds=False)
        warm = solve_sweep(topo, bounds_list, warm=True, check_bounds=False)
        assert [canonical_cost(s.cost) for s in warm] == [
            canonical_cost(s.cost) for s in cold
        ]

    def test_explicit_warmstart_accumulates(self):
        topo, bounds_list = sweep_instance()
        ws = WarmStart()
        solve_sweep(topo, bounds_list[:3], warm=ws, check_bounds=False)
        assert ws.solves == 3
        carried = len(ws.pairs)
        sols = solve_sweep(topo, bounds_list[3:], warm=ws, check_bounds=False)
        assert ws.solves == 6
        assert sols[0].stats.warm_rows >= carried > 0


class TestSharding:
    def test_sweep_chunks_cover_contiguously(self):
        spans = sweep_chunks(10, 3)
        assert spans[0][0] == 0 and spans[-1][1] == 10
        for (_, b), (a2, _) in zip(spans, spans[1:]):
            assert b == a2
        assert sum(b - a for a, b in spans) == 10

    def test_sweep_chunks_clamp_and_validate(self):
        assert sweep_chunks(2, 5) == [(0, 1), (1, 2)]
        assert sweep_chunks(0, 3) == []
        with pytest.raises(ValueError):
            sweep_chunks(4, 0)

    def test_sharded_matches_serial_canonically(self):
        topo, bounds_list = sweep_instance()
        serial = solve_sweep(topo, bounds_list, check_bounds=False)
        inline = solve_sweep_sharded(
            topo, bounds_list, jobs=1, check_bounds=False
        )
        chunked = solve_sweep_sharded(
            topo, bounds_list, jobs=1, chunks=3, check_bounds=False
        )
        want = [canonical_cost(s.cost) for s in serial]
        assert [canonical_cost(s.cost) for s in inline] == want
        assert [canonical_cost(s.cost) for s in chunked] == want


def small_lp() -> LinearProgram:
    """min x + y  s.t.  x + y >= 2, y <= 5  -> optimum 2."""
    lp = LinearProgram()
    x = lp.add_variable("x", cost=1.0)
    y = lp.add_variable("y", cost=1.0, ub=5.0)
    lp.add_constraint({x: 1.0, y: 1.0}, Sense.GE, 2.0)
    return lp


def infeasible_lp() -> LinearProgram:
    lp = LinearProgram()
    x = lp.add_variable("x", cost=1.0)
    lp.add_constraint({x: 1.0}, Sense.GE, 2.0)
    lp.add_constraint({x: 1.0}, Sense.LE, 1.0)
    return lp


def slow_backend(delay=0.5):
    inner = default_solvers()["simplex"]

    def solve(lp):
        time.sleep(delay)
        return inner(lp)

    return solve


def boom_backend(lp):
    raise RuntimeError("injected race crash")


class TestRacing:
    def test_loser_is_cancelled(self):
        report = solve_lp_resilient(
            small_lp(),
            backends=("slow", "simplex"),
            solvers={"slow": slow_backend()},
            race="auto",
        )
        assert report.succeeded
        assert report.result.objective == pytest.approx(2.0)
        by_backend = {a.backend: a.outcome for a in report.attempts}
        assert by_backend["simplex"] == AttemptOutcome.OPTIMAL
        assert by_backend["slow"] == AttemptOutcome.CANCELLED

    def test_infeasible_is_definitive_in_race(self):
        report = solve_lp_resilient(infeasible_lp(), race="auto")
        assert report.succeeded
        assert report.result.status is LpStatus.INFEASIBLE

    def test_single_backend_chain_falls_back_to_sequential(self):
        report = solve_lp_resilient(
            small_lp(), backends=("simplex",), race="auto"
        )
        assert report.succeeded
        assert [a.backend for a in report.attempts] == ["simplex"]
        assert all(
            a.outcome != AttemptOutcome.CANCELLED for a in report.attempts
        )

    def test_all_contenders_crash(self):
        with pytest.raises(AllBackendsFailedError):
            solve_lp_resilient(
                small_lp(),
                backends=("boom1", "boom2"),
                solvers={"boom1": boom_backend, "boom2": boom_backend},
                race="auto",
            )
        report = solve_lp_resilient(
            small_lp(),
            backends=("boom1", "boom2"),
            solvers={"boom1": boom_backend, "boom2": boom_backend},
            race="auto",
            raise_on_failure=False,
        )
        assert report.result is None
        assert {a.outcome for a in report.attempts} == {
            AttemptOutcome.EXCEPTION
        }

    def test_deadline_with_no_winner(self):
        report = solve_lp_resilient(
            small_lp(),
            backends=("slow1", "slow2"),
            solvers={"slow1": slow_backend(), "slow2": slow_backend()},
            race="auto",
            timeout=0.05,
            raise_on_failure=False,
        )
        assert report.result is None
        assert {a.outcome for a in report.attempts} == {AttemptOutcome.TIMEOUT}

    def test_invalid_race_mode_rejected(self):
        with pytest.raises(ValueError):
            solve_lp_resilient(small_lp(), race="always")
        topo, bounds_list = sweep_instance(8)
        with pytest.raises(ValueError):
            solve_lubt(topo, bounds_list[0], race="bogus")

    def test_raced_lubt_matches_sequential(self):
        topo, bounds_list = sweep_instance(16)
        bounds = bounds_list[0]
        seq = solve_lubt(topo, bounds, check_bounds=False)
        raced = solve_lubt(topo, bounds, check_bounds=False, race="auto")
        assert canonical_cost(raced.cost) == canonical_cost(seq.cost)
        assert raced.solve_reports  # race implies resilient reporting
        for rep in raced.solve_reports:
            assert len(rep.attempts) >= 2  # both contenders recorded
