"""Incremental CSR export and the vectorized Steiner row builder.

The hot-path engine caches ``to_arrays()`` output and folds only rows
appended since the last export; these tests pin the invariant that makes
that safe: the incremental export is always equal to a from-scratch
(``cache=False``) export, across any interleaving of ``add_constraint``,
``add_range_constraint``, and bulk ``add_rows`` calls.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ebf.constraints import all_sink_pairs, steiner_constraint_rows
from repro.ebf.formulation import add_steiner_rows, build_ebf_lp
from repro.ebf import DelayBounds, steiner_row_matrix
from repro.geometry import Point
from repro.lp import LinearProgram, Sense
from repro.topology import nearest_neighbor_topology


def _assert_exports_equal(lp: LinearProgram) -> None:
    inc = lp.to_arrays()
    fresh = lp.to_arrays(cache=False)
    for got, want in zip(inc, fresh):
        if got is None or want is None:
            assert got is None and want is None
            continue
        if hasattr(got, "toarray"):
            got, want = got.toarray(), want.toarray()
        np.testing.assert_array_equal(np.asarray(got), np.asarray(want))


def random_topo(m, seed):
    rng = np.random.default_rng(seed)
    pts = [Point(float(x), float(y)) for x, y in rng.integers(0, 100, (m, 2))]
    return nearest_neighbor_topology(pts)


_SENSES = st.sampled_from([Sense.LE, Sense.GE, Sense.EQ])


@st.composite
def _ops(draw):
    """A short program of row-appending operations against a small LP."""
    n_vars = draw(st.integers(2, 6))
    steps = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["row", "bulk", "range"]),
                st.integers(0, 10**6),
            ),
            min_size=1,
            max_size=8,
        )
    )
    return n_vars, steps


@given(_ops())
@settings(max_examples=60, deadline=None)
def test_incremental_export_matches_fresh(ops):
    n_vars, steps = ops
    lp = LinearProgram()
    lp.add_variables(n_vars, prefix="x", cost=1.0)
    for kind, seed in steps:
        rng = np.random.default_rng(seed)
        if kind == "row":
            k = rng.integers(1, n_vars + 1)
            cols = rng.choice(n_vars, size=k, replace=False)
            lp.add_constraint(
                [(int(j), float(c)) for j, c in zip(cols, rng.uniform(-3, 3, k))],
                Sense(rng.choice(["<=", ">=", "=="])),
                float(rng.uniform(-5, 5)),
            )
        elif kind == "bulk":
            rows = int(rng.integers(1, 4))
            lens = rng.integers(1, n_vars + 1, rows)
            indptr = np.concatenate([[0], np.cumsum(lens)])
            cols = np.concatenate(
                [rng.choice(n_vars, size=l, replace=False) for l in lens]
            )
            lp.add_rows(
                rng.uniform(-2, 2, indptr[-1]),
                cols,
                indptr,
                Sense(rng.choice(["<=", ">=", "=="])),
                rng.uniform(-4, 4, rows),
            )
        else:
            lo, hi = sorted(rng.uniform(-5, 5, 2))
            lp.add_range_constraint(
                [(0, 1.0), (n_vars - 1, 0.5)], float(lo), float(hi)
            )
        # Export (and cache) after every step: the next step must fold
        # onto the cache, not invalidate correctness.
        _assert_exports_equal(lp)


def test_export_cache_reused_when_unchanged():
    lp = LinearProgram()
    lp.add_variables(3, prefix="x", cost=1.0)
    lp.add_constraint([(0, 1.0), (1, 2.0)], Sense.GE, 1.0)
    first = lp.to_arrays()
    again = lp.to_arrays()
    assert first[1] is again[1]  # same a_ub object: no rebuild


def test_add_rows_validation():
    lp = LinearProgram()
    lp.add_variables(3, prefix="x")
    with pytest.raises(ValueError):
        lp.add_rows([1.0], [0], [0, 2], Sense.GE, [1.0])  # indptr end != nnz
    with pytest.raises(ValueError):
        lp.add_rows([1.0], [7], [0, 1], Sense.GE, [1.0])  # column out of range
    with pytest.raises(ValueError):
        lp.add_rows([1.0], [0], [0, 1], Sense.GE, [1.0, 2.0])  # rhs length


class TestVectorizedSteinerRows:
    @pytest.mark.parametrize("m,seed", [(5, 0), (9, 3), (16, 11), (24, 5)])
    def test_matrix_matches_legacy_rows(self, m, seed):
        topo = random_topo(m, seed)
        pairs = list(all_sink_pairs(topo))
        block, dist = steiner_row_matrix(topo, pairs)
        legacy = steiner_constraint_rows(topo, pairs)
        assert block.shape == (len(pairs), topo.num_nodes)
        for r, (_i, _j, edges, rhs) in enumerate(legacy):
            dense = np.zeros(topo.num_nodes)
            dense[list(edges)] = 1.0
            np.testing.assert_array_equal(block.getrow(r).toarray()[0], dense)
            assert dist[r] == pytest.approx(rhs)

    @pytest.mark.parametrize("m,seed", [(8, 2), (14, 7)])
    def test_add_steiner_rows_appends_exact_rows(self, m, seed):
        topo = random_topo(m, seed)
        bounds = DelayBounds.uniform(m, 0.0, np.inf)
        pairs = list(all_sink_pairs(topo))
        lp_lazy = build_ebf_lp(topo, bounds, pairs=pairs[: len(pairs) // 2])
        add_steiner_rows(lp_lazy, topo, pairs[len(pairs) // 2 :])
        lp_full = build_ebf_lp(topo, bounds, pairs=pairs)
        assert lp_lazy.num_constraints == lp_full.num_constraints
        _assert_exports_equal(lp_lazy)
        a = lp_lazy.to_arrays(cache=False)
        b = lp_full.to_arrays(cache=False)
        np.testing.assert_array_equal(a[1].toarray(), b[1].toarray())
        np.testing.assert_array_equal(a[2], b[2])
