"""Tests for the exact zero-skew Elmore tree (Tsay [4])."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import elmore_zero_skew_tree, zero_skew_tree
from repro.baselines.elmore_zst import _balance, _elongated_length
from repro.delay import ElmoreParameters, sink_delays_elmore
from repro.ebf import DelayBounds, solve_lubt_elmore
from repro.embedding import embed_tree
from repro.geometry import Point
from repro.lp import InfeasibleError
from repro.topology import chain_topology, nearest_neighbor_topology

PARAMS = ElmoreParameters(
    wire_resistance=0.2, wire_capacitance=0.1, default_sink_cap=1.0
)


def random_sinks(m, seed, span=40):
    rng = np.random.default_rng(seed)
    return [Point(float(x), float(y)) for x, y in rng.integers(0, span, (m, 2))]


class TestBalanceFormula:
    def test_symmetric_merge(self):
        """Equal delays and caps: the split is the midpoint."""
        l_a, l_b = _balance(0.0, 1.0, 0.0, 1.0, 10.0, 0.2, 0.1)
        assert l_a == pytest.approx(5.0)
        assert l_b == pytest.approx(5.0)

    def test_heavier_cap_gets_less_wire(self):
        """A heavier downstream load slows its own wire more, so the tap
        shifts toward the heavy side (less wire on it)."""
        l_a, l_b = _balance(0.0, 5.0, 0.0, 1.0, 10.0, 0.2, 0.1)
        assert l_a + l_b == pytest.approx(10.0)
        assert l_a < l_b

    def test_balances_delays_exactly(self):
        rw, cw = 0.2, 0.1
        t_a, c_a, t_b, c_b, d = 3.0, 2.0, 1.0, 0.5, 8.0
        l_a, l_b = _balance(t_a, c_a, t_b, c_b, d, rw, cw)
        da = t_a + rw * l_a * (cw * l_a / 2 + c_a)
        db = t_b + rw * l_b * (cw * l_b / 2 + c_b)
        assert da == pytest.approx(db)

    def test_elongation_case(self):
        """Large delay mismatch: faster side elongates past the span."""
        rw, cw = 0.2, 0.1
        l_a, l_b = _balance(100.0, 1.0, 0.0, 1.0, 2.0, rw, cw)
        assert l_a == 0.0
        assert l_b > 2.0
        db = rw * l_b * (cw * l_b / 2 + 1.0)
        assert db == pytest.approx(100.0)

    def test_elongated_length_roots(self):
        rw, cw, c = 0.2, 0.1, 1.5
        for dt in (0.5, 3.0, 50.0):
            ell = _elongated_length(dt, c, rw, cw)
            assert rw * ell * (cw * ell / 2 + c) == pytest.approx(dt)
        assert _elongated_length(0.0, c, rw, cw) == 0.0

    def test_zero_wire_cap_linearizes(self):
        ell = _elongated_length(4.0, 2.0, 0.5, 0.0)
        assert 0.5 * ell * 2.0 == pytest.approx(4.0)


class TestElmoreZst:
    @given(st.integers(1, 14), st.integers(0, 500), st.booleans())
    @settings(max_examples=50, deadline=None)
    def test_zero_skew_property(self, m, seed, fixed):
        sinks = random_sinks(m, seed)
        src = Point(20.0, 20.0) if fixed else None
        tree = elmore_zero_skew_tree(sinks, PARAMS, src)
        assert tree.skew == pytest.approx(0.0, abs=1e-6 * max(1.0, tree.longest_delay))
        assert np.all(tree.edge_lengths >= -1e-9)

    @given(st.integers(2, 12), st.integers(0, 300))
    @settings(max_examples=30, deadline=None)
    def test_embeddable(self, m, seed):
        sinks = random_sinks(m, seed)
        tree = elmore_zero_skew_tree(sinks, PARAMS, Point(20, 20))
        embedded = embed_tree(tree.topology, tree.edge_lengths)
        assert embedded.cost == pytest.approx(tree.cost)

    def test_uneven_loads_break_linear_zst(self):
        """A linear-delay ZST evaluated under Elmore has skew; the
        Elmore-exact construction does not."""
        sinks = random_sinks(10, 42)
        src = Point(20.0, 20.0)
        params = ElmoreParameters(
            wire_resistance=0.2,
            wire_capacitance=0.1,
            sink_caps={i: (5.0 if i % 3 == 0 else 0.2) for i in range(1, 11)},
        )
        linear = zero_skew_tree(sinks, src)
        d_linear = sink_delays_elmore(linear.topology, linear.edge_lengths, params)
        elmore = elmore_zero_skew_tree(sinks, params, src)
        assert float(d_linear.max() - d_linear.min()) > 100 * elmore.skew

    def test_interior_sink_rejected(self):
        topo = chain_topology([Point(1, 0), Point(2, 0)], Point(0, 0))
        with pytest.raises(InfeasibleError):
            elmore_zero_skew_tree(
                [Point(1, 0), Point(2, 0)], PARAMS, Point(0, 0), topology=topo
            )

    def test_topology_mismatch_rejected(self):
        topo = nearest_neighbor_topology([Point(0, 0), Point(5, 5)])
        with pytest.raises(ValueError):
            elmore_zero_skew_tree([Point(0, 0)], PARAMS, topology=topo)

    def test_single_sink_fixed_source(self):
        tree = elmore_zero_skew_tree([Point(3, 4)], PARAMS, Point(0, 0))
        assert tree.cost == pytest.approx(7.0)

    def test_coincident_sinks_merge_cleanly(self):
        """Coincident sinks both see delay 0 from the tap, so the merge
        needs no wire at all, whatever their loads."""
        params = ElmoreParameters(
            wire_resistance=0.2, wire_capacitance=0.1,
            sink_caps={1: 10.0, 2: 0.1},
        )
        tree = elmore_zero_skew_tree(
            [Point(5, 5), Point(5, 5)], params, Point(0, 0)
        )
        assert tree.skew == pytest.approx(0.0, abs=1e-9)
        assert tree.edge_lengths[1] == 0.0
        assert tree.edge_lengths[2] == 0.0

    def test_unequal_subtree_caps_shift_the_stem_tap(self):
        """A heavy pair and a light pair at symmetric positions: the
        top merge must put LESS wire on the heavy (slower-per-unit)
        side for exact zero Elmore skew."""
        params = ElmoreParameters(
            wire_resistance=0.2, wire_capacitance=0.1,
            sink_caps={1: 8.0, 2: 8.0, 3: 0.1, 4: 0.1},
        )
        sinks = [Point(0, 0), Point(0, 2), Point(20, 0), Point(20, 2)]
        tree = elmore_zero_skew_tree(sinks, params, Point(10, 1))
        assert tree.skew == pytest.approx(
            0.0, abs=1e-9 * max(1.0, tree.longest_delay)
        )
        # Heavy pair under one child of the top merge, light under the
        # other; the wire toward the heavy side must be shorter.
        topo = tree.topology
        top = topo.children(0)[0]
        a, b = topo.children(top)
        heavy = a if 1 in topo.subtree_sinks(a) else b
        light = b if heavy == a else a
        assert tree.edge_lengths[heavy] < tree.edge_lengths[light]


class TestAgainstElmoreEbf:
    def test_ebf_matches_zst_cost_on_same_topology(self):
        """Elmore-EBF with l = u = t* should cost no more than the DME
        construction (EBF optimizes; DME is greedy-but-balanced)."""
        sinks = random_sinks(6, 9, span=20)
        src = Point(10.0, 10.0)
        zst = elmore_zero_skew_tree(sinks, PARAMS, src)
        target = zst.longest_delay
        sol = solve_lubt_elmore(
            zst.topology,
            DelayBounds.uniform(6, target * 0.999, target * 1.001),
            PARAMS,
            x0=zst.edge_lengths,
        )
        assert sol.cost <= zst.cost * 1.01
