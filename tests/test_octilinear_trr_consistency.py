"""Cross-validation: Octilinear regions restricted to the TRR subclass
must agree with the dedicated TRR implementation operation-by-operation.

TRRs are octilinear regions with vacuous x/y bounds, so every TRR-level
result (intersection emptiness, expansion membership, distances) has an
octilinear counterpart.  Any disagreement means one of the two geometry
kernels is wrong.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Octilinear, Point, TRR

coords = st.floats(min_value=-100, max_value=100, allow_nan=False)
radii = st.floats(min_value=0, max_value=60, allow_nan=False)
points = st.builds(Point, coords, coords)


@st.composite
def trr_pairs(draw):
    """A TRR and its octilinear twin, built from the same data."""
    pts = draw(st.lists(points, min_size=1, max_size=3))
    r = draw(radii)
    trr = TRR.from_points(pts).expanded(r)
    octo = Octilinear.from_bounds(
        ulo=trr.ulo, uhi=trr.uhi, vlo=trr.vlo, vhi=trr.vhi
    )
    return trr, octo


class TestConsistency:
    @given(trr_pairs(), points)
    @settings(max_examples=150, deadline=None)
    def test_membership_agrees(self, pair, p):
        trr, octo = pair
        assert trr.contains(p, tol=1e-7) == octo.contains(p, tol=1e-7)

    @given(trr_pairs(), trr_pairs())
    @settings(max_examples=150, deadline=None)
    def test_distance_agrees(self, pa, pb):
        trr_a, oct_a = pa
        trr_b, oct_b = pb
        assert trr_a.distance_to(trr_b) == pytest.approx(
            oct_a.distance_to(oct_b), abs=1e-6
        )

    @given(trr_pairs(), trr_pairs())
    @settings(max_examples=150, deadline=None)
    def test_intersection_emptiness_agrees(self, pa, pb):
        trr_a, oct_a = pa
        trr_b, oct_b = pb
        t_empty = trr_a.intersect(trr_b).is_empty()
        o_empty = oct_a.intersect(oct_b).is_empty()
        if t_empty != o_empty:
            # Allow boundary-epsilon disagreement only.
            d = trr_a.distance_to(trr_b)
            assert math.isclose(d, 0.0, abs_tol=1e-6)
        else:
            assert t_empty == o_empty

    @given(trr_pairs(), radii, points)
    @settings(max_examples=120, deadline=None)
    def test_expansion_agrees(self, pair, r, p):
        trr, octo = pair
        te = trr.expanded(r)
        oe = octo.expanded(r)
        assert te.contains(p, tol=1e-6) == oe.contains(p, tol=1e-6)

    @given(trr_pairs(), points)
    @settings(max_examples=120, deadline=None)
    def test_closest_point_distance_agrees(self, pair, p):
        trr, octo = pair
        assert trr.distance_to_point(p) == pytest.approx(
            octo.distance_to_point(p), abs=1e-6
        )


class TestSubclassEmbedding:
    def test_l1_ball_equals_square_trr(self):
        ball_t = TRR.square(Point(3, 4), 5.0)
        ball_o = Octilinear.l1_ball(Point(3, 4), 5.0)
        for probe in (
            Point(8, 4), Point(3, 9), Point(6, 6), Point(7, 6), Point(-2, 4)
        ):
            assert ball_t.contains(probe, tol=1e-9) == ball_o.contains(
                probe, tol=1e-9
            )

    def test_point_regions(self):
        p = Point(1, 2)
        assert TRR.from_point(p).is_point()
        assert Octilinear.from_point(p).is_point()
