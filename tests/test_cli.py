"""Tests for the ``lubt`` CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_bench_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--bench", "bogus"])

    def test_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.bench == "prim1"
        assert args.lower == 0.8
        assert args.upper == 1.2


class TestCommands:
    def test_benchmarks_listing(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        for name in ("prim1", "prim2", "r1", "r3"):
            assert name in out

    def test_solve(self, capsys):
        assert main(["solve", "--bench", "r1", "--sinks", "12"]) == 0
        out = capsys.readouterr().out
        assert "tree cost" in out
        assert "backend" in out

    def test_table1(self, capsys):
        assert main(["table1", "--bench", "prim1", "--sinks", "16"]) == 0
        assert "LUBT cost" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert (
            main(["table2", "--bench", "prim1", "--sinks", "16", "--skew", "0.5"])
            == 0
        )
        assert "*" in capsys.readouterr().out

    def test_table3(self, capsys):
        assert main(["table3", "--bench", "r1", "--sinks", "14"]) == 0
        assert "lower bound" in capsys.readouterr().out

    def test_fig8_with_plot(self, capsys):
        assert main(["fig8", "--bench", "prim2", "--sinks", "14", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "#" in out

    def test_solve_from_file(self, capsys, tmp_path):
        f = tmp_path / "net.pins"
        f.write_text("source 5 5\n0 0\n10 0\n10 10\n")
        assert main(["solve", "--file", str(f), "--upper", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "net.pins" in out

    def test_sensitivity(self, capsys):
        assert main(["sensitivity", "--bench", "prim1", "--sinks", "10"]) == 0
        out = capsys.readouterr().out
        assert "shadow prices" in out
        assert "d cost/d l" in out

    def test_zeroskew(self, capsys):
        assert main(["zeroskew", "--bench", "r1", "--sinks", "12"]) == 0
        out = capsys.readouterr().out
        assert "common delay" in out

    def test_svg_export(self, capsys, tmp_path, monkeypatch):
        out_file = tmp_path / "t.svg"
        assert (
            main(
                [
                    "svg",
                    "--bench",
                    "prim1",
                    "--sinks",
                    "10",
                    "--output",
                    str(out_file),
                ]
            )
            == 0
        )
        assert out_file.read_text().startswith("<svg")
        assert "wrote" in capsys.readouterr().out
