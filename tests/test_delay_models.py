"""Tests for the linear and Elmore delay models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delay import (
    ElmoreParameters,
    delay_spread,
    delay_to_node_linear,
    downstream_capacitance,
    node_delays_elmore,
    node_delays_linear,
    sink_delays_elmore,
    sink_delays_linear,
    skew,
    tree_cost,
)
from repro.geometry import Point
from repro.topology import Topology, nearest_neighbor_topology


@pytest.fixture
def small_tree():
    """Fixed root 0 -> steiner 3 -> sinks 1, 2."""
    topo = Topology(
        [None, 3, 3, 0], 2, [Point(0, 0), Point(4, 0)], source_location=Point(2, 3)
    )
    e = np.array([0.0, 2.0, 3.0, 1.5])
    return topo, e


class TestLinear:
    def test_single_sink_delay(self, small_tree):
        topo, e = small_tree
        assert delay_to_node_linear(topo, e, 1) == pytest.approx(3.5)
        assert delay_to_node_linear(topo, e, 2) == pytest.approx(4.5)
        assert delay_to_node_linear(topo, e, 0) == 0.0

    def test_sink_delays_vector(self, small_tree):
        topo, e = small_tree
        d = sink_delays_linear(topo, e)
        assert d == pytest.approx([3.5, 4.5])

    def test_node_delays_matches_scalar(self, small_tree):
        topo, e = small_tree
        d = node_delays_linear(topo, e)
        for i in range(topo.num_nodes):
            assert d[i] == pytest.approx(delay_to_node_linear(topo, e, i))

    def test_tree_cost(self, small_tree):
        topo, e = small_tree
        assert tree_cost(topo, e) == pytest.approx(6.5)

    def test_weighted_tree_cost(self, small_tree):
        topo, e = small_tree
        w = np.array([0.0, 2.0, 1.0, 1.0])
        assert tree_cost(topo, e, weights=w) == pytest.approx(2 * 2 + 3 + 1.5)

    def test_weight_shape_mismatch(self, small_tree):
        topo, e = small_tree
        with pytest.raises(ValueError):
            tree_cost(topo, e, weights=np.ones(2))

    def test_edge_vector_shape_checked(self, small_tree):
        topo, _ = small_tree
        with pytest.raises(ValueError):
            sink_delays_linear(topo, np.ones(3))

    def test_skew_and_spread(self):
        d = np.array([1.0, 3.0, 2.0])
        assert skew(d) == 2.0
        assert delay_spread(d) == (1.0, 3.0)
        assert skew(np.array([])) == 0.0
        assert delay_spread(np.array([])) == (0.0, 0.0)

    @given(st.integers(min_value=2, max_value=20), st.integers(0, 9999))
    @settings(max_examples=40, deadline=None)
    def test_delays_nonnegative_and_additive(self, m, seed):
        rng = np.random.default_rng(seed)
        pts = [Point(float(x), float(y)) for x, y in rng.integers(0, 100, (m, 2))]
        topo = nearest_neighbor_topology(pts, source=Point(50, 50))
        e = np.abs(rng.normal(size=topo.num_nodes))
        e[0] = 0.0
        d = node_delays_linear(topo, e)
        assert np.all(d >= 0)
        # Child delay = parent delay + own edge.
        for i in range(1, topo.num_nodes):
            assert d[i] == pytest.approx(d[topo.parent(i)] + e[i])


class TestElmore:
    def test_parameters_validation(self):
        with pytest.raises(ValueError):
            ElmoreParameters(wire_resistance=0.0)
        with pytest.raises(ValueError):
            ElmoreParameters(wire_capacitance=-1.0)

    def test_sink_cap_lookup(self):
        p = ElmoreParameters(default_sink_cap=0.5, sink_caps={2: 1.5})
        assert p.sink_cap(1) == 0.5
        assert p.sink_cap(2) == 1.5

    def test_downstream_capacitance(self, small_tree):
        topo, e = small_tree
        params = ElmoreParameters(sink_caps={1: 0.1, 2: 0.2})
        cap = downstream_capacitance(topo, e, params)
        # Leaves: just their load.
        assert cap[1] == pytest.approx(0.1)
        assert cap[2] == pytest.approx(0.2)
        # Steiner 3: child subtree caps + child wire caps.
        assert cap[3] == pytest.approx(0.1 + 0.2 + 2.0 + 3.0)
        # Root: steiner subtree + steiner edge wire.
        assert cap[0] == pytest.approx(cap[3] + 1.5)

    def test_single_wire_formula(self):
        """One sink, one wire: d = r*e*(c*e/2 + C_sink)."""
        topo = Topology([None, 0], 1, [Point(5, 0)], Point(0, 0))
        params = ElmoreParameters(
            wire_resistance=2.0, wire_capacitance=3.0, sink_caps={1: 0.5}
        )
        e = np.array([0.0, 5.0])
        d = sink_delays_elmore(topo, e, params)
        assert d[0] == pytest.approx(2.0 * 5.0 * (3.0 * 5.0 / 2 + 0.5))

    def test_elmore_vs_hand_computation(self, small_tree):
        topo, e = small_tree
        params = ElmoreParameters(
            wire_resistance=1.0, wire_capacitance=1.0, sink_caps={1: 0.0, 2: 0.0}
        )
        cap = downstream_capacitance(topo, e, params)
        d = node_delays_elmore(topo, e, params)
        d3 = 1.0 * 1.5 * (1.5 / 2 + cap[3])
        assert d[3] == pytest.approx(d3)
        assert d[1] == pytest.approx(d3 + 2.0 * (2.0 / 2 + 0.0))
        assert d[2] == pytest.approx(d3 + 3.0 * (3.0 / 2 + 0.0))

    def test_elmore_monotone_in_downstream_cap(self, small_tree):
        """Raising a sink load increases delays through shared edges."""
        topo, e = small_tree
        light = ElmoreParameters(sink_caps={1: 0.0, 2: 0.0})
        heavy = ElmoreParameters(sink_caps={1: 5.0, 2: 0.0})
        d_light = sink_delays_elmore(topo, e, light)
        d_heavy = sink_delays_elmore(topo, e, heavy)
        assert d_heavy[0] > d_light[0]
        assert d_heavy[1] > d_light[1]  # shared edge e_3 got slower

    def test_zero_lengths_zero_delay(self, small_tree):
        topo, _ = small_tree
        params = ElmoreParameters(sink_caps={1: 1.0, 2: 1.0})
        d = sink_delays_elmore(topo, np.zeros(topo.num_nodes), params)
        assert d == pytest.approx([0.0, 0.0])

    @given(st.integers(min_value=2, max_value=15), st.integers(0, 9999))
    @settings(max_examples=40, deadline=None)
    def test_elmore_dominates_when_scaled(self, m, seed):
        """Elmore delay is monotone: growing any edge never reduces any
        delay (all coefficients are non-negative)."""
        rng = np.random.default_rng(seed)
        pts = [Point(float(x), float(y)) for x, y in rng.integers(0, 50, (m, 2))]
        topo = nearest_neighbor_topology(pts, source=Point(0, 0))
        params = ElmoreParameters(default_sink_cap=0.3)
        e = np.abs(rng.normal(size=topo.num_nodes)) + 0.1
        e[0] = 0.0
        d0 = sink_delays_elmore(topo, e, params)
        grown = e.copy()
        j = int(rng.integers(1, topo.num_nodes))
        grown[j] += 1.0
        d1 = sink_delays_elmore(topo, grown, params)
        assert np.all(d1 >= d0 - 1e-12)
