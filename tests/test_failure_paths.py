"""Failure-injection tests: wrong inputs must fail loudly and precisely.

A production library's error paths matter as much as its happy paths —
each test here pins the *specific* exception and message family for a
class of misuse.
"""

import numpy as np
import pytest

from repro.ebf import BoundsError, DelayBounds, solve_lubt
from repro.ebf.bounds import radius_of
from repro.embedding import EmbeddingError, embed_tree, feasible_regions
from repro.geometry import Point
from repro.lp import LinearProgram, LpStatus, Sense
from repro.lp.simplex import solve_simplex
from repro.topology import Topology, nearest_neighbor_topology


def topo6(seed=0):
    rng = np.random.default_rng(seed)
    pts = [Point(float(x), float(y)) for x, y in rng.integers(0, 50, (6, 2))]
    return nearest_neighbor_topology(pts, Point(25.0, 25.0))


class TestSolverMisuse:
    def test_bounds_wrong_sink_count(self):
        topo = topo6()
        with pytest.raises(Exception):
            solve_lubt(topo, DelayBounds.uniform(5, 0, 1e9))

    def test_eq3_violation_reported_via_check(self):
        topo = topo6()
        with pytest.raises(BoundsError, match="Eq. 3"):
            solve_lubt(topo, DelayBounds.uniform(6, 0.0, 1.0))

    def test_weights_wrong_shape(self):
        topo = topo6()
        r = radius_of(topo)
        with pytest.raises(ValueError, match="weights"):
            solve_lubt(
                topo,
                DelayBounds.uniform(6, 0, 2 * r),
                weights=np.ones(3),
            )

    def test_lazy_round_exhaustion(self):
        """Starving the lazy loop (batch=1, max_rounds=2) on an instance
        known to need many rounds raises the non-convergence error."""
        rng = np.random.default_rng(2)
        pts = [
            Point(float(x), float(y)) for x, y in rng.integers(0, 50, (24, 2))
        ]
        topo = nearest_neighbor_topology(pts, Point(25.0, 25.0))
        r = radius_of(topo)
        with pytest.raises(RuntimeError, match="converge"):
            solve_lubt(
                topo,
                DelayBounds.uniform(24, 0, 2 * r),
                mode="lazy",
                batch=1,
                max_rounds=2,
            )

    def test_zero_edge_out_of_range(self):
        topo = topo6()
        r = radius_of(topo)
        with pytest.raises(ValueError):
            solve_lubt(
                topo,
                DelayBounds.uniform(6, 0, 2 * r),
                zero_edges=(0,),  # edge ids start at 1
            )


class TestEmbeddingMisuse:
    def test_lengths_violating_constraints(self):
        topo = topo6()
        bad = np.zeros(topo.num_nodes)
        with pytest.raises(EmbeddingError, match="Steiner constraint"):
            embed_tree(topo, bad)

    def test_negative_lengths(self):
        topo = topo6()
        e = np.full(topo.num_nodes, 50.0)
        e[2] = -3.0
        with pytest.raises(EmbeddingError, match="negative"):
            feasible_regions(topo, e)

    def test_partial_violation_named_node(self):
        """The error message names the node whose region collapsed."""
        topo = nearest_neighbor_topology(
            [Point(0, 0), Point(100, 0)], Point(50, 50)
        )
        e = np.full(topo.num_nodes, 1.0)  # way too short to span 100
        with pytest.raises(EmbeddingError, match=r"node \d+"):
            feasible_regions(topo, e)


class TestSimplexLimits:
    def test_iteration_limit_reported_as_error(self):
        lp = LinearProgram()
        xs = [lp.add_variable(cost=1.0) for _ in range(6)]
        for k in range(6):
            lp.add_constraint(
                {xs[k]: 1.0, xs[(k + 1) % 6]: 0.5}, Sense.GE, float(k + 1)
            )
        res = solve_simplex(lp, max_iterations=1)
        assert res.status in (LpStatus.ERROR, LpStatus.OPTIMAL)

    def test_infinite_lower_bound_rejected(self):
        lp = LinearProgram()
        lp.add_variable(cost=1.0, lb=-np.inf)
        with pytest.raises(ValueError, match="finite lower bounds"):
            solve_simplex(lp)


class TestTopologyMisuse:
    def test_parents_too_short(self):
        with pytest.raises(ValueError):
            Topology([None], 1, [Point(0, 0)])

    def test_lca_on_foreign_ids(self):
        topo = topo6()
        with pytest.raises(IndexError):
            topo.lca(0, topo.num_nodes + 5)
