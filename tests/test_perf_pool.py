"""The process-pool batch runner: ordering, equivalence, and hard kills."""

import os
import time

import numpy as np
import pytest

from repro.data import load_benchmark
from repro.ebf import DelayBounds
from repro.experiments import render_table3, run_table3
from repro.geometry import manhattan_radius_from
from repro.perf import (
    BatchScheduler,
    PoolCrashLoopError,
    SolveTask,
    TaskError,
    WorkerPool,
    map_many,
    run_many,
    solve_many,
)
from repro.topology import nearest_neighbor_topology


def _square(x):
    return x * x


def _fail(x):
    raise ValueError(f"bad input {x}")


def _sleep_forever(_x):
    time.sleep(300)


def _die_without_payload(code):
    # os._exit skips atexit/finally — the parent sees a bare EOF on the
    # pipe, exactly like an OOM kill or interpreter abort.
    os._exit(code)


def _pid(_x=None):
    return os.getpid()


def _crash_or_square(x):
    if x == 1:
        os._exit(1)
    return x * x


class TestRunMany:
    def test_inline_path_matches_loop(self):
        outs = run_many(_square, [(i,) for i in range(6)], jobs=1)
        assert [o.unwrap() for o in outs] == [i * i for i in range(6)]
        assert [o.index for o in outs] == list(range(6))

    def test_parallel_preserves_order(self):
        outs = run_many(_square, [(i,) for i in range(9)], jobs=3)
        assert [o.unwrap() for o in outs] == [i * i for i in range(9)]

    def test_worker_exception_becomes_outcome(self):
        out = run_many(_fail, [(3,)], jobs=2)[0]
        assert not out.ok and not out.timed_out
        assert "bad input 3" in out.error
        with pytest.raises(TaskError):
            out.unwrap()

    def test_timeout_kills_worker(self):
        t0 = time.perf_counter()
        outs = run_many(_sleep_forever, [(0,), (1,)], jobs=2, timeout=0.5)
        wall = time.perf_counter() - t0
        assert all(o.timed_out and not o.ok for o in outs)
        assert all(o.elapsed >= 0.5 for o in outs)
        # Both 300s sleepers were killed, not waited out.
        assert wall < 30.0
        with pytest.raises(TaskError, match="timed out"):
            outs[0].unwrap()

    def test_mixed_fast_and_hung(self):
        outs = run_many(
            time.sleep, [(0.01,), (300,), (0.01,)], jobs=2, timeout=1.0
        )
        assert [o.timed_out for o in outs] == [False, True, False]
        assert outs[0].ok and outs[2].ok

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            run_many(_square, [(1,)], jobs=0)

    def test_worker_crash_is_distinguished_from_timeout(self):
        """A worker that dies without writing a payload (EOF on its
        pipe) must come back ``crashed``, not hang or leak EOFError."""
        outs = run_many(
            _die_without_payload, [(13,)], jobs=2, timeout=30.0
        )
        out = outs[0]
        assert not out.ok
        assert out.crashed and not out.timed_out
        assert "exit code 13" in out.error
        with pytest.raises(TaskError, match="crashed"):
            out.unwrap()

    def test_crash_among_healthy_tasks(self):
        outs = run_many(_crash_or_square, [(0,), (1,), (2,), (3,)], jobs=2)
        assert [o.ok for o in outs] == [True, False, True, True]
        assert outs[1].crashed
        assert [o.value for o in outs if o.ok] == [0, 4, 9]

    def test_map_many_serial_preserves_exception_type(self):
        with pytest.raises(ValueError, match="bad input"):
            map_many(_fail, [(1,)], jobs=1)


class TestSolveMany:
    @pytest.fixture(scope="class")
    def tasks(self):
        out = []
        for size in (12, 16, 20):
            bench = load_benchmark("prim2").scaled(size)
            sinks = list(bench.sinks)
            topo = nearest_neighbor_topology(sinks, bench.source)
            radius = manhattan_radius_from(bench.source, sinks)
            bounds = DelayBounds.uniform(size, 0.8 * radius, 1.2 * radius)
            out.append(SolveTask(topo, bounds, {"check_bounds": False}))
        return out

    def test_parallel_matches_serial_bitwise(self, tasks):
        serial = [o.unwrap() for o in solve_many(tasks, jobs=1)]
        pooled = [o.unwrap() for o in solve_many(tasks, jobs=2)]
        for s, p in zip(serial, pooled):
            assert s.cost == p.cost
            np.testing.assert_array_equal(s.edge_lengths, p.edge_lengths)
            np.testing.assert_array_equal(s.delays, p.delays)
            assert s.stats.rounds == p.stats.rounds
            assert s.stats.steiner_rows == p.stats.steiner_rows

    def test_infeasible_task_reports_not_crashes(self, tasks):
        bad = SolveTask(
            tasks[0].topo,
            DelayBounds.uniform(12, 0.0, 1e-9),
            {"check_bounds": False},
        )
        outs = solve_many([tasks[0], bad], jobs=2)
        assert outs[0].ok
        assert not outs[1].ok and "Infeasible" in outs[1].error


class TestWorkerPool:
    """The resident pool: reuse across submissions, crash/timeout
    replacement, and graceful shutdown."""

    def test_workers_are_reused(self):
        with WorkerPool(jobs=1) as pool:
            pids = {pool.submit(_pid).unwrap() for _ in range(5)}
        assert len(pids) == 1  # same resident process served every task
        assert pool.tasks_run == 5
        assert pool.workers_replaced == 0

    def test_ordered_run_many(self):
        with WorkerPool(jobs=3) as pool:
            outs = pool.run_many(_square, [(i,) for i in range(9)])
        assert [o.unwrap() for o in outs] == [i * i for i in range(9)]
        assert [o.index for o in outs] == list(range(9))

    def test_crash_replaces_worker(self):
        with WorkerPool(jobs=1) as pool:
            before = pool.submit(_pid).unwrap()
            out = pool.submit(_die_without_payload, (7,))
            assert not out.ok and out.crashed and not out.timed_out
            assert "exit code 7" in out.error
            after = pool.submit(_pid).unwrap()
        assert before != after  # crashed seat was refilled
        assert pool.workers_replaced == 1

    def test_timeout_kills_and_replaces(self):
        with WorkerPool(jobs=1) as pool:
            t0 = time.perf_counter()
            out = pool.submit(_sleep_forever, (0,), timeout=0.5)
            wall = time.perf_counter() - t0
            assert out.timed_out and not out.ok and not out.crashed
            assert wall < 30.0
            assert pool.submit(_square, (4,)).unwrap() == 16
        assert pool.workers_replaced == 1

    def test_worker_exception_keeps_worker(self):
        with WorkerPool(jobs=1) as pool:
            out = pool.submit(_fail, (3,))
            assert not out.ok and not out.crashed
            assert "bad input 3" in out.error
            assert pool.submit(_square, (3,)).unwrap() == 9
        assert pool.workers_replaced == 0

    def test_closed_pool_rejects(self):
        pool = WorkerPool(jobs=1)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit(_square, (1,))

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(jobs=0)


def _sleep_if_three(x):
    if x == 3:
        time.sleep(300)
    return x * 10


class TestSubmitChunk:
    """Chunked dispatch: many tasks per IPC message, per-item replies,
    and timeout kills scoped to the offending item only."""

    def test_chunk_runs_all_items_in_order(self):
        with WorkerPool(jobs=1) as pool:
            res = pool.submit_chunk(_square, [(i,) for i in range(6)])
        assert res.pending == ()
        assert [o.unwrap() for o in res.outcomes] == [i * i for i in range(6)]
        assert [o.index for o in res.outcomes] == list(range(6))

    def test_chunk_counts_as_reuse_not_one_task(self):
        with WorkerPool(jobs=1) as pool:
            pool.submit_chunk(_square, [(i,) for i in range(5)])
            stats = pool.stats()
        assert stats["tasks_run"] == 5
        # One fork served five tasks: four dispatches reused a warm seat.
        assert stats["pool_reuse"] == 4

    def test_item_exception_does_not_poison_the_chunk(self):
        with WorkerPool(jobs=1) as pool:
            res = pool.submit_chunk(_fail, [(1,)])
            assert not res.outcomes[0].ok
            assert "bad input 1" in res.outcomes[0].error
            # Same worker keeps serving — an exception is a payload,
            # not a crash.
            assert pool.submit(_square, (3,)).unwrap() == 9
        assert pool.workers_replaced == 0

    def test_timeout_is_scoped_to_the_offending_item(self):
        args = [(i,) for i in range(6)]  # item 3 hangs
        with WorkerPool(jobs=1) as pool:
            t0 = time.perf_counter()
            res = pool.submit_chunk(_sleep_if_three, args, timeout=0.5)
            wall = time.perf_counter() - t0
        assert wall < 30.0
        done = [o for o in res.outcomes if o is not None and o.ok]
        # Items 0-2 finished before the hang and keep their results...
        assert [o.unwrap() for o in done] == [0, 10, 20]
        # ...item 3 alone is the timeout...
        offender = res.outcomes[3]
        assert offender.timed_out and not offender.ok
        # ...and 4-5 come back as pending survivors, not casualties.
        assert res.pending == (4, 5)
        assert pool.workers_replaced == 1

    def test_streaming_callback_fires_per_item(self):
        seen = []
        with WorkerPool(jobs=1) as pool:
            pool.submit_chunk(
                _square,
                [(i,) for i in range(4)],
                on_item=lambda o: seen.append(o.index),
            )
        assert seen == [0, 1, 2, 3]  # one worker runs items in order

    def test_mid_chunk_crash_marks_offender_only(self):
        res_args = [(0,), (1,), (2,)]  # _crash_or_square dies on 1
        with WorkerPool(jobs=1) as pool:
            res = pool.submit_chunk(_crash_or_square, res_args)
            assert res.outcomes[0].unwrap() == 0
            assert res.outcomes[1].crashed
            assert res.pending == (2,)
            # The seat was refilled; the pool keeps serving.
            assert pool.submit(_square, (5,)).unwrap() == 25
        assert pool.workers_replaced == 1


class TestImapUnordered:
    def test_yields_every_result_with_original_index(self):
        with WorkerPool(jobs=2) as pool:
            got = sorted(
                (o.index, o.unwrap())
                for o in pool.imap_unordered(_square, [(i,) for i in range(8)])
            )
        assert got == [(i, i * i) for i in range(8)]

    def test_fast_tasks_stream_past_slow_ones(self):
        order = []
        with WorkerPool(jobs=2) as pool:
            for o in pool.imap_unordered(
                time.sleep, [(0.5,), (0.01,), (0.01,)]
            ):
                order.append(o.index)
        # The 0.5s sleeper lands last despite being submitted first.
        assert order[-1] == 0


class TestPoolStats:
    def test_reuse_counts_warm_dispatches(self):
        with WorkerPool(jobs=1) as pool:
            first = pool.stats()
            assert first["pool_reuse"] == 0
            for _ in range(4):
                pool.submit(_square, (2,))
            stats = pool.stats()
        assert stats["tasks_run"] == 4
        assert stats["pool_reuse"] == 3  # every dispatch after the first
        assert stats["workers_replaced"] == 0
        assert stats["jobs"] == 1

    def test_replacement_resets_the_seat_cold(self):
        with WorkerPool(jobs=1) as pool:
            pool.submit(_square, (2,))
            pool.submit(_die_without_payload, (7,))
            pool.submit(_square, (2,))  # fresh fork: not a reuse
            stats = pool.stats()
        assert stats["workers_replaced"] == 1
        assert stats["pool_reuse"] == 1  # only the second _square reused


class TestBatchScheduler:
    def test_run_returns_ordered_outcomes(self):
        with WorkerPool(jobs=2) as pool:
            sched = BatchScheduler(pool)
            outs = sched.run(_square, [(i,) for i in range(40)])
        assert [o.unwrap() for o in outs] == [i * i for i in range(40)]
        assert [o.index for o in outs] == list(range(40))

    def test_chunks_grow_from_ewma(self):
        with WorkerPool(jobs=1) as pool:
            sched = BatchScheduler(pool, chunk_seconds=0.5)
            sched.run(_square, [(i,) for i in range(64)])
            stats = sched.stats()
        # Fast tasks -> the EWMA drives chunks far beyond size-1 probes,
        # so 64 tasks take far fewer than 64 dispatches.
        assert stats["tasks_done"] == 64
        assert stats["chunks_dispatched"] < 32
        assert stats["pool_reuse"] >= 63 - stats["chunks_dispatched"]

    def test_timeout_survivors_are_resubmitted(self):
        with WorkerPool(jobs=1) as pool:
            sched = BatchScheduler(pool, chunk_seconds=5.0)
            outs = sched.run(
                _sleep_if_three, [(i,) for i in range(6)], timeout=1.0
            )
            stats = sched.stats()
        assert [o.ok for o in outs] == [True] * 3 + [False] + [True] * 2
        assert outs[3].timed_out
        # Items 4-5 were survivors of the killed chunk and re-ran.
        assert [o.unwrap() for o in outs if o.ok] == [0, 10, 20, 40, 50]
        assert stats["resubmitted"] >= 1

    def test_completion_callback_sees_every_task_once(self):
        seen = []
        with WorkerPool(jobs=2) as pool:
            BatchScheduler(pool).run(
                _square,
                [(i,) for i in range(20)],
                on_result=lambda o: seen.append(o.index),
            )
        assert sorted(seen) == list(range(20))


class TestExperimentJobs:
    def test_table3_parallel_identical(self):
        bench = load_benchmark("prim1").scaled(20)
        combos = ((0.9, 1.0), (0.5, 1.0), (0.0, 1.5))
        serial = run_table3(bench, combos=combos, jobs=1)
        pooled = run_table3(bench, combos=combos, jobs=2)
        assert serial == pooled
        assert render_table3(serial) == render_table3(pooled)

    @pytest.mark.skipif(
        os.environ.get("FULL", "") != "1",
        reason="spawn round-trip is slow; covered by fork elsewhere",
    )
    def test_spawn_start_method(self, tmp_path):
        outs = run_many(
            _square, [(i,) for i in range(3)], jobs=2, start_method="spawn"
        )
        assert [o.unwrap() for o in outs] == [0, 1, 4]


class TestCrashLoopCap:
    """A worker crash loop must become a typed error, not an unbounded
    fork storm — while isolated crashes keep being absorbed."""

    def test_consecutive_crashes_hit_the_cap(self):
        with WorkerPool(jobs=1, max_consecutive_crashes=3) as pool:
            for _ in range(2):
                out = pool.submit(_die_without_payload, (9,))
                assert out.crashed
            with pytest.raises(PoolCrashLoopError) as err:
                pool.submit(_die_without_payload, (9,))
            assert "3 times in a row" in str(err.value)
            assert "_die_without_payload" in str(err.value)
            # The seat was refilled before raising: the pool survives.
            assert pool.submit(_square, (5,)).unwrap() == 25
            assert pool.workers_replaced == 3

    def test_successes_reset_the_crash_streak(self):
        with WorkerPool(jobs=1, max_consecutive_crashes=2) as pool:
            for _ in range(3):
                assert pool.submit(_die_without_payload, (9,)).crashed
                assert pool.submit(_square, (2,)).unwrap() == 4
        assert pool.workers_replaced == 3  # never two in a row -> no raise

    def test_timeouts_do_not_count_toward_the_cap(self):
        with WorkerPool(jobs=1, max_consecutive_crashes=2) as pool:
            assert pool.submit(_die_without_payload, (9,)).crashed
            assert pool.submit(_sleep_forever, (0,), timeout=0.3).timed_out
            # A timeout broke the crash streak: one more crash is fine.
            assert pool.submit(_die_without_payload, (9,)).crashed
            assert pool.submit(_square, (3,)).unwrap() == 9

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(jobs=1, max_consecutive_crashes=0)


class TestWorkerProcesses:
    def test_lists_live_workers_busy_or_idle(self):
        with WorkerPool(jobs=2) as pool:
            procs = pool.worker_processes()
            assert len(procs) == 2
            assert all(p.is_alive() for p in procs)
            pids = {p.pid for p in procs}
            assert pool.submit(_pid).unwrap() in pids
        assert pool.worker_processes() == []  # close() emptied the set

    def test_killed_worker_is_replaced_in_the_listing(self):
        with WorkerPool(jobs=1) as pool:
            (victim,) = pool.worker_processes()
            victim.kill()
            out = pool.submit(_square, (4,))
            # The kill may land before or while the task runs; either
            # way the pool recovers and the listing shows a live seat.
            assert out.unwrap() == 16 if out.ok else out.crashed
            (survivor,) = pool.worker_processes()
            assert survivor.is_alive()
            assert pool.submit(_square, (6,)).unwrap() == 36
