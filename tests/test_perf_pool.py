"""The process-pool batch runner: ordering, equivalence, and hard kills."""

import os
import time

import numpy as np
import pytest

from repro.data import load_benchmark
from repro.ebf import DelayBounds
from repro.experiments import render_table3, run_table3
from repro.geometry import manhattan_radius_from
from repro.perf import (
    PoolCrashLoopError,
    SolveTask,
    TaskError,
    WorkerPool,
    map_many,
    run_many,
    solve_many,
)
from repro.topology import nearest_neighbor_topology


def _square(x):
    return x * x


def _fail(x):
    raise ValueError(f"bad input {x}")


def _sleep_forever(_x):
    time.sleep(300)


def _die_without_payload(code):
    # os._exit skips atexit/finally — the parent sees a bare EOF on the
    # pipe, exactly like an OOM kill or interpreter abort.
    os._exit(code)


def _pid(_x=None):
    return os.getpid()


def _crash_or_square(x):
    if x == 1:
        os._exit(1)
    return x * x


class TestRunMany:
    def test_inline_path_matches_loop(self):
        outs = run_many(_square, [(i,) for i in range(6)], jobs=1)
        assert [o.unwrap() for o in outs] == [i * i for i in range(6)]
        assert [o.index for o in outs] == list(range(6))

    def test_parallel_preserves_order(self):
        outs = run_many(_square, [(i,) for i in range(9)], jobs=3)
        assert [o.unwrap() for o in outs] == [i * i for i in range(9)]

    def test_worker_exception_becomes_outcome(self):
        out = run_many(_fail, [(3,)], jobs=2)[0]
        assert not out.ok and not out.timed_out
        assert "bad input 3" in out.error
        with pytest.raises(TaskError):
            out.unwrap()

    def test_timeout_kills_worker(self):
        t0 = time.perf_counter()
        outs = run_many(_sleep_forever, [(0,), (1,)], jobs=2, timeout=0.5)
        wall = time.perf_counter() - t0
        assert all(o.timed_out and not o.ok for o in outs)
        assert all(o.elapsed >= 0.5 for o in outs)
        # Both 300s sleepers were killed, not waited out.
        assert wall < 30.0
        with pytest.raises(TaskError, match="timed out"):
            outs[0].unwrap()

    def test_mixed_fast_and_hung(self):
        outs = run_many(
            time.sleep, [(0.01,), (300,), (0.01,)], jobs=2, timeout=1.0
        )
        assert [o.timed_out for o in outs] == [False, True, False]
        assert outs[0].ok and outs[2].ok

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            run_many(_square, [(1,)], jobs=0)

    def test_worker_crash_is_distinguished_from_timeout(self):
        """A worker that dies without writing a payload (EOF on its
        pipe) must come back ``crashed``, not hang or leak EOFError."""
        outs = run_many(
            _die_without_payload, [(13,)], jobs=2, timeout=30.0
        )
        out = outs[0]
        assert not out.ok
        assert out.crashed and not out.timed_out
        assert "exit code 13" in out.error
        with pytest.raises(TaskError, match="crashed"):
            out.unwrap()

    def test_crash_among_healthy_tasks(self):
        outs = run_many(_crash_or_square, [(0,), (1,), (2,), (3,)], jobs=2)
        assert [o.ok for o in outs] == [True, False, True, True]
        assert outs[1].crashed
        assert [o.value for o in outs if o.ok] == [0, 4, 9]

    def test_map_many_serial_preserves_exception_type(self):
        with pytest.raises(ValueError, match="bad input"):
            map_many(_fail, [(1,)], jobs=1)


class TestSolveMany:
    @pytest.fixture(scope="class")
    def tasks(self):
        out = []
        for size in (12, 16, 20):
            bench = load_benchmark("prim2").scaled(size)
            sinks = list(bench.sinks)
            topo = nearest_neighbor_topology(sinks, bench.source)
            radius = manhattan_radius_from(bench.source, sinks)
            bounds = DelayBounds.uniform(size, 0.8 * radius, 1.2 * radius)
            out.append(SolveTask(topo, bounds, {"check_bounds": False}))
        return out

    def test_parallel_matches_serial_bitwise(self, tasks):
        serial = [o.unwrap() for o in solve_many(tasks, jobs=1)]
        pooled = [o.unwrap() for o in solve_many(tasks, jobs=2)]
        for s, p in zip(serial, pooled):
            assert s.cost == p.cost
            np.testing.assert_array_equal(s.edge_lengths, p.edge_lengths)
            np.testing.assert_array_equal(s.delays, p.delays)
            assert s.stats.rounds == p.stats.rounds
            assert s.stats.steiner_rows == p.stats.steiner_rows

    def test_infeasible_task_reports_not_crashes(self, tasks):
        bad = SolveTask(
            tasks[0].topo,
            DelayBounds.uniform(12, 0.0, 1e-9),
            {"check_bounds": False},
        )
        outs = solve_many([tasks[0], bad], jobs=2)
        assert outs[0].ok
        assert not outs[1].ok and "Infeasible" in outs[1].error


class TestWorkerPool:
    """The resident pool: reuse across submissions, crash/timeout
    replacement, and graceful shutdown."""

    def test_workers_are_reused(self):
        with WorkerPool(jobs=1) as pool:
            pids = {pool.submit(_pid).unwrap() for _ in range(5)}
        assert len(pids) == 1  # same resident process served every task
        assert pool.tasks_run == 5
        assert pool.workers_replaced == 0

    def test_ordered_run_many(self):
        with WorkerPool(jobs=3) as pool:
            outs = pool.run_many(_square, [(i,) for i in range(9)])
        assert [o.unwrap() for o in outs] == [i * i for i in range(9)]
        assert [o.index for o in outs] == list(range(9))

    def test_crash_replaces_worker(self):
        with WorkerPool(jobs=1) as pool:
            before = pool.submit(_pid).unwrap()
            out = pool.submit(_die_without_payload, (7,))
            assert not out.ok and out.crashed and not out.timed_out
            assert "exit code 7" in out.error
            after = pool.submit(_pid).unwrap()
        assert before != after  # crashed seat was refilled
        assert pool.workers_replaced == 1

    def test_timeout_kills_and_replaces(self):
        with WorkerPool(jobs=1) as pool:
            t0 = time.perf_counter()
            out = pool.submit(_sleep_forever, (0,), timeout=0.5)
            wall = time.perf_counter() - t0
            assert out.timed_out and not out.ok and not out.crashed
            assert wall < 30.0
            assert pool.submit(_square, (4,)).unwrap() == 16
        assert pool.workers_replaced == 1

    def test_worker_exception_keeps_worker(self):
        with WorkerPool(jobs=1) as pool:
            out = pool.submit(_fail, (3,))
            assert not out.ok and not out.crashed
            assert "bad input 3" in out.error
            assert pool.submit(_square, (3,)).unwrap() == 9
        assert pool.workers_replaced == 0

    def test_closed_pool_rejects(self):
        pool = WorkerPool(jobs=1)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit(_square, (1,))

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(jobs=0)


class TestExperimentJobs:
    def test_table3_parallel_identical(self):
        bench = load_benchmark("prim1").scaled(20)
        combos = ((0.9, 1.0), (0.5, 1.0), (0.0, 1.5))
        serial = run_table3(bench, combos=combos, jobs=1)
        pooled = run_table3(bench, combos=combos, jobs=2)
        assert serial == pooled
        assert render_table3(serial) == render_table3(pooled)

    @pytest.mark.skipif(
        os.environ.get("FULL", "") != "1",
        reason="spawn round-trip is slow; covered by fork elsewhere",
    )
    def test_spawn_start_method(self, tmp_path):
        outs = run_many(
            _square, [(i,) for i in range(3)], jobs=2, start_method="spawn"
        )
        assert [o.unwrap() for o in outs] == [0, 1, 4]


class TestCrashLoopCap:
    """A worker crash loop must become a typed error, not an unbounded
    fork storm — while isolated crashes keep being absorbed."""

    def test_consecutive_crashes_hit_the_cap(self):
        with WorkerPool(jobs=1, max_consecutive_crashes=3) as pool:
            for _ in range(2):
                out = pool.submit(_die_without_payload, (9,))
                assert out.crashed
            with pytest.raises(PoolCrashLoopError) as err:
                pool.submit(_die_without_payload, (9,))
            assert "3 times in a row" in str(err.value)
            assert "_die_without_payload" in str(err.value)
            # The seat was refilled before raising: the pool survives.
            assert pool.submit(_square, (5,)).unwrap() == 25
            assert pool.workers_replaced == 3

    def test_successes_reset_the_crash_streak(self):
        with WorkerPool(jobs=1, max_consecutive_crashes=2) as pool:
            for _ in range(3):
                assert pool.submit(_die_without_payload, (9,)).crashed
                assert pool.submit(_square, (2,)).unwrap() == 4
        assert pool.workers_replaced == 3  # never two in a row -> no raise

    def test_timeouts_do_not_count_toward_the_cap(self):
        with WorkerPool(jobs=1, max_consecutive_crashes=2) as pool:
            assert pool.submit(_die_without_payload, (9,)).crashed
            assert pool.submit(_sleep_forever, (0,), timeout=0.3).timed_out
            # A timeout broke the crash streak: one more crash is fine.
            assert pool.submit(_die_without_payload, (9,)).crashed
            assert pool.submit(_square, (3,)).unwrap() == 9

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(jobs=1, max_consecutive_crashes=0)


class TestWorkerProcesses:
    def test_lists_live_workers_busy_or_idle(self):
        with WorkerPool(jobs=2) as pool:
            procs = pool.worker_processes()
            assert len(procs) == 2
            assert all(p.is_alive() for p in procs)
            pids = {p.pid for p in procs}
            assert pool.submit(_pid).unwrap() in pids
        assert pool.worker_processes() == []  # close() emptied the set

    def test_killed_worker_is_replaced_in_the_listing(self):
        with WorkerPool(jobs=1) as pool:
            (victim,) = pool.worker_processes()
            victim.kill()
            out = pool.submit(_square, (4,))
            # The kill may land before or while the task runs; either
            # way the pool recovers and the listing shows a live seat.
            assert out.unwrap() == 16 if out.ok else out.crashed
            (survivor,) = pool.worker_processes()
            assert survivor.is_alive()
            assert pool.submit(_square, (6,)).unwrap() == 36
