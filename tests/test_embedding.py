"""Tests for feasible regions, placement, and Theorem 4.1 end-to-end.

The central property: for ANY edge lengths satisfying the Steiner
constraints (in particular every EBF solution), the two sweeps produce a
valid embedding with ``e_k >= dist(child, parent)``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delay import sink_delays_linear
from repro.ebf import DelayBounds, solve_lubt, solve_zero_skew
from repro.ebf.bounds import radius_of
from repro.embedding import (
    EmbeddingError,
    embed_tree,
    embedding_violations,
    feasible_regions,
    place_points,
    solve_and_embed,
    verify_embedding,
)
from repro.embedding.feasible import feasible_region_via_sinks
from repro.embedding.verify import tight_edges
from repro.geometry import Point, manhattan
from repro.topology import Topology, nearest_neighbor_topology


def random_topo(m, seed, fixed=False):
    rng = np.random.default_rng(seed)
    pts = [Point(float(x), float(y)) for x, y in rng.integers(0, 80, (m, 2))]
    src = Point(40.0, 40.0) if fixed else None
    return nearest_neighbor_topology(pts, src)


def random_bounds(topo, seed):
    rng = np.random.default_rng(seed + 77)
    r = radius_of(topo)
    lo = float(rng.uniform(0, 1.2)) * r
    hi = max(lo, r, float(rng.uniform(1.0, 2.0)) * r)
    if topo.source_location is not None:
        hi = max(
            hi,
            max(manhattan(topo.source_location, s) for s in topo.sink_locations),
        )
    return DelayBounds.uniform(topo.num_sinks, lo, hi)


class TestFeasibleRegions:
    def test_sink_regions_are_points(self):
        topo = random_topo(5, 1)
        sol = solve_lubt(topo, DelayBounds.unbounded(5))
        fr = feasible_regions(topo, sol.edge_lengths)
        for i in topo.sink_ids():
            assert fr[i].is_point()
            assert fr[i].contains(topo.sink_location(i))

    def test_matches_equation13(self):
        """Sweep FRs equal the appendix's sink-ball characterization."""
        topo = random_topo(7, 2)
        sol = solve_lubt(topo, random_bounds(topo, 2))
        fr = feasible_regions(topo, sol.edge_lengths)
        for k in list(topo.steiner_ids()) + [0]:
            via_sinks = feasible_region_via_sinks(topo, sol.edge_lengths, k)
            assert via_sinks.contains_trr(fr[k], tol=1e-6)
            assert fr[k].contains_trr(via_sinks, tol=1e-6)

    def test_violating_lengths_raise(self):
        topo = random_topo(4, 3)
        e = np.zeros(topo.num_nodes)  # all-zero violates Steiner constraints
        with pytest.raises(EmbeddingError):
            feasible_regions(topo, e)

    def test_negative_length_rejected(self):
        topo = random_topo(3, 4)
        e = np.full(topo.num_nodes, 10.0)
        e[1] = -1.0
        with pytest.raises(EmbeddingError):
            feasible_regions(topo, e)

    def test_shape_mismatch(self):
        topo = random_topo(3, 5)
        with pytest.raises(ValueError):
            feasible_regions(topo, np.ones(2))


class TestPlacement:
    def test_policies(self):
        topo = random_topo(6, 6)
        sol = solve_lubt(topo, random_bounds(topo, 6))
        fr = feasible_regions(topo, sol.edge_lengths)
        for policy in ("nearest", "center"):
            placements = place_points(topo, sol.edge_lengths, fr, policy)
            verify_embedding(topo, sol.edge_lengths, placements)

    def test_unknown_policy(self):
        topo = random_topo(3, 7)
        sol = solve_lubt(topo, DelayBounds.unbounded(3))
        fr = feasible_regions(topo, sol.edge_lengths)
        with pytest.raises(ValueError):
            place_points(topo, sol.edge_lengths, fr, "random")

    def test_fixed_source_placed_at_source(self):
        topo = random_topo(5, 8, fixed=True)
        _, tree = solve_and_embed(topo, random_bounds(topo, 8))
        assert tree.root_location() == topo.source_location


class TestTheorem41:
    """The paper's key theorem, exercised as a property."""

    @given(st.integers(2, 14), st.integers(0, 1000), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_every_lubt_solution_embeds(self, m, seed, fixed):
        topo = random_topo(m, seed, fixed)
        sol = solve_lubt(topo, random_bounds(topo, seed))
        tree = embed_tree(topo, sol.edge_lengths)
        assert embedding_violations(topo, sol.edge_lengths, tree.placements) == []

    @given(st.integers(2, 14), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_zero_skew_solutions_embed(self, m, seed):
        topo = random_topo(m, seed)
        zst = solve_zero_skew(topo)
        tree = embed_tree(topo, zst.edge_lengths)
        assert tree.cost == pytest.approx(zst.cost)

    @given(st.integers(2, 10), st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_inflated_lengths_still_embed(self, m, seed):
        """Satisfying lengths stay satisfying when grown uniformly."""
        topo = random_topo(m, seed)
        sol = solve_lubt(topo, DelayBounds.unbounded(m))
        rng = np.random.default_rng(seed)
        e = sol.edge_lengths * (1.0 + rng.uniform(0, 1))
        tree = embed_tree(topo, e)
        assert tree.drawn_wirelength <= tree.cost + 1e-6


class TestEmbeddedTree:
    def test_cost_and_drawn_wirelength(self):
        topo = random_topo(8, 9)
        sol, tree = solve_and_embed(topo, random_bounds(topo, 9))
        assert tree.cost == pytest.approx(sol.cost)
        assert tree.drawn_wirelength <= tree.cost + 1e-6
        assert tree.elongation >= -1e-6

    def test_delays_preserved(self):
        """The embedded tree's LP delays are the solution's delays."""
        topo = random_topo(6, 10)
        sol, tree = solve_and_embed(topo, random_bounds(topo, 10))
        assert tree.sink_delays() == pytest.approx(sol.delays)

    def test_tight_edge_classification(self):
        # Two sinks, lower bound forces elongation of both edges.
        topo = nearest_neighbor_topology([Point(0, 0), Point(10, 0)])
        sol = solve_lubt(
            topo, DelayBounds.uniform(2, 8.0, 9.0), check_bounds=False
        )
        tree = embed_tree(topo, sol.edge_lengths)
        tight, elongated, degenerate = tight_edges(
            topo, sol.edge_lengths, tree.placements
        )
        # Each edge is 8 long but spans only 5 of distance: elongated.
        assert len(elongated) == 2
        assert not tight
        assert not degenerate

    def test_degenerate_edges(self):
        """Coincident sinks produce zero-length (degenerate) edges."""
        topo = nearest_neighbor_topology([Point(3, 3), Point(3, 3)])
        sol = solve_lubt(topo, DelayBounds.unbounded(2))
        tree = embed_tree(topo, sol.edge_lengths)
        _, _, degenerate = tight_edges(topo, sol.edge_lengths, tree.placements)
        assert len(degenerate) == 2


class TestVerifier:
    def test_detects_moved_sink(self):
        topo = random_topo(4, 11)
        sol, tree = solve_and_embed(topo, random_bounds(topo, 11))
        bad = dict(tree.placements)
        bad[1] = Point(-999, -999)
        problems = embedding_violations(topo, sol.edge_lengths, bad)
        assert any("sink 1" in p for p in problems)

    def test_detects_overlong_span(self):
        topo = random_topo(4, 12)
        sol, tree = solve_and_embed(topo, random_bounds(topo, 12))
        steiner = next(iter(topo.steiner_ids()), None)
        if steiner is None:
            pytest.skip("no steiner points")
        bad = dict(tree.placements)
        bad[steiner] = Point(1e6, 1e6)
        problems = embedding_violations(topo, sol.edge_lengths, bad)
        assert any("shorter than embedded distance" in p for p in problems)

    def test_missing_placement(self):
        topo = random_topo(3, 13)
        sol, tree = solve_and_embed(topo, random_bounds(topo, 13))
        partial = dict(tree.placements)
        del partial[1]
        problems = embedding_violations(topo, sol.edge_lengths, partial)
        assert problems
