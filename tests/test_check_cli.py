"""End-to-end tests for ``lubt check`` (human and ``--json`` output)."""

import json

import pytest

from repro.cli import main


class TestCheckCommand:
    def test_clean_bench_exits_zero(self, capsys):
        assert main(["check", "--bench", "prim1", "--sinks", "20"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_inverted_bounds_exit_nonzero_with_codes(self, capsys):
        rc = main([
            "check", "--bench", "r1", "--sinks", "10",
            "--lower", "2.0", "--upper", "0.5",
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "BD002" in out          # inverted window
        assert "BD005" in out          # below the Manhattan floor
        assert "LP005" in out          # the impossible delay rows

    def test_json_output_is_machine_readable(self, capsys):
        rc = main([
            "check", "--bench", "prim1", "--sinks", "12", "--json",
            "--lower", "3.0", "--upper", "0.25",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["ok"] is False
        assert payload["counts"]["error"] > 0
        codes = {d["code"] for d in payload["diagnostics"]}
        assert "BD002" in codes
        sample = payload["diagnostics"][0]
        assert {"code", "slug", "severity", "locus", "message", "fix_hint"} \
            <= set(sample)

    def test_nan_pin_file_reports_tp008(self, tmp_path, capsys):
        pins = tmp_path / "broken.txt"
        pins.write_text("source 50 50\n10 10\n90 20\nnan nan\n30 80\n")
        rc = main(["check", "--file", str(pins), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        codes = {d["code"] for d in payload["diagnostics"]}
        assert "TP008" in codes

    def test_clean_json_shape(self, capsys):
        rc = main(["check", "--bench", "prim2", "--sinks", "16", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["ok"] is True
        # Advisory-only: the LP013 tree-solvability note, nothing else.
        assert payload["counts"]["error"] == 0
        assert payload["counts"]["warning"] == 0
        assert [d["code"] for d in payload["diagnostics"]] == ["LP013"]

    def test_table1_suite_clean(self, capsys):
        rc = main([
            "check", "--bench", "prim1", "--sinks", "10",
            "--suite", "table1", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["ok"] is True
        assert len(payload["rows"]) == 8  # PAPER_SKEW_BOUNDS
        assert all(row["ok"] for row in payload["rows"])

    @pytest.mark.parametrize("flag", [[], ["--fail-on-warning"]])
    def test_fail_on_warning_flag(self, capsys, tmp_path, flag):
        # Two sinks at the same location: TP007 warning, no errors.
        pins = tmp_path / "dup.txt"
        pins.write_text("source 5 5\n1 1\n1 1\n9 2\n")
        rc = main(["check", "--file", str(pins), "--json", *flag])
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["warning"] >= 1
        assert payload["counts"]["error"] == 0
        assert rc == (1 if flag else 0)
